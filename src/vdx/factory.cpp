#include "vdx/factory.h"

#include "util/strings.h"

namespace avoc::vdx {
namespace {

Result<core::ThresholdScale> ScaleFromSpec(const Spec& spec) {
  const std::string token =
      AsciiToUpper(spec.StringParamOr("threshold_scale", "RELATIVE"));
  if (token == "RELATIVE") return core::ThresholdScale::kRelative;
  if (token == "ABSOLUTE") return core::ThresholdScale::kAbsolute;
  return ParseError("unknown threshold_scale '" + token + "'");
}

Result<core::RoundWeighting> WeightingFromSpec(const Spec& spec,
                                               core::RoundWeighting fallback) {
  const std::string token = AsciiToUpper(spec.StringParamOr("weighting", ""));
  if (token.empty()) return fallback;
  if (token == "UNIFORM") return core::RoundWeighting::kUniform;
  if (token == "HISTORY") return core::RoundWeighting::kHistory;
  if (token == "AGREEMENT") return core::RoundWeighting::kAgreement;
  if (token == "COMBINED") return core::RoundWeighting::kCombined;
  return ParseError("unknown weighting '" + token + "'");
}

core::NoQuorumPolicy LowerNoQuorum(FaultAction action) {
  switch (action) {
    case FaultAction::kAccept:
    case FaultAction::kRevertLast:
      return core::NoQuorumPolicy::kRevertLast;
    case FaultAction::kEmitNothing:
      return core::NoQuorumPolicy::kEmitNothing;
    case FaultAction::kRaise:
      return core::NoQuorumPolicy::kRaise;
  }
  return core::NoQuorumPolicy::kRevertLast;
}

core::NoMajorityPolicy LowerNoMajority(FaultAction action) {
  switch (action) {
    case FaultAction::kAccept:
      return core::NoMajorityPolicy::kAccept;
    case FaultAction::kEmitNothing:
      return core::NoMajorityPolicy::kEmitNothing;
    case FaultAction::kRevertLast:
      return core::NoMajorityPolicy::kRevertLast;
    case FaultAction::kRaise:
      return core::NoMajorityPolicy::kRaise;
  }
  return core::NoMajorityPolicy::kAccept;
}

core::QuorumParams LowerQuorum(const Spec& spec) {
  core::QuorumParams quorum;
  switch (spec.quorum) {
    case QuorumMode::kAny:
      quorum.fraction = 1e-9;  // any single candidate triggers a vote
      quorum.min_count = 1;
      break;
    case QuorumMode::kCount:
      quorum.fraction = 1e-9;
      quorum.min_count = static_cast<size_t>(spec.quorum_amount);
      break;
    case QuorumMode::kPercent:
    case QuorumMode::kUntil:
      quorum.fraction = spec.quorum_amount / 100.0;
      quorum.min_count = 1;
      break;
  }
  return quorum;
}

}  // namespace

Result<core::EngineConfig> ToEngineConfig(const Spec& spec) {
  AVOC_RETURN_IF_ERROR(spec.Validate());
  if (spec.value_type != ValueKind::kNumeric) {
    return UnsupportedError(
        "categorical specs lower through ToCategoricalConfig");
  }

  core::EngineConfig config;
  config.agreement.error = spec.ParamOr("error", 0.05);
  config.agreement.soft_multiple = spec.ParamOr("soft_threshold", 2.0);
  AVOC_ASSIGN_OR_RETURN(config.agreement.scale, ScaleFromSpec(spec));

  core::RoundWeighting default_weighting = core::RoundWeighting::kHistory;
  switch (spec.history) {
    case HistoryKind::kNone:
      config.agreement.mode = core::AgreementMode::kBinary;
      config.history.rule = core::HistoryRule::kNone;
      default_weighting = core::RoundWeighting::kUniform;
      break;
    case HistoryKind::kStandard:
      config.agreement.mode = core::AgreementMode::kBinary;
      config.history.rule = core::HistoryRule::kCumulativeRatio;
      break;
    case HistoryKind::kModuleElimination:
      config.agreement.mode = core::AgreementMode::kBinary;
      config.history.rule = core::HistoryRule::kCumulativeRatio;
      config.module_elimination = true;
      break;
    case HistoryKind::kSoftDynamicThreshold:
      config.agreement.mode = core::AgreementMode::kSoftDynamic;
      config.history.rule = core::HistoryRule::kCumulativeRatio;
      break;
    case HistoryKind::kHybrid:
      config.agreement.mode = core::AgreementMode::kSoftDynamic;
      config.history.rule = core::HistoryRule::kRewardPenalty;
      config.module_elimination = true;
      break;
  }
  AVOC_ASSIGN_OR_RETURN(config.weighting,
                        WeightingFromSpec(spec, default_weighting));

  config.history.reward = spec.ParamOr("reward", 0.05);
  config.history.penalty = spec.ParamOr("penalty", 0.3);
  config.history.missing_penalty = spec.ParamOr("missing_penalty", 0.0);
  config.elimination_margin = spec.ParamOr("elimination_margin", 0.05);

  switch (spec.exclusion) {
    case ExclusionKind::kNone:
      config.exclusion.mode = core::ExclusionMode::kNone;
      break;
    case ExclusionKind::kStdDev:
      config.exclusion.mode = core::ExclusionMode::kStdDev;
      break;
    case ExclusionKind::kMad:
      config.exclusion.mode = core::ExclusionMode::kMad;
      break;
  }
  config.exclusion.threshold = spec.exclusion_threshold;

  config.quorum = LowerQuorum(spec);

  switch (spec.collation) {
    case CollationKind::kWeightedAverage:
      config.collation = core::Collation::kWeightedAverage;
      break;
    case CollationKind::kMeanNearestNeighbor:
      config.collation = core::Collation::kMeanNearestNeighbor;
      break;
    case CollationKind::kWeightedMedian:
      config.collation = core::Collation::kWeightedMedian;
      break;
    case CollationKind::kMajority:
      return UnsupportedError("majority collation is categorical-only");
  }

  if (spec.clustering_always) {
    config.clustering = core::ClusteringMode::kAlways;
  } else if (spec.bootstrapping) {
    config.clustering = core::ClusteringMode::kBootstrap;
  } else {
    config.clustering = core::ClusteringMode::kOff;
  }

  config.on_no_quorum = LowerNoQuorum(spec.fault_policy.on_no_quorum);
  config.on_no_majority = LowerNoMajority(spec.fault_policy.on_no_majority);

  AVOC_RETURN_IF_ERROR(config.Validate());
  return config;
}

Result<core::VotingEngine> MakeVoter(const Spec& spec, size_t modules) {
  AVOC_ASSIGN_OR_RETURN(const core::EngineConfig config, ToEngineConfig(spec));
  return core::VotingEngine::Create(modules, config);
}

Result<core::StagePipeline::Ptr> CompileStagePipeline(const Spec& spec,
                                                      size_t modules) {
  if (modules == 0) {
    return InvalidArgumentError("stage pipeline needs at least one module");
  }
  AVOC_ASSIGN_OR_RETURN(const core::EngineConfig config, ToEngineConfig(spec));
  AVOC_RETURN_IF_ERROR(config.Validate());
  return core::StagePipeline::Compile(modules, config);
}

Result<core::CategoricalConfig> ToCategoricalConfig(
    const Spec& spec, core::CategoricalDistance distance) {
  AVOC_RETURN_IF_ERROR(spec.Validate(distance != nullptr));
  if (spec.value_type != ValueKind::kCategorical) {
    return UnsupportedError("numeric specs lower through ToEngineConfig");
  }
  core::CategoricalConfig config;
  switch (spec.history) {
    case HistoryKind::kNone:
      config.history.rule = core::HistoryRule::kNone;
      break;
    case HistoryKind::kStandard:
      config.history.rule = core::HistoryRule::kCumulativeRatio;
      break;
    case HistoryKind::kModuleElimination:
      config.history.rule = core::HistoryRule::kCumulativeRatio;
      config.module_elimination = true;
      break;
    case HistoryKind::kSoftDynamicThreshold:
    case HistoryKind::kHybrid:
      // Validate() already required a custom distance for these.
      config.history.rule = core::HistoryRule::kRewardPenalty;
      config.module_elimination = spec.history == HistoryKind::kHybrid;
      break;
  }
  config.history.reward = spec.ParamOr("reward", 0.05);
  config.history.penalty = spec.ParamOr("penalty", 0.3);
  config.history.missing_penalty = spec.ParamOr("missing_penalty", 0.0);
  config.elimination_margin = spec.ParamOr("elimination_margin", 0.05);

  const core::QuorumParams quorum = LowerQuorum(spec);
  config.quorum_fraction = quorum.fraction;
  config.quorum_min_count = quorum.min_count;

  config.distance = std::move(distance);
  config.error = spec.ParamOr("error", 0.0);

  config.on_no_quorum = LowerNoQuorum(spec.fault_policy.on_no_quorum);
  config.on_no_majority = LowerNoMajority(spec.fault_policy.on_no_majority);
  return config;
}

Result<core::CategoricalEngine> MakeCategoricalVoter(
    const Spec& spec, size_t modules, core::CategoricalDistance distance) {
  AVOC_ASSIGN_OR_RETURN(core::CategoricalConfig config,
                        ToCategoricalConfig(spec, std::move(distance)));
  return core::CategoricalEngine::Create(modules, std::move(config));
}

Spec ExportSpec(core::AlgorithmId id, const core::PresetParams& params) {
  Spec spec;
  spec.algorithm_name = AsciiToUpper(core::AlgorithmName(id));
  spec.quorum = QuorumMode::kUntil;
  spec.quorum_amount = params.quorum_fraction * 100.0;
  spec.exclusion = ExclusionKind::kNone;
  spec.exclusion_threshold = 0.0;
  spec.params["error"] = params.error;
  if (params.scale == core::ThresholdScale::kAbsolute) {
    spec.string_params["threshold_scale"] = "ABSOLUTE";
  }

  switch (id) {
    case core::AlgorithmId::kAverage:
      spec.history = HistoryKind::kNone;
      spec.collation = CollationKind::kWeightedAverage;
      break;
    case core::AlgorithmId::kStandard:
      spec.history = HistoryKind::kStandard;
      spec.collation = CollationKind::kWeightedAverage;
      break;
    case core::AlgorithmId::kModuleElimination:
      spec.history = HistoryKind::kModuleElimination;
      spec.collation = CollationKind::kWeightedAverage;
      break;
    case core::AlgorithmId::kSoftDynamicThreshold:
      spec.history = HistoryKind::kSoftDynamicThreshold;
      spec.params["soft_threshold"] = params.soft_multiple;
      spec.collation = CollationKind::kWeightedAverage;
      break;
    case core::AlgorithmId::kHybrid:
      spec.history = HistoryKind::kHybrid;
      spec.params["soft_threshold"] = params.soft_multiple;
      spec.params["reward"] = params.reward;
      spec.params["penalty"] = params.penalty;
      spec.collation = CollationKind::kMeanNearestNeighbor;
      break;
    case core::AlgorithmId::kClusteringOnly:
      spec.history = HistoryKind::kNone;
      spec.collation = CollationKind::kWeightedAverage;
      spec.clustering_always = true;
      break;
    case core::AlgorithmId::kAvoc:
      spec.history = HistoryKind::kHybrid;
      spec.params["soft_threshold"] = params.soft_multiple;
      spec.params["reward"] = params.reward;
      spec.params["penalty"] = params.penalty;
      spec.collation = CollationKind::kMeanNearestNeighbor;
      spec.bootstrapping = true;
      break;
  }
  if (params.collation.has_value()) {
    switch (*params.collation) {
      case core::Collation::kWeightedAverage:
        spec.collation = CollationKind::kWeightedAverage;
        break;
      case core::Collation::kMeanNearestNeighbor:
        spec.collation = CollationKind::kMeanNearestNeighbor;
        break;
      case core::Collation::kWeightedMedian:
        spec.collation = CollationKind::kWeightedMedian;
        break;
    }
  }
  return spec;
}

}  // namespace avoc::vdx
