#include "vdx/registry.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/algorithms.h"
#include "util/strings.h"
#include "vdx/factory.h"

namespace avoc::vdx {

Result<Spec> ReadSpecFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto spec = Spec::Parse(buffer.str());
  if (!spec.ok()) {
    return Status(spec.status().code(),
                  path + ": " + spec.status().message());
  }
  return spec;
}

Status WriteSpecFile(const std::string& path, const Spec& spec) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return IoError("cannot open '" + path + "' for writing");
  out << spec.Serialize() << "\n";
  if (!out.good()) return IoError("write failure on '" + path + "'");
  return Status::Ok();
}

void SpecRegistry::Register(std::string name, Spec spec) {
  specs_[std::move(name)] = std::move(spec);
}

void SpecRegistry::Register(Spec spec) {
  std::string name = AsciiToLower(spec.algorithm_name);
  specs_[std::move(name)] = std::move(spec);
}

Result<Spec> SpecRegistry::Get(std::string_view name) const {
  auto it = specs_.find(name);
  if (it == specs_.end()) {
    return NotFoundError("no spec named '" + std::string(name) + "'");
  }
  return it->second;
}

bool SpecRegistry::contains(std::string_view name) const {
  return specs_.find(name) != specs_.end();
}

std::vector<std::string> SpecRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) {
    (void)spec;
    names.push_back(name);
  }
  return names;
}

Result<size_t> SpecRegistry::LoadDirectory(const std::string& directory) {
  std::error_code ec;
  std::filesystem::directory_iterator it(directory, ec);
  if (ec) {
    return IoError("cannot list '" + directory + "': " + ec.message());
  }
  size_t loaded = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    const std::string extension = entry.path().extension().string();
    if (extension != ".json" && extension != ".vdx") continue;
    AVOC_ASSIGN_OR_RETURN(Spec spec, ReadSpecFile(entry.path().string()));
    Register(entry.path().stem().string(), std::move(spec));
    ++loaded;
  }
  return loaded;
}

SpecRegistry SpecRegistry::WithBuiltins() {
  SpecRegistry registry;
  for (const core::AlgorithmId id : core::AllAlgorithms()) {
    registry.Register(std::string(core::AlgorithmName(id)), ExportSpec(id));
  }
  return registry;
}

}  // namespace avoc::vdx
