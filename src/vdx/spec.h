// VDX: the Voting Definition Specification (§6).
//
// A VDX document declaratively defines a voting scheme: quorum, exclusion,
// history algorithm, free-form parameters, collation, and whether the
// clustering bootstrap is enabled.  It is a superset of Bakken et al.'s
// VDL three-step model (quorum → exclusion → collation), extended with the
// history step, parameters, bootstrapping, categorical values, and — as
// §7 prospects — declarative fault-handling policies.
//
// The canonical serialisation is JSON, Listing 1 of the paper:
//
//   {
//     "algorithm_name": "AVOC",
//     "quorum": "UNTIL",
//     "quorum_percentage": 100,
//     "exclusion": "NONE",
//     "exclusion_threshold": 0,
//     "history": "HYBRID",
//     "params": { "error": 0.05, "soft_threshold": 2 },
//     "collation": "MEAN_NEAREST_NEIGHBOR",
//     "bootstrapping": true,
//   }
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "json/value.h"
#include "util/status.h"

namespace avoc::vdx {

/// VDL-inherited quorum modes.  For a round-based voter, COUNT/PERCENT
/// gate on the submitted candidate count; UNTIL additionally tells a
/// streaming hub to hold the round open until the quorum is met or its
/// timeout fires.
enum class QuorumMode { kAny, kCount, kPercent, kUntil };

enum class ExclusionKind { kNone, kStdDev, kMad };

/// The history algorithm families of §4.
enum class HistoryKind {
  kNone,               ///< stateless voting
  kStandard,           ///< history-based weighted average [17]
  kModuleElimination,  ///< + below-average modules zero-weighted [17]
  kSoftDynamicThreshold,  ///< graded agreement [11]
  kHybrid,             ///< ME + SDT + aggressive records [7]
};

enum class CollationKind {
  kWeightedAverage,
  kMeanNearestNeighbor,
  kWeightedMedian,
  kMajority,  ///< categorical only
};

enum class ValueKind { kNumeric, kCategorical };

/// Declarative fault handling (§7 extension).
enum class FaultAction { kAccept, kEmitNothing, kRevertLast, kRaise };

struct FaultPolicySpec {
  FaultAction on_no_quorum = FaultAction::kRevertLast;
  FaultAction on_no_majority = FaultAction::kAccept;
};

/// A parsed VDX document.
struct Spec {
  std::string algorithm_name;
  ValueKind value_type = ValueKind::kNumeric;

  QuorumMode quorum = QuorumMode::kPercent;
  /// Meaning depends on quorum: PERCENT/UNTIL → percentage [0,100];
  /// COUNT → absolute candidate count.
  double quorum_amount = 50.0;

  ExclusionKind exclusion = ExclusionKind::kNone;
  double exclusion_threshold = 0.0;

  HistoryKind history = HistoryKind::kStandard;

  /// Free-form numeric parameters ("error", "soft_threshold", "reward",
  /// "penalty", "missing_penalty", ...).  Unknown keys are preserved
  /// round-trip; the factory consumes the ones it understands.
  std::map<std::string, double> params;

  /// Non-numeric parameters ("threshold_scale": "RELATIVE"/"ABSOLUTE",
  /// "weighting": "HISTORY"/"AGREEMENT"/"UNIFORM"/"COMBINED").
  std::map<std::string, std::string> string_params;

  CollationKind collation = CollationKind::kWeightedAverage;

  /// Enables the clustering step as bootstrap/fallback (AVOC).
  bool bootstrapping = false;
  /// Runs the clustering step every round (clustering-only voting).  A
  /// VDX extension beyond the paper's listing; implied by
  /// algorithm_name == "COV" on parse for convenience.
  bool clustering_always = false;

  FaultPolicySpec fault_policy;

  /// Reads one numeric param with fallback.
  double ParamOr(std::string_view key, double fallback) const;
  /// Reads one string param with fallback.
  std::string StringParamOr(std::string_view key,
                            std::string_view fallback) const;

  /// Structural and capability validation: parameter ranges plus the §6
  /// categorical restrictions (no exclusion / no hybrid / no clustering /
  /// majority collation only).  `has_custom_distance` relaxes the
  /// categorical matrix per the paper's escape hatch.
  Status Validate(bool has_custom_distance = false) const;

  json::Value ToJson() const;
  static Result<Spec> FromJson(const json::Value& value);

  /// Parses a VDX JSON document (text form).
  static Result<Spec> Parse(std::string_view text);
  /// Pretty JSON serialisation.
  std::string Serialize() const;
};

// Enum <-> VDX token helpers (upper-snake tokens, e.g.
// "MEAN_NEAREST_NEIGHBOR"); parsing is case-insensitive.
std::string_view ToToken(QuorumMode mode);
std::string_view ToToken(ExclusionKind kind);
std::string_view ToToken(HistoryKind kind);
std::string_view ToToken(CollationKind kind);
std::string_view ToToken(ValueKind kind);
std::string_view ToToken(FaultAction action);
Result<QuorumMode> ParseQuorumMode(std::string_view token);
Result<ExclusionKind> ParseExclusionKind(std::string_view token);
Result<HistoryKind> ParseHistoryKind(std::string_view token);
Result<CollationKind> ParseCollationKind(std::string_view token);
Result<ValueKind> ParseValueKind(std::string_view token);
Result<FaultAction> ParseFaultAction(std::string_view token);

}  // namespace avoc::vdx
