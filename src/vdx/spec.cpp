#include "vdx/spec.h"

#include "json/parse.h"
#include "json/write.h"
#include "util/strings.h"

namespace avoc::vdx {
namespace {

Status UnknownToken(std::string_view what, std::string_view token) {
  return ParseError("unknown " + std::string(what) + " token '" +
                    std::string(token) + "'");
}

}  // namespace

std::string_view ToToken(QuorumMode mode) {
  switch (mode) {
    case QuorumMode::kAny: return "ANY";
    case QuorumMode::kCount: return "COUNT";
    case QuorumMode::kPercent: return "PERCENT";
    case QuorumMode::kUntil: return "UNTIL";
  }
  return "?";
}

std::string_view ToToken(ExclusionKind kind) {
  switch (kind) {
    case ExclusionKind::kNone: return "NONE";
    case ExclusionKind::kStdDev: return "STDDEV";
    case ExclusionKind::kMad: return "MAD";
  }
  return "?";
}

std::string_view ToToken(HistoryKind kind) {
  switch (kind) {
    case HistoryKind::kNone: return "NONE";
    case HistoryKind::kStandard: return "STANDARD";
    case HistoryKind::kModuleElimination: return "MODULE_ELIMINATION";
    case HistoryKind::kSoftDynamicThreshold: return "SDT";
    case HistoryKind::kHybrid: return "HYBRID";
  }
  return "?";
}

std::string_view ToToken(CollationKind kind) {
  switch (kind) {
    case CollationKind::kWeightedAverage: return "WEIGHTED_AVERAGE";
    case CollationKind::kMeanNearestNeighbor: return "MEAN_NEAREST_NEIGHBOR";
    case CollationKind::kWeightedMedian: return "WEIGHTED_MEDIAN";
    case CollationKind::kMajority: return "MAJORITY";
  }
  return "?";
}

std::string_view ToToken(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNumeric: return "NUMERIC";
    case ValueKind::kCategorical: return "CATEGORICAL";
  }
  return "?";
}

std::string_view ToToken(FaultAction action) {
  switch (action) {
    case FaultAction::kAccept: return "ACCEPT";
    case FaultAction::kEmitNothing: return "EMIT_NOTHING";
    case FaultAction::kRevertLast: return "REVERT_LAST";
    case FaultAction::kRaise: return "RAISE";
  }
  return "?";
}

Result<QuorumMode> ParseQuorumMode(std::string_view token) {
  const std::string upper = AsciiToUpper(TrimWhitespace(token));
  if (upper == "ANY") return QuorumMode::kAny;
  if (upper == "COUNT") return QuorumMode::kCount;
  if (upper == "PERCENT" || upper == "PERCENTAGE") return QuorumMode::kPercent;
  if (upper == "UNTIL") return QuorumMode::kUntil;
  return UnknownToken("quorum", token);
}

Result<ExclusionKind> ParseExclusionKind(std::string_view token) {
  const std::string upper = AsciiToUpper(TrimWhitespace(token));
  if (upper == "NONE") return ExclusionKind::kNone;
  if (upper == "STDDEV" || upper == "STD_DEV" || upper == "SIGMA") {
    return ExclusionKind::kStdDev;
  }
  if (upper == "MAD") return ExclusionKind::kMad;
  return UnknownToken("exclusion", token);
}

Result<HistoryKind> ParseHistoryKind(std::string_view token) {
  const std::string upper = AsciiToUpper(TrimWhitespace(token));
  if (upper == "NONE") return HistoryKind::kNone;
  if (upper == "STANDARD") return HistoryKind::kStandard;
  if (upper == "MODULE_ELIMINATION" || upper == "ME") {
    return HistoryKind::kModuleElimination;
  }
  if (upper == "SDT" || upper == "SOFT_DYNAMIC_THRESHOLD") {
    return HistoryKind::kSoftDynamicThreshold;
  }
  if (upper == "HYBRID") return HistoryKind::kHybrid;
  return UnknownToken("history", token);
}

Result<CollationKind> ParseCollationKind(std::string_view token) {
  const std::string upper = AsciiToUpper(TrimWhitespace(token));
  if (upper == "WEIGHTED_AVERAGE" || upper == "MEAN" || upper == "AVERAGE") {
    return CollationKind::kWeightedAverage;
  }
  if (upper == "MEAN_NEAREST_NEIGHBOR" || upper == "MEAN_NEAREST_NEIGHBOUR" ||
      upper == "MNN") {
    return CollationKind::kMeanNearestNeighbor;
  }
  if (upper == "WEIGHTED_MEDIAN" || upper == "MEDIAN") {
    return CollationKind::kWeightedMedian;
  }
  if (upper == "MAJORITY" || upper == "WEIGHTED_MAJORITY" ||
      upper == "PLURALITY") {
    return CollationKind::kMajority;
  }
  return UnknownToken("collation", token);
}

Result<ValueKind> ParseValueKind(std::string_view token) {
  const std::string upper = AsciiToUpper(TrimWhitespace(token));
  if (upper == "NUMERIC" || upper == "NUMBER") return ValueKind::kNumeric;
  if (upper == "CATEGORICAL" || upper == "STRING") {
    return ValueKind::kCategorical;
  }
  return UnknownToken("value_type", token);
}

Result<FaultAction> ParseFaultAction(std::string_view token) {
  const std::string upper = AsciiToUpper(TrimWhitespace(token));
  if (upper == "ACCEPT") return FaultAction::kAccept;
  if (upper == "EMIT_NOTHING" || upper == "NOTHING" || upper == "SKIP") {
    return FaultAction::kEmitNothing;
  }
  if (upper == "REVERT_LAST" || upper == "LAST") {
    return FaultAction::kRevertLast;
  }
  if (upper == "RAISE" || upper == "ERROR") return FaultAction::kRaise;
  return UnknownToken("fault action", token);
}

double Spec::ParamOr(std::string_view key, double fallback) const {
  auto it = params.find(std::string(key));
  return it == params.end() ? fallback : it->second;
}

std::string Spec::StringParamOr(std::string_view key,
                                std::string_view fallback) const {
  auto it = string_params.find(std::string(key));
  return it == string_params.end() ? std::string(fallback) : it->second;
}

Status Spec::Validate(bool has_custom_distance) const {
  if (algorithm_name.empty()) {
    return InvalidArgumentError("algorithm_name must be non-empty");
  }
  switch (quorum) {
    case QuorumMode::kAny:
      break;
    case QuorumMode::kCount:
      if (quorum_amount < 1.0) {
        return InvalidArgumentError("COUNT quorum needs >= 1 candidate");
      }
      break;
    case QuorumMode::kPercent:
    case QuorumMode::kUntil:
      if (quorum_amount <= 0.0 || quorum_amount > 100.0) {
        return InvalidArgumentError(
            "quorum_percentage must lie in (0, 100]");
      }
      break;
  }
  if (exclusion != ExclusionKind::kNone && exclusion_threshold <= 0.0) {
    return InvalidArgumentError(
        "exclusion_threshold must be > 0 when exclusion is enabled");
  }
  if (history != HistoryKind::kNone) {
    const double error = ParamOr("error", 0.05);
    if (error <= 0.0) {
      return InvalidArgumentError("params.error must be > 0");
    }
  }
  if (history == HistoryKind::kSoftDynamicThreshold ||
      history == HistoryKind::kHybrid) {
    if (ParamOr("soft_threshold", 2.0) < 1.0) {
      return InvalidArgumentError("params.soft_threshold must be >= 1");
    }
  }

  if (value_type == ValueKind::kCategorical) {
    // §6 capability matrix for categorical values.
    if (exclusion != ExclusionKind::kNone) {
      return UnsupportedError(
          "value-based exclusion cannot be applied to categorical values "
          "(no mean or standard deviation)");
    }
    if (collation != CollationKind::kMajority) {
      return UnsupportedError(
          "the only collation method for categorical values is the "
          "weighted majority vote");
    }
    if (!has_custom_distance) {
      if (history == HistoryKind::kHybrid ||
          history == HistoryKind::kSoftDynamicThreshold) {
        return UnsupportedError(
            "the hybrid/SDT history algorithms need a fine-grained "
            "agreement definition; supply a custom distance metric to "
            "re-enable them for categorical values");
      }
      if (bootstrapping || clustering_always) {
        return UnsupportedError(
            "clustering-based bootstrapping cannot be applied to "
            "categorical values without a custom distance metric");
      }
    }
  } else {
    if (collation == CollationKind::kMajority) {
      return UnsupportedError(
          "majority collation applies to categorical values; numeric votes "
          "use WEIGHTED_AVERAGE, MEAN_NEAREST_NEIGHBOR or WEIGHTED_MEDIAN");
    }
  }
  return Status::Ok();
}

json::Value Spec::ToJson() const {
  json::Object obj;
  obj.Set("algorithm_name", algorithm_name);
  obj.Set("value_type", ToToken(value_type));
  obj.Set("quorum", ToToken(quorum));
  if (quorum == QuorumMode::kCount) {
    obj.Set("quorum_count", quorum_amount);
  } else {
    obj.Set("quorum_percentage", quorum_amount);
  }
  obj.Set("exclusion", ToToken(exclusion));
  obj.Set("exclusion_threshold", exclusion_threshold);
  obj.Set("history", ToToken(history));
  json::Object params_obj;
  for (const auto& [key, value] : params) params_obj.Set(key, value);
  for (const auto& [key, value] : string_params) params_obj.Set(key, value);
  obj.Set("params", std::move(params_obj));
  obj.Set("collation", ToToken(collation));
  obj.Set("bootstrapping", bootstrapping);
  if (clustering_always) obj.Set("clustering_always", true);
  json::Object fault;
  fault.Set("on_no_quorum", ToToken(fault_policy.on_no_quorum));
  fault.Set("on_no_majority", ToToken(fault_policy.on_no_majority));
  obj.Set("fault_policy", std::move(fault));
  return json::Value(std::move(obj));
}

Result<Spec> Spec::FromJson(const json::Value& value) {
  if (!value.is_object()) {
    return ParseError("VDX document must be a JSON object");
  }
  Spec spec;

  const json::Value* name = value.Find("algorithm_name");
  if (name == nullptr) return ParseError("missing algorithm_name");
  AVOC_ASSIGN_OR_RETURN(spec.algorithm_name, name->AsString());

  if (const json::Value* v = value.Find("value_type")) {
    AVOC_ASSIGN_OR_RETURN(const std::string token, v->AsString());
    AVOC_ASSIGN_OR_RETURN(spec.value_type, ParseValueKind(token));
  }

  if (const json::Value* v = value.Find("quorum")) {
    AVOC_ASSIGN_OR_RETURN(const std::string token, v->AsString());
    AVOC_ASSIGN_OR_RETURN(spec.quorum, ParseQuorumMode(token));
  }
  if (const json::Value* v = value.Find("quorum_percentage")) {
    AVOC_ASSIGN_OR_RETURN(spec.quorum_amount, v->AsDouble());
  }
  if (const json::Value* v = value.Find("quorum_count")) {
    AVOC_ASSIGN_OR_RETURN(spec.quorum_amount, v->AsDouble());
  }

  if (const json::Value* v = value.Find("exclusion")) {
    AVOC_ASSIGN_OR_RETURN(const std::string token, v->AsString());
    AVOC_ASSIGN_OR_RETURN(spec.exclusion, ParseExclusionKind(token));
  }
  if (const json::Value* v = value.Find("exclusion_threshold")) {
    AVOC_ASSIGN_OR_RETURN(spec.exclusion_threshold, v->AsDouble());
  }

  if (const json::Value* v = value.Find("history")) {
    AVOC_ASSIGN_OR_RETURN(const std::string token, v->AsString());
    AVOC_ASSIGN_OR_RETURN(spec.history, ParseHistoryKind(token));
  }

  if (const json::Value* v = value.Find("params")) {
    if (!v->is_object()) return ParseError("params must be an object");
    for (const auto& [key, member] : v->object().entries()) {
      if (member.is_number()) {
        spec.params[key] = member.DoubleOr(0);
      } else if (member.is_string()) {
        spec.string_params[key] = member.StringOr("");
      } else {
        return ParseError("params values must be numbers or strings");
      }
    }
  }

  if (const json::Value* v = value.Find("collation")) {
    AVOC_ASSIGN_OR_RETURN(const std::string token, v->AsString());
    AVOC_ASSIGN_OR_RETURN(spec.collation, ParseCollationKind(token));
  }

  if (const json::Value* v = value.Find("bootstrapping")) {
    AVOC_ASSIGN_OR_RETURN(spec.bootstrapping, v->AsBool());
  }
  if (const json::Value* v = value.Find("clustering_always")) {
    AVOC_ASSIGN_OR_RETURN(spec.clustering_always, v->AsBool());
  }

  if (const json::Value* v = value.Find("fault_policy")) {
    if (!v->is_object()) return ParseError("fault_policy must be an object");
    if (const json::Value* q = v->Find("on_no_quorum")) {
      AVOC_ASSIGN_OR_RETURN(const std::string token, q->AsString());
      AVOC_ASSIGN_OR_RETURN(spec.fault_policy.on_no_quorum,
                            ParseFaultAction(token));
    }
    if (const json::Value* m = v->Find("on_no_majority")) {
      AVOC_ASSIGN_OR_RETURN(const std::string token, m->AsString());
      AVOC_ASSIGN_OR_RETURN(spec.fault_policy.on_no_majority,
                            ParseFaultAction(token));
    }
  }
  return spec;
}

Result<Spec> Spec::Parse(std::string_view text) {
  AVOC_ASSIGN_OR_RETURN(const json::Value value, json::Parse(text));
  return FromJson(value);
}

std::string Spec::Serialize() const { return json::WritePretty(ToJson()); }

}  // namespace avoc::vdx
