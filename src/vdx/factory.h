// VDX factory: turning a parsed Spec into a configured voter (§6).
//
// This is the encapsulation the paper argues for — application developers
// ship a VDX document, the middleware instantiates the voter, and the
// voting implementation stays shielded behind it.
#pragma once

#include "core/algorithms.h"
#include "core/categorical.h"
#include "core/engine.h"
#include "vdx/spec.h"

namespace avoc::vdx {

/// Lowers a numeric Spec to the engine configuration.  Fails on
/// categorical specs or invalid parameters.
Result<core::EngineConfig> ToEngineConfig(const Spec& spec);

/// Builds a ready numeric voting engine for `modules` sensors.
Result<core::VotingEngine> MakeVoter(const Spec& spec, size_t modules);

/// Lowers a numeric Spec straight to the compiled stage chain — what a
/// spec *means* operationally, without instantiating engine state.
/// Useful for spec tooling (showing the stage order a document compiles
/// to) and for sharing one chain across many engines.
Result<core::StagePipeline::Ptr> CompileStagePipeline(const Spec& spec,
                                                      size_t modules);

/// Lowers a categorical Spec (value_type CATEGORICAL).  The optional
/// distance metric relaxes the capability matrix per §6.
Result<core::CategoricalConfig> ToCategoricalConfig(
    const Spec& spec, core::CategoricalDistance distance = nullptr);

/// Builds a categorical voter.
Result<core::CategoricalEngine> MakeCategoricalVoter(
    const Spec& spec, size_t modules,
    core::CategoricalDistance distance = nullptr);

/// Exports a preset algorithm as a VDX Spec — the round-trip the paper's
/// Listing 1 shows for AVOC.
Spec ExportSpec(core::AlgorithmId id, const core::PresetParams& params = {});

}  // namespace avoc::vdx
