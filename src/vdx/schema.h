// The machine-readable VDX schema (§6: "The full schema, as well as a
// sample implementation and usage examples can be found at" the paper's
// repository — this is our equivalent).
//
// The schema is embedded so validation needs no files at runtime; the
// same text ships as docs/vdx.schema.json for external tooling.
#pragma once

#include <string_view>

#include "json/schema.h"
#include "util/status.h"

namespace avoc::vdx {

/// The VDX JSON Schema document (draft-07 subset, see json/schema.h).
std::string_view VdxJsonSchema();

/// Validates a raw JSON document against the VDX schema.  This is the
/// *structural* check; Spec::Validate adds the semantic/capability rules.
Result<json::ValidationReport> ValidateAgainstSchema(
    const json::Value& document);

/// Text-form convenience.  (Named distinctly because json::Value converts
/// implicitly from strings.)
Result<json::ValidationReport> ValidateTextAgainstSchema(
    std::string_view document_text);

}  // namespace avoc::vdx
