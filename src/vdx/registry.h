// VDX document storage: files on disk plus an in-memory named registry.
//
// The paper's vision is a "compatible voter service running on an edge
// node" receiving voting definitions; the runtime's VoterNode loads specs
// through this registry.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "vdx/spec.h"

namespace avoc::vdx {

/// Reads and parses one VDX JSON file.
Result<Spec> ReadSpecFile(const std::string& path);

/// Writes a spec as pretty JSON.
Status WriteSpecFile(const std::string& path, const Spec& spec);

/// Named spec collection.
class SpecRegistry {
 public:
  /// Registers (or replaces) a spec under `name`.
  void Register(std::string name, Spec spec);

  /// Registers a spec under its own algorithm_name.
  void Register(Spec spec);

  Result<Spec> Get(std::string_view name) const;
  bool contains(std::string_view name) const;
  size_t size() const { return specs_.size(); }

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Loads every `*.json` / `*.vdx` file in `directory`, registering each
  /// spec under its file stem.  Returns the number loaded; malformed files
  /// fail the whole call.
  Result<size_t> LoadDirectory(const std::string& directory);

  /// Registry pre-populated with the seven paper presets.
  static SpecRegistry WithBuiltins();

 private:
  std::map<std::string, Spec, std::less<>> specs_;
};

}  // namespace avoc::vdx
