#include "runtime/cluster.h"

#include <utility>

#include "runtime/event_loop.h"
#include "runtime/tcp.h"
#include "util/strings.h"

namespace avoc::runtime {

VoterCluster::VoterCluster(SimWorld* world, Options options,
                           obs::Registry* registry, obs::Tracer* tracer)
    : world_(world),
      options_(options),
      registry_(registry),
      tracer_(tracer),
      ring_(options.nodes == 0 ? 1 : options.nodes) {}

Result<std::unique_ptr<VoterCluster>> VoterCluster::StartOnWorld(
    SimWorld* world, Options options, obs::Registry* registry,
    obs::Tracer* tracer) {
  if (world == nullptr) {
    return InvalidArgumentError("cluster needs a simulation world");
  }
  if (options.nodes == 0) {
    return InvalidArgumentError("cluster needs at least one node");
  }
  std::unique_ptr<VoterCluster> cluster(
      new VoterCluster(world, options, registry, tracer));
  AVOC_RETURN_IF_ERROR(cluster->StartNodes());
  return cluster;
}

Result<std::unique_ptr<VoterCluster>> VoterCluster::Start(
    Options options, obs::Registry* registry, obs::Tracer* tracer) {
  if (options.nodes == 0) {
    return InvalidArgumentError("cluster needs at least one node");
  }
  std::unique_ptr<VoterCluster> cluster(
      new VoterCluster(/*world=*/nullptr, options, registry, tracer));
  AVOC_RETURN_IF_ERROR(cluster->StartNodes());
  return cluster;
}

VoterCluster::~VoterCluster() { Stop(); }

ClusterLink VoterCluster::LinkFor(size_t node) {
  ClusterLink link;
  link.node_index = node;
  link.control = this;
  link.engine_factory = [this](const std::string& group)
      -> Result<core::VotingEngine> {
    EngineMaker maker;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = catalog_.find(group);
      if (it == catalog_.end()) {
        return NotFoundError("group '" + group +
                             "' missing from the cluster catalog");
      }
      maker = it->second;
    }
    return maker();
  };
  return link;
}

Status VoterCluster::StartNodes() {
  nodes_.resize(options_.nodes);
  for (size_t i = 0; i < options_.nodes; ++i) {
    Node& node = nodes_[i];
    const auto start_one =
        [&](uint16_t sim_port, const std::string& node_id,
            std::shared_ptr<Reactor>* reactor_out,
            std::unique_ptr<VoterGroupManager>* manager_out,
            std::unique_ptr<RemoteVoterServer>* server_out,
            uint16_t* port_out) -> Status {
      *manager_out = std::make_unique<VoterGroupManager>(
          /*store=*/nullptr, registry_, /*trace_store=*/nullptr, tracer_);
      RemoteServerOptions server_options = options_.server;
      server_options.node_id = node_id;
      if (world_ != nullptr) {
        AVOC_ASSIGN_OR_RETURN(std::unique_ptr<Listener> listener,
                              world_->Listen(sim_port));
        *reactor_out = world_->NewReactor();
        AVOC_ASSIGN_OR_RETURN(
            *server_out,
            RemoteVoterServer::StartOnReactor(
                manager_out->get(), server_options, std::move(listener),
                *reactor_out, /*spawn_loop_thread=*/false));
        *port_out = sim_port;
      } else {
        AVOC_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Listen(0));
        AVOC_RETURN_IF_ERROR(listener.SetNonBlocking(true));
        AVOC_ASSIGN_OR_RETURN(std::unique_ptr<EventLoop> loop,
                              EventLoop::Create());
        *reactor_out = std::shared_ptr<Reactor>(std::move(loop));
        AVOC_ASSIGN_OR_RETURN(
            *server_out,
            RemoteVoterServer::StartOnReactor(
                manager_out->get(), server_options,
                std::make_unique<TcpListener>(std::move(listener)),
                *reactor_out, /*spawn_loop_thread=*/true));
        *port_out = (*server_out)->port();
      }
      (*server_out)->LinkCluster(LinkFor(i));
      return Status::Ok();
    };
    AVOC_RETURN_IF_ERROR(start_one(
        static_cast<uint16_t>(options_.base_port + i), StrFormat("n%zu", i),
        &node.reactor, &node.manager, &node.server, &node.port));
    if (options_.hot_standbys) {
      AVOC_RETURN_IF_ERROR(start_one(
          static_cast<uint16_t>(options_.base_port + 100 + i),
          StrFormat("n%zus", i), &node.standby_reactor, &node.standby_manager,
          &node.standby_server, &node.standby_port));
    }
  }
  return Status::Ok();
}

Status VoterCluster::AddGroup(const std::string& name, EngineMaker maker) {
  if (!maker) return InvalidArgumentError("group needs an engine maker");
  const size_t owner = OwnerOf(name);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!catalog_.emplace(name, maker).second) {
      return FailedPreconditionError("group '" + name +
                                     "' already in the cluster catalog");
    }
  }
  AVOC_ASSIGN_OR_RETURN(core::VotingEngine engine, maker());
  AVOC_RETURN_IF_ERROR(
      nodes_[owner].manager->AddGroup(name, std::move(engine)));
  if (nodes_[owner].standby_manager != nullptr) {
    AVOC_ASSIGN_OR_RETURN(core::VotingEngine standby_engine, maker());
    AVOC_RETURN_IF_ERROR(nodes_[owner].standby_manager->AddGroup(
        name, std::move(standby_engine)));
  }
  return Status::Ok();
}

void VoterCluster::Migrate(const std::string& group, size_t dest,
                           std::function<void(Status)> done) {
  const size_t source = OwnerOf(group);
  RemoteVoterServer* server = ActiveServer(source);
  ActiveReactor(source)->Post(
      [server, group, dest, done = std::move(done)]() mutable {
        server->BeginMigration(group, dest, std::move(done));
      });
}

void VoterCluster::CrashNode(size_t node) {
  if (node >= nodes_.size()) return;
  ActiveServer(node)->Crash();
  std::lock_guard<std::mutex> lock(mutex_);
  nodes_[node].alive = false;
}

Status VoterCluster::Failover(size_t node) {
  if (node >= nodes_.size()) {
    return InvalidArgumentError("no such node");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Node& n = nodes_[node];
  if (n.standby_server == nullptr) {
    return FailedPreconditionError("node has no standby to promote");
  }
  if (n.promoted) {
    return FailedPreconditionError("standby already promoted");
  }
  if (n.alive) {
    return FailedPreconditionError(
        "refusing failover while the primary is alive");
  }
  n.promoted = true;
  n.alive = true;
  return Status::Ok();
}

Result<std::unique_ptr<Transport>> VoterCluster::DialNode(size_t node) {
  if (node >= nodes_.size()) return InvalidArgumentError("no such node");
  const uint16_t port = PortOf(node);
  if (world_ != nullptr) return world_->Connect(port);
  AVOC_ASSIGN_OR_RETURN(TcpConnection connection,
                        TcpConnection::Connect("127.0.0.1", port));
  return std::unique_ptr<Transport>(
      std::make_unique<TcpConnection>(std::move(connection)));
}

uint16_t VoterCluster::PortOf(size_t node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Node& n = nodes_[node];
  return n.promoted ? n.standby_port : n.port;
}

Result<const SinkNode*> VoterCluster::sink(const std::string& group) const {
  return ActiveManager(OwnerOf(group))->sink(group);
}

RemoteVoterServer* VoterCluster::ActiveServer(size_t node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Node& n = nodes_[node];
  return n.promoted ? n.standby_server.get() : n.server.get();
}

VoterGroupManager* VoterCluster::ActiveManager(size_t node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Node& n = nodes_[node];
  return n.promoted ? n.standby_manager.get() : n.manager.get();
}

RemoteVoterServer* VoterCluster::StandbyServer(size_t node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return nodes_[node].standby_server.get();
}

void VoterCluster::Stop() {
  for (Node& node : nodes_) {
    if (node.server != nullptr) node.server->Stop();
    if (node.standby_server != nullptr) node.standby_server->Stop();
  }
}

// --- ClusterControl ----------------------------------------------------------

size_t VoterCluster::OwnerOf(const std::string& group) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto moved = placement_.find(group);
  if (moved != placement_.end()) return moved->second;
  return ring_.ShardFor(group);
}

size_t VoterCluster::NodeCount() const { return nodes_.size(); }

std::string VoterCluster::NodeAddress(size_t node) const {
  if (node >= nodes_.size()) return "<invalid>";
  return StrFormat(world_ != nullptr ? "sim://%u" : "127.0.0.1:%u",
                   static_cast<unsigned>(PortOf(node)));
}

bool VoterCluster::NodeAlive(size_t node) const {
  if (node >= nodes_.size()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return nodes_[node].alive;
}

bool VoterCluster::HasStandby(size_t node) const {
  if (node >= nodes_.size()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  const Node& n = nodes_[node];
  // A promoted standby IS the node; there is no second replica behind it.
  return n.standby_server != nullptr && !n.promoted;
}

std::shared_ptr<Reactor> VoterCluster::ActiveReactor(size_t node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Node& n = nodes_[node];
  return n.promoted ? n.standby_reactor : n.reactor;
}

void VoterCluster::TransferGroup(size_t from, size_t dest, std::string blob,
                                 std::function<void(Status)> done) {
  std::shared_ptr<Reactor> origin = ActiveReactor(from);
  if (dest >= nodes_.size() || !NodeAlive(dest)) {
    origin->Post([done = std::move(done)] {
      done(FailedPreconditionError("destination node is down"));
    });
    return;
  }
  // Snapshot the destination's active endpoint now; if it crashes before
  // the post runs, BeginImport's crashed_ guard fails the transfer typed.
  RemoteVoterServer* target = ActiveServer(dest);
  ActiveReactor(dest)->Post([target, blob = std::move(blob), origin,
                             done = std::move(done)]() mutable {
    target->BeginImport(
        std::move(blob), [origin, done = std::move(done)](Status status) mutable {
          origin->Post([done = std::move(done),
                        status = std::move(status)]() mutable {
            done(std::move(status));
          });
        });
  });
}

void VoterCluster::CommitPlacement(const std::string& group, size_t dest) {
  std::lock_guard<std::mutex> lock(mutex_);
  placement_[group] = dest;
}

void VoterCluster::Replicate(size_t node, std::string record,
                             std::function<void(Status)> done) {
  std::shared_ptr<Reactor> origin = ActiveReactor(node);
  RemoteVoterServer* standby = nullptr;
  std::shared_ptr<Reactor> standby_reactor;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const Node& n = nodes_[node];
    if (n.standby_server != nullptr && !n.promoted) {
      standby = n.standby_server.get();
      standby_reactor = n.standby_reactor;
    }
  }
  if (standby == nullptr) {
    origin->Post([done = std::move(done)] { done(Status::Ok()); });
    return;
  }
  standby_reactor->Post([standby, record = std::move(record), origin,
                         done = std::move(done)]() mutable {
    Status applied = standby->ApplyReplicated(record);
    origin->Post(
        [done = std::move(done), applied = std::move(applied)]() mutable {
          done(std::move(applied));
        });
  });
}

}  // namespace avoc::runtime
