// A cluster of voter server instances with live group migration and
// hot-standby failover.
//
// VoterCluster runs N standalone RemoteVoterServer nodes — each with its
// own VoterGroupManager and reactor — behind one consistent-hash ring
// (GroupRouter).  It implements the ClusterControl seam the servers call
// through (runtime/migration.h):
//
//   * placement: ring assignment plus a migration overlay, updated by
//     CommitPlacement when a MIGRATE_GROUP handoff commits;
//   * transfer: GroupStateBlob shipping between node reactors through
//     mailbox posts (two hops, like cross-shard forwarding);
//   * replication: with hot_standbys on, every node gets a shadow server
//     that applies shipped ReplicationRecords; a crashed node fails over
//     to it (Failover) with dedup-backed exactly-once semantics.
//
// Two run modes share all of the logic:
//
//   * StartOnWorld — every node on one SimWorld (deterministic simulation;
//     the caller pumps).  CrashNode/Failover are available here.
//   * Start — real TCP, one EventLoop thread per node (benchmarks and
//     integration runs).
//
// Clients reach the cluster through ResilientVoterClient::UseNodeDirectory
// with a dialer over DialNode: MOVED redirects re-target transparently and
// SUBMIT_BATCH_SEQ keeps ingestion exactly-once across moves and failures.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/group_manager.h"
#include "runtime/group_router.h"
#include "runtime/migration.h"
#include "runtime/remote.h"
#include "runtime/sim_net.h"
#include "util/status.h"

namespace avoc::runtime {

class VoterCluster : public ClusterControl {
 public:
  struct Options {
    /// Node count (ring size).  Placement indices are stable for a given
    /// count, so tests can pin group ownership.
    size_t nodes = 2;
    /// Give every node a hot standby that replays shipped records.
    bool hot_standbys = false;
    /// Sim mode: node i listens on base_port + i, its standby on
    /// base_port + 100 + i.  Real mode ignores this (ephemeral ports).
    uint16_t base_port = 9100;
    /// Per-server template; port and node_id are overwritten per node.
    RemoteServerOptions server;
  };

  /// Builds one engine instance for a group (must be deterministic: the
  /// destination of a migration rebuilds the group from it).
  using EngineMaker = std::function<Result<core::VotingEngine>()>;

  /// Simulation mode: all nodes and standbys live on `world`; the caller
  /// pumps.  `registry`/`tracer` are shared by every node (telemetry is
  /// disambiguated by the node="..." label).
  static Result<std::unique_ptr<VoterCluster>> StartOnWorld(
      SimWorld* world, Options options, obs::Registry* registry = nullptr,
      obs::Tracer* tracer = nullptr);

  /// Real-TCP mode: each node runs its own EventLoop thread on an
  /// ephemeral loopback port.  CrashNode/Failover are sim-only.
  static Result<std::unique_ptr<VoterCluster>> Start(
      Options options, obs::Registry* registry = nullptr,
      obs::Tracer* tracer = nullptr);

  ~VoterCluster() override;
  VoterCluster(const VoterCluster&) = delete;
  VoterCluster& operator=(const VoterCluster&) = delete;

  /// Registers the group in the engine catalog and installs it on its
  /// ring owner (and that node's standby).  Call before traffic flows.
  Status AddGroup(const std::string& name, EngineMaker maker);

  /// Operator entry: migrates `group` from its current owner to `dest`.
  /// Runs on the owner's loop; `done` fires there with the outcome.
  void Migrate(const std::string& group, size_t dest,
               std::function<void(Status)> done);

  /// Simulated node crash (sim mode, between pumps): the node's active
  /// server drops every connection and goes dark.  Connects to it fail
  /// until Failover promotes the standby.
  void CrashNode(size_t node);

  /// Promotes node's standby to primary: the node index stays, DialNode
  /// resolves to the standby's port, and the standby — which replayed
  /// every shipped record — serves with the same dedup guarantees.
  Status Failover(size_t node);

  /// Dials the node's current active endpoint (standby after failover).
  Result<std::unique_ptr<Transport>> DialNode(size_t node);

  /// Port of the node's active endpoint.
  uint16_t PortOf(size_t node) const;

  /// The sink of `group` on its current placement owner (active server).
  Result<const SinkNode*> sink(const std::string& group) const;

  /// The active server / manager of a node (standby after failover).
  RemoteVoterServer* ActiveServer(size_t node) const;
  VoterGroupManager* ActiveManager(size_t node) const;
  RemoteVoterServer* StandbyServer(size_t node) const;

  /// The node's active reactor (mailbox).  Chaos harnesses post crashes
  /// through it so the fault lands BETWEEN migration hops, not before
  /// them.
  std::shared_ptr<Reactor> NodeReactor(size_t node) const {
    return ActiveReactor(node);
  }

  /// Stops every server (graceful; crashed ones are already dark).
  void Stop();

  // --- ClusterControl ---------------------------------------------------------
  size_t OwnerOf(const std::string& group) const override;
  size_t NodeCount() const override;
  std::string NodeAddress(size_t node) const override;
  bool NodeAlive(size_t node) const override;
  bool HasStandby(size_t node) const override;
  void TransferGroup(size_t from, size_t dest, std::string blob,
                     std::function<void(Status)> done) override;
  void CommitPlacement(const std::string& group, size_t dest) override;
  void Replicate(size_t node, std::string record,
                 std::function<void(Status)> done) override;

 private:
  /// One ring position: a primary server and (optionally) its standby.
  /// Declaration order doubles as destruction order in reverse: servers
  /// die before their managers, managers before their reactors.
  struct Node {
    std::shared_ptr<Reactor> reactor;
    std::unique_ptr<VoterGroupManager> manager;
    std::unique_ptr<RemoteVoterServer> server;
    uint16_t port = 0;
    std::shared_ptr<Reactor> standby_reactor;
    std::unique_ptr<VoterGroupManager> standby_manager;
    std::unique_ptr<RemoteVoterServer> standby_server;
    uint16_t standby_port = 0;
    bool promoted = false;  ///< standby serves as the node
    bool alive = true;
  };

  VoterCluster(SimWorld* world, Options options, obs::Registry* registry,
               obs::Tracer* tracer);

  Status StartNodes();
  ClusterLink LinkFor(size_t node);
  std::shared_ptr<Reactor> ActiveReactor(size_t node) const;

  SimWorld* world_ = nullptr;  ///< null in real-TCP mode
  Options options_;
  obs::Registry* registry_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  GroupRouter ring_;
  std::vector<Node> nodes_;

  mutable std::mutex mutex_;  ///< guards placement_, catalog_, node flags
  std::map<std::string, size_t> placement_;  ///< migration overlay
  std::map<std::string, EngineMaker> catalog_;
};

}  // namespace avoc::runtime
