#include "runtime/multi_group.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "runtime/group_router.h"
#include "util/strings.h"
#include "vdx/factory.h"

namespace avoc::runtime {

void MultiGroupTrace::Resize(std::span<const data::RoundTable> tables,
                             size_t modules) {
  modules_ = modules;
  offsets_.assign(1, 0);
  offsets_.reserve(tables.size() + 1);
  for (const data::RoundTable& table : tables) {
    offsets_.push_back(offsets_.back() + table.round_count());
  }
  const size_t rounds = offsets_.back();
  values_.resize(rounds);
  engaged_.resize(rounds);
  outcomes_.resize(rounds);
  used_clustering_.resize(rounds);
  had_majority_.resize(rounds);
  present_counts_.resize(rounds);
  weights_.resize(rounds * modules);
  agreement_.resize(rounds * modules);
  history_.resize(rounds * modules);
  excluded_.resize(rounds * modules);
  eliminated_.resize(rounds * modules);
  errors_.resize(tables.size());
  for (std::vector<core::RoundError>& errors : errors_) errors.clear();
}

core::RoundColumns MultiGroupTrace::GroupSink::BeginRound(size_t module_count) {
  MultiGroupTrace& t = *trace_;
  const size_t row = (base_ + cursor_) * t.modules_;
  return core::RoundColumns{
      std::span<double>(t.weights_).subspan(row, module_count),
      std::span<double>(t.agreement_).subspan(row, module_count),
      std::span<double>(t.history_).subspan(row, module_count),
      std::span<uint8_t>(t.excluded_).subspan(row, module_count),
      std::span<uint8_t>(t.eliminated_).subspan(row, module_count)};
}

void MultiGroupTrace::GroupSink::EndRound(const core::RoundScalars& scalars) {
  MultiGroupTrace& t = *trace_;
  const size_t r = base_ + cursor_;
  t.values_[r] = scalars.value;
  t.engaged_[r] = scalars.has_value ? 1 : 0;
  t.outcomes_[r] = scalars.outcome;
  t.used_clustering_[r] = scalars.used_clustering ? 1 : 0;
  t.had_majority_[r] = scalars.had_majority ? 1 : 0;
  t.present_counts_[r] = scalars.present_count;
  if (scalars.status != nullptr) {
    t.errors_[group_].push_back(
        {static_cast<uint32_t>(cursor_), *scalars.status});
  }
  ++cursor_;
}

core::TraceView MultiGroupTrace::group(size_t g) const {
  const size_t begin = offsets_[g];
  const size_t rounds = offsets_[g + 1] - begin;
  core::TraceColumns columns;
  columns.rounds = rounds;
  columns.modules = modules_;
  columns.values = std::span<const double>(values_).subspan(begin, rounds);
  columns.engaged = std::span<const uint8_t>(engaged_).subspan(begin, rounds);
  columns.outcomes =
      std::span<const core::RoundOutcome>(outcomes_).subspan(begin, rounds);
  columns.used_clustering =
      std::span<const uint8_t>(used_clustering_).subspan(begin, rounds);
  columns.had_majority =
      std::span<const uint8_t>(had_majority_).subspan(begin, rounds);
  columns.present_counts =
      std::span<const uint32_t>(present_counts_).subspan(begin, rounds);
  const size_t block = begin * modules_;
  const size_t block_len = rounds * modules_;
  columns.weights = std::span<const double>(weights_).subspan(block, block_len);
  columns.agreement =
      std::span<const double>(agreement_).subspan(block, block_len);
  columns.history = std::span<const double>(history_).subspan(block, block_len);
  columns.excluded =
      std::span<const uint8_t>(excluded_).subspan(block, block_len);
  columns.eliminated =
      std::span<const uint8_t>(eliminated_).subspan(block, block_len);
  columns.errors = errors_[g];
  return core::TraceView(columns);
}

MultiGroupEngine::MultiGroupEngine(std::vector<core::VotingEngine> engines,
                                   size_t module_count,
                                   MultiGroupOptions options)
    : module_count_(module_count),
      options_(options),
      engines_(std::move(engines)),
      history_block_(engines_.size() * module_count, 1.0) {
  if (options_.registry != nullptr) {
    const size_t shards = std::max<size_t>(1, options_.metrics_shards);
    observers_.reserve(engines_.size());
    for (size_t g = 0; g < engines_.size(); ++g) {
      // One observer per group (the engine serializes its own rounds, and
      // two groups of one shard may vote concurrently on different
      // workers); the shard label makes same-shard groups share metrics.
      obs::MetricsObserverOptions observer_options;
      observer_options.scope = StrFormat("s%zu", g % shards);
      observer_options.scope_label = "shard";
      observer_options.sample_every = options_.metrics_sample_every;
      // Batch rounds are sub-microsecond: amortize the registry writes.
      observer_options.flush_every = 32;
      observer_options.log_events = false;
      observers_.push_back(std::make_unique<obs::MetricsObserver>(
          *options_.registry, std::move(observer_options)));
      engines_[g].set_observer(observers_.back().get());
    }
  }
  SyncHistory();
}

Result<MultiGroupEngine> MultiGroupEngine::Create(
    size_t group_count, size_t module_count, const core::EngineConfig& config,
    MultiGroupOptions options) {
  if (group_count == 0) {
    return InvalidArgumentError("multi-group engine needs at least one group");
  }
  // One prototype compiles the stage pipeline; the copies share it.
  AVOC_ASSIGN_OR_RETURN(core::VotingEngine prototype,
                        core::VotingEngine::Create(module_count, config));
  std::vector<core::VotingEngine> engines(group_count, prototype);
  return MultiGroupEngine(std::move(engines), module_count, options);
}

Result<MultiGroupEngine> MultiGroupEngine::FromSpec(const vdx::Spec& spec,
                                                    size_t group_count,
                                                    size_t module_count,
                                                    MultiGroupOptions options) {
  if (group_count == 0) {
    return InvalidArgumentError("multi-group engine needs at least one group");
  }
  AVOC_ASSIGN_OR_RETURN(core::VotingEngine prototype,
                        vdx::MakeVoter(spec, module_count));
  std::vector<core::VotingEngine> engines(group_count, prototype);
  return MultiGroupEngine(std::move(engines), module_count, options);
}

Status MultiGroupEngine::ValidateTables(
    std::span<const data::RoundTable> tables) const {
  if (tables.size() != engines_.size()) {
    return InvalidArgumentError(
        StrFormat("%zu tables for %zu groups", tables.size(), engines_.size()));
  }
  for (size_t g = 0; g < tables.size(); ++g) {
    if (tables[g].module_count() != module_count_) {
      return InvalidArgumentError(
          StrFormat("table %zu has %zu modules, groups have %zu", g,
                    tables[g].module_count(), module_count_));
    }
  }
  return Status::Ok();
}

Status MultiGroupEngine::RunBatch(std::span<const data::RoundTable> tables,
                                  MultiGroupTrace& trace) {
  AVOC_RETURN_IF_ERROR(ValidateTables(tables));
  trace.Resize(tables, module_count_);
  const unsigned hardware = std::thread::hardware_concurrency();
  const size_t configured =
      options_.threads != 0 ? options_.threads
                            : (hardware != 0 ? hardware : 1);
  const size_t workers = std::min(configured, engines_.size());
  if (workers <= 1) {
    // One worker would pay pool dispatch and join for nothing — run the
    // identical per-group loop inline so the parallel entry point never
    // loses to the sequential one on a single-core host.
    for (size_t g = 0; g < engines_.size(); ++g) {
      MultiGroupTrace::GroupSink sink(&trace, g);
      AVOC_RETURN_IF_ERROR(core::RunOverTable(engines_[g], tables[g], sink));
    }
  } else {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<util::ThreadPool>(options_.threads);
    }
    // One contiguous group range per worker (GroupRouter's dense
    // partition): each worker owns an adjacent slice of the group-major
    // block, so writes from different workers never interleave within a
    // cache line (the old one-task-per-group scatter did, and also paid
    // one queue round-trip per group instead of per worker).  Each group's
    // table feeds the engine's many-rounds block entry point whole
    // (ValidateTables already proved the arity), so a worker streams its
    // group range through one instruction stream.
    GroupRouter router(workers);
    std::vector<Status> statuses(workers);
    pool_->ParallelFor(
        workers, [this, tables, &trace, &statuses, &router](size_t w) {
          const ShardRange range = router.RangeFor(w, engines_.size());
          for (size_t g = range.begin; g < range.end; ++g) {
            MultiGroupTrace::GroupSink sink(&trace, g);
            const Status status = engines_[g].CastVoteBlock(
                core::RoundBlock{tables[g].value_block(),
                                 tables[g].present_block(), module_count_},
                sink);
            if (!status.ok() && statuses[w].ok()) statuses[w] = status;
          }
        });
    for (const Status& status : statuses) {
      AVOC_RETURN_IF_ERROR(status);
    }
  }
  // The pool join above orders every worker's pending counts before this.
  FlushObservers();
  SyncHistory();
  return Status::Ok();
}

Result<MultiGroupTrace> MultiGroupEngine::RunBatch(
    std::span<const data::RoundTable> tables) {
  MultiGroupTrace trace;
  AVOC_RETURN_IF_ERROR(RunBatch(tables, trace));
  return trace;
}

Status MultiGroupEngine::RunBatchSequential(
    std::span<const data::RoundTable> tables, MultiGroupTrace& trace) {
  AVOC_RETURN_IF_ERROR(ValidateTables(tables));
  trace.Resize(tables, module_count_);
  for (size_t g = 0; g < engines_.size(); ++g) {
    MultiGroupTrace::GroupSink sink(&trace, g);
    AVOC_RETURN_IF_ERROR(core::RunOverTable(engines_[g], tables[g], sink));
  }
  FlushObservers();
  SyncHistory();
  return Status::Ok();
}

Result<MultiGroupTrace> MultiGroupEngine::RunBatchSequential(
    std::span<const data::RoundTable> tables) {
  MultiGroupTrace trace;
  AVOC_RETURN_IF_ERROR(RunBatchSequential(tables, trace));
  return trace;
}

std::span<const double> MultiGroupEngine::GroupHistory(size_t g) const {
  return std::span<const double>(history_block_)
      .subspan(g * module_count_, module_count_);
}

void MultiGroupEngine::SyncHistory() {
  for (size_t g = 0; g < engines_.size(); ++g) {
    const std::span<const double> records = engines_[g].history().records();
    std::copy(records.begin(), records.end(),
              history_block_.begin() +
                  static_cast<ptrdiff_t>(g * module_count_));
  }
}

Status MultiGroupEngine::RestoreAll(std::span<const double> block,
                                    size_t rounds) {
  if (block.size() != history_block_.size()) {
    return InvalidArgumentError(
        StrFormat("restore block has %zu records, deployment has %zu",
                  block.size(), history_block_.size()));
  }
  for (size_t g = 0; g < engines_.size(); ++g) {
    AVOC_RETURN_IF_ERROR(engines_[g].RestoreHistory(
        block.subspan(g * module_count_, module_count_), rounds));
  }
  SyncHistory();
  return Status::Ok();
}

Status MultiGroupEngine::PersistAllHistory(storage::HistoryBackend& backend,
                                           std::string_view key_prefix) {
  SyncHistory();
  for (size_t g = 0; g < engines_.size(); ++g) {
    storage::HistorySnapshot snapshot;
    const std::span<const double> records = GroupHistory(g);
    snapshot.records.assign(records.begin(), records.end());
    snapshot.rounds = engines_[g].history().round_count();
    AVOC_RETURN_IF_ERROR(
        backend.Put(StrFormat("%.*s%zu", static_cast<int>(key_prefix.size()),
                              key_prefix.data(), g),
                    snapshot));
  }
  return Status::Ok();
}

Status MultiGroupEngine::RestoreAllHistory(
    const storage::HistoryBackend& backend, std::string_view key_prefix) {
  for (size_t g = 0; g < engines_.size(); ++g) {
    auto snapshot =
        backend.Get(StrFormat("%.*s%zu", static_cast<int>(key_prefix.size()),
                              key_prefix.data(), g));
    if (!snapshot.ok()) {
      if (snapshot.status().code() == ErrorCode::kNotFound) continue;
      return snapshot.status();
    }
    if (snapshot->records.size() != module_count_) {
      return InvalidArgumentError(
          StrFormat("group %zu snapshot has %zu records, engine has %zu "
                    "modules",
                    g, snapshot->records.size(), module_count_));
    }
    AVOC_RETURN_IF_ERROR(
        engines_[g].RestoreHistory(snapshot->records, snapshot->rounds));
  }
  SyncHistory();
  return Status::Ok();
}

void MultiGroupEngine::FlushObservers() {
  for (const auto& observer : observers_) observer->Flush();
}

MultiGroupStats MultiGroupEngine::Stats() const {
  MultiGroupStats stats;
  // Shard metrics are shared by every group of the shard, so summing the
  // first observer of each distinct shard covers the deployment once.
  const size_t distinct =
      std::min(observers_.size(), std::max<size_t>(1, options_.metrics_shards));
  for (size_t s = 0; s < distinct; ++s) {
    const obs::MetricsObserver& shard = *observers_[s];
    stats.rounds += shard.rounds_total().Value();
    stats.voted += shard.voted_total().Value();
    stats.reverted += shard.reverted_total().Value();
    stats.no_output += shard.no_output_total().Value();
    stats.errors += shard.error_total().Value();
    stats.excluded_modules += shard.excluded_modules_total().Value();
    stats.eliminated_modules += shard.eliminated_modules_total().Value();
    stats.clustered_rounds += shard.clustered_rounds_total().Value();
    stats.history_collapse += shard.history_collapse_total().Value();
    stats.quorum_failures += shard.quorum_failures_total().Value();
    stats.majority_failures += shard.majority_failures_total().Value();
    stats.round_latency.Merge(shard.round_latency().Snapshot());
  }
  return stats;
}

void MultiGroupEngine::ResetAll() {
  for (core::VotingEngine& engine : engines_) {
    engine.Reset();
  }
  SyncHistory();
}

}  // namespace avoc::runtime
