#include "runtime/multi_group.h"

#include <algorithm>
#include <utility>

#include "util/strings.h"
#include "vdx/factory.h"

namespace avoc::runtime {

MultiGroupEngine::MultiGroupEngine(std::vector<core::VotingEngine> engines,
                                   size_t module_count,
                                   MultiGroupOptions options)
    : module_count_(module_count),
      options_(options),
      engines_(std::move(engines)),
      history_block_(engines_.size() * module_count, 1.0) {
  SyncHistory();
}

Result<MultiGroupEngine> MultiGroupEngine::Create(
    size_t group_count, size_t module_count, const core::EngineConfig& config,
    MultiGroupOptions options) {
  if (group_count == 0) {
    return InvalidArgumentError("multi-group engine needs at least one group");
  }
  // One prototype compiles the stage pipeline; the copies share it.
  AVOC_ASSIGN_OR_RETURN(core::VotingEngine prototype,
                        core::VotingEngine::Create(module_count, config));
  std::vector<core::VotingEngine> engines(group_count, prototype);
  return MultiGroupEngine(std::move(engines), module_count, options);
}

Result<MultiGroupEngine> MultiGroupEngine::FromSpec(const vdx::Spec& spec,
                                                    size_t group_count,
                                                    size_t module_count,
                                                    MultiGroupOptions options) {
  if (group_count == 0) {
    return InvalidArgumentError("multi-group engine needs at least one group");
  }
  AVOC_ASSIGN_OR_RETURN(core::VotingEngine prototype,
                        vdx::MakeVoter(spec, module_count));
  std::vector<core::VotingEngine> engines(group_count, prototype);
  return MultiGroupEngine(std::move(engines), module_count, options);
}

Status MultiGroupEngine::ValidateTables(
    std::span<const data::RoundTable> tables) const {
  if (tables.size() != engines_.size()) {
    return InvalidArgumentError(
        StrFormat("%zu tables for %zu groups", tables.size(), engines_.size()));
  }
  for (size_t g = 0; g < tables.size(); ++g) {
    if (tables[g].module_count() != module_count_) {
      return InvalidArgumentError(
          StrFormat("table %zu has %zu modules, groups have %zu", g,
                    tables[g].module_count(), module_count_));
    }
  }
  return Status::Ok();
}

Result<std::vector<core::BatchResult>> MultiGroupEngine::RunBatch(
    std::span<const data::RoundTable> tables) {
  AVOC_RETURN_IF_ERROR(ValidateTables(tables));
  if (pool_ == nullptr) {
    pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  }
  // Every worker writes only its own group's slots — no shared state.
  std::vector<core::BatchResult> results(engines_.size());
  std::vector<Status> statuses(engines_.size());
  pool_->ParallelFor(engines_.size(), [this, tables, &results,
                                       &statuses](size_t g) {
    Result<core::BatchResult> result = core::RunOverTable(engines_[g],
                                                          tables[g]);
    if (result.ok()) {
      results[g] = std::move(result).value();
    } else {
      statuses[g] = result.status();
    }
  });
  for (const Status& status : statuses) {
    AVOC_RETURN_IF_ERROR(status);
  }
  SyncHistory();
  return results;
}

Result<std::vector<core::BatchResult>> MultiGroupEngine::RunBatchSequential(
    std::span<const data::RoundTable> tables) {
  AVOC_RETURN_IF_ERROR(ValidateTables(tables));
  std::vector<core::BatchResult> results;
  results.reserve(engines_.size());
  for (size_t g = 0; g < engines_.size(); ++g) {
    AVOC_ASSIGN_OR_RETURN(core::BatchResult result,
                          core::RunOverTable(engines_[g], tables[g]));
    results.push_back(std::move(result));
  }
  SyncHistory();
  return results;
}

std::span<const double> MultiGroupEngine::GroupHistory(size_t g) const {
  return std::span<const double>(history_block_)
      .subspan(g * module_count_, module_count_);
}

void MultiGroupEngine::SyncHistory() {
  for (size_t g = 0; g < engines_.size(); ++g) {
    const std::span<const double> records = engines_[g].history().records();
    std::copy(records.begin(), records.end(),
              history_block_.begin() +
                  static_cast<ptrdiff_t>(g * module_count_));
  }
}

Status MultiGroupEngine::RestoreAll(std::span<const double> block,
                                    size_t rounds) {
  if (block.size() != history_block_.size()) {
    return InvalidArgumentError(
        StrFormat("restore block has %zu records, deployment has %zu",
                  block.size(), history_block_.size()));
  }
  for (size_t g = 0; g < engines_.size(); ++g) {
    AVOC_RETURN_IF_ERROR(engines_[g].RestoreHistory(
        block.subspan(g * module_count_, module_count_), rounds));
  }
  SyncHistory();
  return Status::Ok();
}

void MultiGroupEngine::ResetAll() {
  for (core::VotingEngine& engine : engines_) {
    engine.Reset();
  }
  SyncHistory();
}

}  // namespace avoc::runtime
