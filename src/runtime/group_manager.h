// Multi-group voter management.
//
// Real deployments fuse several logical sensors at once — UC-2 alone runs
// two beacon stacks, and the paper's smart-shopping motivation has one
// voter group per shelf.  VoterGroupManager owns one externally-fed
// GroupRunner per named group, routes submitted readings to the right
// hub, and closes rounds per group or across all groups.  Groups can be
// instantiated directly from VDX specs, which is the paper's "voter
// service running on an edge node" picture: applications ship definitions,
// the service manages the voters.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "runtime/group_runner.h"
#include "vdx/spec.h"

namespace avoc::runtime {

class VoterGroupManager {
 public:
  /// `store` (optional) persists every group's history under its name;
  /// `registry` (optional) instruments every group with group-labeled
  /// metrics; `trace_store` (optional) persists every group's vote trace
  /// (the QUERY_RANGE feed); `tracer` (optional) records engine-stage
  /// spans into the flight recorder (obs/trace.h).  All must outlive the
  /// manager.
  explicit VoterGroupManager(storage::HistoryBackend* store = nullptr,
                             obs::Registry* registry = nullptr,
                             storage::TraceBackend* trace_store = nullptr,
                             obs::Tracer* tracer = nullptr);

  /// Registers a group with a ready engine.  Fails on duplicate names.
  Status AddGroup(const std::string& name, core::VotingEngine engine);

  /// Registers a group from a VDX definition.
  Status AddGroupFromSpec(const std::string& name, const vdx::Spec& spec,
                          size_t modules);

  bool HasGroup(const std::string& name) const;
  std::vector<std::string> GroupNames() const;
  size_t group_count() const { return groups_.size(); }

  /// Unregisters a group (the migration handoff's source side).  Purely
  /// in-memory: persisted history/trace rows stay put — each node owns
  /// its own backends, and the exported state already carries the data.
  /// NotFound when absent.
  Status RemoveGroup(const std::string& name);

  /// Full pipeline state of one group (see GroupRunner::State).
  Result<GroupRunner::State> ExportGroupState(const std::string& name) const;

  /// Installs migrated state into a freshly added group.
  Status RestoreGroupState(const std::string& name,
                           const GroupRunner::State& state);

  /// Routes one reading into the group's hub.  The round closes on its
  /// own once every module reported.
  Status Submit(const std::string& group, size_t module, size_t round,
                double value);

  /// Routes a whole frame of readings into the group's hub under one
  /// lock; completed rounds are voted in one columnar engine call.
  Result<BatchIngestStats> SubmitBatch(
      const std::string& group, std::span<const ReadingMessage> readings);

  /// Force-closes `round` in one group (absent modules become missing).
  Status CloseRound(const std::string& group, size_t round);

  /// Force-closes `round` in every group.
  void CloseRoundAll(size_t round);

  /// The group's output sink.
  Result<const SinkNode*> sink(const std::string& group) const;

  /// The group's voter (history inspection).
  Result<const VoterNode*> voter(const std::string& group) const;

  /// The whole runner (health/metrics introspection).
  Result<const GroupRunner*> runner(const std::string& group) const;

  /// The telemetry registry, or nullptr when metrics are disabled.
  obs::Registry* registry() const { return registry_; }

  /// The trace backend, or nullptr when traces are not persisted.
  storage::TraceBackend* trace_store() const { return trace_store_; }

  /// The flight-recorder tracer, or nullptr when tracing is disabled.
  obs::Tracer* tracer() const { return tracer_; }

 private:
  Result<GroupRunner*> Find(const std::string& name) const;

  storage::HistoryBackend* store_;
  obs::Registry* registry_;
  storage::TraceBackend* trace_store_;
  obs::Tracer* tracer_;
  std::map<std::string, std::unique_ptr<GroupRunner>> groups_;
};

}  // namespace avoc::runtime
