// GroupRunner: the one driver behind every execution mode.
//
// Exactly one sensor→hub→voter→sink chain per voter group used to be
// wired by hand in three places (the replay Pipeline, the threaded
// VoterService, the multi-group manager).  GroupRunner owns that wiring
// once and exposes the three ways a round can be dispatched:
//
//   * RunRound    — synchronous emit-then-close (deterministic replay),
//   * EmitAsync + FlushRound — per-sensor worker threads with a
//     caller-controlled timeout (soft real-time service),
//   * Submit + FlushRound    — externally-fed readings (group manager,
//     TCP voter service).
//
// The drivers above are thin adapters over these calls; a new execution
// mode (sharded batch, remote shard, ...) starts here instead of
// re-wiring nodes.
#pragma once

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "data/round_table.h"
#include "obs/stage_metrics.h"
#include "obs/trace.h"
#include "runtime/nodes.h"
#include "util/status.h"

namespace avoc::runtime {

/// GroupRunnerOptions configuration.
struct GroupRunnerOptions {
  /// Group name: store key and log tag.
  std::string group = "default";
  /// Persist/restore voter history through this backend (optional).
  storage::HistoryBackend* store = nullptr;
  /// Persist every sink row as a trace point under `group` (optional);
  /// the durable feed behind QUERY_RANGE.
  storage::TraceBackend* trace_store = nullptr;
  /// Hub UNTIL-quorum: close a round once this many readings arrived
  /// (0 = close when every module reported or the round is flushed).
  size_t hub_close_at_count = 0;
  /// Telemetry registry (optional).  When set, the runner attaches an
  /// obs::MetricsObserver to the voter and instruments the hub and sink;
  /// all metrics are labeled group="<group>".  The registry must outlive
  /// the runner.
  obs::Registry* registry = nullptr;
  /// Stage/round latency sampling period for the metrics observer.
  size_t metrics_sample_every = 16;
  /// Exclusion-streak alert threshold (0 = off); see MetricsObserverOptions.
  size_t exclusion_streak_alert = 0;
  /// Flight-recorder tracer (optional).  SubmitBatch wraps its columnar
  /// engine pass in an "engine.batch" span parented to the caller's
  /// current span, and sampled rounds emit per-stage events.
  obs::Tracer* tracer = nullptr;
};

class GroupRunner {
 public:
  using Options = GroupRunnerOptions;

  /// Externally-fed group: no sensor nodes, readings arrive via Submit.
  static Result<std::unique_ptr<GroupRunner>> Create(
      core::VotingEngine engine, Options options = {});

  /// Sensor-driven group: one SensorNode per generator (one per module).
  static Result<std::unique_ptr<GroupRunner>> WithGenerators(
      std::vector<SensorNode::Generator> generators,
      core::VotingEngine engine, Options options = {});

  /// Replays a recorded table; rounds beyond the table produce only
  /// missing values.
  static Result<std::unique_ptr<GroupRunner>> FromTable(
      const data::RoundTable& table, core::VotingEngine engine,
      Options options = {});

  GroupRunner(const GroupRunner&) = delete;
  GroupRunner& operator=(const GroupRunner&) = delete;

  // --- Round dispatch -------------------------------------------------------

  /// Synchronous round: every sensor emits in registration order, then the
  /// round closes (silent sensors become missing values).
  void RunRound(size_t round);

  /// Concurrent round: every sensor emits from its own short-lived worker
  /// so a slow sensor cannot stall the others.  The caller closes the
  /// round (FlushRound) at its timeout, then joins the returned workers;
  /// a publish that loses the race is dropped against the closed round.
  std::vector<std::thread> EmitAsync(size_t round);

  /// Routes one external reading into the hub.  The round closes on its
  /// own once every module (or the UNTIL count) reported.
  Status Submit(size_t module, size_t round, double value);

  /// Routes many readings into the hub under one lock; every round the
  /// batch completes is voted in ONE columnar engine call (the framed
  /// remote path).  Bad readings are counted in the stats, not fatal.
  BatchIngestStats SubmitBatch(std::span<const ReadingMessage> readings);

  /// Force-closes `round`: whatever has not arrived is missing.  No-op
  /// when the round was already closed.
  void FlushRound(size_t round);

  // --- Migration ------------------------------------------------------------

  /// The whole mutable pipeline state, for handing this group to another
  /// node: engine accumulators, hub assembly state, and the sink trace.
  /// A restored runner votes bit-identically to the exporter.
  struct State {
    core::VotingEngine::State engine;
    HubNode::State hub;
    std::vector<OutputMessage> outputs;
  };
  State ExportState() const;
  Status RestoreState(const State& state);

  // --- Introspection --------------------------------------------------------

  const std::string& group() const { return options_.group; }
  size_t module_count() const { return hub_->module_count(); }
  size_t sensor_count() const { return sensors_.size(); }
  const SinkNode& sink() const { return *sink_; }
  const VoterNode& voter() const { return *voter_; }
  const HubNode& hub() const { return *hub_; }
  /// The attached metrics observer; nullptr without a registry.
  const obs::MetricsObserver* metrics() const { return observer_.get(); }

 private:
  GroupRunner(std::vector<SensorNode::Generator> generators,
              core::VotingEngine engine, Options options);

  Options options_;
  /// Watches the voter engine; must outlive voter_ (declared first so it
  /// destructs last).  Null without a registry.
  std::unique_ptr<obs::MetricsObserver> observer_;
  // Channels must outlive the nodes; heap allocation keeps addresses
  // stable for the node back-references.
  std::unique_ptr<GroupChannels> channels_;
  std::vector<std::unique_ptr<SensorNode>> sensors_;
  std::unique_ptr<HubNode> hub_;
  std::unique_ptr<VoterNode> voter_;
  std::unique_ptr<SinkNode> sink_;
};

}  // namespace avoc::runtime
