// Stable group -> shard placement for the sharded remote runtime.
//
// Both the sharded voter server (runtime/sharded_remote.h) and the
// multi-group batch engine (runtime/multi_group.h) partition independent
// voter groups across workers.  They must agree on the assignment — and
// the assignment must never drift between releases, or a restarted
// deployment would silently re-home groups (invalidating sticky client
// connections and per-shard dedup state).  GroupRouter is that single
// frozen contract:
//
//   * Named groups hash with splitmix64 over the group id bytes; the
//     shard is the hash reduced by Lemire's multiply-shift.  The golden
//     test (tests/runtime_group_router_test.cpp) pins concrete
//     assignments so any change to the mix is a loud test failure, not a
//     silent rebalance.
//   * Index-addressed groups (the multi-group engine's dense 0..N-1 id
//     space) partition into contiguous ranges, one per shard: contiguous
//     blocks keep each worker's slice of the group-major history block
//     adjacent in memory, so workers never interleave writes within a
//     cache line (the false-sharing fix).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace avoc::runtime {

/// Stable 64-bit hash of a group id (splitmix64 finalizer over a
/// byte-mixing loop).  Frozen: see the golden test before touching.
uint64_t GroupIdHash(std::string_view group);

/// Contiguous index range [begin, end) of one shard's groups.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

class GroupRouter {
 public:
  /// A router over `shard_count` shards (clamped to at least 1).
  explicit GroupRouter(size_t shard_count)
      : shard_count_(shard_count == 0 ? 1 : shard_count) {}

  size_t shard_count() const { return shard_count_; }

  /// The shard owning a named group.  Uniform via multiply-shift
  /// reduction; stable for all time for a given (group, shard_count).
  size_t ShardFor(std::string_view group) const;

  /// The shard owning dense group index `g` of `group_count` groups:
  /// contiguous ranges, remainder spread over the leading shards.
  size_t ShardForIndex(size_t g, size_t group_count) const;

  /// Shard `shard`'s contiguous range of `group_count` dense indices.
  /// Ranges tile [0, group_count) exactly; trailing shards may be empty
  /// when there are fewer groups than shards.
  ShardRange RangeFor(size_t shard, size_t group_count) const;

 private:
  size_t shard_count_;
};

}  // namespace avoc::runtime
