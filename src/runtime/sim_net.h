// Deterministic simulation harness for the remote runtime.
//
// The real RemoteVoterServer connection state machines, FrameDecoder, and
// timer wheel are exercised here over an *in-memory* network driven by a
// seeded virtual clock — FoundationDB-style deterministic simulation
// testing.  One uint64_t seed fully determines the run: every latency
// draw, fault trigger, and callback dispatch order replays bit-identically
// (`SimWorld::trace()` is the proof artifact tests compare).
//
// Pieces:
//
//   FaultPlan    scripted faults for a run: segment fragmentation, seeded
//                delivery delays, connection resets, half-open links
//                (one direction blackholed), full partitions, plus opt-in
//                stream-corrupting chaos (duplicate/reorder/corrupt) for
//                decoder-robustness tests.
//   SimWorld     owns the virtual clock, the network state, the trace,
//                and a SimReactor; implements Clock so retry/backoff code
//                sleeps in virtual time.
//   SimTransport Transport over an in-memory duplex pipe.  The blocking
//                half pumps the world forward until satisfied or a
//                virtual deadline passes, so single-threaded tests can
//                use the production blocking client verbatim.
//   SimListener  Listener over a simulated port.
//   SimReactor   Reactor over SimWorld readiness + the real TimerWheel on
//                the virtual clock.  RemoteVoterServer runs on it via
//                StartOnReactor(..., spawn_loop_thread=false) — fully
//                cooperative, no threads anywhere in a simulated run.
//
// Fault-model honesty: by default delivery is FIFO per direction and
// bytes are never duplicated or corrupted — exactly TCP's contract — so
// convergence tests ("sink equals the fault-free trace once the network
// heals") are sound.  duplicate/reorder/corrupt knobs break the stream
// abstraction on purpose and are only for decoder robustness tests, where
// the assertion is "decode or poison, never hang or crash".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/event_loop.h"
#include "runtime/transport.h"
#include "util/rng.h"
#include "util/status.h"

namespace avoc::runtime {

/// Half-open interval [start_ms, end_ms) of virtual time.
struct FaultWindow {
  uint64_t start_ms = 0;
  uint64_t end_ms = 0;

  bool Contains(uint64_t t) const { return t >= start_ms && t < end_ms; }
};

/// Scripted faults for one simulated run.  Everything is interpreted
/// against the virtual clock; random draws come from the world's seeded
/// Rng, so the same (seed, plan) pair replays identically.
struct FaultPlan {
  // --- TCP-faithful stream shaping ------------------------------------------
  /// Split every write into segments of at most this many bytes
  /// (0 = unlimited).  Models short send()s and slow-loris delivery.
  size_t max_segment_bytes = 0;
  /// Cap one ReadSome/ReceiveSome at this many bytes (0 = unlimited).
  size_t max_read_bytes = 0;
  /// Per-segment delivery latency drawn uniformly from [min, max].
  uint64_t min_delay_ms = 0;
  uint64_t max_delay_ms = 0;

  // --- connection-level faults ----------------------------------------------
  /// At each listed time, every live connection is reset (RST): buffered
  /// and in-flight bytes are discarded, both endpoints see errors.
  std::vector<uint64_t> reset_at_ms;
  /// While active: new connects fail and *all* delivery stalls (segments
  /// queue and flush after the window ends, like TCP retransmission).
  std::vector<FaultWindow> partitions;
  /// While active: bytes written client->server silently vanish.
  std::vector<FaultWindow> blackhole_c2s;
  /// While active: bytes written server->client silently vanish.
  std::vector<FaultWindow> blackhole_s2c;

  // --- stream-corrupting chaos (decoder tests ONLY) -------------------------
  /// Probability a segment is enqueued twice.  Breaks the TCP contract.
  double duplicate_segment_p = 0.0;
  /// Probability a segment skips the FIFO clamp (may overtake).
  double reorder_segment_p = 0.0;
  /// Probability one byte of a segment is flipped.
  double corrupt_byte_p = 0.0;

  /// True when any knob that violates the TCP byte-stream contract is on.
  bool CorruptsStream() const {
    return duplicate_segment_p > 0 || reorder_segment_p > 0 ||
           corrupt_byte_p > 0;
  }

  /// Virtual time after which no scripted fault is active (resets fired,
  /// windows closed).  Latency/fragmentation shaping continues forever —
  /// it never violates the stream contract.
  uint64_t HealedAfterMs() const;

  /// Heal-eventually chaos schedule derived from a seed: fragmentation,
  /// delays, and 0-3 each of resets / partitions / half-open windows, all
  /// strictly inside [0, horizon_ms).  Never corrupts the stream.
  static FaultPlan Chaos(uint64_t seed, uint64_t horizon_ms);

  /// Delays + fragmentation only; no resets, no windows.  Safe for the
  /// legacy line protocol (which has no retry story).
  static FaultPlan Gentle(uint64_t seed);
};

class SimReactor;

/// The simulated world: virtual clock, in-memory network, fault engine,
/// deterministic event trace.  Single-threaded and cooperative — nothing
/// here is thread-safe, by design.
class SimWorld : public Clock {
 public:
  struct Options {
    FaultPlan fault_plan;
    /// Outbound buffer per direction; writes WouldBlock beyond this.
    size_t pipe_capacity_bytes = 256 * 1024;
    /// Latency before a Connect() shows up at the listener.
    uint64_t connect_delay_ms = 1;
    /// Hard ceiling a blocking op may pump the clock forward, so a
    /// blackholed request deterministically times out instead of hanging.
    uint64_t max_block_ms = 10 * 60 * 1000;
    /// Record the event trace (determinism assertions diff it).
    bool record_trace = true;
  };

  explicit SimWorld(uint64_t seed);
  SimWorld(uint64_t seed, Options options);
  ~SimWorld() override;

  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  // --- Clock ----------------------------------------------------------------
  uint64_t NowMs() override { return now_ms_; }
  /// Advances the world `ms` of virtual time (pumping deliveries, faults,
  /// and reactor callbacks along the way).
  void SleepMs(uint64_t ms) override;

  // --- network factory ------------------------------------------------------
  /// Opens a simulated listening port.
  Result<std::unique_ptr<Listener>> Listen(uint16_t port);
  /// Connects to a listening port.  Fails during a partition or when the
  /// port is not listening.  The connection becomes acceptable after
  /// connect_delay_ms.
  Result<std::unique_ptr<Transport>> Connect(uint16_t port);

  // --- simulation driving ---------------------------------------------------
  /// Delivers due segments, applies due scripted faults, and dispatches
  /// reactor callbacks/timers at the current instant (to fixpoint).
  void Pump();
  /// Advances virtual time by `ms`, event by event.
  void RunFor(uint64_t ms);
  /// Pumps until `pred()` holds or the virtual deadline passes; returns
  /// the predicate's final value.
  bool RunUntil(const std::function<bool()>& pred, uint64_t deadline_ms);

  /// Resets every live connection now (unscripted fault injection).
  void ResetAllConnections();

  /// The reactor a simulated server runs on.
  std::shared_ptr<SimReactor> reactor() { return reactor_; }

  /// An additional reactor — one per simulated shard.  Pump() dispatches
  /// every reactor in creation order to fixpoint, so a multi-shard
  /// server (runtime/sharded_remote.h) runs deterministically on one
  /// thread: cross-shard mailbox posts land in the target reactor's
  /// queue and execute on the next dispatch pass, FIFO per sender.
  std::shared_ptr<SimReactor> NewReactor();

  /// reactor() plus every NewReactor(), in creation order.
  const std::vector<std::shared_ptr<SimReactor>>& reactors() const {
    return reactors_;
  }

  uint64_t seed() const { return seed_; }
  const Options& options() const { return options_; }
  const std::vector<std::string>& trace() const { return trace_; }
  /// The full trace joined by newlines (for one-shot equality asserts).
  std::string TraceText() const;

 private:
  friend class SimTransport;
  friend class SimListener;
  friend class SimReactor;

  struct Segment {
    uint64_t deliver_at = 0;
    uint64_t seq = 0;  ///< tie-break for equal deliver_at
    std::string bytes;
  };

  /// One direction of a connection.
  struct Pipe {
    std::deque<Segment> in_flight;  // sorted by (deliver_at, seq)
    std::string delivered;          // readable now
    uint64_t fifo_floor = 0;        // monotonic clamp for FIFO delivery
    size_t bytes_in_flight = 0;
    bool src_closed = false;
  };

  struct Conn {
    int id = 0;
    int client_handle = 0;
    int server_handle = 0;
    Pipe c2s;
    Pipe s2c;
    bool reset = false;
    bool client_closed = false;
    bool server_closed = false;
  };

  struct PendingAccept {
    uint64_t ready_at = 0;
    int conn_id = 0;
  };

  struct Port {
    uint16_t port = 0;
    int handle = 0;
    bool closed = false;
    std::deque<PendingAccept> pending;
  };

  struct Endpoint {
    int conn_id = 0;
    bool is_client = false;
  };

  void Trace(std::string line);
  bool PartitionActiveAt(uint64_t t) const;
  bool BlackholeActiveAt(uint64_t t, bool c2s) const;

  Conn* FindConn(int conn_id);
  /// Readiness bits (kIoRead/kIoWrite/kIoError) for a watched handle.
  uint32_t Readiness(int handle);

  // Transport backend (called by SimTransport through the endpoint map).
  IoOp EndpointRead(int handle, char* buffer, size_t len);
  IoOp EndpointWrite(int handle, const char* data, size_t len);
  void EndpointClose(int handle);
  /// Enqueues `data` onto `pipe`, applying segmentation + fault draws.
  void EnqueueBytes(Conn& conn, bool c2s, std::string_view data);

  // Listener backend.
  Result<std::unique_ptr<Transport>> AcceptOn(int listener_handle);
  void CloseListener(int listener_handle);

  /// Applies scripted resets due at or before now.
  void ApplyScriptedFaults();
  /// Moves due segments from in_flight to delivered.
  void DeliverDue();
  /// Earliest future instant at which anything changes (UINT64_MAX when
  /// fully quiescent).
  uint64_t NextEventAtMs() const;
  void AdvanceTo(uint64_t t);
  void ResetConn(Conn& conn, std::string_view why);

  uint64_t seed_;
  Options options_;
  Rng rng_;
  uint64_t now_ms_ = 0;
  int next_handle_ = 1;
  int next_conn_id_ = 1;
  uint64_t next_segment_seq_ = 1;
  size_t scripted_resets_applied_ = 0;
  std::map<int, Conn> conns_;          // by conn id
  std::map<int, Endpoint> endpoints_;  // by transport handle
  std::map<int, Port> ports_;          // by listener handle
  std::map<uint16_t, int> listening_;  // port number -> listener handle
  std::vector<std::string> trace_;
  std::shared_ptr<SimReactor> reactor_;  ///< == reactors_[0]
  std::vector<std::shared_ptr<SimReactor>> reactors_;
};

/// Reactor over SimWorld readiness and the real TimerWheel running on the
/// virtual clock.  Dispatch order is deterministic: posted tasks in order,
/// then watched handles in ascending handle order, repeated to fixpoint.
class SimReactor : public Reactor {
 public:
  explicit SimReactor(SimWorld* world);

  Status Watch(int handle, uint32_t interest, IoCallback callback) override;
  Status SetInterest(int handle, uint32_t interest) override;
  Status Unwatch(int handle) override;

  uint64_t ScheduleTimer(uint64_t delay_ms, std::function<void()> fn) override;
  bool CancelTimer(uint64_t id) override;

  void Post(std::function<void()> fn) override;

  /// Pumps the world until Stop() (bounded by max_block_ms of virtual
  /// time).  Simulated servers normally run cooperatively instead, via
  /// SimWorld::Pump/RunUntil — Run() exists to satisfy the interface.
  void Run() override;
  void Stop() override { stop_ = true; }
  bool stopped() const override { return stop_; }

  uint64_t now_ms() const override;

 private:
  friend class SimWorld;

  /// Runs posted tasks + ready watched handles to fixpoint at `now`;
  /// true when any callback ran.
  bool Dispatch();
  void AdvanceTimers();
  /// Absolute virtual time of the next pending timer (UINT64_MAX: none).
  uint64_t NextTimerAtMs() const;

  struct Watched {
    uint64_t generation = 0;
    uint32_t interest = 0;
    std::shared_ptr<IoCallback> callback;
  };

  SimWorld* world_;
  bool stop_ = false;
  uint64_t next_generation_ = 1;
  std::map<int, Watched> watched_;
  /// 1 ms ticks: virtual time is free, so take full precision.
  TimerWheel timers_{/*tick_ms=*/1, /*slots=*/256};
  std::vector<std::function<void()>> posted_;
};

/// Transport endpoint over a SimWorld pipe.  Blocking operations advance
/// the virtual clock (pumping the world) until satisfied, EOF, error, or
/// the receive timeout / max_block_ms deadline.
class SimTransport : public Transport {
 public:
  SimTransport(SimWorld* world, int handle);
  ~SimTransport() override;

  bool valid() const override { return world_ != nullptr; }
  int handle() const override { return handle_; }

  IoOp ReadSome(char* buffer, size_t len) override;
  IoOp WriteSome(const char* data, size_t len) override;

  Status SendAll(std::string_view data) override;
  Result<std::string> ReceiveLine() override;
  Result<size_t> ReceiveSome(char* buffer, size_t len) override;
  Status SetReceiveTimeoutMs(int timeout_ms) override;

  Status SetNonBlocking(bool enabled) override;
  Status SetSendBufferBytes(int bytes) override;
  void Close() override;

 private:
  /// Blocks (in virtual time) until the endpoint is readable/errored.
  Status AwaitReadable();

  SimWorld* world_ = nullptr;
  int handle_ = -1;
  int receive_timeout_ms_ = 0;
  std::string line_buffer_;
};

/// Listener over a SimWorld port.
class SimListener : public Listener {
 public:
  SimListener(SimWorld* world, int handle, uint16_t port);
  ~SimListener() override;

  uint16_t port() const override { return port_; }
  int handle() const override { return handle_; }
  Result<std::unique_ptr<Transport>> TryAcceptTransport() override;
  void Close() override;

 private:
  SimWorld* world_ = nullptr;
  int handle_ = -1;
  uint16_t port_ = 0;
};

}  // namespace avoc::runtime
