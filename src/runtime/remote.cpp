#include "runtime/remote.h"

#include <algorithm>
#include <chrono>

#include "util/log.h"
#include "util/strings.h"

namespace avoc::runtime {
namespace {

/// Read chunk size per recv call on the loop thread.
constexpr size_t kReadChunk = 16 * 1024;

/// Per-wakeup read budget so one firehose connection cannot starve the
/// rest of the loop (level-triggered epoll re-arms what remains).
constexpr size_t kReadBudget = 256 * 1024;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The span parent encoded in a request's trailing trace-context field;
/// an absent field yields an invalid context, which roots a new local
/// trace (the flight recorder is always on, traced client or not).
obs::SpanContext ParentOf(const WireTraceContext& trace) {
  obs::SpanContext parent;
  parent.trace_id = trace.trace_id;
  parent.span_id = trace.parent_span_id;
  parent.flags = trace.flags;
  return parent;
}

/// Per-verb accounting for the broken-out QUERY_RANGE / HISTORY_GET
/// families: counts on entry, records wall latency on scope exit.
class VerbTimer {
 public:
  VerbTimer(obs::Counter* requests, obs::LatencyHistogram* latency)
      : latency_(latency), begin_(latency != nullptr ? NowNanos() : 0) {
    if (requests != nullptr) requests->Increment();
  }
  ~VerbTimer() {
    if (latency_ != nullptr) latency_->Record(NowNanos() - begin_);
  }
  VerbTimer(const VerbTimer&) = delete;
  VerbTimer& operator=(const VerbTimer&) = delete;

 private:
  obs::LatencyHistogram* latency_;
  uint64_t begin_;
};

/// The target group of a frame, or "" for group-less verbs (and for
/// malformed payloads, which then fail decoding on the local shard).
/// Group-addressed payloads lead with the group id (or client id + seq
/// for SUBMIT_BATCH_SEQ) precisely so routing never decodes readings.
std::string PeekFrameGroup(const Frame& frame) {
  PayloadReader reader(frame.payload);
  switch (frame.type) {
    case FrameType::kSubmitBatch:
    case FrameType::kClose:
    case FrameType::kQuery:
    case FrameType::kQueryRange:
    case FrameType::kHistoryGet: {
      auto group = reader.ReadString();
      return group.ok() ? std::string(*group) : std::string();
    }
    case FrameType::kSubmitBatchSeq: {
      if (!reader.ReadString().ok()) return {};  // client id
      if (!reader.ReadVarint().ok()) return {};  // sequence number
      auto group = reader.ReadString();
      return group.ok() ? std::string(*group) : std::string();
    }
    default:
      return {};
  }
}

/// The (verb, group) of a legacy line; group is "" for group-less verbs.
std::pair<std::string, std::string> PeekLegacyLine(const std::string& line) {
  std::vector<std::string> tokens;
  for (const std::string& token : SplitString(TrimWhitespace(line), ' ')) {
    if (!token.empty()) tokens.push_back(token);
    if (tokens.size() == 2) break;
  }
  if (tokens.empty()) return {};
  const std::string& verb = tokens[0];
  if (tokens.size() == 2 &&
      (verb == "SUBMIT" || verb == "CLOSE" || verb == "QUERY")) {
    return {verb, tokens[1]};
  }
  return {verb, std::string()};
}

}  // namespace

RemoteVoterServer::RemoteVoterServer(VoterGroupManager* manager,
                                     Options options,
                                     std::unique_ptr<Listener> listener,
                                     std::shared_ptr<Reactor> loop)
    : manager_(manager),
      options_(options),
      listener_(std::move(listener)),
      loop_(std::move(loop)) {
  if (obs::Registry* registry = manager_->registry()) {
    // Shard servers publish the same families under a shard label, and
    // cluster nodes under a node label (both when a server is a shard of
    // a clustered node); the scrape side sums/merges families across
    // scopes for the deployment view (docs/OBSERVABILITY.md).
    const auto name = [this](const char* family) {
      const bool sharded = !options_.metrics_scope.empty();
      const bool noded = !options_.node_id.empty();
      if (sharded && noded) {
        return obs::LabeledName(family, "node", options_.node_id, "shard",
                                options_.metrics_scope);
      }
      if (sharded) {
        return obs::LabeledName(family, "shard", options_.metrics_scope);
      }
      if (noded) return obs::LabeledName(family, "node", options_.node_id);
      return std::string(family);
    };
    connections_gauge_ = &registry->GetGauge(name("avoc_remote_connections"));
    frames_in_ = &registry->GetCounter(name("avoc_remote_frames_in_total"));
    frames_out_ = &registry->GetCounter(name("avoc_remote_frames_out_total"));
    bytes_in_ = &registry->GetCounter(name("avoc_remote_bytes_in_total"));
    bytes_out_ = &registry->GetCounter(name("avoc_remote_bytes_out_total"));
    backpressure_counter_ =
        &registry->GetCounter(name("avoc_remote_backpressure_total"));
    dedup_replays_ =
        &registry->GetCounter(name("avoc_remote_dedup_replays_total"));
    dedup_clients_ = &registry->GetGauge(name("avoc_remote_dedup_clients"));
    request_latency_ =
        &registry->GetHistogram(name("avoc_remote_request_latency_ns"));
    query_range_requests_ =
        &registry->GetCounter(name("avoc_remote_query_range_requests_total"));
    history_get_requests_ =
        &registry->GetCounter(name("avoc_remote_history_get_requests_total"));
    query_range_latency_ =
        &registry->GetHistogram(name("avoc_remote_query_range_latency_ns"));
    history_get_latency_ =
        &registry->GetHistogram(name("avoc_remote_history_get_latency_ns"));
    if (!options_.metrics_scope.empty()) {
      forwarded_counter_ =
          &registry->GetCounter(name("avoc_shard_forwarded_total"));
      migrations_counter_ =
          &registry->GetCounter(name("avoc_shard_migrations_total"));
      adopted_counter_ =
          &registry->GetCounter(name("avoc_shard_adopted_total"));
      owned_groups_gauge_ = &registry->GetGauge(name("avoc_shard_groups"));
    }
    if (!options_.node_id.empty()) {
      group_migrations_out_counter_ =
          &registry->GetCounter(name("avoc_cluster_migrations_out_total"));
      group_migrations_in_counter_ =
          &registry->GetCounter(name("avoc_cluster_migrations_in_total"));
      moved_redirects_counter_ =
          &registry->GetCounter(name("avoc_cluster_moved_total"));
      replicated_applies_counter_ =
          &registry->GetCounter(name("avoc_cluster_replicated_total"));
    }
  }
  tracer_ =
      options_.tracer != nullptr ? options_.tracer : manager_->tracer();
  if (!options_.node_id.empty()) {
    node_suffix_ = " node=" + options_.node_id;
  }
}

Result<std::unique_ptr<RemoteVoterServer>> RemoteVoterServer::Start(
    VoterGroupManager* manager, uint16_t port) {
  Options options;
  options.port = port;
  return StartWithOptions(manager, options);
}

Result<std::unique_ptr<RemoteVoterServer>> RemoteVoterServer::StartWithOptions(
    VoterGroupManager* manager, Options options) {
  AVOC_ASSIGN_OR_RETURN(TcpListener listener,
                        TcpListener::Listen(options.port));
  AVOC_RETURN_IF_ERROR(listener.SetNonBlocking(true));
  AVOC_ASSIGN_OR_RETURN(std::unique_ptr<EventLoop> loop, EventLoop::Create());
  return StartOnReactor(manager, options,
                        std::make_unique<TcpListener>(std::move(listener)),
                        std::shared_ptr<Reactor>(std::move(loop)),
                        /*spawn_loop_thread=*/true);
}

Result<std::unique_ptr<RemoteVoterServer>> RemoteVoterServer::StartOnReactor(
    VoterGroupManager* manager, Options options,
    std::unique_ptr<Listener> listener, std::shared_ptr<Reactor> reactor,
    bool spawn_loop_thread) {
  if (manager == nullptr) {
    return InvalidArgumentError("server needs a group manager");
  }
  if (listener == nullptr || reactor == nullptr) {
    return InvalidArgumentError("server needs a listener and a reactor");
  }
  std::unique_ptr<RemoteVoterServer> server(new RemoteVoterServer(
      manager, options, std::move(listener), std::move(reactor)));
  RemoteVoterServer* raw = server.get();
  AVOC_RETURN_IF_ERROR(raw->loop_->Watch(
      raw->listener_->handle(), kIoRead,
      [raw](uint32_t) { raw->OnAcceptable(); }));
  if (spawn_loop_thread) {
    server->loop_thread_ = std::thread([raw] { raw->loop_->Run(); });
  }
  return server;
}

Result<std::unique_ptr<RemoteVoterServer>> RemoteVoterServer::StartShard(
    VoterGroupManager* manager, Options options,
    std::shared_ptr<Reactor> reactor) {
  if (manager == nullptr) {
    return InvalidArgumentError("shard server needs a group manager");
  }
  if (reactor == nullptr) {
    return InvalidArgumentError("shard server needs a reactor");
  }
  return std::unique_ptr<RemoteVoterServer>(new RemoteVoterServer(
      manager, std::move(options), /*listener=*/nullptr, std::move(reactor)));
}

void RemoteVoterServer::LinkShards(ShardLink link) {
  link_ = std::move(link);
  router_ = GroupRouter(link_.peers.size());
  if (owned_groups_gauge_ != nullptr) {
    owned_groups_gauge_->Set(static_cast<double>(manager_->group_count()));
  }
}

void RemoteVoterServer::LinkCluster(ClusterLink link) {
  cluster_ = std::move(link);
}

void RemoteVoterServer::Crash() {
  // Simulated power loss: no FIN handshakes, no reply flushes, no Stop()
  // protocol — sockets and state vanish.  running_ stays true so a later
  // Stop() still parks the loop and joins the thread normally; every
  // mailbox entry point checks crashed_ instead.
  crashed_ = true;
  for (auto& [fd, connection] : connections_) {
    if (connection->idle_timer != 0) loop_->CancelTimer(connection->idle_timer);
    (void)loop_->Unwatch(fd);
    connection->conn->Close();
  }
  connections_.clear();
  if (connections_gauge_ != nullptr) connections_gauge_->Set(0.0);
  if (listener_ != nullptr) {
    (void)loop_->Unwatch(listener_->handle());
    listener_->Close();
  }
  // Parked requests die with their connections; in-flight transfer
  // completions find their migration gone and drop out.
  active_migrations_.clear();
  if (tracer_ != nullptr) {
    tracer_->Event("cluster.crash", options_.node_id.empty()
                                        ? std::string("node down")
                                        : "node=" + options_.node_id);
  }
}

void RemoteVoterServer::AdoptConnection(std::shared_ptr<Transport> transport) {
  if (transport == nullptr || !transport->valid()) return;
  if (crashed_ || !running_.load() || loop_->stopped()) {
    transport->Close();
    return;
  }
  const int fd = transport->handle();
  auto connection = std::make_shared<Connection>(std::move(transport));
  connection->decoder = FrameDecoder(options_.max_frame_bytes);
  connection->id = next_conn_id_++;
  connection->last_activity_ms = loop_->now_ms();
  const Status watched = loop_->Watch(
      fd, kIoRead, [this, fd](uint32_t events) {
        OnConnectionEvent(fd, events);
      });
  if (!watched.ok()) {
    AVOC_LOG_WARN("voter server: watch failed: %s", watched.ToString().c_str());
    connection->conn->Close();
    return;
  }
  connections_.emplace(fd, std::move(connection));
  if (connections_gauge_ != nullptr) {
    connections_gauge_->Set(static_cast<double>(connections_.size()));
  }
  if (adopted_counter_ != nullptr) adopted_counter_->Increment();
  ScheduleIdleTimer(fd);
}

RemoteVoterServer::~RemoteVoterServer() { Stop(); }

void RemoteVoterServer::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop is parked; connection state is now safe to touch here.
  for (auto& [fd, connection] : connections_) {
    (void)fd;
    connection->conn->Close();
  }
  connections_.clear();
  if (connections_gauge_ != nullptr) connections_gauge_->Set(0.0);
  if (listener_ != nullptr) listener_->Close();
}

void RemoteVoterServer::OnAcceptable() {
  for (;;) {
    auto accepted = listener_->TryAcceptTransport();
    if (!accepted.ok()) {
      if (accepted.status().code() != ErrorCode::kNotFound &&
          running_.load()) {
        AVOC_LOG_WARN("voter server: accept failed: %s",
                      accepted.status().ToString().c_str());
      }
      return;
    }
    if (!(*accepted)->SetNonBlocking(true).ok()) continue;
    if (options_.send_buffer_bytes > 0) {
      (void)(*accepted)->SetSendBufferBytes(options_.send_buffer_bytes);
    }
    AdoptConnection(std::shared_ptr<Transport>(std::move(*accepted)));
  }
}

void RemoteVoterServer::ScheduleIdleTimer(int fd) {
  if (options_.idle_timeout_ms == 0) return;
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& c = *it->second;
  // Lazy idle tracking: the timer checks last_activity_ms when it fires
  // and re-arms for the remainder, so the hot path never touches the
  // wheel.
  c.idle_timer = loop_->ScheduleTimer(options_.idle_timeout_ms, [this, fd] {
    auto found = connections_.find(fd);
    if (found == connections_.end()) return;
    Connection& conn = *found->second;
    conn.idle_timer = 0;
    const uint64_t idle_ms = loop_->now_ms() - conn.last_activity_ms;
    if (idle_ms >= options_.idle_timeout_ms) {
      CloseConnection(fd);
      return;
    }
    ScheduleIdleTimer(fd);
  });
}

void RemoteVoterServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (it->second->idle_timer != 0) {
    loop_->CancelTimer(it->second->idle_timer);
  }
  (void)loop_->Unwatch(fd);
  it->second->conn->Close();
  connections_.erase(it);
  if (connections_gauge_ != nullptr) {
    connections_gauge_->Set(static_cast<double>(connections_.size()));
  }
}

void RemoteVoterServer::OnConnectionEvent(int fd, uint32_t events) {
  if (events & kIoError) {
    CloseConnection(fd);
    return;
  }
  if (events & kIoWrite) {
    WritePath(fd);
    if (connections_.find(fd) == connections_.end()) return;
  }
  if (events & kIoRead) ReadPath(fd);
}

void RemoteVoterServer::ReadPath(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& c = *it->second;
  char chunk[kReadChunk];
  size_t read_total = 0;
  bool saw_eof = false;
  while (read_total < kReadBudget) {
    const IoOp op = c.conn->ReadSome(chunk, sizeof(chunk));
    if (op.kind == IoOp::Kind::kDone) {
      read_total += op.bytes;
      if (bytes_in_ != nullptr) bytes_in_->Add(op.bytes);
      if (c.mode == Connection::Mode::kBinary) {
        c.decoder.Feed(std::string_view(chunk, op.bytes));
      } else {
        c.inbuf.append(chunk, op.bytes);
      }
      continue;
    }
    if (op.kind == IoOp::Kind::kWouldBlock) break;
    saw_eof = true;  // kEof or kError: no more input either way
    break;
  }
  if (read_total > 0) {
    c.last_activity_ms = loop_->now_ms();
    ProcessInput(fd);
    if (connections_.find(fd) == connections_.end()) return;
  }
  if (saw_eof) {
    // Flush queued responses — and wait out any in-flight forwarded
    // replies — then drop the connection.
    Connection& conn = *connections_.find(fd)->second;
    if (conn.outbuf.size() == conn.out_pos && conn.replies.empty()) {
      CloseConnection(fd);
      return;
    }
    conn.want_close = true;
    UpdateInterest(fd);
  }
}

void RemoteVoterServer::ProcessInput(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& c = *it->second;
  if (c.mode == Connection::Mode::kDetecting) {
    if (c.inbuf.empty()) return;
    if (static_cast<uint8_t>(c.inbuf[0]) != kBinaryMagic[0]) {
      c.mode = Connection::Mode::kLegacy;
    } else {
      if (c.inbuf.size() < 2) return;  // wait for the second magic byte
      if (static_cast<uint8_t>(c.inbuf[1]) != kBinaryMagic[1]) {
        QueueResponse(c, EncodeFrame(FrameType::kError,
                                     EncodeError("bad protocol preamble")));
        c.want_close = true;
        UpdateInterest(fd);
        return;
      }
      c.mode = Connection::Mode::kBinary;
      if (c.inbuf.size() > 2) {
        c.decoder.Feed(std::string_view(c.inbuf).substr(2));
      }
      c.inbuf.clear();
      c.inbuf.shrink_to_fit();
    }
  }
  if (c.mode == Connection::Mode::kLegacy) {
    ProcessLegacyLines(fd);
  } else {
    ProcessBinaryFrames(fd);
  }
  UpdateInterest(fd);
}

bool RemoteVoterServer::OverHighWater(const Connection& c) const {
  return c.outbuf.size() - c.out_pos > options_.write_high_water_bytes;
}

void RemoteVoterServer::ProcessLegacyLines(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& c = *it->second;
  size_t start = 0;
  while (!c.want_close) {
    const size_t newline = c.inbuf.find('\n', start);
    if (newline == std::string::npos) break;
    std::string line = c.inbuf.substr(start, newline - start);
    start = newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (IsLinked()) {
      const auto [verb, group] = PeekLegacyLine(line);
      if (verb == "HEALTH") {
        ++requests_;
        StartHealthFanout(fd, c, /*binary=*/false);
        continue;
      }
      if (!group.empty()) {
        const size_t owner = router_.ShardFor(group);
        if (!c.pinned) {
          // First group-addressed request decides the connection's home
          // shard: move the whole connection to the owner (shared-nothing
          // from here on) instead of forwarding forever.
          c.pinned = true;
          if (owner != link_.index) {
            c.inbuf.erase(0, start);
            MigrateConnection(fd, owner, std::nullopt, std::move(line));
            return;
          }
        } else if (owner != link_.index) {
          ++requests_;
          if (OverHighWater(c)) {
            backpressure_.fetch_add(1);
            if (backpressure_counter_ != nullptr) {
              backpressure_counter_->Increment();
            }
            DeliverResponse(c, "ERR busy\n");
            continue;
          }
          ForwardLine(fd, c, owner, std::move(line));
          continue;
        }
      }
    }
    ExecuteLineLocally(c, line);
  }
  c.inbuf.erase(0, start);
}

void RemoteVoterServer::ExecuteLineLocally(Connection& c,
                                           const std::string& line) {
  ++requests_;
  std::string response;
  if (OverHighWater(c)) {
    backpressure_.fetch_add(1);
    if (backpressure_counter_ != nullptr) {
      backpressure_counter_->Increment();
    }
    response = "ERR busy";
  } else {
    const uint64_t begin = NowNanos();
    response = Handle(line);
    if (request_latency_ != nullptr) {
      request_latency_->Record(NowNanos() - begin);
    }
  }
  if (response == "BYE") c.want_close = true;
  response.push_back('\n');
  DeliverResponse(c, std::move(response));
}

void RemoteVoterServer::ProcessBinaryFrames(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& c = *it->second;
  while (!c.want_close) {
    auto frame = c.decoder.Next();
    if (!frame.ok()) {
      if (frame.status().code() == ErrorCode::kNotFound) break;
      // Protocol violation: boundaries are lost, report and hang up.
      if (tracer_ != nullptr) {
        tracer_->Event("server.poisoned_frame", frame.status().message());
      }
      DeliverResponse(
          c, EncodeFrame(FrameType::kError,
                         EncodeError(frame.status().message())));
      c.want_close = true;
      break;
    }
    if (IsLinked()) {
      if (frame->type == FrameType::kHealth) {
        ++requests_;
        if (frames_in_ != nullptr) frames_in_->Increment();
        StartHealthFanout(fd, c, /*binary=*/true);
        continue;
      }
      const std::string group = PeekFrameGroup(*frame);
      if (!group.empty()) {
        const size_t owner = router_.ShardFor(group);
        if (!c.pinned) {
          // First group-addressed frame decides the home shard: migrate
          // the whole connection there (shared-nothing from here on).
          c.pinned = true;
          if (owner != link_.index) {
            MigrateConnection(fd, owner, std::move(*frame), std::nullopt);
            return;
          }
        } else if (owner != link_.index) {
          ++requests_;
          if (frames_in_ != nullptr) frames_in_->Increment();
          if (OverHighWater(c)) {
            backpressure_.fetch_add(1);
            if (backpressure_counter_ != nullptr) {
              backpressure_counter_->Increment();
            }
            if (tracer_ != nullptr) {
              tracer_->Event("server.backpressure", "busy");
            }
            DeliverResponse(
                c, EncodeFrame(FrameType::kError, EncodeError("busy")));
            continue;
          }
          ForwardFrame(fd, c, owner, std::move(*frame));
          continue;
        }
      }
    }
    ExecuteFrameLocally(c, *frame);
  }
}

void RemoteVoterServer::ExecuteFrameLocally(Connection& c, const Frame& frame,
                                            const char* route) {
  if (IsClustered() && ClusterIntercept(c.conn->handle(), c, frame)) return;
  ++requests_;
  if (frames_in_ != nullptr) frames_in_->Increment();
  std::string response;
  bool close_after = false;
  if (OverHighWater(c)) {
    backpressure_.fetch_add(1);
    if (backpressure_counter_ != nullptr) {
      backpressure_counter_->Increment();
    }
    if (tracer_ != nullptr) tracer_->Event("server.backpressure", "busy");
    response = EncodeFrame(FrameType::kError, EncodeError("busy"));
  } else {
    const uint64_t begin = NowNanos();
    response = HandleFrame(frame, &close_after, route);
    if (request_latency_ != nullptr) {
      // Exemplar: the verb span's trace id (0 when the verb was
      // untraced), linking this histogram to a TRACE_DUMP span tree.
      request_latency_->RecordWithExemplar(NowNanos() - begin,
                                           obs::ConsumeLastTraceId());
    }
  }
  if (frames_out_ != nullptr) frames_out_->Increment();
  if (close_after) c.want_close = true;
  DeliverResponse(c, std::move(response));
}

void RemoteVoterServer::QueueResponse(Connection& c, std::string bytes) {
  if (c.outbuf.empty()) {
    c.outbuf = std::move(bytes);
    c.out_pos = 0;
  } else {
    c.outbuf.append(bytes);
  }
}

void RemoteVoterServer::UpdateInterest(int fd) {
  if (connections_.find(fd) == connections_.end()) return;
  // Opportunistic write: most responses fit the socket buffer, so the
  // common case never arms EPOLLOUT at all.  WritePath re-derives the
  // interest bits (and may close the connection) itself.
  WritePath(fd);
}

void RemoteVoterServer::WritePath(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& c = *it->second;
  while (c.out_pos < c.outbuf.size()) {
    const IoOp op =
        c.conn->WriteSome(c.outbuf.data() + c.out_pos,
                          c.outbuf.size() - c.out_pos);
    if (op.kind == IoOp::Kind::kDone) {
      c.out_pos += op.bytes;
      if (bytes_out_ != nullptr) bytes_out_->Add(op.bytes);
      continue;
    }
    if (op.kind == IoOp::Kind::kWouldBlock) break;
    CloseConnection(fd);
    return;
  }
  if (c.out_pos == c.outbuf.size()) {
    c.outbuf.clear();
    c.out_pos = 0;
    // Forwarded replies still in flight keep the connection alive; the
    // completing shard re-enters here once the last slot flushes.
    if (c.want_close && c.replies.empty()) {
      CloseConnection(fd);
      return;
    }
  } else if (c.out_pos > 64 * 1024 && c.out_pos > c.outbuf.size() / 2) {
    c.outbuf.erase(0, c.out_pos);
    c.out_pos = 0;
  }
  const size_t pending = c.outbuf.size() - c.out_pos;
  // Backpressure: stop reading past the pause mark, resume below half.
  if (!c.paused && pending > options_.read_pause_bytes) {
    c.paused = true;
    backpressure_.fetch_add(1);
    if (backpressure_counter_ != nullptr) backpressure_counter_->Increment();
    if (tracer_ != nullptr) {
      tracer_->Event("server.backpressure", "read_pause");
    }
  } else if (c.paused && pending <= options_.read_pause_bytes / 2) {
    c.paused = false;
  }
  uint32_t interest = 0;
  if (!c.paused && !c.want_close) interest |= kIoRead;
  if (pending > 0) interest |= kIoWrite;
  (void)loop_->SetInterest(fd, interest);
}

// --- sharded routing ---------------------------------------------------------

void RemoteVoterServer::DeliverResponse(Connection& c, std::string bytes) {
  if (c.replies.empty()) {
    QueueResponse(c, std::move(bytes));
    return;
  }
  // A forwarded reply is still pending ahead of us: take a slot behind it
  // so the client sees responses in request order.  No flush needed — the
  // front slot is pending by invariant.
  c.replies.emplace_back();
  c.replies.back().ready = true;
  c.replies.back().bytes = std::move(bytes);
  ++c.next_slot;
}

uint64_t RemoteVoterServer::AllocatePendingSlot(Connection& c) {
  c.replies.emplace_back();
  return c.next_slot++;
}

void RemoteVoterServer::FlushReplies(Connection& c) {
  while (!c.replies.empty() && c.replies.front().ready) {
    QueueResponse(c, std::move(c.replies.front().bytes));
    c.replies.pop_front();
    ++c.reply_base;
  }
}

void RemoteVoterServer::CompleteReply(int fd, uint64_t conn_id, uint64_t slot,
                                      std::string bytes) {
  auto it = connections_.find(fd);
  if (it == connections_.end() || it->second->id != conn_id) return;
  Connection& c = *it->second;
  const uint64_t position = slot - c.reply_base;
  if (position >= c.replies.size()) return;
  c.replies[position].ready = true;
  c.replies[position].bytes = std::move(bytes);
  FlushReplies(c);
  UpdateInterest(fd);  // flush to the socket; may close on want_close
}

void RemoteVoterServer::ForwardFrame(int fd, Connection& c, size_t owner,
                                     Frame frame) {
  forwarded_.fetch_add(1);
  if (forwarded_counter_ != nullptr) forwarded_counter_->Increment();
  if (tracer_ != nullptr) {
    const std::string_view type_name = FrameTypeName(frame.type);
    tracer_->Event("shard.forward",
                   StrFormat("type=%.*s from=s%zu to=s%zu",
                             static_cast<int>(type_name.size()),
                             type_name.data(), link_.index, owner));
  }
  const uint64_t slot = AllocatePendingSlot(c);
  RemoteVoterServer* peer = link_.peers[owner];
  // Two hops, both through single-writer mailboxes: execute on the
  // owner's loop (its dedup + groups stay single-threaded), complete on
  // ours.  Shard servers outlive both posts (ShardedVoterServer joins
  // every loop before destroying any shard).
  link_.reactors[owner]->Post(
      [peer, frame = std::move(frame), origin = this,
       origin_reactor = loop_, fd, conn_id = c.id, slot]() mutable {
        bool close_after = false;
        std::string response =
            peer->HandleFrame(frame, &close_after, "forwarded");
        origin_reactor->Post([origin, fd, conn_id, slot,
                              response = std::move(response)]() mutable {
          origin->CompleteReply(fd, conn_id, slot, std::move(response));
        });
      });
}

void RemoteVoterServer::ForwardLine(int fd, Connection& c, size_t owner,
                                    std::string line) {
  forwarded_.fetch_add(1);
  if (forwarded_counter_ != nullptr) forwarded_counter_->Increment();
  const uint64_t slot = AllocatePendingSlot(c);
  RemoteVoterServer* peer = link_.peers[owner];
  link_.reactors[owner]->Post(
      [peer, line = std::move(line), origin = this, origin_reactor = loop_,
       fd, conn_id = c.id, slot]() mutable {
        std::string response = peer->Handle(line);
        response.push_back('\n');
        origin_reactor->Post([origin, fd, conn_id, slot,
                              response = std::move(response)]() mutable {
          origin->CompleteReply(fd, conn_id, slot, std::move(response));
        });
      });
}

void RemoteVoterServer::MigrateConnection(int fd, size_t owner,
                                          std::optional<Frame> frame,
                                          std::optional<std::string> line) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  std::shared_ptr<Connection> c = std::move(it->second);
  if (c->idle_timer != 0) {
    loop_->CancelTimer(c->idle_timer);
    c->idle_timer = 0;
  }
  (void)loop_->Unwatch(fd);
  connections_.erase(it);
  if (connections_gauge_ != nullptr) {
    connections_gauge_->Set(static_cast<double>(connections_.size()));
  }
  migrations_.fetch_add(1);
  if (migrations_counter_ != nullptr) migrations_counter_->Increment();
  if (tracer_ != nullptr) {
    tracer_->Event("shard.migrate",
                   StrFormat("from=s%zu to=s%zu", link_.index, owner));
  }
  RemoteVoterServer* peer = link_.peers[owner];
  link_.reactors[owner]->Post(
      [peer, c = std::move(c), frame = std::move(frame),
       line = std::move(line)]() mutable {
        peer->AdoptMigrated(std::move(c), std::move(frame), std::move(line));
      });
}

void RemoteVoterServer::AdoptMigrated(std::shared_ptr<Connection> c,
                                      std::optional<Frame> frame,
                                      std::optional<std::string> line) {
  if (crashed_ || !running_.load() || loop_->stopped()) {
    c->conn->Close();
    return;
  }
  const int fd = c->conn->handle();
  c->id = next_conn_id_++;
  c->last_activity_ms = loop_->now_ms();
  const Status watched = loop_->Watch(
      fd, kIoRead, [this, fd](uint32_t events) {
        OnConnectionEvent(fd, events);
      });
  if (!watched.ok()) {
    AVOC_LOG_WARN("voter server: migrated watch failed: %s",
                  watched.ToString().c_str());
    c->conn->Close();
    return;
  }
  auto [slot, inserted] = connections_.emplace(fd, std::move(c));
  (void)inserted;
  if (connections_gauge_ != nullptr) {
    connections_gauge_->Set(static_cast<double>(connections_.size()));
  }
  if (adopted_counter_ != nullptr) adopted_counter_->Increment();
  Connection& conn = *slot->second;
  // The request that triggered the migration executes here first, then
  // whatever else the client already pipelined into the buffers.
  if (frame.has_value()) ExecuteFrameLocally(conn, *frame, "migrated");
  if (line.has_value()) ExecuteLineLocally(conn, *line);
  ProcessInput(fd);
  if (connections_.find(fd) != connections_.end()) {
    UpdateInterest(fd);
    if (connections_.find(fd) != connections_.end()) ScheduleIdleTimer(fd);
  }
}

void RemoteVoterServer::StartHealthFanout(int fd, Connection& c, bool binary) {
  // Scatter-gather: every shard reports its own groups on its own loop;
  // parts assemble on this loop when the last one lands.  The aggregate
  // is only ever touched from the origin loop thread.
  struct HealthAggregate {
    std::vector<std::string> parts;
    size_t remaining = 0;
  };
  const uint64_t slot = AllocatePendingSlot(c);
  auto aggregate = std::make_shared<HealthAggregate>();
  aggregate->parts.resize(link_.peers.size());
  aggregate->remaining = link_.peers.size();
  for (size_t shard = 0; shard < link_.peers.size(); ++shard) {
    RemoteVoterServer* peer = link_.peers[shard];
    link_.reactors[shard]->Post(
        [peer, shard, aggregate, origin = this, origin_reactor = loop_, fd,
         conn_id = c.id, slot, binary,
         total = link_.all_groups.size()]() {
          std::string part = peer->LocalHealthLines();
          origin_reactor->Post([aggregate, shard, part = std::move(part),
                                origin, fd, conn_id, slot, binary,
                                total]() mutable {
            aggregate->parts[shard] = std::move(part);
            if (--aggregate->remaining > 0) return;
            std::string body = StrFormat("HEALTH %zu\n", total);
            for (const std::string& p : aggregate->parts) body += p;
            std::string response =
                binary ? EncodeFrame(FrameType::kText, EncodeText(body))
                       : body + "END\n";
            origin->CompleteReply(fd, conn_id, slot, std::move(response));
          });
        });
  }
}

// --- cluster mode ------------------------------------------------------------

namespace {

/// Frames that change group state; these replicate to the hot standby
/// before their reply releases (semi-synchronous replication).
bool IsMutatingFrame(FrameType type) {
  return type == FrameType::kSubmitBatch ||
         type == FrameType::kSubmitBatchSeq || type == FrameType::kClose;
}

}  // namespace

bool RemoteVoterServer::ClusterIntercept(int fd, Connection& c,
                                         const Frame& frame) {
  if (frame.type == FrameType::kMigrateGroup) {
    ++requests_;
    if (frames_in_ != nullptr) frames_in_->Increment();
    std::string group;
    uint64_t dest = 0;
    const Status decoded = DecodeMigrateGroup(frame.payload, &group, &dest);
    if (!decoded.ok()) {
      if (frames_out_ != nullptr) frames_out_->Increment();
      DeliverResponse(c, EncodeFrame(FrameType::kError,
                                     EncodeError(decoded.ToString())));
      return true;
    }
    // The verb completes only once the destination imported the group (or
    // the attempt failed), so the reply occupies a slot like a forwarded
    // request.
    const uint64_t slot = AllocatePendingSlot(c);
    BeginMigration(std::move(group), static_cast<size_t>(dest),
                   [this, fd, conn_id = c.id, slot](Status status) {
                     if (frames_out_ != nullptr) frames_out_->Increment();
                     std::string response =
                         status.ok()
                             ? EncodeFrame(FrameType::kOk, EncodeOk(1))
                             : EncodeFrame(FrameType::kError,
                                           EncodeError(status.ToString()));
                     CompleteReply(fd, conn_id, slot, std::move(response));
                   });
    return true;
  }
  const std::string group = PeekFrameGroup(frame);
  if (group.empty()) return false;  // group-less verbs answer locally
  // Mid-migration: park the request.  It resolves to MOVED once the
  // handoff commits, or executes locally if the transfer failed — the
  // client never observes the in-between.
  const auto active = active_migrations_.find(group);
  if (active != active_migrations_.end()) {
    ++requests_;
    if (frames_in_ != nullptr) frames_in_->Increment();
    const uint64_t slot = AllocatePendingSlot(c);
    active->second.deferred.push_back(
        ActiveMigration::Deferred{fd, c.id, slot, frame});
    return true;
  }
  const size_t owner = cluster_.control->OwnerOf(group);
  if (owner != cluster_.node_index) {
    // Not the placement owner: redirect — even when a copy is hosted
    // here.  An aborted handoff (source crash after the destination
    // imported) can leave a stale replica behind; serving it would fork
    // the group's history, so placement always wins.
    ++requests_;
    if (frames_in_ != nullptr) frames_in_->Increment();
    moved_redirects_.fetch_add(1);
    if (moved_redirects_counter_ != nullptr) {
      moved_redirects_counter_->Increment();
    }
    if (tracer_ != nullptr) {
      tracer_->Event("cluster.moved",
                     StrFormat("group=%s owner=n%zu%s", group.c_str(), owner,
                               node_suffix_.c_str()));
    }
    if (frames_out_ != nullptr) frames_out_->Increment();
    DeliverResponse(
        c, EncodeFrame(FrameType::kMoved,
                       EncodeMoved(owner, cluster_.control->NodeAddress(owner))));
    return true;
  }
  // The placement owner without the group: fall through so the manager
  // reports NotFound (the group exists nowhere).
  if (!manager_->HasGroup(group)) return false;
  // Hosted here.  Mutating frames on a node with a hot standby execute
  // now but release their reply only after the standby acknowledged the
  // shipped record, so a crash-and-failover never un-acknowledges data.
  if (IsMutatingFrame(frame.type) &&
      cluster_.control->HasStandby(cluster_.node_index)) {
    ++requests_;
    if (frames_in_ != nullptr) frames_in_->Increment();
    if (OverHighWater(c)) {
      backpressure_.fetch_add(1);
      if (backpressure_counter_ != nullptr) backpressure_counter_->Increment();
      if (tracer_ != nullptr) tracer_->Event("server.backpressure", "busy");
      if (frames_out_ != nullptr) frames_out_->Increment();
      DeliverResponse(c, EncodeFrame(FrameType::kError, EncodeError("busy")));
      return true;
    }
    const uint64_t begin = NowNanos();
    bool close_after = false;
    std::string response = HandleFrame(frame, &close_after, "local");
    if (request_latency_ != nullptr) {
      request_latency_->RecordWithExemplar(NowNanos() - begin,
                                           obs::ConsumeLastTraceId());
    }
    if (frames_out_ != nullptr) frames_out_->Increment();
    if (close_after) c.want_close = true;
    const uint64_t slot = AllocatePendingSlot(c);
    CompleteAfterReplication(fd, c.id, slot, frame, std::move(response));
    return true;
  }
  return false;
}

void RemoteVoterServer::CompleteAfterReplication(int fd, uint64_t conn_id,
                                                 uint64_t slot,
                                                 const Frame& frame,
                                                 std::string response) {
  ReplicationRecord record;
  record.kind = ReplicationRecord::Kind::kFrame;
  record.frame_type = static_cast<uint8_t>(frame.type);
  record.bytes = frame.payload;
  cluster_.control->Replicate(
      cluster_.node_index, EncodeReplicationRecord(record),
      [this, fd, conn_id, slot, response = std::move(response)](
          Status status) mutable {
        // The primary already applied the frame; a replication fault is
        // surfaced to telemetry but must not fail the acknowledged
        // request (failover replays converge through the dedup cache).
        if (!status.ok() && tracer_ != nullptr) {
          tracer_->Event("cluster.replicate_error", status.ToString());
        }
        CompleteReply(fd, conn_id, slot, std::move(response));
      });
}

void RemoteVoterServer::BeginMigration(std::string group, size_t dest,
                                       std::function<void(Status)> done) {
  auto finish = [&done](Status status) {
    if (done) done(std::move(status));
  };
  if (crashed_) return finish(IoError("node crashed"));
  if (!IsClustered()) {
    return finish(
        FailedPreconditionError("MIGRATE_GROUP requires cluster mode"));
  }
  if (active_migrations_.count(group) != 0) {
    return finish(FailedPreconditionError("migration of '" + group +
                                          "' already in flight"));
  }
  const size_t owner = cluster_.control->OwnerOf(group);
  if (owner != cluster_.node_index) {
    // The operator asked the wrong node (or a stale host left over from
    // an aborted handoff): same redirect contract as data requests, so
    // tooling re-targets transparently.
    return finish(MovedError(owner, cluster_.control->NodeAddress(owner)));
  }
  if (!manager_->HasGroup(group)) {
    return finish(NotFoundError("no voter group named '" + group + "'"));
  }
  if (dest >= cluster_.control->NodeCount()) {
    return finish(InvalidArgumentError(
        StrFormat("destination node %zu out of range (cluster of %zu)", dest,
                  cluster_.control->NodeCount())));
  }
  if (dest == cluster_.node_index) {
    return finish(
        InvalidArgumentError("destination node is already the owner"));
  }
  if (!cluster_.control->NodeAlive(dest)) {
    return finish(FailedPreconditionError(
        StrFormat("destination node %zu is down", dest)));
  }
  auto blob = ExportGroupBlob(group);
  if (!blob.ok()) return finish(blob.status());
  if (tracer_ != nullptr) {
    tracer_->Event("cluster.migrate_begin",
                   StrFormat("group=%s dest=n%zu%s", group.c_str(), dest,
                             node_suffix_.c_str()));
  }
  // Quiesce: from here until FinishMigration, requests for the group park
  // in the deferred queue instead of executing (ClusterIntercept).
  ActiveMigration& migration = active_migrations_[group];
  migration.dest = dest;
  migration.done.push_back(std::move(done));
  cluster_.control->TransferGroup(
      cluster_.node_index, dest, std::move(*blob),
      [this, group, dest](Status status) {
        FinishMigration(group, dest, std::move(status));
      });
}

void RemoteVoterServer::FinishMigration(const std::string& group, size_t dest,
                                        Status result) {
  const auto it = active_migrations_.find(group);
  if (it == active_migrations_.end()) return;  // swept by Crash()
  ActiveMigration migration = std::move(it->second);
  active_migrations_.erase(it);
  if (crashed_) return;
  if (result.ok()) {
    group_migrations_out_.fetch_add(1);
    if (group_migrations_out_counter_ != nullptr) {
      group_migrations_out_counter_->Increment();
    }
    (void)manager_->RemoveGroup(group);
    (void)EraseDedupForGroup(group);
    cluster_.control->CommitPlacement(group, dest);
    // The standby mirrors this node's group set: tell it to drop its copy
    // (ordered behind every earlier record through the same mailbox).
    if (cluster_.control->HasStandby(cluster_.node_index)) {
      ReplicationRecord record;
      record.kind = ReplicationRecord::Kind::kRemove;
      record.group = group;
      cluster_.control->Replicate(cluster_.node_index,
                                  EncodeReplicationRecord(record),
                                  [](Status) {});
    }
    if (tracer_ != nullptr) {
      tracer_->Event("cluster.migrate_commit",
                     StrFormat("group=%s dest=n%zu%s", group.c_str(), dest,
                               node_suffix_.c_str()));
    }
    // Parked requests resolve to MOVED; the resilient client re-resolves
    // and resubmits (dedup entries travelled with the group, so retried
    // SUBMIT_BATCH_SEQ frames replay instead of double-ingesting).
    const std::string moved = EncodeFrame(
        FrameType::kMoved,
        EncodeMoved(dest, cluster_.control->NodeAddress(dest)));
    for (ActiveMigration::Deferred& d : migration.deferred) {
      moved_redirects_.fetch_add(1);
      if (moved_redirects_counter_ != nullptr) {
        moved_redirects_counter_->Increment();
      }
      if (frames_out_ != nullptr) frames_out_->Increment();
      CompleteReply(d.fd, d.conn_id, d.slot, moved);
    }
  } else {
    if (tracer_ != nullptr) {
      tracer_->Event("cluster.migrate_failed",
                     StrFormat("group=%s dest=n%zu error=%s%s", group.c_str(),
                               dest, result.ToString().c_str(),
                               node_suffix_.c_str()));
    }
    // The group stays here: run the parked requests in arrival order as
    // if the migration never happened.
    for (ActiveMigration::Deferred& d : migration.deferred) {
      bool close_after = false;
      std::string response = HandleFrame(d.frame, &close_after, "local");
      if (frames_out_ != nullptr) frames_out_->Increment();
      if (IsMutatingFrame(d.frame.type) &&
          cluster_.control->HasStandby(cluster_.node_index)) {
        CompleteAfterReplication(d.fd, d.conn_id, d.slot, d.frame,
                                 std::move(response));
      } else {
        CompleteReply(d.fd, d.conn_id, d.slot, std::move(response));
      }
    }
  }
  for (std::function<void(Status)>& done : migration.done) {
    if (done) done(result);
  }
}

Result<std::string> RemoteVoterServer::ExportGroupBlob(
    const std::string& group) {
  GroupStateBlob blob;
  blob.group = group;
  AVOC_ASSIGN_OR_RETURN(blob.state, manager_->ExportGroupState(group));
  // Travelling dedup: every remembered ack addressed to this group moves
  // with it (collected here, erased only once the transfer committed).
  for (const auto& [client_id, dedup] : dedup_) {
    for (const auto& [seq, ack] : dedup.acks) {
      if (ack.group != group) continue;
      blob.dedup.push_back(
          GroupStateBlob::DedupEntry{client_id, seq, ack.accepted});
    }
  }
  return EncodeGroupState(blob);
}

Status RemoteVoterServer::ImportGroupBlob(std::string_view bytes) {
  AVOC_ASSIGN_OR_RETURN(GroupStateBlob blob, DecodeGroupState(bytes));
  if (manager_->HasGroup(blob.group)) {
    // Double-migration guard: two concurrent MIGRATE_GROUPs racing the
    // same group to different nodes fail typed on the second import.
    return FailedPreconditionError("group '" + blob.group +
                                   "' already hosted on this node");
  }
  if (!cluster_.engine_factory) {
    return FailedPreconditionError("cluster link has no engine factory");
  }
  AVOC_ASSIGN_OR_RETURN(core::VotingEngine engine,
                        cluster_.engine_factory(blob.group));
  AVOC_RETURN_IF_ERROR(manager_->AddGroup(blob.group, std::move(engine)));
  const Status restored = manager_->RestoreGroupState(blob.group, blob.state);
  if (!restored.ok()) {
    (void)manager_->RemoveGroup(blob.group);  // no half-imported groups
    return restored;
  }
  for (const GroupStateBlob::DedupEntry& entry : blob.dedup) {
    ClientDedup& dedup = dedup_[entry.client_id];
    dedup.acks[entry.seq] = ClientDedup::AckEntry{entry.accepted, blob.group};
    dedup.max_seq = std::max(dedup.max_seq, entry.seq);
  }
  if (!blob.dedup.empty() && dedup_clients_ != nullptr) {
    dedup_clients_->Set(static_cast<double>(dedup_.size()));
  }
  if (tracer_ != nullptr) {
    tracer_->Event("cluster.migrate_in",
                   StrFormat("group=%s%s", blob.group.c_str(),
                             node_suffix_.c_str()));
  }
  return Status::Ok();
}

void RemoteVoterServer::BeginImport(std::string blob,
                                    std::function<void(Status)> done) {
  if (crashed_) {
    if (done) done(IoError("node crashed"));
    return;
  }
  Status imported = ImportGroupBlob(blob);
  if (!imported.ok()) {
    if (done) done(std::move(imported));
    return;
  }
  group_migrations_in_.fetch_add(1);
  if (group_migrations_in_counter_ != nullptr) {
    group_migrations_in_counter_->Increment();
  }
  // Semi-sync: the source (and through it the operator) learns of the
  // import only after this node's standby holds the group too, so a
  // crash right after the handoff still fails over losslessly.
  if (IsClustered() && cluster_.control->HasStandby(cluster_.node_index)) {
    ReplicationRecord record;
    record.kind = ReplicationRecord::Kind::kImport;
    record.bytes = std::move(blob);
    cluster_.control->Replicate(
        cluster_.node_index, EncodeReplicationRecord(record),
        [this, done = std::move(done)](Status status) {
          if (!status.ok() && tracer_ != nullptr) {
            tracer_->Event("cluster.replicate_error", status.ToString());
          }
          if (done) done(Status::Ok());
        });
    return;
  }
  if (done) done(Status::Ok());
}

Status RemoteVoterServer::ApplyReplicated(std::string_view record_bytes) {
  if (crashed_) return IoError("standby crashed");
  AVOC_ASSIGN_OR_RETURN(ReplicationRecord record,
                        DecodeReplicationRecord(record_bytes));
  replicated_applies_.fetch_add(1);
  if (replicated_applies_counter_ != nullptr) {
    replicated_applies_counter_->Increment();
  }
  switch (record.kind) {
    case ReplicationRecord::Kind::kFrame: {
      // Re-execute the raw frame against this standby's own manager and
      // dedup map; the response is discarded (the primary answered the
      // client).  A frame the primary rejected is rejected here too —
      // both replicas converge on the same state either way.
      Frame frame;
      frame.type = static_cast<FrameType>(record.frame_type);
      frame.payload = std::move(record.bytes);
      bool close_after = false;
      (void)HandleFrame(frame, &close_after, "replicated");
      return Status::Ok();
    }
    case ReplicationRecord::Kind::kImport:
      return ImportGroupBlob(record.bytes);
    case ReplicationRecord::Kind::kRemove: {
      // Tolerate a group this standby never saw (it attached mid-stream).
      (void)manager_->RemoveGroup(record.group);
      (void)EraseDedupForGroup(record.group);
      return Status::Ok();
    }
  }
  return InternalError("unreachable replication kind");
}

std::vector<GroupStateBlob::DedupEntry> RemoteVoterServer::EraseDedupForGroup(
    const std::string& group) {
  std::vector<GroupStateBlob::DedupEntry> erased;
  for (auto it = dedup_.begin(); it != dedup_.end();) {
    ClientDedup& dedup = it->second;
    for (auto ack = dedup.acks.begin(); ack != dedup.acks.end();) {
      if (ack->second.group == group) {
        erased.push_back(GroupStateBlob::DedupEntry{it->first, ack->first,
                                                    ack->second.accepted});
        ack = dedup.acks.erase(ack);
      } else {
        ++ack;
      }
    }
    // max_seq stays: the client's sequence numbers are global, not
    // per-group, so the window keeps advancing monotonically.
    it = dedup.acks.empty() ? dedup_.erase(it) : std::next(it);
  }
  if (!erased.empty() && dedup_clients_ != nullptr) {
    dedup_clients_->Set(static_cast<double>(dedup_.size()));
  }
  return erased;
}

std::string RemoteVoterServer::HealthText() const {
  return StrFormat("HEALTH %zu\n", manager_->GroupNames().size()) +
         LocalHealthLines();
}

std::string RemoteVoterServer::LocalHealthLines() const {
  std::string text;
  for (const std::string& name : manager_->GroupNames()) {
    auto runner = manager_->runner(name);
    if (!runner.ok()) continue;  // group removed mid-iteration
    const Status voter_status = (*runner)->voter().last_status();
    text += StrFormat(
        "GROUP %s modules=%zu outputs=%zu open=%zu status=%s%s\n",
        name.c_str(), (*runner)->module_count(),
        (*runner)->sink().output_count(), (*runner)->hub().open_rounds(),
        voter_status.ok() ? "ok" : "error", node_suffix_.c_str());
  }
  return text;
}

std::string RemoteVoterServer::HandleFrame(const Frame& frame,
                                           bool* close_after,
                                           const char* route) {
  auto error = [](const Status& status) {
    return EncodeFrame(FrameType::kError, EncodeError(status.ToString()));
  };
  switch (frame.type) {
    case FrameType::kPing:
      return EncodeFrame(FrameType::kPong);
    case FrameType::kQuit:
      *close_after = true;
      return EncodeFrame(FrameType::kBye);
    case FrameType::kSubmitBatch: {
      std::string group;
      std::vector<BatchReading> readings;
      WireTraceContext trace;
      const Status decoded =
          DecodeSubmitBatch(frame.payload, &group, &readings, &trace);
      if (!decoded.ok()) return error(decoded);
      obs::ScopedSpan span(
          tracer_, obs::SpanKind::kServer, "server.submit_batch",
          ParentOf(trace), StrFormat("group=%s route=%s%s", group.c_str(),
                                     route, node_suffix_.c_str()));
      std::vector<ReadingMessage> messages;
      messages.reserve(readings.size());
      for (const BatchReading& reading : readings) {
        messages.push_back(ReadingMessage{
            static_cast<size_t>(reading.module),
            static_cast<size_t>(reading.round), reading.value});
      }
      auto stats = manager_->SubmitBatch(group, messages);
      if (!stats.ok()) return error(stats.status());
      return EncodeFrame(FrameType::kOk, EncodeOk(stats->accepted));
    }
    case FrameType::kSubmitBatchSeq: {
      std::string client_id;
      uint64_t seq = 0;
      std::string group;
      std::vector<BatchReading> readings;
      WireTraceContext trace;
      const Status decoded = DecodeSubmitBatchSeq(
          frame.payload, &client_id, &seq, &group, &readings, &trace);
      if (!decoded.ok()) return error(decoded);
      obs::ScopedSpan span(tracer_, obs::SpanKind::kServer,
                           "server.submit_batch_seq", ParentOf(trace));
      ClientDedup& dedup = dedup_[client_id];
      if (dedup_clients_ != nullptr) {
        dedup_clients_->Set(static_cast<double>(dedup_.size()));
      }
      const auto seen = dedup.acks.find(seq);
      if (seen != dedup.acks.end()) {
        // Resend after a lost reply: replay the original acknowledgement
        // without touching the engine (exactly-once ingest).
        dedup_replays_count_.fetch_add(1);
        if (dedup_replays_ != nullptr) dedup_replays_->Increment();
        span.SetDetailF("group=%s route=%s seq=%llu dedup=replay%s",
                        group.c_str(), route,
                        static_cast<unsigned long long>(seq),
                        node_suffix_.c_str());
        return EncodeFrame(FrameType::kOk, EncodeOk(seen->second.accepted));
      }
      span.SetDetailF("group=%s route=%s seq=%llu dedup=miss%s",
                      group.c_str(), route,
                      static_cast<unsigned long long>(seq),
                      node_suffix_.c_str());
      std::vector<ReadingMessage> messages;
      messages.reserve(readings.size());
      for (const BatchReading& reading : readings) {
        messages.push_back(ReadingMessage{
            static_cast<size_t>(reading.module),
            static_cast<size_t>(reading.round), reading.value});
      }
      auto stats = manager_->SubmitBatch(group, messages);
      if (!stats.ok()) return error(stats.status());
      dedup.acks[seq] = ClientDedup::AckEntry{stats->accepted, group};
      dedup.max_seq = std::max(dedup.max_seq, seq);
      // Forget acknowledgements the client can no longer resend (it
      // advances its sequence number monotonically).
      while (!dedup.acks.empty() &&
             dedup.acks.begin()->first + options_.dedup_window <
                 dedup.max_seq) {
        dedup.acks.erase(dedup.acks.begin());
      }
      return EncodeFrame(FrameType::kOk, EncodeOk(stats->accepted));
    }
    case FrameType::kClose: {
      std::string group;
      uint64_t round = 0;
      WireTraceContext trace;
      const Status decoded =
          DecodeClose(frame.payload, &group, &round, &trace);
      if (!decoded.ok()) return error(decoded);
      obs::ScopedSpan span(
          tracer_, obs::SpanKind::kServer, "server.close", ParentOf(trace),
          StrFormat("group=%s route=%s%s", group.c_str(), route,
                    node_suffix_.c_str()));
      const Status closed =
          manager_->CloseRound(group, static_cast<size_t>(round));
      if (!closed.ok()) return error(closed);
      return EncodeFrame(FrameType::kOk, EncodeOk(1));
    }
    case FrameType::kQuery: {
      std::string group;
      WireTraceContext trace;
      const Status decoded = DecodeQuery(frame.payload, &group, &trace);
      if (!decoded.ok()) return error(decoded);
      obs::ScopedSpan span(
          tracer_, obs::SpanKind::kServer, "server.query", ParentOf(trace),
          StrFormat("group=%s route=%s%s", group.c_str(), route,
                    node_suffix_.c_str()));
      auto sink = manager_->sink(group);
      if (!sink.ok()) return error(sink.status());
      const auto value = (*sink)->last_value();
      if (!value.has_value()) return EncodeFrame(FrameType::kNone);
      return EncodeFrame(FrameType::kValue, EncodeValue(*value));
    }
    case FrameType::kQueryRange: {
      VerbTimer timer(query_range_requests_, query_range_latency_);
      std::string group;
      uint64_t lo = 0;
      uint64_t hi = 0;
      WireTraceContext trace;
      const Status decoded =
          DecodeQueryRange(frame.payload, &group, &lo, &hi, &trace);
      if (!decoded.ok()) return error(decoded);
      obs::ScopedSpan span(
          tracer_, obs::SpanKind::kServer, "server.query_range",
          ParentOf(trace),
          StrFormat("group=%s route=%s%s", group.c_str(), route,
                    node_suffix_.c_str()));
      if (hi < lo) {
        return error(InvalidArgumentError("QUERY_RANGE hi_round < lo_round"));
      }
      auto sink = manager_->sink(group);
      if (!sink.ok()) return error(sink.status());
      std::vector<RangePoint> points;
      if (storage::TraceBackend* traces = manager_->trace_store();
          traces != nullptr) {
        auto stored = traces->QueryTraceRange(group, lo, hi);
        if (!stored.ok()) return error(stored.status());
        points.reserve(stored->size());
        for (const storage::TracePoint& point : *stored) {
          points.push_back(RangePoint{point.round, point.value,
                                      point.engaged ? uint8_t{1} : uint8_t{0}});
        }
      } else {
        // No trace backend wired: serve straight from the sink's
        // in-memory trace so the verb works on every deployment shape.
        (*sink)->WithTrace([&](const core::BatchTrace& trace,
                               const std::vector<size_t>& rounds) {
          for (size_t i = 0; i < rounds.size(); ++i) {
            const uint64_t round = rounds[i];
            if (round < lo || round > hi) continue;
            const auto value = trace.output(i);
            points.push_back(RangePoint{round, value.value_or(0.0),
                                        value.has_value() ? uint8_t{1}
                                                          : uint8_t{0}});
          }
        });
      }
      return EncodeFrame(FrameType::kRangeResult, EncodeRangeResult(points));
    }
    case FrameType::kHistoryGet: {
      VerbTimer timer(history_get_requests_, history_get_latency_);
      std::string group;
      WireTraceContext trace;
      const Status decoded = DecodeHistoryGet(frame.payload, &group, &trace);
      if (!decoded.ok()) return error(decoded);
      obs::ScopedSpan span(
          tracer_, obs::SpanKind::kServer, "server.history_get",
          ParentOf(trace),
          StrFormat("group=%s route=%s%s", group.c_str(), route,
                    node_suffix_.c_str()));
      auto voter = manager_->voter(group);
      if (!voter.ok()) return error(voter.status());
      const core::HistoryLedger& ledger = (*voter)->engine().history();
      return EncodeFrame(
          FrameType::kHistory,
          EncodeHistoryState(ledger.round_count(), ledger.records()));
    }
    case FrameType::kGroups:
      // Linked shards answer from the frozen global list — no fan-out
      // needed, every shard knows the whole deployment's group names.
      return EncodeFrame(FrameType::kGroupList,
                         EncodeGroupList(IsLinked() ? link_.all_groups
                                                    : manager_->GroupNames()));
    case FrameType::kMetrics: {
      obs::Registry* registry = manager_->registry();
      if (registry == nullptr) {
        return error(
            FailedPreconditionError("metrics disabled (no registry)"));
      }
      return EncodeFrame(FrameType::kText,
                         EncodeText(registry->RenderPrometheus()));
    }
    case FrameType::kHealth:
      return EncodeFrame(FrameType::kText, EncodeText(HealthText()));
    case FrameType::kTraceDump: {
      if (tracer_ == nullptr) {
        return error(FailedPreconditionError("tracing disabled (no tracer)"));
      }
      // The tracer is shared across shards, so any shard's dump shows the
      // whole deployment's flight recorder.
      return EncodeFrame(FrameType::kText, EncodeText(tracer_->DumpText()));
    }
    case FrameType::kMigrateGroup:
      // Clustered servers intercept this verb before HandleFrame
      // (ClusterIntercept); reaching here means the server is standalone.
      return error(
          FailedPreconditionError("MIGRATE_GROUP requires cluster mode"));
    default:
      return error(InvalidArgumentError(StrFormat(
          "unknown frame type 0x%02x", static_cast<unsigned>(frame.type))));
  }
}

std::string RemoteVoterServer::Handle(const std::string& line) {
  std::vector<std::string> tokens;
  for (const std::string& token : SplitString(TrimWhitespace(line), ' ')) {
    if (!token.empty()) tokens.push_back(token);
  }
  if (tokens.empty()) return "ERR empty request";
  const std::string& verb = tokens[0];

  if (verb == "PING") return "PONG";
  if (verb == "QUIT") return "BYE";

  if (verb == "METRICS") {
    obs::Registry* registry = manager_->registry();
    if (registry == nullptr) {
      return "ERR metrics disabled (manager has no registry)";
    }
    // Multi-line response: the exposition's own '\n'-terminated lines,
    // then the END sentinel (the queued line adds its newline).
    return registry->RenderPrometheus() + "END";
  }

  if (verb == "HEALTH") return HealthText() + "END";

  if (verb == "GROUPS") {
    const auto names = IsLinked() ? link_.all_groups : manager_->GroupNames();
    std::string response = StrFormat("GROUPS %zu", names.size());
    for (const std::string& name : names) {
      response += " " + name;
    }
    return response;
  }

  if (verb == "SUBMIT") {
    if (tokens.size() != 5) return "ERR SUBMIT needs group module round value";
    auto module = ParseInt(tokens[2]);
    auto round = ParseInt(tokens[3]);
    auto value = ParseDouble(tokens[4]);
    if (!module.ok() || *module < 0) return "ERR bad module index";
    if (!round.ok() || *round < 0) return "ERR bad round number";
    if (!value.ok()) return "ERR bad value";
    const Status status =
        manager_->Submit(tokens[1], static_cast<size_t>(*module),
                         static_cast<size_t>(*round), *value);
    return status.ok() ? "OK" : "ERR " + status.ToString();
  }

  if (verb == "CLOSE") {
    if (tokens.size() != 3) return "ERR CLOSE needs group round";
    auto round = ParseInt(tokens[2]);
    if (!round.ok() || *round < 0) return "ERR bad round number";
    const Status status =
        manager_->CloseRound(tokens[1], static_cast<size_t>(*round));
    return status.ok() ? "OK" : "ERR " + status.ToString();
  }

  if (verb == "QUERY") {
    if (tokens.size() != 2) return "ERR QUERY needs group";
    auto sink = manager_->sink(tokens[1]);
    if (!sink.ok()) return "ERR " + sink.status().ToString();
    const auto value = (*sink)->last_value();
    if (!value.has_value()) return "NONE";
    return StrFormat("VALUE %.17g", *value);
  }

  return "ERR unknown verb '" + verb + "'";
}

// --- client ------------------------------------------------------------------

Result<RemoteVoterClient> RemoteVoterClient::Connect(const std::string& host,
                                                     uint16_t port) {
  AVOC_ASSIGN_OR_RETURN(TcpConnection connection,
                        TcpConnection::Connect(host, port));
  return FromTransport(std::make_unique<TcpConnection>(std::move(connection)),
                       /*binary=*/false);
}

Result<RemoteVoterClient> RemoteVoterClient::ConnectBinary(
    const std::string& host, uint16_t port) {
  AVOC_ASSIGN_OR_RETURN(TcpConnection connection,
                        TcpConnection::Connect(host, port));
  return FromTransport(std::make_unique<TcpConnection>(std::move(connection)),
                       /*binary=*/true);
}

Result<RemoteVoterClient> RemoteVoterClient::FromTransport(
    std::unique_ptr<Transport> transport, bool binary) {
  if (transport == nullptr || !transport->valid()) {
    return InvalidArgumentError("client needs a connected transport");
  }
  if (binary) {
    const char preamble[2] = {static_cast<char>(kBinaryMagic[0]),
                              static_cast<char>(kBinaryMagic[1])};
    AVOC_RETURN_IF_ERROR(
        transport->SendAll(std::string_view(preamble, sizeof(preamble))));
  }
  return RemoteVoterClient(std::move(transport),
                           binary ? Mode::kBinary : Mode::kLegacy);
}

Status RemoteVoterClient::SetRequestTimeoutMs(int timeout_ms) {
  return connection_->SetReceiveTimeoutMs(timeout_ms);
}

Result<std::string> RemoteVoterClient::RoundTrip(const std::string& line) {
  AVOC_RETURN_IF_ERROR(connection_->SendLine(line));
  AVOC_ASSIGN_OR_RETURN(std::string response, connection_->ReceiveLine());
  if (StartsWith(response, "ERR ")) {
    // The server answered: an application error, not a transport fault
    // (retry layers must not re-dial on it).
    return FailedPreconditionError("server: " + response.substr(4));
  }
  return response;
}

Result<Frame> RemoteVoterClient::ReadFrame() {
  for (;;) {
    auto frame = decoder_.Next();
    if (frame.ok()) return frame;
    if (frame.status().code() != ErrorCode::kNotFound) return frame.status();
    char chunk[4096];
    AVOC_ASSIGN_OR_RETURN(const size_t n,
                          connection_->ReceiveSome(chunk, sizeof(chunk)));
    decoder_.Feed(std::string_view(chunk, n));
  }
}

Result<Frame> RemoteVoterClient::CheckFrame(Frame frame) {
  if (frame.type == FrameType::kMoved) {
    uint64_t node = 0;
    std::string address;
    if (!DecodeMoved(frame.payload, &node, &address).ok()) {
      return FailedPreconditionError("server: <malformed MOVED frame>");
    }
    // Cluster redirect: surfaces as the machine-parseable MOVED status so
    // ResilientVoterClient re-resolves the node and resubmits; a plain
    // client sees a typed FailedPrecondition naming the owner.
    return MovedError(node, address);
  }
  if (frame.type == FrameType::kError) {
    std::string reason;
    if (!DecodeError(frame.payload, &reason).ok()) {
      reason = "<malformed ERR frame>";
    }
    // Application error: the transport is healthy, the server said no.
    return FailedPreconditionError("server: " + reason);
  }
  return frame;
}

Result<Frame> RemoteVoterClient::FrameRoundTrip(FrameType type,
                                                std::string_view payload) {
  if (mode_ != Mode::kBinary) {
    return FailedPreconditionError(
        "frame round trip needs a binary connection (ConnectBinary)");
  }
  AVOC_RETURN_IF_ERROR(connection_->SendAll(EncodeFrame(type, payload)));
  AVOC_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  return CheckFrame(std::move(frame));
}

Status RemoteVoterClient::Submit(const std::string& group, size_t module,
                                 size_t round, double value) {
  if (mode_ == Mode::kBinary) {
    const BatchReading reading{module, round, value};
    AVOC_ASSIGN_OR_RETURN(const uint64_t accepted,
                          SubmitBatch(group, {&reading, 1}));
    if (accepted != 1) return IoError("reading not accepted");
    return Status::Ok();
  }
  AVOC_ASSIGN_OR_RETURN(
      const std::string response,
      RoundTrip(StrFormat("SUBMIT %s %zu %zu %.17g", group.c_str(), module,
                          round, value)));
  if (response != "OK") return IoError("unexpected response: " + response);
  return Status::Ok();
}

Result<uint64_t> RemoteVoterClient::SubmitBatch(
    const std::string& group, std::span<const BatchReading> readings) {
  AVOC_RETURN_IF_ERROR(PipelineSubmitBatch(group, readings));
  return AwaitSubmitBatch();
}

Result<uint64_t> RemoteVoterClient::SubmitBatchSeq(
    std::string_view client_id, uint64_t seq, const std::string& group,
    std::span<const BatchReading> readings, const WireTraceContext* trace) {
  if (mode_ != Mode::kBinary) {
    return FailedPreconditionError(
        "SubmitBatchSeq needs a binary connection (ConnectBinary)");
  }
  AVOC_ASSIGN_OR_RETURN(
      const Frame frame,
      FrameRoundTrip(
          FrameType::kSubmitBatchSeq,
          EncodeSubmitBatchSeq(client_id, seq, group, readings, trace)));
  if (frame.type != FrameType::kOk) {
    return IoError(StrFormat("unexpected frame %s",
                             std::string(FrameTypeName(frame.type)).c_str()));
  }
  uint64_t accepted = 0;
  AVOC_RETURN_IF_ERROR(DecodeOk(frame.payload, &accepted));
  return accepted;
}

Status RemoteVoterClient::PipelineSubmitBatch(
    const std::string& group, std::span<const BatchReading> readings) {
  if (mode_ != Mode::kBinary) {
    return FailedPreconditionError(
        "SubmitBatch needs a binary connection (ConnectBinary)");
  }
  AVOC_RETURN_IF_ERROR(connection_->SendAll(EncodeFrame(
      FrameType::kSubmitBatch, EncodeSubmitBatch(group, readings))));
  ++pending_submits_;
  return Status::Ok();
}

Result<uint64_t> RemoteVoterClient::AwaitSubmitBatch() {
  if (pending_submits_ == 0) {
    return FailedPreconditionError("no pipelined SUBMIT_BATCH pending");
  }
  --pending_submits_;
  AVOC_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  AVOC_ASSIGN_OR_RETURN(frame, CheckFrame(std::move(frame)));
  if (frame.type != FrameType::kOk) {
    return IoError(StrFormat("unexpected frame %s",
                             std::string(FrameTypeName(frame.type)).c_str()));
  }
  uint64_t accepted = 0;
  AVOC_RETURN_IF_ERROR(DecodeOk(frame.payload, &accepted));
  return accepted;
}

Status RemoteVoterClient::CloseRound(const std::string& group, size_t round) {
  if (mode_ == Mode::kBinary) {
    AVOC_ASSIGN_OR_RETURN(
        const Frame frame,
        FrameRoundTrip(FrameType::kClose, EncodeClose(group, round)));
    if (frame.type != FrameType::kOk) {
      return IoError("unexpected frame in CLOSE reply");
    }
    return Status::Ok();
  }
  AVOC_ASSIGN_OR_RETURN(
      const std::string response,
      RoundTrip(StrFormat("CLOSE %s %zu", group.c_str(), round)));
  if (response != "OK") return IoError("unexpected response: " + response);
  return Status::Ok();
}

Status RemoteVoterClient::MigrateGroup(const std::string& group,
                                       uint64_t dest_node) {
  if (mode_ != Mode::kBinary) {
    return FailedPreconditionError(
        "MigrateGroup needs a binary connection (ConnectBinary)");
  }
  AVOC_ASSIGN_OR_RETURN(const Frame frame,
                        FrameRoundTrip(FrameType::kMigrateGroup,
                                       EncodeMigrateGroup(group, dest_node)));
  if (frame.type != FrameType::kOk) {
    return IoError("unexpected frame in MIGRATE_GROUP reply");
  }
  return Status::Ok();
}

Result<double> RemoteVoterClient::Query(const std::string& group) {
  if (mode_ == Mode::kBinary) {
    AVOC_ASSIGN_OR_RETURN(
        const Frame frame,
        FrameRoundTrip(FrameType::kQuery, EncodeQuery(group)));
    if (frame.type == FrameType::kNone) {
      return NotFoundError("no fused value yet");
    }
    if (frame.type != FrameType::kValue) {
      return IoError("unexpected frame in QUERY reply");
    }
    double value = 0.0;
    AVOC_RETURN_IF_ERROR(DecodeValue(frame.payload, &value));
    return value;
  }
  AVOC_ASSIGN_OR_RETURN(const std::string response,
                        RoundTrip("QUERY " + group));
  if (response == "NONE") return NotFoundError("no fused value yet");
  if (!StartsWith(response, "VALUE ")) {
    return IoError("unexpected response: " + response);
  }
  return ParseDouble(response.substr(6));
}

Result<std::vector<RangePoint>> RemoteVoterClient::QueryRange(
    const std::string& group, uint64_t lo_round, uint64_t hi_round) {
  if (mode_ != Mode::kBinary) {
    return UnsupportedError("QUERY_RANGE requires the binary protocol");
  }
  AVOC_ASSIGN_OR_RETURN(
      const Frame frame,
      FrameRoundTrip(FrameType::kQueryRange,
                     EncodeQueryRange(group, lo_round, hi_round)));
  if (frame.type != FrameType::kRangeResult) {
    return IoError("unexpected frame in QUERY_RANGE reply");
  }
  std::vector<RangePoint> points;
  AVOC_RETURN_IF_ERROR(DecodeRangeResult(frame.payload, &points));
  return points;
}

Result<RemoteVoterClient::RemoteHistory> RemoteVoterClient::HistoryGet(
    const std::string& group) {
  if (mode_ != Mode::kBinary) {
    return UnsupportedError("HISTORY_GET requires the binary protocol");
  }
  AVOC_ASSIGN_OR_RETURN(
      const Frame frame,
      FrameRoundTrip(FrameType::kHistoryGet, EncodeHistoryGet(group)));
  if (frame.type != FrameType::kHistory) {
    return IoError("unexpected frame in HISTORY_GET reply");
  }
  RemoteHistory history;
  AVOC_RETURN_IF_ERROR(
      DecodeHistoryState(frame.payload, &history.rounds, &history.records));
  return history;
}

Result<std::vector<std::string>> RemoteVoterClient::Groups() {
  if (mode_ == Mode::kBinary) {
    AVOC_ASSIGN_OR_RETURN(const Frame frame,
                          FrameRoundTrip(FrameType::kGroups));
    if (frame.type != FrameType::kGroupList) {
      return IoError("unexpected frame in GROUPS reply");
    }
    std::vector<std::string> groups;
    AVOC_RETURN_IF_ERROR(DecodeGroupList(frame.payload, &groups));
    return groups;
  }
  AVOC_ASSIGN_OR_RETURN(const std::string response, RoundTrip("GROUPS"));
  std::vector<std::string> tokens;
  for (const std::string& token : SplitString(response, ' ')) {
    if (!token.empty()) tokens.push_back(token);
  }
  if (tokens.size() < 2 || tokens[0] != "GROUPS") {
    return IoError("unexpected response: " + response);
  }
  return std::vector<std::string>(tokens.begin() + 2, tokens.end());
}

Status RemoteVoterClient::Ping() {
  if (mode_ == Mode::kBinary) {
    AVOC_ASSIGN_OR_RETURN(const Frame frame, FrameRoundTrip(FrameType::kPing));
    if (frame.type != FrameType::kPong) {
      return IoError("unexpected frame in PING reply");
    }
    return Status::Ok();
  }
  AVOC_ASSIGN_OR_RETURN(const std::string response, RoundTrip("PING"));
  if (response != "PONG") return IoError("unexpected response: " + response);
  return Status::Ok();
}

Result<std::vector<std::string>> RemoteVoterClient::RoundTripMultiLine(
    const std::string& line) {
  AVOC_RETURN_IF_ERROR(connection_->SendLine(line));
  std::vector<std::string> lines;
  while (true) {
    AVOC_ASSIGN_OR_RETURN(std::string response, connection_->ReceiveLine());
    if (response == "END") return lines;
    if (lines.empty() && StartsWith(response, "ERR ")) {
      return IoError("server: " + response.substr(4));
    }
    lines.push_back(std::move(response));
  }
}

Result<std::string> RemoteVoterClient::Metrics() {
  if (mode_ == Mode::kBinary) {
    AVOC_ASSIGN_OR_RETURN(const Frame frame,
                          FrameRoundTrip(FrameType::kMetrics));
    if (frame.type != FrameType::kText) {
      return IoError("unexpected frame in METRICS reply");
    }
    std::string text;
    AVOC_RETURN_IF_ERROR(DecodeText(frame.payload, &text));
    return text;
  }
  AVOC_ASSIGN_OR_RETURN(const std::vector<std::string> lines,
                        RoundTripMultiLine("METRICS"));
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  return text;
}

Result<std::string> RemoteVoterClient::TraceDump() {
  if (mode_ != Mode::kBinary) {
    return UnsupportedError("TRACE_DUMP requires the binary protocol");
  }
  AVOC_ASSIGN_OR_RETURN(const Frame frame,
                        FrameRoundTrip(FrameType::kTraceDump));
  if (frame.type != FrameType::kText) {
    return IoError("unexpected frame in TRACE_DUMP reply");
  }
  std::string text;
  AVOC_RETURN_IF_ERROR(DecodeText(frame.payload, &text));
  return text;
}

Result<std::vector<std::string>> RemoteVoterClient::Health() {
  std::vector<std::string> lines;
  if (mode_ == Mode::kBinary) {
    AVOC_ASSIGN_OR_RETURN(const Frame frame,
                          FrameRoundTrip(FrameType::kHealth));
    if (frame.type != FrameType::kText) {
      return IoError("unexpected frame in HEALTH reply");
    }
    std::string text;
    AVOC_RETURN_IF_ERROR(DecodeText(frame.payload, &text));
    for (const std::string& line : SplitString(text, '\n')) {
      if (!line.empty()) lines.push_back(line);
    }
  } else {
    AVOC_ASSIGN_OR_RETURN(lines, RoundTripMultiLine("HEALTH"));
  }
  if (lines.empty() || !StartsWith(lines[0], "HEALTH ")) {
    return IoError("unexpected response: " +
                   (lines.empty() ? std::string("<empty>") : lines[0]));
  }
  lines.erase(lines.begin());
  return lines;
}

}  // namespace avoc::runtime
