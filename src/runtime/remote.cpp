#include "runtime/remote.h"

#include "util/log.h"
#include "util/strings.h"

namespace avoc::runtime {

RemoteVoterServer::RemoteVoterServer(VoterGroupManager* manager,
                                     TcpListener listener)
    : manager_(manager), listener_(std::move(listener)) {}

Result<std::unique_ptr<RemoteVoterServer>> RemoteVoterServer::Start(
    VoterGroupManager* manager, uint16_t port) {
  if (manager == nullptr) {
    return InvalidArgumentError("server needs a group manager");
  }
  AVOC_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Listen(port));
  std::unique_ptr<RemoteVoterServer> server(
      new RemoteVoterServer(manager, std::move(listener)));
  server->acceptor_ = std::thread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

RemoteVoterServer::~RemoteVoterServer() { Stop(); }

void RemoteVoterServer::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  listener_.Close();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

void RemoteVoterServer::AcceptLoop() {
  while (running_.load()) {
    auto connection = listener_.Accept();
    if (!connection.ok()) {
      // Normal shutdown path: the listener was closed under us.
      if (running_.load()) {
        AVOC_LOG_WARN("voter server: accept failed: %s",
                      connection.status().ToString().c_str());
      }
      return;
    }
    std::lock_guard<std::mutex> lock(workers_mutex_);
    workers_.emplace_back(
        [this, conn = std::make_shared<TcpConnection>(
                   std::move(*connection))]() mutable {
          ServeConnection(std::move(*conn));
        });
  }
}

void RemoteVoterServer::ServeConnection(TcpConnection connection) {
  // A polling timeout lets the worker notice server shutdown.
  (void)connection.SetReceiveTimeoutMs(200);
  while (running_.load()) {
    auto line = connection.ReceiveLine();
    if (!line.ok()) {
      if (line.status().code() == ErrorCode::kNotFound) return;  // EOF
      continue;  // timeout tick; re-check running_
    }
    ++requests_;
    const std::string response = Handle(*line);
    if (!connection.SendLine(response).ok()) return;
    if (response == "BYE") return;
  }
}

std::string RemoteVoterServer::Handle(const std::string& line) {
  std::vector<std::string> tokens;
  for (const std::string& token : SplitString(TrimWhitespace(line), ' ')) {
    if (!token.empty()) tokens.push_back(token);
  }
  if (tokens.empty()) return "ERR empty request";
  const std::string& verb = tokens[0];

  if (verb == "PING") return "PONG";
  if (verb == "QUIT") return "BYE";

  if (verb == "METRICS") {
    obs::Registry* registry = manager_->registry();
    if (registry == nullptr) {
      return "ERR metrics disabled (manager has no registry)";
    }
    // Multi-line response: the exposition's own '\n'-terminated lines,
    // then the END sentinel (SendLine appends its newline).
    return registry->RenderPrometheus() + "END";
  }

  if (verb == "HEALTH") {
    const auto names = manager_->GroupNames();
    std::string response = StrFormat("HEALTH %zu\n", names.size());
    for (const std::string& name : names) {
      auto runner = manager_->runner(name);
      if (!runner.ok()) continue;  // group removed mid-iteration
      const Status voter_status = (*runner)->voter().last_status();
      response += StrFormat(
          "GROUP %s modules=%zu outputs=%zu open=%zu status=%s\n",
          name.c_str(), (*runner)->module_count(),
          (*runner)->sink().output_count(), (*runner)->hub().open_rounds(),
          voter_status.ok() ? "ok" : "error");
    }
    return response + "END";
  }

  if (verb == "GROUPS") {
    const auto names = manager_->GroupNames();
    std::string response = StrFormat("GROUPS %zu", names.size());
    for (const std::string& name : names) {
      response += " " + name;
    }
    return response;
  }

  if (verb == "SUBMIT") {
    if (tokens.size() != 5) return "ERR SUBMIT needs group module round value";
    auto module = ParseInt(tokens[2]);
    auto round = ParseInt(tokens[3]);
    auto value = ParseDouble(tokens[4]);
    if (!module.ok() || *module < 0) return "ERR bad module index";
    if (!round.ok() || *round < 0) return "ERR bad round number";
    if (!value.ok()) return "ERR bad value";
    const Status status =
        manager_->Submit(tokens[1], static_cast<size_t>(*module),
                         static_cast<size_t>(*round), *value);
    return status.ok() ? "OK" : "ERR " + status.ToString();
  }

  if (verb == "CLOSE") {
    if (tokens.size() != 3) return "ERR CLOSE needs group round";
    auto round = ParseInt(tokens[2]);
    if (!round.ok() || *round < 0) return "ERR bad round number";
    const Status status =
        manager_->CloseRound(tokens[1], static_cast<size_t>(*round));
    return status.ok() ? "OK" : "ERR " + status.ToString();
  }

  if (verb == "QUERY") {
    if (tokens.size() != 2) return "ERR QUERY needs group";
    auto sink = manager_->sink(tokens[1]);
    if (!sink.ok()) return "ERR " + sink.status().ToString();
    const auto value = (*sink)->last_value();
    if (!value.has_value()) return "NONE";
    return StrFormat("VALUE %.17g", *value);
  }

  return "ERR unknown verb '" + verb + "'";
}

Result<RemoteVoterClient> RemoteVoterClient::Connect(const std::string& host,
                                                     uint16_t port) {
  AVOC_ASSIGN_OR_RETURN(TcpConnection connection,
                        TcpConnection::Connect(host, port));
  return RemoteVoterClient(std::move(connection));
}

Result<std::string> RemoteVoterClient::RoundTrip(const std::string& line) {
  AVOC_RETURN_IF_ERROR(connection_.SendLine(line));
  AVOC_ASSIGN_OR_RETURN(std::string response, connection_.ReceiveLine());
  if (StartsWith(response, "ERR ")) {
    return IoError("server: " + response.substr(4));
  }
  return response;
}

Status RemoteVoterClient::Submit(const std::string& group, size_t module,
                                 size_t round, double value) {
  AVOC_ASSIGN_OR_RETURN(
      const std::string response,
      RoundTrip(StrFormat("SUBMIT %s %zu %zu %.17g", group.c_str(), module,
                          round, value)));
  if (response != "OK") return IoError("unexpected response: " + response);
  return Status::Ok();
}

Status RemoteVoterClient::CloseRound(const std::string& group, size_t round) {
  AVOC_ASSIGN_OR_RETURN(
      const std::string response,
      RoundTrip(StrFormat("CLOSE %s %zu", group.c_str(), round)));
  if (response != "OK") return IoError("unexpected response: " + response);
  return Status::Ok();
}

Result<double> RemoteVoterClient::Query(const std::string& group) {
  AVOC_ASSIGN_OR_RETURN(const std::string response,
                        RoundTrip("QUERY " + group));
  if (response == "NONE") return NotFoundError("no fused value yet");
  if (!StartsWith(response, "VALUE ")) {
    return IoError("unexpected response: " + response);
  }
  return ParseDouble(response.substr(6));
}

Result<std::vector<std::string>> RemoteVoterClient::Groups() {
  AVOC_ASSIGN_OR_RETURN(const std::string response, RoundTrip("GROUPS"));
  std::vector<std::string> tokens;
  for (const std::string& token : SplitString(response, ' ')) {
    if (!token.empty()) tokens.push_back(token);
  }
  if (tokens.size() < 2 || tokens[0] != "GROUPS") {
    return IoError("unexpected response: " + response);
  }
  return std::vector<std::string>(tokens.begin() + 2, tokens.end());
}

Status RemoteVoterClient::Ping() {
  AVOC_ASSIGN_OR_RETURN(const std::string response, RoundTrip("PING"));
  if (response != "PONG") return IoError("unexpected response: " + response);
  return Status::Ok();
}

Result<std::vector<std::string>> RemoteVoterClient::RoundTripMultiLine(
    const std::string& line) {
  AVOC_RETURN_IF_ERROR(connection_.SendLine(line));
  std::vector<std::string> lines;
  while (true) {
    AVOC_ASSIGN_OR_RETURN(std::string response, connection_.ReceiveLine());
    if (response == "END") return lines;
    if (lines.empty() && StartsWith(response, "ERR ")) {
      return IoError("server: " + response.substr(4));
    }
    lines.push_back(std::move(response));
  }
}

Result<std::string> RemoteVoterClient::Metrics() {
  AVOC_ASSIGN_OR_RETURN(const std::vector<std::string> lines,
                        RoundTripMultiLine("METRICS"));
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  return text;
}

Result<std::vector<std::string>> RemoteVoterClient::Health() {
  AVOC_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        RoundTripMultiLine("HEALTH"));
  if (lines.empty() || !StartsWith(lines[0], "HEALTH ")) {
    return IoError("unexpected response: " +
                   (lines.empty() ? std::string("<empty>") : lines[0]));
  }
  lines.erase(lines.begin());
  return lines;
}

}  // namespace avoc::runtime
