// Threaded voter service — the "shoe-box demonstrator" analogue (Fig. 2).
//
// A thin adapter over GroupRunner (group_runner.h): each scheduler tick
// fans sampling out through EmitAsync, closes the round at the timeout
// with FlushRound, and joins the workers.  Each sensor samples from its
// own thread at a configurable rate; late/absent sensors become missing
// values; the voter fuses and the sink records, all live.  This is the
// soft real-time configuration the paper's implementation notes describe;
// the deterministic experiments use runtime/pipeline.h instead.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "runtime/group_runner.h"
#include "util/status.h"

namespace avoc::runtime {

/// VoterService configuration.
struct ServiceOptions {
  /// Round cadence (the paper's UC-1 polls at 8 samples/s).
  std::chrono::milliseconds round_period{125};
  /// How long after opening a round the hub force-closes it.
  std::chrono::milliseconds round_timeout{100};
  storage::HistoryBackend* store = nullptr;
  /// Persist every sink row as a trace point (optional).
  storage::TraceBackend* trace_store = nullptr;
  std::string group = "live";
  /// Telemetry registry (optional); forwarded to the GroupRunner and used
  /// for the service-level gauges.  Must outlive the service.
  obs::Registry* registry = nullptr;
};

class VoterService {
 public:

  /// `samplers` produce the live value per module; they are called from
  /// per-sensor worker threads.  (Heap-allocated because the service owns
  /// non-movable thread/atomic state.)
  static Result<std::unique_ptr<VoterService>> Create(
      std::vector<SensorNode::Generator> samplers, core::VotingEngine engine,
      ServiceOptions options = {});

  VoterService(const VoterService&) = delete;
  VoterService& operator=(const VoterService&) = delete;

  ~VoterService();

  /// Starts the sensor threads and the round scheduler.  Idempotent while
  /// running, and well-defined after Stop(): the service restarts and
  /// round numbering continues where the previous run left off (the
  /// voter's history carries across the restart).
  Status Start();

  /// Stops the scheduler and drains the in-flight round: the round that
  /// was open when Stop() was called is flushed and its output reaches
  /// the sink before Stop() returns.  No-op if already stopped.
  void Stop();

  bool running() const { return running_.load(); }

  /// Rounds opened by the scheduler so far (every opened round is flushed
  /// to the sink before the scheduler exits).
  size_t rounds_opened() const { return current_round_.load(); }

  /// Rounds closed so far.
  size_t rounds_completed() const;

  const SinkNode& sink() const { return runner_->sink(); }
  const GroupRunner& runner() const { return *runner_; }

 private:
  VoterService(std::unique_ptr<GroupRunner> runner, ServiceOptions options);

  void SchedulerLoop();

  ServiceOptions options_;
  std::unique_ptr<GroupRunner> runner_;
  obs::Gauge* running_gauge_ = nullptr;          ///< null when unobserved
  obs::Counter* rounds_opened_counter_ = nullptr;

  // Serializes Start/Stop so a restart never races the old scheduler.
  std::mutex lifecycle_mutex_;
  std::atomic<bool> running_{false};
  std::atomic<size_t> current_round_{0};
  std::thread scheduler_;
};

}  // namespace avoc::runtime
