// Threaded voter service — the "shoe-box demonstrator" analogue (Fig. 2).
//
// Each sensor samples from its own thread at a configurable rate; the hub
// closes rounds on a timer (late/absent sensors become missing values);
// the voter fuses and the sink records, all live.  This is the soft
// real-time configuration the paper's implementation notes describe; the
// deterministic experiments use runtime/pipeline.h instead.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "runtime/nodes.h"
#include "util/status.h"

namespace avoc::runtime {

/// VoterService configuration.
struct ServiceOptions {
  /// Round cadence (the paper's UC-1 polls at 8 samples/s).
  std::chrono::milliseconds round_period{125};
  /// How long after opening a round the hub force-closes it.
  std::chrono::milliseconds round_timeout{100};
  HistoryStore* store = nullptr;
  std::string group = "live";
};

class VoterService {
 public:

  /// `samplers` produce the live value per module; they are called from
  /// per-sensor worker threads.  (Heap-allocated because the service owns
  /// non-movable thread/atomic state.)
  static Result<std::unique_ptr<VoterService>> Create(
      std::vector<SensorNode::Generator> samplers, core::VotingEngine engine,
      ServiceOptions options = {});

  VoterService(const VoterService&) = delete;
  VoterService& operator=(const VoterService&) = delete;

  ~VoterService();

  /// Starts the sensor threads and the round scheduler.  No-op if running.
  void Start();

  /// Stops all threads and drains in-flight rounds.  No-op if stopped.
  void Stop();

  bool running() const { return running_.load(); }

  /// Rounds closed so far.
  size_t rounds_completed() const;

  const SinkNode& sink() const { return *sink_; }

 private:
  VoterService(std::vector<SensorNode::Generator> samplers,
               core::VotingEngine engine, ServiceOptions options);

  void SchedulerLoop();

  ServiceOptions options_;
  std::unique_ptr<GroupChannels> channels_;
  std::vector<std::unique_ptr<SensorNode>> sensors_;
  std::unique_ptr<HubNode> hub_;
  std::unique_ptr<VoterNode> voter_;
  std::unique_ptr<SinkNode> sink_;

  std::atomic<bool> running_{false};
  std::atomic<size_t> current_round_{0};
  std::thread scheduler_;
};

}  // namespace avoc::runtime
