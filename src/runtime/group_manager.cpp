#include "runtime/group_manager.h"

#include "vdx/factory.h"

namespace avoc::runtime {

VoterGroupManager::VoterGroupManager(storage::HistoryBackend* store,
                                     obs::Registry* registry,
                                     storage::TraceBackend* trace_store,
                                     obs::Tracer* tracer)
    : store_(store),
      registry_(registry),
      trace_store_(trace_store),
      tracer_(tracer) {}

Status VoterGroupManager::AddGroup(const std::string& name,
                                   core::VotingEngine engine) {
  if (name.empty()) return InvalidArgumentError("group name must not be empty");
  if (groups_.count(name)) {
    return InvalidArgumentError("group '" + name + "' already exists");
  }
  GroupRunner::Options options;
  options.group = name;
  options.store = store_;
  options.trace_store = trace_store_;
  options.registry = registry_;
  options.tracer = tracer_;
  AVOC_ASSIGN_OR_RETURN(
      std::unique_ptr<GroupRunner> runner,
      GroupRunner::Create(std::move(engine), std::move(options)));
  groups_.emplace(name, std::move(runner));
  return Status::Ok();
}

Status VoterGroupManager::AddGroupFromSpec(const std::string& name,
                                           const vdx::Spec& spec,
                                           size_t modules) {
  AVOC_ASSIGN_OR_RETURN(core::VotingEngine engine,
                        vdx::MakeVoter(spec, modules));
  return AddGroup(name, std::move(engine));
}

bool VoterGroupManager::HasGroup(const std::string& name) const {
  return groups_.count(name) > 0;
}

std::vector<std::string> VoterGroupManager::GroupNames() const {
  std::vector<std::string> names;
  names.reserve(groups_.size());
  for (const auto& [name, runner] : groups_) {
    (void)runner;
    names.push_back(name);
  }
  return names;
}

Status VoterGroupManager::RemoveGroup(const std::string& name) {
  auto it = groups_.find(name);
  if (it == groups_.end()) {
    return NotFoundError("no voter group named '" + name + "'");
  }
  groups_.erase(it);
  return Status::Ok();
}

Result<GroupRunner::State> VoterGroupManager::ExportGroupState(
    const std::string& name) const {
  AVOC_ASSIGN_OR_RETURN(GroupRunner * runner, Find(name));
  return runner->ExportState();
}

Status VoterGroupManager::RestoreGroupState(const std::string& name,
                                            const GroupRunner::State& state) {
  AVOC_ASSIGN_OR_RETURN(GroupRunner * runner, Find(name));
  return runner->RestoreState(state);
}

Result<GroupRunner*> VoterGroupManager::Find(const std::string& name) const {
  auto it = groups_.find(name);
  if (it == groups_.end()) {
    return NotFoundError("no voter group named '" + name + "'");
  }
  return it->second.get();
}

Status VoterGroupManager::Submit(const std::string& group, size_t module,
                                 size_t round, double value) {
  AVOC_ASSIGN_OR_RETURN(GroupRunner * runner, Find(group));
  return runner->Submit(module, round, value);
}

Result<BatchIngestStats> VoterGroupManager::SubmitBatch(
    const std::string& group, std::span<const ReadingMessage> readings) {
  AVOC_ASSIGN_OR_RETURN(GroupRunner * runner, Find(group));
  return runner->SubmitBatch(readings);
}

Status VoterGroupManager::CloseRound(const std::string& group, size_t round) {
  AVOC_ASSIGN_OR_RETURN(GroupRunner * runner, Find(group));
  runner->FlushRound(round);
  return Status::Ok();
}

void VoterGroupManager::CloseRoundAll(size_t round) {
  for (auto& [name, runner] : groups_) {
    (void)name;
    runner->FlushRound(round);
  }
}

Result<const SinkNode*> VoterGroupManager::sink(
    const std::string& group) const {
  AVOC_ASSIGN_OR_RETURN(GroupRunner * runner, Find(group));
  return &runner->sink();
}

Result<const VoterNode*> VoterGroupManager::voter(
    const std::string& group) const {
  AVOC_ASSIGN_OR_RETURN(GroupRunner * runner, Find(group));
  return &runner->voter();
}

Result<const GroupRunner*> VoterGroupManager::runner(
    const std::string& group) const {
  AVOC_ASSIGN_OR_RETURN(GroupRunner * found, Find(group));
  return found;
}

}  // namespace avoc::runtime
