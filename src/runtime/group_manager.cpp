#include "runtime/group_manager.h"

#include "vdx/factory.h"

namespace avoc::runtime {

VoterGroupManager::VoterGroupManager(HistoryStore* store) : store_(store) {}

Status VoterGroupManager::AddGroup(const std::string& name,
                                   core::VotingEngine engine) {
  if (name.empty()) return InvalidArgumentError("group name must not be empty");
  if (groups_.count(name)) {
    return InvalidArgumentError("group '" + name + "' already exists");
  }
  Group group;
  group.channels = std::make_unique<GroupChannels>();
  group.hub =
      std::make_unique<HubNode>(engine.module_count(), *group.channels);
  VoterOptions options;
  options.group = name;
  options.store = store_;
  group.voter = std::make_unique<VoterNode>(std::move(engine),
                                            *group.channels, options);
  group.sink = std::make_unique<SinkNode>(*group.channels);
  groups_.emplace(name, std::move(group));
  return Status::Ok();
}

Status VoterGroupManager::AddGroupFromSpec(const std::string& name,
                                           const vdx::Spec& spec,
                                           size_t modules) {
  AVOC_ASSIGN_OR_RETURN(core::VotingEngine engine,
                        vdx::MakeVoter(spec, modules));
  return AddGroup(name, std::move(engine));
}

bool VoterGroupManager::HasGroup(const std::string& name) const {
  return groups_.count(name) > 0;
}

std::vector<std::string> VoterGroupManager::GroupNames() const {
  std::vector<std::string> names;
  names.reserve(groups_.size());
  for (const auto& [name, group] : groups_) {
    (void)group;
    names.push_back(name);
  }
  return names;
}

Result<const VoterGroupManager::Group*> VoterGroupManager::Find(
    const std::string& name) const {
  auto it = groups_.find(name);
  if (it == groups_.end()) {
    return NotFoundError("no voter group named '" + name + "'");
  }
  return &it->second;
}

Status VoterGroupManager::Submit(const std::string& group, size_t module,
                                 size_t round, double value) {
  AVOC_ASSIGN_OR_RETURN(const Group* g, Find(group));
  if (module >= g->hub->module_count()) {
    return OutOfRangeError("module index out of range for group '" + group +
                           "'");
  }
  g->channels->readings.Publish(ReadingMessage{module, round, value});
  return Status::Ok();
}

Status VoterGroupManager::CloseRound(const std::string& group, size_t round) {
  AVOC_ASSIGN_OR_RETURN(const Group* g, Find(group));
  g->hub->Flush(round, /*publish_empty=*/true);
  return Status::Ok();
}

void VoterGroupManager::CloseRoundAll(size_t round) {
  for (auto& [name, group] : groups_) {
    (void)name;
    group.hub->Flush(round, /*publish_empty=*/true);
  }
}

Result<const SinkNode*> VoterGroupManager::sink(
    const std::string& group) const {
  AVOC_ASSIGN_OR_RETURN(const Group* g, Find(group));
  return static_cast<const SinkNode*>(g->sink.get());
}

Result<const VoterNode*> VoterGroupManager::voter(
    const std::string& group) const {
  AVOC_ASSIGN_OR_RETURN(const Group* g, Find(group));
  return static_cast<const VoterNode*>(g->voter.get());
}

}  // namespace avoc::runtime
