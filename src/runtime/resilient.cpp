#include "runtime/resilient.h"

#include <algorithm>
#include <utility>

#include "util/strings.h"

namespace avoc::runtime {

ResilientVoterClient::ResilientVoterClient(TransportFactory factory,
                                           Clock* clock, std::string client_id,
                                           RetryPolicy policy, uint64_t seed,
                                           obs::Registry* registry,
                                           obs::Tracer* tracer)
    : factory_(std::move(factory)),
      clock_(clock),
      client_id_(std::move(client_id)),
      policy_(policy),
      rng_(seed),
      tracer_(tracer) {
  if (registry != nullptr) {
    connects_metric_ = &registry->GetCounter("avoc_client_connects_total");
    reconnects_metric_ = &registry->GetCounter("avoc_client_reconnects_total");
    connect_failures_metric_ =
        &registry->GetCounter("avoc_client_connect_failures_total");
    timeouts_metric_ =
        &registry->GetCounter("avoc_client_request_timeouts_total");
    retry_attempts_metric_ =
        &registry->GetCounter("avoc_remote_retry_attempts_total");
    retry_backoff_ms_metric_ =
        &registry->GetCounter("avoc_remote_retry_backoff_ms_total");
    retry_giveups_metric_ =
        &registry->GetCounter("avoc_remote_retry_giveups_total");
    redirects_metric_ =
        &registry->GetCounter("avoc_client_redirects_total");
  }
}

void ResilientVoterClient::UseNodeDirectory(NodeDialer dialer,
                                            size_t node_count,
                                            size_t initial_node) {
  node_dialer_ = std::move(dialer);
  node_count_ = node_count;
  target_node_ = node_count == 0 ? 0 : initial_node % node_count;
  DropConnection();
}

Result<std::unique_ptr<Transport>> ResilientVoterClient::Dial() {
  if (node_dialer_) return node_dialer_(target_node_);
  return factory_();
}

bool ResilientVoterClient::IsTransportError(const Status& status) {
  if (status.ok()) return false;
  if (status.code() == ErrorCode::kIoError) return true;
  // The blocking receive path reports orderly EOF as NotFound
  // ("connection closed"); application NotFound (e.g. QUERY with no value
  // yet) must NOT be retried.
  return status.code() == ErrorCode::kNotFound &&
         status.message().find("connection closed") != std::string::npos;
}

void ResilientVoterClient::DropConnection() { client_.reset(); }

void ResilientVoterClient::Backoff(int attempt, uint64_t deadline_at_ms) {
  double backoff = static_cast<double>(policy_.initial_backoff_ms);
  for (int i = 0; i < attempt; ++i) backoff *= policy_.backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(policy_.max_backoff_ms));
  if (policy_.jitter > 0) {
    backoff *= 1.0 + policy_.jitter * (2.0 * rng_.NextDouble() - 1.0);
  }
  uint64_t sleep_ms = static_cast<uint64_t>(std::max(backoff, 0.0));
  const uint64_t now = clock_->NowMs();
  if (now >= deadline_at_ms) return;
  sleep_ms = std::min(sleep_ms, deadline_at_ms - now);
  if (sleep_ms == 0) return;
  if (retry_backoff_ms_metric_ != nullptr) {
    retry_backoff_ms_metric_->Add(sleep_ms);
  }
  if (tracer_ != nullptr) {
    tracer_->Event("client.backoff",
                   StrFormat("attempt=%d sleep_ms=%llu", attempt,
                             static_cast<unsigned long long>(sleep_ms)));
  }
  clock_->SleepMs(sleep_ms);
}

Status ResilientVoterClient::EnsureConnected(uint64_t deadline_at_ms,
                                             int* attempt) {
  if (client_.has_value()) return Status::Ok();
  Status last = IoError("never attempted");
  while (policy_.max_attempts == 0 || *attempt < policy_.max_attempts) {
    Result<std::unique_ptr<Transport>> transport = Dial();
    if (!transport.ok() && node_dialer_ && node_count_ > 1) {
      // Cluster mode: the target may simply be down (crash before
      // failover) — rotate so the next dial lands on a living node,
      // which answers directly or redirects to the owner.
      target_node_ = (target_node_ + 1) % node_count_;
    }
    if (transport.ok()) {
      Result<RemoteVoterClient> client =
          RemoteVoterClient::FromTransport(std::move(*transport),
                                           /*binary=*/true);
      if (client.ok()) {
        AVOC_RETURN_IF_ERROR(
            client->SetRequestTimeoutMs(policy_.request_timeout_ms));
        client_.emplace(std::move(*client));
        ++connects_;
        if (connects_metric_ != nullptr) connects_metric_->Increment();
        if (connects_ > 1) {
          ++reconnects_;
          if (reconnects_metric_ != nullptr) reconnects_metric_->Increment();
        }
        return Status::Ok();
      }
      last = client.status();
    } else {
      last = transport.status();
    }
    ++connect_failures_;
    if (connect_failures_metric_ != nullptr) {
      connect_failures_metric_->Increment();
    }
    if (clock_->NowMs() >= deadline_at_ms) break;
    Backoff((*attempt)++, deadline_at_ms);
    if (clock_->NowMs() >= deadline_at_ms) break;
  }
  ++giveups_;
  if (retry_giveups_metric_ != nullptr) retry_giveups_metric_->Increment();
  return IoError(
      StrFormat("resilient client gave up connecting: %s",
                last.message().c_str()));
}

Status ResilientVoterClient::Execute(
    const std::function<Status(RemoteVoterClient&)>& op,
    const obs::SpanContext& parent, const char* op_name) {
  const uint64_t deadline_at_ms = clock_->NowMs() + policy_.deadline_ms;
  int attempt = 0;
  int tries = 0;
  size_t redirects = 0;
  Status last = IoError("never attempted");
  while (policy_.max_attempts == 0 || attempt < policy_.max_attempts) {
    Status conn = EnsureConnected(deadline_at_ms, &attempt);
    if (!conn.ok()) return conn;
    Status status;
    {
      // Each attempt is its own child span; the wire context the op
      // stamps (via CurrentTraceSpan) parents server work under it, so
      // a retried submit shows every attempt and which one the server
      // answered from dedup.
      obs::ScopedSpan attempt_span(op_name != nullptr ? tracer_ : nullptr,
                                   obs::SpanKind::kClient, "client.attempt",
                                   parent);
      status = op(*client_);
      if (attempt_span.active()) {
        attempt_span.SetDetailF(
            "op=%s attempt=%d resend=%s outcome=%s", op_name, tries,
            tries > 0 ? "yes" : "no",
            status.ok() ? "ok"
                        : (IsTransportError(status) ? "transport_error"
                                                    : "app_error"));
      }
    }
    ++tries;
    if (uint64_t moved_node = 0; TryParseMoved(status, &moved_node)) {
      // The group lives elsewhere: re-target and re-dial immediately.
      // The op keeps its captures (same sequence number for submits), so
      // following the redirect preserves exactly-once.
      ++redirects_followed_;
      if (redirects_metric_ != nullptr) redirects_metric_->Increment();
      if (tracer_ != nullptr) {
        tracer_->Event("client.redirect",
                       StrFormat("node=%llu redirect=%zu",
                                 static_cast<unsigned long long>(moved_node),
                                 redirects + 1));
      }
      if (++redirects > policy_.max_redirects) {
        ++giveups_;
        if (retry_giveups_metric_ != nullptr) {
          retry_giveups_metric_->Increment();
        }
        return FailedPreconditionError(StrFormat(
            "redirect loop: followed %zu MOVED redirects (max_redirects=%zu)",
            redirects - 1, policy_.max_redirects));
      }
      if (node_dialer_ && node_count_ > 0) {
        target_node_ = static_cast<size_t>(moved_node % node_count_);
      }
      DropConnection();
      continue;  // no backoff, no attempt consumed
    }
    if (status.ok() || !IsTransportError(status)) return status;
    // Transport failure: the connection is unusable; reconnect and retry.
    last = status;
    if (status.message().find("timed out") != std::string::npos) {
      ++request_timeouts_;
      if (timeouts_metric_ != nullptr) timeouts_metric_->Increment();
    }
    DropConnection();
    ++retry_attempts_;
    if (retry_attempts_metric_ != nullptr) retry_attempts_metric_->Increment();
    if (clock_->NowMs() >= deadline_at_ms) break;
    Backoff(attempt++, deadline_at_ms);
    if (clock_->NowMs() >= deadline_at_ms) break;
  }
  ++giveups_;
  if (retry_giveups_metric_ != nullptr) retry_giveups_metric_->Increment();
  return IoError(StrFormat("resilient client gave up: %s",
                           last.message().c_str()));
}

Result<uint64_t> ResilientVoterClient::SubmitBatch(
    const std::string& group, std::span<const BatchReading> readings) {
  // The sequence number is assigned ONCE; every retry reuses it, so the
  // server's dedup cache makes the submit exactly-once.
  const uint64_t seq = next_seq_++;
  // Sampled calls open a root span whose trace id is derived from
  // (client_id, seq) — stable across retries AND across same-seed
  // simulation runs, so DST trace dumps are byte-identical.
  const bool traced = tracer_ != nullptr && policy_.trace_sample_every != 0 &&
                      (seq % policy_.trace_sample_every) == 0;
  obs::SpanContext root_parent;
  if (traced) {
    root_parent.trace_id = obs::Tracer::DeriveTraceId(client_id_, seq);
    root_parent.flags = 1;
  }
  obs::ScopedSpan root(traced ? tracer_ : nullptr, obs::SpanKind::kClient,
                       "client.submit_batch", root_parent,
                       StrFormat("group=%s seq=%llu", group.c_str(),
                                 static_cast<unsigned long long>(seq)));
  uint64_t accepted = 0;
  AVOC_RETURN_IF_ERROR(Execute(
      [&](RemoteVoterClient& client) -> Status {
        // Stamp the attempt span (current on this thread) into the wire
        // trace-context field so the server's span tree joins this trace.
        WireTraceContext wire;
        const WireTraceContext* wire_ptr = nullptr;
        if (const obs::CurrentSpan current = obs::CurrentTraceSpan();
            current.tracer == tracer_ && tracer_ != nullptr &&
            current.context.valid()) {
          wire.trace_id = current.context.trace_id;
          wire.parent_span_id = current.context.span_id;
          wire.flags = current.context.flags;
          wire_ptr = &wire;
        }
        AVOC_ASSIGN_OR_RETURN(accepted,
                              client.SubmitBatchSeq(client_id_, seq, group,
                                                    readings, wire_ptr));
        return Status::Ok();
      },
      root.context(), traced ? "submit_batch" : nullptr));
  return accepted;
}

Result<double> ResilientVoterClient::Query(const std::string& group) {
  double value = 0.0;
  AVOC_RETURN_IF_ERROR(Execute([&](RemoteVoterClient& client) -> Status {
    AVOC_ASSIGN_OR_RETURN(value, client.Query(group));
    return Status::Ok();
  }));
  return value;
}

Result<std::vector<RangePoint>> ResilientVoterClient::QueryRange(
    const std::string& group, uint64_t lo_round, uint64_t hi_round) {
  std::vector<RangePoint> points;
  AVOC_RETURN_IF_ERROR(Execute([&](RemoteVoterClient& client) -> Status {
    AVOC_ASSIGN_OR_RETURN(points, client.QueryRange(group, lo_round, hi_round));
    return Status::Ok();
  }));
  return points;
}

Result<RemoteVoterClient::RemoteHistory> ResilientVoterClient::HistoryGet(
    const std::string& group) {
  RemoteVoterClient::RemoteHistory history;
  AVOC_RETURN_IF_ERROR(Execute([&](RemoteVoterClient& client) -> Status {
    AVOC_ASSIGN_OR_RETURN(history, client.HistoryGet(group));
    return Status::Ok();
  }));
  return history;
}

Status ResilientVoterClient::Ping() {
  return Execute(
      [](RemoteVoterClient& client) -> Status { return client.Ping(); });
}

}  // namespace avoc::runtime
