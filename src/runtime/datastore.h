// History datastore (legacy JSON backend).
//
// The paper's implementation notes call out "datastore reads and writes
// being the bottleneck" of a history-aware voting round: the per-module
// reliability records live in a store so that a voter service can restart
// (or migrate between edge nodes) without losing its learned history.
//
// HistoryStore is the original key-value store of history snapshots keyed
// by voter-group name, with an in-memory backend and an optional JSON
// file backend persisted through durable atomic rename.  It implements
// storage::HistoryBackend, the seam the runtime is wired through — new
// deployments should prefer storage::StorageEngine (WAL + compressed
// chunks, see docs/STORAGE.md); this import path stays for existing JSON
// stores and as the bench_storage baseline.  avoc_storectl migrates one
// format to the other.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/backend.h"
#include "util/status.h"

namespace avoc::runtime {

/// One persisted history snapshot (alias of the seam's type).
using HistorySnapshot = storage::HistorySnapshot;

class HistoryStore : public storage::HistoryBackend {
 public:
  /// Pure in-memory store.
  HistoryStore() = default;

  /// File-backed store: loads `path` when it exists; every Put rewrites
  /// the file.  The file holds one JSON object {group: {records, rounds}}.
  static Result<HistoryStore> Open(const std::string& path);

  HistoryStore(HistoryStore&&) = default;
  HistoryStore& operator=(HistoryStore&&) = default;

  /// Writes (replaces) the snapshot of `group`.
  Status Put(const std::string& group,
             const HistorySnapshot& snapshot) override;

  /// Reads the snapshot of `group`; NotFound when absent.
  Result<HistorySnapshot> Get(const std::string& group) const override;

  /// Removes `group`; returns whether it existed.  A failed flush of the
  /// backing file is an error (the group would silently resurrect on the
  /// next load otherwise).
  Result<bool> Erase(const std::string& group) override;

  /// All group names, sorted.
  std::vector<std::string> Groups() const override;

  size_t size() const override;

 private:
  Status Flush() const;  // requires mutex_ held

  // Heap-held so the store stays movable (Open returns by value).
  mutable std::unique_ptr<std::mutex> mutex_ =
      std::make_unique<std::mutex>();
  std::map<std::string, HistorySnapshot> snapshots_;
  std::string path_;  // empty for in-memory stores
};

}  // namespace avoc::runtime
