// History datastore.
//
// The paper's implementation notes call out "datastore reads and writes
// being the bottleneck" of a history-aware voting round: the per-module
// reliability records live in a store so that a voter service can restart
// (or migrate between edge nodes) without losing its learned history.
//
// HistoryStore is a small key-value store of history snapshots keyed by
// voter-group name, with an in-memory backend and an optional JSON file
// backend that persists through atomic rename.  bench_latency measures a
// voting round with and without store round-trips to reproduce the
// stateless-vs-history-aware latency gap.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace avoc::runtime {

/// One persisted history snapshot.
struct HistorySnapshot {
  std::vector<double> records;  ///< per-module reliability records
  size_t rounds = 0;            ///< rounds absorbed when snapshotted
};

class HistoryStore {
 public:
  /// Pure in-memory store.
  HistoryStore() = default;

  /// File-backed store: loads `path` when it exists; every Put rewrites
  /// the file.  The file holds one JSON object {group: {records, rounds}}.
  static Result<HistoryStore> Open(const std::string& path);

  /// Writes (replaces) the snapshot of `group`.
  Status Put(const std::string& group, const HistorySnapshot& snapshot);

  /// Reads the snapshot of `group`; NotFound when absent.
  Result<HistorySnapshot> Get(const std::string& group) const;

  /// Removes `group`; returns whether it existed.
  bool Erase(const std::string& group);

  /// All group names, sorted.
  std::vector<std::string> Groups() const;

  size_t size() const;

 private:
  Status Flush() const;  // requires mutex_ held

  // Heap-held so the store stays movable (Open returns by value).
  mutable std::unique_ptr<std::mutex> mutex_ =
      std::make_unique<std::mutex>();
  std::map<std::string, HistorySnapshot> snapshots_;
  std::string path_;  // empty for in-memory stores
};

}  // namespace avoc::runtime
