// Sharded multi-group batch execution.
//
// The paper's smart-shopping motivation is one voter group per shelf —
// hundreds of independent fusion problems with identical configuration.
// MultiGroupEngine owns N VotingEngines compiled from one EngineConfig
// (they share the immutable stage pipeline), keeps every group's history
// records in one contiguous group-major block for cache-friendly
// persistence snapshots, and runs batch workloads across groups on a
// worker pool (util/thread_pool.h): groups are independent, so each
// worker drives whole groups with no cross-group synchronisation.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/batch.h"
#include "core/engine.h"
#include "data/round_table.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "vdx/spec.h"

namespace avoc::runtime {

/// MultiGroupEngine configuration.
struct MultiGroupOptions {
  /// Worker threads for RunBatch (0 = one per hardware thread).
  size_t threads = 0;
};

class MultiGroupEngine {
 public:
  /// `group_count` identical engines of `module_count` modules each.
  static Result<MultiGroupEngine> Create(size_t group_count,
                                         size_t module_count,
                                         const core::EngineConfig& config,
                                         MultiGroupOptions options = {});

  /// Groups configured from a VDX definition.
  static Result<MultiGroupEngine> FromSpec(const vdx::Spec& spec,
                                           size_t group_count,
                                           size_t module_count,
                                           MultiGroupOptions options = {});

  MultiGroupEngine(MultiGroupEngine&&) = default;
  MultiGroupEngine& operator=(MultiGroupEngine&&) = default;

  size_t group_count() const { return engines_.size(); }
  size_t module_count() const { return module_count_; }

  core::VotingEngine& group(size_t g) { return engines_[g]; }
  const core::VotingEngine& group(size_t g) const { return engines_[g]; }

  /// Runs one table per group across the worker pool and returns one
  /// BatchResult per group (same order).  Requires tables.size() ==
  /// group_count() and every table to have module_count() modules.
  /// Groups are sharded across workers; the history block is synced
  /// before returning.
  Result<std::vector<core::BatchResult>> RunBatch(
      std::span<const data::RoundTable> tables);

  /// Same contract as RunBatch on the calling thread only — the
  /// correctness baseline for the parallel path (bit-for-bit identical
  /// results) and its speedup reference.
  Result<std::vector<core::BatchResult>> RunBatchSequential(
      std::span<const data::RoundTable> tables);

  // --- Contiguous history block --------------------------------------------
  //
  // Group-major layout: record of module m in group g lives at
  // [g * module_count() + m].  One snapshot of the whole deployment is a
  // single contiguous copy — the unit a datastore round-trip works in.

  /// The block as of the last SyncHistory / RunBatch / RestoreAll.
  std::span<const double> history_block() const { return history_block_; }

  /// One group's slice of the block.
  std::span<const double> GroupHistory(size_t g) const;

  /// Copies every engine's live ledger into the block.
  void SyncHistory();

  /// Restores every group's ledger from a full block (datastore restore);
  /// `rounds` is the per-group absorbed-round count.
  Status RestoreAll(std::span<const double> block, size_t rounds);

  /// Resets every group to a fresh set and re-syncs the block.
  void ResetAll();

 private:
  MultiGroupEngine(std::vector<core::VotingEngine> engines,
                   size_t module_count, MultiGroupOptions options);

  Status ValidateTables(std::span<const data::RoundTable> tables) const;

  size_t module_count_ = 0;
  MultiGroupOptions options_;
  std::vector<core::VotingEngine> engines_;
  /// Group-major record snapshot; see the layout note above.
  std::vector<double> history_block_;
  /// Created on first RunBatch; sequential use never pays for threads.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace avoc::runtime
