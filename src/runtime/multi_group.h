// Sharded multi-group batch execution.
//
// The paper's smart-shopping motivation is one voter group per shelf —
// hundreds of independent fusion problems with identical configuration.
// MultiGroupEngine owns N VotingEngines compiled from one EngineConfig
// (they share the immutable stage pipeline), keeps every group's history
// records in one contiguous group-major block for cache-friendly
// persistence snapshots, and runs batch workloads across groups on a
// worker pool (util/thread_pool.h): groups are independent, so each
// worker drives whole groups with no cross-group synchronisation.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/batch.h"
#include "core/engine.h"
#include "core/trace.h"
#include "data/round_table.h"
#include "obs/stage_metrics.h"
#include "storage/backend.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "vdx/spec.h"

namespace avoc::runtime {

/// MultiGroupEngine configuration.
struct MultiGroupOptions {
  /// Worker threads for RunBatch (0 = one per hardware thread).
  size_t threads = 0;
  /// Telemetry registry (optional).  When set, every group gets an
  /// obs::MetricsObserver; groups map onto `metrics_shards` metric scopes
  /// (labeled shard="s0".."s<n-1>") so a wide deployment does not create
  /// hundreds of metric families.  The registry must outlive the engine.
  obs::Registry* registry = nullptr;
  /// Metric scopes the groups are folded into.
  size_t metrics_shards = 4;
  /// Stage/round latency sampling period per group (0 = counters only).
  /// A sampled round pays ~10 clock reads, so at sub-microsecond round
  /// times the period sets the telemetry overhead almost by itself; 256
  /// keeps batch overhead around a percent on syscall-priced clocks.
  size_t metrics_sample_every = 256;
};

/// Aggregated telemetry across every group of a MultiGroupEngine —
/// per-shard registry counters summed back into one deployment view.
struct MultiGroupStats {
  uint64_t rounds = 0;
  uint64_t voted = 0;
  uint64_t reverted = 0;
  uint64_t no_output = 0;
  uint64_t errors = 0;
  uint64_t excluded_modules = 0;
  uint64_t eliminated_modules = 0;
  uint64_t clustered_rounds = 0;
  uint64_t history_collapse = 0;
  uint64_t quorum_failures = 0;
  uint64_t majority_failures = 0;
  /// Sampled per-round latency merged across shards.
  obs::LatencySnapshot round_latency;
};

/// Results of one multi-group batch as a single group-major SoA block:
/// group g's rounds occupy the contiguous row range
/// [round_offset(g), round_offset(g + 1)) of every column, so the whole
/// deployment's outputs live in one allocation and each worker writes a
/// disjoint slice with no synchronisation.  Reusable: a second RunBatch
/// into the same trace reuses the block when the shape still fits.
class MultiGroupTrace {
 public:
  MultiGroupTrace() = default;

  size_t group_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t module_count() const { return modules_; }
  /// Rounds across all groups (the row count of the block).
  size_t total_rounds() const { return offsets_.empty() ? 0 : offsets_.back(); }

  /// First block row of group g; offsets are prefix sums, so
  /// round_offset(group_count()) == total_rounds().
  size_t round_offset(size_t g) const { return offsets_[g]; }
  size_t group_rounds(size_t g) const { return offsets_[g + 1] - offsets_[g]; }

  /// Read surface of group g's slice: a plain TraceView, indexed by the
  /// group-local round number.
  core::TraceView group(size_t g) const;

 private:
  friend class MultiGroupEngine;

  /// One group's writable slice of the block, handed to a worker.
  class GroupSink final : public core::VoteSink {
   public:
    GroupSink() = default;
    GroupSink(MultiGroupTrace* trace, size_t group)
        : trace_(trace), base_(trace->offsets_[group]), group_(group) {}

    core::RoundColumns BeginRound(size_t module_count) override;
    void EndRound(const core::RoundScalars& scalars) override;

   private:
    MultiGroupTrace* trace_ = nullptr;
    size_t base_ = 0;   ///< first block row of this group
    size_t group_ = 0;
    size_t cursor_ = 0; ///< group-local round index
  };

  /// Sizes the block for one round-range per group; keeps capacity.
  void Resize(std::span<const data::RoundTable> tables, size_t modules);

  size_t modules_ = 0;
  /// group_count() + 1 prefix sums of per-group round counts.
  std::vector<size_t> offsets_;
  std::vector<double> values_;
  std::vector<uint8_t> engaged_;
  std::vector<core::RoundOutcome> outcomes_;
  std::vector<uint8_t> used_clustering_;
  std::vector<uint8_t> had_majority_;
  std::vector<uint32_t> present_counts_;
  std::vector<double> weights_;
  std::vector<double> agreement_;
  std::vector<double> history_;
  std::vector<uint8_t> excluded_;
  std::vector<uint8_t> eliminated_;
  /// Sparse per-group error records (group-local round numbers); one
  /// vector per group so workers never share a growing container.
  std::vector<std::vector<core::RoundError>> errors_;
};

class MultiGroupEngine {
 public:
  /// `group_count` identical engines of `module_count` modules each.
  static Result<MultiGroupEngine> Create(size_t group_count,
                                         size_t module_count,
                                         const core::EngineConfig& config,
                                         MultiGroupOptions options = {});

  /// Groups configured from a VDX definition.
  static Result<MultiGroupEngine> FromSpec(const vdx::Spec& spec,
                                           size_t group_count,
                                           size_t module_count,
                                           MultiGroupOptions options = {});

  MultiGroupEngine(MultiGroupEngine&&) = default;
  MultiGroupEngine& operator=(MultiGroupEngine&&) = default;

  size_t group_count() const { return engines_.size(); }
  size_t module_count() const { return module_count_; }

  core::VotingEngine& group(size_t g) { return engines_[g]; }
  const core::VotingEngine& group(size_t g) const { return engines_[g]; }

  /// Runs one table per group across the worker pool, writing all groups
  /// into `trace`'s group-major block (resized to fit, capacity kept
  /// across calls).  Requires tables.size() == group_count() and every
  /// table to have module_count() modules.  Groups are sharded across
  /// workers, each writing its own disjoint slice; the history block is
  /// synced before returning.
  Status RunBatch(std::span<const data::RoundTable> tables,
                  MultiGroupTrace& trace);

  /// Convenience wrapper returning a fresh trace.
  Result<MultiGroupTrace> RunBatch(std::span<const data::RoundTable> tables);

  /// Same contract as RunBatch on the calling thread only — the
  /// correctness baseline for the parallel path (bit-for-bit identical
  /// results) and its speedup reference.
  Status RunBatchSequential(std::span<const data::RoundTable> tables,
                            MultiGroupTrace& trace);

  /// Convenience wrapper returning a fresh trace.
  Result<MultiGroupTrace> RunBatchSequential(
      std::span<const data::RoundTable> tables);

  // --- Contiguous history block --------------------------------------------
  //
  // Group-major layout: record of module m in group g lives at
  // [g * module_count() + m].  One snapshot of the whole deployment is a
  // single contiguous copy — the unit a datastore round-trip works in.

  /// The block as of the last SyncHistory / RunBatch / RestoreAll.
  std::span<const double> history_block() const { return history_block_; }

  /// One group's slice of the block.
  std::span<const double> GroupHistory(size_t g) const;

  /// Copies every engine's live ledger into the block.
  void SyncHistory();

  /// Restores every group's ledger from a full block (datastore restore);
  /// `rounds` is the per-group absorbed-round count.
  Status RestoreAll(std::span<const double> block, size_t rounds);

  /// Resets every group to a fresh set and re-syncs the block.
  void ResetAll();

  /// Syncs the block, then persists every group's ledger to `backend`
  /// under "<key_prefix><group index>".  Fails on the first Put error.
  Status PersistAllHistory(storage::HistoryBackend& backend,
                           std::string_view key_prefix = "g");

  /// Restores every group whose "<key_prefix><group index>" snapshot
  /// exists in `backend` (absent groups keep their current ledger — a
  /// partially-persisted deployment restores partially) and re-syncs the
  /// block.  A snapshot whose record count does not match module_count()
  /// is an error.
  Status RestoreAllHistory(const storage::HistoryBackend& backend,
                           std::string_view key_prefix = "g");

  // --- Telemetry ------------------------------------------------------------

  /// Whether a registry was wired in.
  bool observed() const { return !observers_.empty(); }

  /// Aggregated counters/latency across all groups (zeros when
  /// unobserved).  Call between batches, not during one.
  MultiGroupStats Stats() const;

  /// Publishes every group's locally accumulated counts to the registry.
  /// RunBatch does this on completion; calling it mid-batch races the
  /// workers, so only use it between batches (e.g. after driving groups
  /// directly through group()).
  void FlushObservers();

 private:
  MultiGroupEngine(std::vector<core::VotingEngine> engines,
                   size_t module_count, MultiGroupOptions options);

  Status ValidateTables(std::span<const data::RoundTable> tables) const;

  size_t module_count_ = 0;
  MultiGroupOptions options_;
  std::vector<core::VotingEngine> engines_;
  /// One observer per group (group g maps to shard g % metrics_shards);
  /// empty when options_.registry is null.  unique_ptr keeps the
  /// addresses engines hold stable across engine moves.
  std::vector<std::unique_ptr<obs::MetricsObserver>> observers_;
  /// Group-major record snapshot; see the layout note above.
  std::vector<double> history_block_;
  /// Created on first RunBatch; sequential use never pays for threads.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace avoc::runtime
