// Single-threaded epoll reactor for the networked voter service.
//
// The remote runtime used to spend one blocking thread per connection;
// this loop multiplexes every connection (plus the listener, a wakeup
// eventfd, and a timer wheel for idle timeouts) onto one thread with
// non-blocking I/O.  The design is deliberately small: level-triggered
// epoll, callbacks keyed by fd with a generation stamp so a slot reused
// mid-dispatch cannot receive a stale event, and cross-thread input only
// through Post/Stop (everything else is loop-thread-only).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "util/status.h"

namespace avoc::runtime {

/// I/O interest / readiness bits (mapped onto EPOLLIN/EPOLLOUT/EPOLLERR
/// internally so the header stays sys/epoll.h-free).
inline constexpr uint32_t kIoRead = 1u << 0;
inline constexpr uint32_t kIoWrite = 1u << 1;
/// Delivered (never requested): error or hangup on the descriptor.
inline constexpr uint32_t kIoError = 1u << 2;

/// Hashed timer wheel with fixed tick granularity.  Timers are one-shot;
/// firing order within a tick is schedule order.  Not thread-safe — it
/// lives on the event-loop thread.
///
/// Re-entrancy: Advance() extracts every due timer *before* invoking any
/// callback, so a callback that schedules a new timer (even zero-delay)
/// never fires it within the same Advance, and a callback that cancels a
/// sibling due in the same pass suppresses it without perturbing the
/// walk.  Both were live bugs in the index-while-firing implementation:
/// a zero-delay re-arm on a tick boundary re-fired forever, and a cancel
/// of an earlier not-yet-due entry shifted the slot under the loop and
/// skipped a due timer for a full revolution.
class TimerWheel {
 public:
  explicit TimerWheel(uint64_t tick_ms = 25, size_t slots = 128);

  /// Schedules `fn` to fire `delay_ms` from `now_ms`; returns a handle.
  uint64_t Schedule(uint64_t now_ms, uint64_t delay_ms,
                    std::function<void()> fn);

  /// Cancels a pending timer; false when already fired or unknown.
  bool Cancel(uint64_t id);

  /// Fires every timer due at or before `now_ms`.
  void Advance(uint64_t now_ms);

  /// Milliseconds until the next pending timer could fire (tick
  /// granularity), or -1 when no timer is pending.
  int64_t MsUntilNext(uint64_t now_ms) const;

  size_t pending() const { return pending_; }
  uint64_t tick_ms() const { return tick_ms_; }

 private:
  struct Entry {
    uint64_t id = 0;
    uint64_t due_tick = 0;
    std::function<void()> fn;
  };

  uint64_t tick_ms_;
  std::vector<std::vector<Entry>> slots_;
  uint64_t last_tick_ = 0;
  uint64_t next_id_ = 1;
  size_t pending_ = 0;
  /// Due entries extracted by the current Advance; Cancel nulls their fn.
  std::vector<Entry> firing_;
};

/// The dispatch seam of the remote runtime: readiness callbacks keyed by
/// an integer handle, one-shot timers, cross-thread Post/Stop, and a time
/// base.  EventLoop implements it over epoll and the steady clock; the
/// deterministic simulation harness (runtime/sim_net.h) implements it
/// over an in-memory network and a seeded virtual clock, so the same
/// server state machines run in both worlds.
class Reactor {
 public:
  using IoCallback = std::function<void(uint32_t events)>;

  virtual ~Reactor() = default;

  /// Registers `handle` with the given interest bits.  The callback
  /// receives the ready bits (kIoRead/kIoWrite/kIoError) and may Unwatch
  /// any handle, including its own.
  virtual Status Watch(int handle, uint32_t interest, IoCallback callback) = 0;

  /// Replaces the interest bits of a watched handle.
  virtual Status SetInterest(int handle, uint32_t interest) = 0;

  /// Deregisters `handle`.  Safe against in-flight events: pending
  /// readiness for the old registration is discarded.
  virtual Status Unwatch(int handle) = 0;

  /// One-shot timer on the reactor's timer wheel (tick granularity).
  virtual uint64_t ScheduleTimer(uint64_t delay_ms,
                                 std::function<void()> fn) = 0;
  virtual bool CancelTimer(uint64_t id) = 0;

  /// Enqueues `fn` to run on the dispatch thread.  Thread-safe.
  virtual void Post(std::function<void()> fn) = 0;

  /// Dispatches events until Stop().
  virtual void Run() = 0;

  /// Wakes the loop and makes Run() return.  Thread-safe, idempotent.
  virtual void Stop() = 0;

  virtual bool stopped() const = 0;

  /// Milliseconds on this reactor's clock (steady for EventLoop, virtual
  /// for the simulation) — the time base for idle tracking and timers.
  virtual uint64_t now_ms() const = 0;
};

/// The epoll reactor.  Run() dispatches until Stop(); every callback runs
/// on the loop thread.  Watch/SetInterest/Unwatch/ScheduleTimer are
/// loop-thread-only (call them from callbacks or before Run); Post and
/// Stop are safe from any thread.
class EventLoop : public Reactor {
 public:
  using IoCallback = Reactor::IoCallback;

  static Result<std::unique_ptr<EventLoop>> Create();
  ~EventLoop() override;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Status Watch(int fd, uint32_t interest, IoCallback callback) override;
  Status SetInterest(int fd, uint32_t interest) override;
  Status Unwatch(int fd) override;

  uint64_t ScheduleTimer(uint64_t delay_ms, std::function<void()> fn) override;
  bool CancelTimer(uint64_t id) override;

  /// Enqueues `fn` to run on the loop thread.  Thread-safe.
  void Post(std::function<void()> fn) override;

  /// Dispatches events until Stop().
  void Run() override;

  /// One poll-and-dispatch pass, waiting at most `max_wait_ms` (testing
  /// and embedding; -1 = block until something happens).
  Status RunOnce(int max_wait_ms);

  /// Wakes the loop and makes Run() return.  Thread-safe, idempotent.
  void Stop() override;

  bool stopped() const override { return stop_.load(); }

  /// Steady-clock milliseconds (the wheel's time base).
  static uint64_t NowMs();

  uint64_t now_ms() const override { return NowMs(); }

 private:
  EventLoop(int epoll_fd, int wake_fd);

  void DrainWake();
  void RunPosted();

  struct Watched {
    uint64_t generation = 0;
    uint32_t interest = 0;
    std::shared_ptr<IoCallback> callback;
  };

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  uint64_t next_generation_ = 1;
  std::map<int, Watched> watched_;  // loop thread only
  TimerWheel timers_;

  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace avoc::runtime
