#include "runtime/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/strings.h"

namespace avoc::runtime {
namespace {

Status Errno(const char* what) {
  return IoError(StrFormat("%s: %s", what, std::strerror(errno)));
}

uint32_t ToEpoll(uint32_t interest) {
  uint32_t events = 0;
  if (interest & kIoRead) events |= EPOLLIN;
  if (interest & kIoWrite) events |= EPOLLOUT;
  return events;
}

uint32_t FromEpoll(uint32_t events) {
  uint32_t ready = 0;
  if (events & (EPOLLIN | EPOLLHUP)) ready |= kIoRead;
  if (events & EPOLLOUT) ready |= kIoWrite;
  if (events & EPOLLERR) ready |= kIoError;
  return ready;
}

}  // namespace

// --- TimerWheel --------------------------------------------------------------

TimerWheel::TimerWheel(uint64_t tick_ms, size_t slots)
    : tick_ms_(tick_ms == 0 ? 1 : tick_ms),
      slots_(slots == 0 ? 1 : slots) {}

uint64_t TimerWheel::Schedule(uint64_t now_ms, uint64_t delay_ms,
                              std::function<void()> fn) {
  const uint64_t now_tick = now_ms / tick_ms_;
  if (last_tick_ == 0 && pending_ == 0) last_tick_ = now_tick;
  // Round the deadline up so a timer never fires early.
  const uint64_t due_tick = (now_ms + delay_ms + tick_ms_ - 1) / tick_ms_;
  const uint64_t id = next_id_++;
  slots_[due_tick % slots_.size()].push_back(
      Entry{id, due_tick, std::move(fn)});
  ++pending_;
  return id;
}

bool TimerWheel::Cancel(uint64_t id) {
  for (auto& slot : slots_) {
    for (auto it = slot.begin(); it != slot.end(); ++it) {
      if (it->id == id) {
        slot.erase(it);
        --pending_;
        return true;
      }
    }
  }
  // The timer may be in the batch Advance() is firing right now (a
  // callback cancelling a sibling due in the same pass).  Nulling the fn
  // suppresses it without disturbing the batch walk; pending_ was already
  // decremented at extraction.
  for (Entry& entry : firing_) {
    if (entry.id == id && entry.fn) {
      entry.fn = nullptr;
      return true;
    }
  }
  return false;
}

void TimerWheel::Advance(uint64_t now_ms) {
  const uint64_t now_tick = now_ms / tick_ms_;
  if (pending_ == 0) {
    last_tick_ = now_tick;
    return;
  }
  // Phase 1: extract every due entry.  No user code runs during this
  // walk, so slot vectors are never mutated under the loop; anything a
  // callback schedules later lands in the slots and waits for the next
  // Advance (a zero-delay re-arm can therefore never re-fire within one
  // Advance).
  const uint64_t first = last_tick_;
  const uint64_t span = now_tick >= last_tick_ ? now_tick - last_tick_ : 0;
  auto extract_due = [&](std::vector<Entry>& slot) {
    for (size_t i = 0; i < slot.size();) {
      if (slot[i].due_tick <= now_tick) {
        firing_.push_back(std::move(slot[i]));
        slot.erase(slot.begin() + static_cast<ptrdiff_t>(i));
        --pending_;
      } else {
        ++i;
      }
    }
  };
  if (span >= slots_.size()) {
    // A long stall may have wrapped the wheel; sweep everything.
    for (auto& slot : slots_) extract_due(slot);
  } else {
    // Walk the revolution segment [last_tick_, now_tick].  Entries
    // further out than `slots_` ticks share slots with nearer ones and
    // are filtered by due_tick.
    for (uint64_t tick = first; tick <= first + span; ++tick) {
      extract_due(slots_[tick % slots_.size()]);
    }
  }
  // Phase 2: fire in deadline order, schedule order within a tick.
  // Index loop: Cancel may null entries in firing_ mid-batch but never
  // erases them.
  std::sort(firing_.begin(), firing_.end(),
            [](const Entry& a, const Entry& b) {
              return a.due_tick != b.due_tick ? a.due_tick < b.due_tick
                                              : a.id < b.id;
            });
  for (size_t i = 0; i < firing_.size(); ++i) {
    if (!firing_[i].fn) continue;  // cancelled by an earlier callback
    std::function<void()> fn = std::move(firing_[i].fn);
    fn();
  }
  firing_.clear();
  last_tick_ = now_tick;
}

int64_t TimerWheel::MsUntilNext(uint64_t now_ms) const {
  if (pending_ == 0) return -1;
  uint64_t soonest = UINT64_MAX;
  for (const auto& slot : slots_) {
    for (const Entry& entry : slot) {
      soonest = std::min(soonest, entry.due_tick);
    }
  }
  const uint64_t due_ms = soonest * tick_ms_;
  return due_ms <= now_ms ? 0 : static_cast<int64_t>(due_ms - now_ms);
}

// --- EventLoop ---------------------------------------------------------------

EventLoop::EventLoop(int epoll_fd, int wake_fd)
    : epoll_fd_(epoll_fd), wake_fd_(wake_fd) {}

Result<std::unique_ptr<EventLoop>> EventLoop::Create() {
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) return Errno("epoll_create1");
  const int wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd < 0) {
    const Status status = Errno("eventfd");
    ::close(epoll_fd);
    return status;
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = 0;  // generation 0 is reserved for the wakeup fd
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &event) != 0) {
    const Status status = Errno("epoll_ctl(wakeup)");
    ::close(wake_fd);
    ::close(epoll_fd);
    return status;
  }
  return std::unique_ptr<EventLoop>(new EventLoop(epoll_fd, wake_fd));
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Watch(int fd, uint32_t interest, IoCallback callback) {
  if (fd < 0) return InvalidArgumentError("cannot watch a closed fd");
  if (watched_.count(fd)) {
    return FailedPreconditionError(StrFormat("fd %d already watched", fd));
  }
  Watched entry;
  entry.generation = next_generation_++;
  entry.interest = interest;
  entry.callback = std::make_shared<IoCallback>(std::move(callback));
  epoll_event event{};
  event.events = ToEpoll(interest);
  event.data.u64 = (static_cast<uint64_t>(static_cast<uint32_t>(fd)) << 32) |
                   (entry.generation & 0xFFFFFFFFu);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    return Errno("epoll_ctl(add)");
  }
  watched_.emplace(fd, std::move(entry));
  return Status::Ok();
}

Status EventLoop::SetInterest(int fd, uint32_t interest) {
  auto it = watched_.find(fd);
  if (it == watched_.end()) {
    return NotFoundError(StrFormat("fd %d is not watched", fd));
  }
  if (it->second.interest == interest) return Status::Ok();
  epoll_event event{};
  event.events = ToEpoll(interest);
  event.data.u64 = (static_cast<uint64_t>(static_cast<uint32_t>(fd)) << 32) |
                   (it->second.generation & 0xFFFFFFFFu);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    return Errno("epoll_ctl(mod)");
  }
  it->second.interest = interest;
  return Status::Ok();
}

Status EventLoop::Unwatch(int fd) {
  auto it = watched_.find(fd);
  if (it == watched_.end()) {
    return NotFoundError(StrFormat("fd %d is not watched", fd));
  }
  watched_.erase(it);
  // The fd may already be closed by the caller; EBADF is then expected.
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0 &&
      errno != EBADF && errno != ENOENT) {
    return Errno("epoll_ctl(del)");
  }
  return Status::Ok();
}

uint64_t EventLoop::ScheduleTimer(uint64_t delay_ms,
                                  std::function<void()> fn) {
  return timers_.Schedule(NowMs(), delay_ms, std::move(fn));
}

bool EventLoop::CancelTimer(uint64_t id) { return timers_.Cancel(id); }

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  const uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainWake() {
  uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof(count)) > 0) {
  }
}

void EventLoop::RunPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

Status EventLoop::RunOnce(int max_wait_ms) {
  int timeout = max_wait_ms;
  const int64_t timer_wait = timers_.MsUntilNext(NowMs());
  if (timer_wait >= 0 && (timeout < 0 || timer_wait < timeout)) {
    timeout = static_cast<int>(timer_wait);
  }
  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64, timeout);
  if (n < 0 && errno != EINTR) return Errno("epoll_wait");
  for (int i = 0; i < n; ++i) {
    const uint64_t tag = events[i].data.u64;
    if (tag == 0) {
      DrainWake();
      continue;
    }
    // Look up by fd, then verify the generation stamp: a callback earlier
    // in this batch may have unwatched the fd (or a new registration may
    // have reused its number), in which case the stale readiness is dropped.
    const int fd = static_cast<int>(tag >> 32);
    const uint32_t generation = static_cast<uint32_t>(tag & 0xFFFFFFFFu);
    auto it = watched_.find(fd);
    if (it == watched_.end() ||
        static_cast<uint32_t>(it->second.generation & 0xFFFFFFFFu) !=
            generation) {
      continue;
    }
    // Hold a reference: the callback may unwatch its own fd.
    const std::shared_ptr<IoCallback> callback = it->second.callback;
    (*callback)(FromEpoll(events[i].events));
  }
  RunPosted();
  timers_.Advance(NowMs());
  return Status::Ok();
}

void EventLoop::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    (void)RunOnce(-1);
  }
  // Run anything posted between the last poll and Stop.
  RunPosted();
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

uint64_t EventLoop::NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace avoc::runtime
