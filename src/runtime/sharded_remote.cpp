#include "runtime/sharded_remote.h"

#include <algorithm>
#include <utility>

#include "util/log.h"
#include "util/strings.h"

namespace avoc::runtime {

ShardedVoterServer::ShardedVoterServer(
    Options options, std::unique_ptr<Listener> listener,
    std::vector<std::shared_ptr<Reactor>> reactors, bool spawn_loop_threads,
    storage::HistoryBackend* store, obs::Registry* registry,
    storage::TraceBackend* trace_store)
    : options_(options),
      listener_(std::move(listener)),
      reactors_(std::move(reactors)),
      router_(reactors_.size()),
      spawn_loop_threads_(spawn_loop_threads) {
  managers_.reserve(reactors_.size());
  for (size_t s = 0; s < reactors_.size(); ++s) {
    // Every shard manager shares the one tracer riding the base server
    // options, so all shards record into the same flight recorder.
    managers_.push_back(std::make_unique<VoterGroupManager>(
        store, registry, trace_store, options_.base.tracer));
  }
}

Result<std::unique_ptr<ShardedVoterServer>> ShardedVoterServer::Start(
    Options options, storage::HistoryBackend* store, obs::Registry* registry,
    storage::TraceBackend* trace_store) {
  size_t shards = options.shards;
  if (shards == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    shards = hw == 0 ? 1 : hw;
  }
  AVOC_ASSIGN_OR_RETURN(TcpListener listener,
                        TcpListener::Listen(options.base.port));
  AVOC_RETURN_IF_ERROR(listener.SetNonBlocking(true));
  std::vector<std::shared_ptr<Reactor>> reactors;
  reactors.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    AVOC_ASSIGN_OR_RETURN(std::unique_ptr<EventLoop> loop, EventLoop::Create());
    reactors.push_back(std::shared_ptr<Reactor>(std::move(loop)));
  }
  options.shards = shards;
  return StartOnReactors(std::move(options),
                         std::make_unique<TcpListener>(std::move(listener)),
                         std::move(reactors), /*spawn_loop_threads=*/true,
                         store, registry, trace_store);
}

Result<std::unique_ptr<ShardedVoterServer>> ShardedVoterServer::StartOnReactors(
    Options options, std::unique_ptr<Listener> listener,
    std::vector<std::shared_ptr<Reactor>> reactors, bool spawn_loop_threads,
    storage::HistoryBackend* store, obs::Registry* registry,
    storage::TraceBackend* trace_store) {
  if (listener == nullptr) {
    return InvalidArgumentError("sharded server needs a listener");
  }
  if (reactors.empty()) {
    return InvalidArgumentError("sharded server needs at least one reactor");
  }
  for (const auto& reactor : reactors) {
    if (reactor == nullptr) {
      return InvalidArgumentError("sharded server got a null reactor");
    }
  }
  std::unique_ptr<ShardedVoterServer> server(new ShardedVoterServer(
      options, std::move(listener), std::move(reactors), spawn_loop_threads,
      store, registry, trace_store));
  for (size_t s = 0; s < server->reactors_.size(); ++s) {
    RemoteServerOptions shard_options = options.base;
    shard_options.metrics_scope = StrFormat("s%zu", s);
    AVOC_ASSIGN_OR_RETURN(
        std::unique_ptr<RemoteVoterServer> shard,
        RemoteVoterServer::StartShard(server->managers_[s].get(),
                                      std::move(shard_options),
                                      server->reactors_[s]));
    server->shards_.push_back(std::move(shard));
  }
  return server;
}

ShardedVoterServer::~ShardedVoterServer() { Stop(); }

Status ShardedVoterServer::AddGroup(const std::string& name,
                                    core::VotingEngine engine) {
  if (serving_) {
    return FailedPreconditionError(
        "group set is frozen once serving (rebalancing is a future item)");
  }
  return managers_[router_.ShardFor(name)]->AddGroup(name, std::move(engine));
}

Status ShardedVoterServer::AddGroupFromSpec(const std::string& name,
                                            const vdx::Spec& spec,
                                            size_t modules) {
  if (serving_) {
    return FailedPreconditionError(
        "group set is frozen once serving (rebalancing is a future item)");
  }
  return managers_[router_.ShardFor(name)]->AddGroupFromSpec(name, spec,
                                                             modules);
}

Status ShardedVoterServer::Serve() {
  if (serving_) return FailedPreconditionError("already serving");
  serving_ = true;
  // Freeze the global group list (sorted: per-shard maps are sorted, so
  // one merge keeps the GROUPS response deterministic).
  std::vector<std::string> all_groups;
  for (const auto& manager : managers_) {
    const auto names = manager->GroupNames();
    all_groups.insert(all_groups.end(), names.begin(), names.end());
  }
  std::sort(all_groups.begin(), all_groups.end());
  std::vector<RemoteVoterServer*> peers;
  peers.reserve(shards_.size());
  for (const auto& shard : shards_) peers.push_back(shard.get());
  for (size_t s = 0; s < shards_.size(); ++s) {
    ShardLink link;
    link.index = s;
    link.peers = peers;
    link.reactors = reactors_;
    link.all_groups = all_groups;
    shards_[s]->LinkShards(std::move(link));
  }
  AVOC_RETURN_IF_ERROR(reactors_[0]->Watch(
      listener_->handle(), kIoRead, [this](uint32_t) { OnAcceptable(); }));
  if (spawn_loop_threads_) {
    threads_.reserve(reactors_.size());
    for (const auto& reactor : reactors_) {
      threads_.emplace_back([reactor] { reactor->Run(); });
    }
  }
  return Status::Ok();
}

void ShardedVoterServer::OnAcceptable() {
  for (;;) {
    auto accepted = listener_->TryAcceptTransport();
    if (!accepted.ok()) {
      if (accepted.status().code() != ErrorCode::kNotFound &&
          running_.load()) {
        AVOC_LOG_WARN("sharded voter server: accept failed: %s",
                      accepted.status().ToString().c_str());
      }
      return;
    }
    if (!(*accepted)->SetNonBlocking(true).ok()) continue;
    if (options_.base.send_buffer_bytes > 0) {
      (void)(*accepted)->SetSendBufferBytes(options_.base.send_buffer_bytes);
    }
    // Round-robin hand-off spreads the detection phase; the first
    // group-addressed request then migrates the connection to its owner
    // shard, which is the placement that actually matters.
    std::shared_ptr<Transport> transport(std::move(*accepted));
    const size_t target = next_handoff_++ % shards_.size();
    if (target == 0) {
      shards_[0]->AdoptConnection(std::move(transport));
      continue;
    }
    RemoteVoterServer* shard = shards_[target].get();
    reactors_[target]->Post([shard, transport = std::move(transport)]() mutable {
      shard->AdoptConnection(std::move(transport));
    });
  }
}

void ShardedVoterServer::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  // Park every loop before touching any shard state: cross-shard posts
  // still queued drain inside Run() before it returns, and after the
  // joins nothing dispatches anywhere.
  for (const auto& reactor : reactors_) reactor->Stop();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  if (serving_) (void)reactors_[0]->Unwatch(listener_->handle());
  for (const auto& shard : shards_) shard->Stop();
  listener_->Close();
}

Result<const SinkNode*> ShardedVoterServer::sink(
    const std::string& group) const {
  return managers_[router_.ShardFor(group)]->sink(group);
}

size_t ShardedVoterServer::requests_served() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->requests_served();
  return total;
}

size_t ShardedVoterServer::dedup_replays() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->dedup_replays();
  return total;
}

size_t ShardedVoterServer::forwarded_requests() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->forwarded_requests();
  return total;
}

size_t ShardedVoterServer::migrations() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->migrations_out();
  return total;
}

}  // namespace avoc::runtime
