#include "runtime/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/strings.h"

namespace avoc::runtime {
namespace {

Status Errno(const char* what) {
  return IoError(StrFormat("%s: %s", what, std::strerror(errno)));
}

Status SetFdNonBlocking(int fd, bool enabled) {
  if (fd < 0) return IoError("socket is closed");
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::Ok();
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_.exchange(-1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1));
  }
  return *this;
}

void Socket::Close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown unblocks any thread sitting in accept/recv on this fd.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Result<TcpConnection> TcpConnection::Connect(const std::string& host,
                                             uint16_t port) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return Errno("socket");
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &address.sin_addr) != 1) {
    return InvalidArgumentError("not an IPv4 address: '" + host + "'");
  }
  int rc;
  do {
    rc = ::connect(socket.fd(), reinterpret_cast<sockaddr*>(&address),
                   sizeof(address));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect");
  int one = 1;
  ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(std::move(socket));
}

Status TcpConnection::SendAll(std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(socket_.fd(), data.data() + sent,
                             data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> TcpConnection::ReceiveLine() {
  for (;;) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[1024];
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A blocking socket with SO_RCVTIMEO reports expiry as EAGAIN;
      // name it so retry layers can distinguish timeout from breakage.
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return IoError("recv timed out");
      }
      return Errno("recv");
    }
    if (n == 0) {
      if (buffer_.empty()) return NotFoundError("connection closed");
      std::string line = std::move(buffer_);
      buffer_.clear();
      return line;  // final unterminated line
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<size_t> TcpConnection::ReceiveSome(char* buffer, size_t len) {
  // Serve out of the line buffer first so mixing ReceiveLine and
  // ReceiveSome on the same connection never loses bytes.
  if (!buffer_.empty()) {
    const size_t take = std::min(len, buffer_.size());
    std::memcpy(buffer, buffer_.data(), take);
    buffer_.erase(0, take);
    return take;
  }
  for (;;) {
    const ssize_t n = ::recv(socket_.fd(), buffer, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return IoError("recv timed out");
      }
      return Errno("recv");
    }
    if (n == 0) return NotFoundError("connection closed");
    return static_cast<size_t>(n);
  }
}

Status TcpConnection::SetReceiveTimeoutMs(int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(socket_.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) !=
      0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::Ok();
}

Status TcpConnection::SetNonBlocking(bool enabled) {
  return SetFdNonBlocking(socket_.fd(), enabled);
}

Status TcpConnection::SetSendBufferBytes(int bytes) {
  if (::setsockopt(socket_.fd(), SOL_SOCKET, SO_SNDBUF, &bytes,
                   sizeof(bytes)) != 0) {
    return Errno("setsockopt(SO_SNDBUF)");
  }
  return Status::Ok();
}

IoOp TcpConnection::ReadSome(char* buffer, size_t len) {
  for (;;) {
    const ssize_t n = ::recv(socket_.fd(), buffer, len, 0);
    if (n > 0) return IoOp{IoOp::Kind::kDone, static_cast<size_t>(n), {}};
    if (n == 0) return IoOp{IoOp::Kind::kEof, 0, {}};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoOp{IoOp::Kind::kWouldBlock, 0, {}};
    }
    return IoOp{IoOp::Kind::kError, 0, Errno("recv")};
  }
}

IoOp TcpConnection::WriteSome(const char* data, size_t len) {
  for (;;) {
    const ssize_t n = ::send(socket_.fd(), data, len, MSG_NOSIGNAL);
    if (n >= 0) return IoOp{IoOp::Kind::kDone, static_cast<size_t>(n), {}};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoOp{IoOp::Kind::kWouldBlock, 0, {}};
    }
    return IoOp{IoOp::Kind::kError, 0, Errno("send")};
  }
}

Result<TcpListener> TcpListener::Listen(uint16_t port) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return Errno("socket");
  int one = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(socket.fd(), reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    return Errno("bind");
  }
  if (::listen(socket.fd(), 16) != 0) return Errno("listen");
  sockaddr_in bound{};
  socklen_t length = sizeof(bound);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&bound),
                    &length) != 0) {
    return Errno("getsockname");
  }
  return TcpListener(std::move(socket), ntohs(bound.sin_port));
}

Result<TcpConnection> TcpListener::Accept() {
  int fd;
  do {
    fd = ::accept(socket_.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("accept");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(Socket(fd));
}

Result<TcpConnection> TcpListener::TryAccept() {
  int fd;
  do {
    fd = ::accept(socket_.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return NotFoundError("no pending connection");
    }
    return Errno("accept");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(Socket(fd));
}

Result<std::unique_ptr<Transport>> TcpListener::TryAcceptTransport() {
  AVOC_ASSIGN_OR_RETURN(TcpConnection accepted, TryAccept());
  return std::unique_ptr<Transport>(
      std::make_unique<TcpConnection>(std::move(accepted)));
}

Status TcpListener::SetNonBlocking(bool enabled) {
  return SetFdNonBlocking(socket_.fd(), enabled);
}

}  // namespace avoc::runtime
