#include "runtime/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/strings.h"

namespace avoc::runtime {
namespace {

Status Errno(const char* what) {
  return IoError(StrFormat("%s: %s", what, std::strerror(errno)));
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_.exchange(-1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1));
  }
  return *this;
}

void Socket::Close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown unblocks any thread sitting in accept/recv on this fd.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Result<TcpConnection> TcpConnection::Connect(const std::string& host,
                                             uint16_t port) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return Errno("socket");
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &address.sin_addr) != 1) {
    return InvalidArgumentError("not an IPv4 address: '" + host + "'");
  }
  if (::connect(socket.fd(), reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    return Errno("connect");
  }
  int one = 1;
  ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(std::move(socket));
}

Status TcpConnection::SendAll(std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(socket_.fd(), data.data() + sent,
                             data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status TcpConnection::SendLine(std::string_view line) {
  std::string framed(line);
  framed.push_back('\n');
  return SendAll(framed);
}

Result<std::string> TcpConnection::ReceiveLine() {
  for (;;) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[1024];
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      if (buffer_.empty()) return NotFoundError("connection closed");
      std::string line = std::move(buffer_);
      buffer_.clear();
      return line;  // final unterminated line
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status TcpConnection::SetReceiveTimeoutMs(int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(socket_.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) !=
      0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::Ok();
}

Result<TcpListener> TcpListener::Listen(uint16_t port) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return Errno("socket");
  int one = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(socket.fd(), reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    return Errno("bind");
  }
  if (::listen(socket.fd(), 16) != 0) return Errno("listen");
  sockaddr_in bound{};
  socklen_t length = sizeof(bound);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&bound),
                    &length) != 0) {
    return Errno("getsockname");
  }
  return TcpListener(std::move(socket), ntohs(bound.sin_port));
}

Result<TcpConnection> TcpListener::Accept() {
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) return Errno("accept");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(Socket(fd));
}

}  // namespace avoc::runtime
