// Self-healing client for the networked voter service.
//
// RemoteVoterClient (runtime/remote.h) is one connection: any transport
// hiccup — reset, timeout, half-open link — surfaces as an error and the
// connection is dead.  ResilientVoterClient wraps it with the retry story
// an edge deployment needs (the paper's sensors reach the voting
// sink-node over WiFi, which drops):
//
//   * reconnect with jittered exponential backoff (seeded, so simulated
//     runs replay deterministically),
//   * a per-request reply timeout, so a blackholed link fails fast
//     instead of hanging,
//   * exactly-once batched submits: every SubmitBatch carries this
//     client's identity and a sequence number assigned once per call
//     (SUBMIT_BATCH_SEQ); a retry after a lost reply is answered from the
//     server's dedup cache, never double-ingested.
//
// Only *transport* failures are retried.  An application-level ERR reply
// (unknown group, bad arguments, busy) is the server answering; it is
// returned to the caller untouched.
//
// The transport factory + Clock seams make the client run equally over
// real TCP (TcpConnection + SystemClock) and the deterministic simulation
// (runtime/sim_net.h), where backoff sleeps advance the virtual clock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/framing.h"
#include "runtime/remote.h"
#include "runtime/transport.h"
#include "util/rng.h"
#include "util/status.h"

namespace avoc::runtime {

/// Backoff/timeout tuning for ResilientVoterClient.
struct RetryPolicy {
  uint64_t initial_backoff_ms = 10;
  uint64_t max_backoff_ms = 2000;
  double backoff_multiplier = 2.0;
  /// Backoff is scaled by a uniform factor in [1 - jitter, 1 + jitter].
  double jitter = 0.2;
  /// Bounds each reply wait; 0 waits forever (not recommended).
  int request_timeout_ms = 1000;
  /// Gives up after this many attempts of one call; 0 = bounded only by
  /// `deadline_ms`.
  int max_attempts = 0;
  /// Overall wall/virtual-time budget for one call (connect + retries).
  uint64_t deadline_ms = 60 * 1000;
  /// Trace every Nth SubmitBatch as a client root span (with per-attempt
  /// child spans); 1 traces every call, 0 disables client spans.  Only
  /// meaningful when the client carries a tracer.
  size_t trace_sample_every = 1;
  /// Cluster mode: MOVED redirects followed within ONE call before the
  /// call fails typed (guards against redirect loops from a confused
  /// placement map).  Redirects don't consume attempts or backoff — the
  /// server named a live owner, so the client re-dials immediately.
  size_t max_redirects = 8;
};

/// A voter client that survives resets, timeouts, and partitions, with
/// exactly-once submit semantics.  Not thread-safe (one caller, like the
/// underlying client).
class ResilientVoterClient {
 public:
  using TransportFactory =
      std::function<Result<std::unique_ptr<Transport>>()>;

  /// `factory` dials one new connection per call; `clock` paces backoff
  /// (SystemClock::Instance() in production, the SimWorld in tests);
  /// `client_id` keys server-side dedup and must be unique per logical
  /// client; `seed` makes the jitter stream deterministic.  `registry`
  /// (optional) receives avoc_client_* / avoc_remote_retry_* metrics;
  /// `tracer` (optional) records a root span per sampled SubmitBatch,
  /// one child span per attempt, and backoff events — and stamps the
  /// wire trace-context field so server spans join the same trace.
  ResilientVoterClient(TransportFactory factory, Clock* clock,
                       std::string client_id, RetryPolicy policy,
                       uint64_t seed, obs::Registry* registry = nullptr,
                       obs::Tracer* tracer = nullptr);

  /// Dials one cluster node by index (cluster mode).
  using NodeDialer =
      std::function<Result<std::unique_ptr<Transport>>(size_t node)>;

  /// Switches the client to cluster node-directory mode: connections dial
  /// `dialer(target_node)` instead of the flat factory.  A MOVED redirect
  /// re-targets and re-dials without backoff (the in-flight SubmitBatch
  /// keeps its sequence number, so the move stays exactly-once); a
  /// connect failure rotates to the next node, so a crashed node's
  /// clients find the failover endpoint on their own.
  void UseNodeDirectory(NodeDialer dialer, size_t node_count,
                        size_t initial_node = 0);

  /// Node index the next dial targets (cluster mode).
  size_t target_node() const { return target_node_; }

  /// Exactly-once batched submit.  Assigns the next sequence number once,
  /// then retries (reconnecting as needed) until the server acknowledges
  /// or the policy budget runs out.  Returns the accepted-reading count.
  Result<uint64_t> SubmitBatch(const std::string& group,
                               std::span<const BatchReading> readings);

  /// Retried reads (idempotent by nature).
  Result<double> Query(const std::string& group);
  Result<std::vector<RangePoint>> QueryRange(const std::string& group,
                                             uint64_t lo_round,
                                             uint64_t hi_round);
  Result<RemoteVoterClient::RemoteHistory> HistoryGet(
      const std::string& group);
  Status Ping();

  const std::string& client_id() const { return client_id_; }
  /// Sequence number the next SubmitBatch will use.
  uint64_t next_seq() const { return next_seq_; }

  // Plain counters mirroring the metrics (always on; cheap).
  size_t connects() const { return connects_; }
  size_t reconnects() const { return reconnects_; }
  size_t connect_failures() const { return connect_failures_; }
  size_t retry_attempts() const { return retry_attempts_; }
  size_t request_timeouts() const { return request_timeouts_; }
  size_t giveups() const { return giveups_; }
  /// MOVED redirects followed (cluster mode).
  size_t redirects_followed() const { return redirects_followed_; }

 private:
  /// True for failures that mean "the connection is gone", as opposed to
  /// the server answering with an application error.
  static bool IsTransportError(const Status& status);

  /// Dials until connected or the deadline passes.
  Status EnsureConnected(uint64_t deadline_at_ms, int* attempt);

  /// Runs `op` against a live client with reconnect-and-retry.  `op`
  /// writes its result through captures.  With `op_name` set and a
  /// tracer present, every attempt runs inside a child span of `parent`
  /// tagged with its attempt index and outcome.
  Status Execute(const std::function<Status(RemoteVoterClient&)>& op,
                 const obs::SpanContext& parent = {},
                 const char* op_name = nullptr);

  /// Sleeps the jittered backoff for attempt `attempt` (0-based),
  /// truncated to not overshoot the deadline.
  void Backoff(int attempt, uint64_t deadline_at_ms);

  void DropConnection();

  /// One connection attempt: the node dialer at the current target in
  /// cluster mode, the flat factory otherwise.
  Result<std::unique_ptr<Transport>> Dial();

  TransportFactory factory_;
  Clock* clock_;
  std::string client_id_;
  RetryPolicy policy_;
  Rng rng_;
  std::optional<RemoteVoterClient> client_;
  uint64_t next_seq_ = 1;
  obs::Tracer* tracer_ = nullptr;

  NodeDialer node_dialer_;
  size_t node_count_ = 0;
  size_t target_node_ = 0;

  size_t connects_ = 0;
  size_t reconnects_ = 0;
  size_t connect_failures_ = 0;
  size_t retry_attempts_ = 0;
  size_t request_timeouts_ = 0;
  size_t giveups_ = 0;
  size_t redirects_followed_ = 0;

  obs::Counter* connects_metric_ = nullptr;
  obs::Counter* reconnects_metric_ = nullptr;
  obs::Counter* connect_failures_metric_ = nullptr;
  obs::Counter* timeouts_metric_ = nullptr;
  obs::Counter* retry_attempts_metric_ = nullptr;
  obs::Counter* retry_backoff_ms_metric_ = nullptr;
  obs::Counter* retry_giveups_metric_ = nullptr;
  obs::Counter* redirects_metric_ = nullptr;
};

}  // namespace avoc::runtime
