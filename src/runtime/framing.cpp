#include "runtime/framing.h"

#include <cstring>

#include "util/strings.h"

namespace avoc::runtime {
namespace {

/// Longest accepted varint anywhere (uint64 = 10 LEB128 bytes).
constexpr size_t kMaxVarintBytes = 10;

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kSubmitBatch: return "SUBMIT_BATCH";
    case FrameType::kSubmitBatchSeq: return "SUBMIT_BATCH_SEQ";
    case FrameType::kClose: return "CLOSE";
    case FrameType::kQuery: return "QUERY";
    case FrameType::kQueryRange: return "QUERY_RANGE";
    case FrameType::kHistoryGet: return "HISTORY_GET";
    case FrameType::kTraceDump: return "TRACE_DUMP";
    case FrameType::kMigrateGroup: return "MIGRATE_GROUP";
    case FrameType::kGroups: return "GROUPS";
    case FrameType::kMetrics: return "METRICS";
    case FrameType::kHealth: return "HEALTH";
    case FrameType::kPing: return "PING";
    case FrameType::kQuit: return "QUIT";
    case FrameType::kOk: return "OK";
    case FrameType::kError: return "ERR";
    case FrameType::kValue: return "VALUE";
    case FrameType::kNone: return "NONE";
    case FrameType::kGroupList: return "GROUP_LIST";
    case FrameType::kText: return "TEXT";
    case FrameType::kPong: return "PONG";
    case FrameType::kBye: return "BYE";
    case FrameType::kRangeResult: return "RANGE_RESULT";
    case FrameType::kHistory: return "HISTORY";
    case FrameType::kMoved: return "MOVED";
  }
  return "UNKNOWN";
}

void AppendVarint(std::string& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

void AppendDouble(std::string& out, double value) {
  uint64_t bits = DoubleBits(value);
  for (size_t i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(bits & 0xFF));
    bits >>= 8;
  }
}

void AppendLengthPrefixedString(std::string& out, std::string_view s) {
  AppendVarint(out, s.size());
  out.append(s);
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 6);
  AppendVarint(frame, payload.size() + 1);  // body = type byte + payload
  frame.push_back(static_cast<char>(type));
  frame.append(payload);
  return frame;
}

Result<uint64_t> PayloadReader::ReadVarint() {
  uint64_t value = 0;
  int shift = 0;
  for (size_t i = 0; i < kMaxVarintBytes; ++i) {
    if (pos_ >= data_.size()) return ParseError("truncated varint");
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (i == kMaxVarintBytes - 1 && (byte & 0x80) != 0) {
      return ParseError("varint too long");
    }
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return ParseError("varint too long");
}

Result<double> PayloadReader::ReadDouble() {
  if (remaining() < 8) return ParseError("truncated double");
  uint64_t bits = 0;
  for (size_t i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return DoubleFromBits(bits);
}

Result<std::string_view> PayloadReader::ReadString() {
  AVOC_ASSIGN_OR_RETURN(const uint64_t length, ReadVarint());
  if (length > remaining()) return ParseError("truncated string");
  std::string_view s = data_.substr(pos_, static_cast<size_t>(length));
  pos_ += static_cast<size_t>(length);
  return s;
}

Status PayloadReader::ExpectEnd() const {
  if (pos_ != data_.size()) {
    return ParseError(StrFormat("trailing payload bytes: %zu unread",
                                data_.size() - pos_));
  }
  return Status::Ok();
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (poisoned_) return;  // boundaries already lost, don't accumulate
  // Compact lazily: only when the consumed prefix dominates the buffer.
  if (pos_ > 4096 && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes);
}

Result<Frame> FrameDecoder::Next() {
  if (poisoned_) return ParseError("frame decoder poisoned by earlier error");
  // Decode the length prefix byte by byte so a partial varint simply
  // waits for more input while an over-long one fails immediately.
  uint64_t body_len = 0;
  int shift = 0;
  size_t cursor = pos_;
  for (size_t i = 0;; ++i) {
    if (cursor >= buffer_.size()) return NotFoundError("need more bytes");
    if (i >= kMaxLengthVarintBytes) {
      poisoned_ = true;
      return ParseError("frame length varint too long");
    }
    const uint8_t byte = static_cast<uint8_t>(buffer_[cursor++]);
    body_len |= static_cast<uint64_t>(byte & 0x7F) << shift;
    shift += 7;
    if ((byte & 0x80) == 0) break;
  }
  if (body_len == 0) {
    poisoned_ = true;
    return ParseError("zero-length frame body");
  }
  if (body_len > max_frame_bytes_) {
    poisoned_ = true;
    return ParseError(StrFormat("frame body of %llu bytes exceeds limit %zu",
                                static_cast<unsigned long long>(body_len),
                                max_frame_bytes_));
  }
  if (buffer_.size() - cursor < body_len) return NotFoundError("need more bytes");
  Frame frame;
  frame.type = static_cast<FrameType>(static_cast<uint8_t>(buffer_[cursor]));
  frame.payload.assign(buffer_, cursor + 1, static_cast<size_t>(body_len) - 1);
  pos_ = cursor + static_cast<size_t>(body_len);
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  }
  return frame;
}

void AppendTraceContext(std::string& out, const WireTraceContext& trace) {
  out.push_back(static_cast<char>(0x01));  // field version
  AppendVarint(out, trace.trace_id);
  AppendVarint(out, trace.parent_span_id);
  out.push_back(static_cast<char>(trace.flags));
}

Status FinishWithOptionalTraceContext(PayloadReader& reader,
                                      WireTraceContext* trace) {
  if (trace != nullptr) *trace = WireTraceContext{};
  if (reader.empty()) return Status::Ok();  // absent: pre-trace encoding
  AVOC_ASSIGN_OR_RETURN(const uint64_t version, reader.ReadVarint());
  if (version == 0) return ParseError("trace context version 0");
  if (version > 1) {
    // A future field revision: skip its bytes, keep the request.
    reader.Skip(reader.remaining());
    return Status::Ok();
  }
  WireTraceContext decoded;
  AVOC_ASSIGN_OR_RETURN(decoded.trace_id, reader.ReadVarint());
  AVOC_ASSIGN_OR_RETURN(decoded.parent_span_id, reader.ReadVarint());
  AVOC_ASSIGN_OR_RETURN(const uint64_t flags, reader.ReadVarint());
  if (flags > 0xFF) return ParseError("trace context flags out of range");
  decoded.flags = static_cast<uint8_t>(flags);
  if (decoded.trace_id == 0) {
    return ParseError("trace context with zero trace id");
  }
  if (trace != nullptr) *trace = decoded;
  return reader.ExpectEnd();
}

std::string EncodeSubmitBatch(std::string_view group,
                              std::span<const BatchReading> readings,
                              const WireTraceContext* trace) {
  std::string payload;
  payload.reserve(group.size() + 4 + readings.size() * 14);
  AppendLengthPrefixedString(payload, group);
  AppendVarint(payload, readings.size());
  for (const BatchReading& reading : readings) {
    AppendVarint(payload, reading.module);
    AppendVarint(payload, reading.round);
    AppendDouble(payload, reading.value);
  }
  if (trace != nullptr && trace->valid()) AppendTraceContext(payload, *trace);
  return payload;
}

Status DecodeSubmitBatch(std::string_view payload, std::string* group,
                         std::vector<BatchReading>* readings,
                         WireTraceContext* trace) {
  PayloadReader reader(payload);
  AVOC_ASSIGN_OR_RETURN(const std::string_view name, reader.ReadString());
  AVOC_ASSIGN_OR_RETURN(const uint64_t count, reader.ReadVarint());
  // Each reading needs >= 10 payload bytes; an absurd count with a tiny
  // payload is a pathological-length attack, not an allocation request.
  if (count > reader.remaining()) {
    return ParseError("reading count exceeds payload size");
  }
  group->assign(name);
  readings->clear();
  readings->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    BatchReading reading;
    AVOC_ASSIGN_OR_RETURN(reading.module, reader.ReadVarint());
    AVOC_ASSIGN_OR_RETURN(reading.round, reader.ReadVarint());
    AVOC_ASSIGN_OR_RETURN(reading.value, reader.ReadDouble());
    readings->push_back(reading);
  }
  return FinishWithOptionalTraceContext(reader, trace);
}

std::string EncodeSubmitBatchSeq(std::string_view client_id, uint64_t seq,
                                 std::string_view group,
                                 std::span<const BatchReading> readings,
                                 const WireTraceContext* trace) {
  std::string payload;
  payload.reserve(client_id.size() + group.size() + 12 +
                  readings.size() * 14);
  AppendLengthPrefixedString(payload, client_id);
  AppendVarint(payload, seq);
  payload += EncodeSubmitBatch(group, readings, trace);
  return payload;
}

Status DecodeSubmitBatchSeq(std::string_view payload, std::string* client_id,
                            uint64_t* seq, std::string* group,
                            std::vector<BatchReading>* readings,
                            WireTraceContext* trace) {
  PayloadReader reader(payload);
  AVOC_ASSIGN_OR_RETURN(const std::string_view id, reader.ReadString());
  AVOC_ASSIGN_OR_RETURN(*seq, reader.ReadVarint());
  client_id->assign(id);
  // The remainder is exactly a SUBMIT_BATCH payload (incl. the optional
  // trailing trace context, which therefore rides both verbs for free).
  return DecodeSubmitBatch(payload.substr(payload.size() - reader.remaining()),
                           group, readings, trace);
}

std::string EncodeClose(std::string_view group, uint64_t round,
                        const WireTraceContext* trace) {
  std::string payload;
  AppendLengthPrefixedString(payload, group);
  AppendVarint(payload, round);
  if (trace != nullptr && trace->valid()) AppendTraceContext(payload, *trace);
  return payload;
}

Status DecodeClose(std::string_view payload, std::string* group,
                   uint64_t* round, WireTraceContext* trace) {
  PayloadReader reader(payload);
  AVOC_ASSIGN_OR_RETURN(const std::string_view name, reader.ReadString());
  AVOC_ASSIGN_OR_RETURN(*round, reader.ReadVarint());
  group->assign(name);
  return FinishWithOptionalTraceContext(reader, trace);
}

std::string EncodeQuery(std::string_view group, const WireTraceContext* trace) {
  std::string payload;
  AppendLengthPrefixedString(payload, group);
  if (trace != nullptr && trace->valid()) AppendTraceContext(payload, *trace);
  return payload;
}

Status DecodeQuery(std::string_view payload, std::string* group,
                   WireTraceContext* trace) {
  PayloadReader reader(payload);
  AVOC_ASSIGN_OR_RETURN(const std::string_view name, reader.ReadString());
  group->assign(name);
  return FinishWithOptionalTraceContext(reader, trace);
}

std::string EncodeOk(uint64_t accepted) {
  std::string payload;
  AppendVarint(payload, accepted);
  return payload;
}

Status DecodeOk(std::string_view payload, uint64_t* accepted) {
  PayloadReader reader(payload);
  AVOC_ASSIGN_OR_RETURN(*accepted, reader.ReadVarint());
  return reader.ExpectEnd();
}

std::string EncodeError(std::string_view reason) {
  std::string payload;
  AppendLengthPrefixedString(payload, reason);
  return payload;
}

Status DecodeError(std::string_view payload, std::string* reason) {
  PayloadReader reader(payload);
  AVOC_ASSIGN_OR_RETURN(const std::string_view text, reader.ReadString());
  reason->assign(text);
  return reader.ExpectEnd();
}

std::string EncodeValue(double value) {
  std::string payload;
  AppendDouble(payload, value);
  return payload;
}

Status DecodeValue(std::string_view payload, double* value) {
  PayloadReader reader(payload);
  AVOC_ASSIGN_OR_RETURN(*value, reader.ReadDouble());
  return reader.ExpectEnd();
}

std::string EncodeText(std::string_view text) {
  std::string payload;
  AppendLengthPrefixedString(payload, text);
  return payload;
}

Status DecodeText(std::string_view payload, std::string* text) {
  PayloadReader reader(payload);
  AVOC_ASSIGN_OR_RETURN(const std::string_view s, reader.ReadString());
  text->assign(s);
  return reader.ExpectEnd();
}

std::string EncodeGroupList(std::span<const std::string> groups) {
  std::string payload;
  AppendVarint(payload, groups.size());
  for (const std::string& group : groups) {
    AppendLengthPrefixedString(payload, group);
  }
  return payload;
}

Status DecodeGroupList(std::string_view payload,
                       std::vector<std::string>* groups) {
  PayloadReader reader(payload);
  AVOC_ASSIGN_OR_RETURN(const uint64_t count, reader.ReadVarint());
  if (count > reader.remaining()) {
    return ParseError("group count exceeds payload size");
  }
  groups->clear();
  groups->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    AVOC_ASSIGN_OR_RETURN(const std::string_view name, reader.ReadString());
    groups->emplace_back(name);
  }
  return reader.ExpectEnd();
}

std::string EncodeQueryRange(std::string_view group, uint64_t lo_round,
                             uint64_t hi_round,
                             const WireTraceContext* trace) {
  std::string payload;
  AppendLengthPrefixedString(payload, group);
  AppendVarint(payload, lo_round);
  AppendVarint(payload, hi_round);
  if (trace != nullptr && trace->valid()) AppendTraceContext(payload, *trace);
  return payload;
}

Status DecodeQueryRange(std::string_view payload, std::string* group,
                        uint64_t* lo_round, uint64_t* hi_round,
                        WireTraceContext* trace) {
  PayloadReader reader(payload);
  AVOC_ASSIGN_OR_RETURN(const std::string_view name, reader.ReadString());
  group->assign(name);
  AVOC_ASSIGN_OR_RETURN(*lo_round, reader.ReadVarint());
  AVOC_ASSIGN_OR_RETURN(*hi_round, reader.ReadVarint());
  return FinishWithOptionalTraceContext(reader, trace);
}

std::string EncodeRangeResult(std::span<const RangePoint> points) {
  std::string payload;
  AppendVarint(payload, points.size());
  for (const RangePoint& point : points) {
    AppendVarint(payload, point.round);
    payload.push_back(static_cast<char>(point.engaged != 0 ? 1 : 0));
    AppendDouble(payload, point.value);
  }
  return payload;
}

Status DecodeRangeResult(std::string_view payload,
                         std::vector<RangePoint>* points) {
  PayloadReader reader(payload);
  AVOC_ASSIGN_OR_RETURN(const uint64_t count, reader.ReadVarint());
  // Each point is at least 10 bytes (varint round, engaged, f64).
  if (count > reader.remaining()) {
    return ParseError("range point count exceeds payload size");
  }
  points->clear();
  points->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    RangePoint point;
    AVOC_ASSIGN_OR_RETURN(point.round, reader.ReadVarint());
    if (reader.remaining() < 1) return ParseError("truncated range point");
    AVOC_ASSIGN_OR_RETURN(const uint64_t engaged, reader.ReadVarint());
    if (engaged > 1) return ParseError("range point engaged flag not 0/1");
    point.engaged = static_cast<uint8_t>(engaged);
    AVOC_ASSIGN_OR_RETURN(point.value, reader.ReadDouble());
    points->push_back(point);
  }
  return reader.ExpectEnd();
}

std::string EncodeHistoryGet(std::string_view group,
                             const WireTraceContext* trace) {
  std::string payload;
  AppendLengthPrefixedString(payload, group);
  if (trace != nullptr && trace->valid()) AppendTraceContext(payload, *trace);
  return payload;
}

Status DecodeHistoryGet(std::string_view payload, std::string* group,
                        WireTraceContext* trace) {
  PayloadReader reader(payload);
  AVOC_ASSIGN_OR_RETURN(const std::string_view name, reader.ReadString());
  group->assign(name);
  return FinishWithOptionalTraceContext(reader, trace);
}

std::string EncodeHistoryState(uint64_t rounds,
                               std::span<const double> records) {
  std::string payload;
  AppendVarint(payload, rounds);
  AppendVarint(payload, records.size());
  for (const double record : records) AppendDouble(payload, record);
  return payload;
}

Status DecodeHistoryState(std::string_view payload, uint64_t* rounds,
                          std::vector<double>* records) {
  PayloadReader reader(payload);
  AVOC_ASSIGN_OR_RETURN(*rounds, reader.ReadVarint());
  AVOC_ASSIGN_OR_RETURN(const uint64_t count, reader.ReadVarint());
  if (count > reader.remaining() / 8) {
    return ParseError("history record count exceeds payload size");
  }
  records->clear();
  records->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    AVOC_ASSIGN_OR_RETURN(const double record, reader.ReadDouble());
    records->push_back(record);
  }
  return reader.ExpectEnd();
}

std::string EncodeMigrateGroup(std::string_view group, uint64_t dest_node) {
  std::string payload;
  AppendLengthPrefixedString(payload, group);
  AppendVarint(payload, dest_node);
  return payload;
}

Status DecodeMigrateGroup(std::string_view payload, std::string* group,
                          uint64_t* dest_node) {
  PayloadReader reader(payload);
  AVOC_ASSIGN_OR_RETURN(const std::string_view name, reader.ReadString());
  group->assign(name);
  AVOC_ASSIGN_OR_RETURN(*dest_node, reader.ReadVarint());
  return reader.ExpectEnd();
}

std::string EncodeMoved(uint64_t node, std::string_view address) {
  std::string payload;
  AppendVarint(payload, node);
  AppendLengthPrefixedString(payload, address);
  return payload;
}

Status DecodeMoved(std::string_view payload, uint64_t* node,
                   std::string* address) {
  PayloadReader reader(payload);
  AVOC_ASSIGN_OR_RETURN(*node, reader.ReadVarint());
  AVOC_ASSIGN_OR_RETURN(const std::string_view addr, reader.ReadString());
  address->assign(addr);
  return reader.ExpectEnd();
}

}  // namespace avoc::runtime
