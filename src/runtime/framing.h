// Length-prefixed binary frame protocol for the networked voter service.
//
// The line protocol of runtime/remote.h costs one request/response round
// trip — and one text parse — per reading.  The paper's deployment shape
// (sensors → VINT hub → WiFi → voting sink-node) fans thousands of edge
// readings into one ingest tier, so the wire format here is built for
// batching: a single SUBMIT_BATCH frame carries N readings and the server
// turns it into one columnar engine pass.
//
// Wire format (after the 2-byte connection preamble, see kBinaryMagic):
//
//   frame   := varint(body_len) body
//   body    := type_byte payload            (body_len = 1 + |payload|)
//   varint  := LEB128 unsigned, low 7 bits first, MSB = continuation
//   string  := varint(len) bytes            (UTF-8, no terminator)
//   f64     := IEEE-754 double, little-endian, 8 bytes
//
// body_len must be >= 1 (the type byte) and <= max_frame_bytes; a length
// of 0, an over-long length varint (> 5 bytes), or an oversized length
// poisons the decoder — the connection is then unrecoverable by design,
// since byte boundaries are lost.  The decoder tolerates arbitrary
// fragmentation: bytes may arrive one at a time (slow-loris) or many
// frames per segment.
//
// Message payloads (request -> response):
//
//   SUBMIT_BATCH  string group, varint n, n x (varint module, varint
//                 round, f64 value)                     -> OK | ERR
//   SUBMIT_BATCH_SEQ  string client_id, varint seq, then the
//                 SUBMIT_BATCH payload; duplicate (client_id, seq)
//                 replays the original OK (dedup)       -> OK | ERR
//   CLOSE         string group, varint round            -> OK | ERR
//   QUERY         string group                          -> VALUE | NONE | ERR
//   QUERY_RANGE   string group, varint lo_round, varint hi_round
//                 (inclusive)                           -> RANGE_RESULT | ERR
//   HISTORY_GET   string group                          -> HISTORY | ERR
//   GROUPS        (empty)                               -> GROUP_LIST | ERR
//   METRICS       (empty)                               -> TEXT | ERR
//   HEALTH        (empty)                               -> TEXT | ERR
//   TRACE_DUMP    (empty)                               -> TEXT | ERR
//   PING          (empty)                               -> PONG
//   QUIT          (empty)                               -> BYE (then close)
//
// Group-addressed requests (SUBMIT_BATCH, SUBMIT_BATCH_SEQ, CLOSE,
// QUERY, QUERY_RANGE, HISTORY_GET) may carry an OPTIONAL trailing
// trace-context field after their mandatory payload:
//
//   trace_ctx := u8 version(0x01), varint trace_id, varint parent_span_id,
//                u8 flags (bit 0 = sampled)
//
// The field is version-tolerant by construction: an absent field decodes
// exactly as before (old clients), decoders skip the remainder of any
// field with version > 1 (new clients against this server), and servers
// that predate the field reject it as trailing garbage — which the
// resilient client treats as a non-retryable error, matching every other
// capability mismatch.  See docs/PROTOCOL.md.
//
//   OK            varint accepted (readings routed; SUBMIT_BATCH may
//                 accept fewer than sent when modules are out of range)
//   ERR           string reason
//   VALUE         f64
//   NONE          (empty)
//   GROUP_LIST    varint n, n x string
//   TEXT          string (Prometheus exposition / HEALTH lines)
//   RANGE_RESULT  varint n, n x (varint round, u8 engaged, f64 value);
//                 values carry exact IEEE-754 bits, so the response is
//                 bit-identical to the server's stored trace
//   HISTORY       varint rounds, varint n, n x f64 (reliability records)
//   PONG, BYE     (empty)
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace avoc::runtime {

/// Connection preamble announcing the binary protocol.  0xAB is outside
/// printable ASCII, so the first byte alone separates framed clients from
/// legacy line-protocol clients (whose verbs are uppercase ASCII).
inline constexpr uint8_t kBinaryMagic[2] = {0xAB, 0x0C};

/// Default ceiling on one frame's body (type byte + payload).
inline constexpr size_t kMaxFrameBytes = 16u << 20;

/// Longest accepted length-prefix varint: 5 LEB128 bytes cover 2^35 - 1,
/// far past any sane frame; more is a pathological length by definition.
inline constexpr size_t kMaxLengthVarintBytes = 5;

enum class FrameType : uint8_t {
  // Requests.
  kSubmitBatch = 0x01,
  kClose = 0x02,
  kQuery = 0x03,
  kGroups = 0x04,
  kMetrics = 0x05,
  kHealth = 0x06,
  kPing = 0x07,
  kQuit = 0x08,
  /// SUBMIT_BATCH with a client identity and sequence number for
  /// server-side dedup: a client that resends after a lost reply gets the
  /// original acknowledgement replayed instead of double-ingesting the
  /// readings (exactly-once under retries; see docs/PROTOCOL.md).
  kSubmitBatchSeq = 0x09,
  /// Range read over the group's persisted vote trace (storage seam).
  kQueryRange = 0x0A,
  /// Read of the group's live history ledger (reliability records).
  kHistoryGet = 0x0B,
  /// Snapshot of the server's flight recorder (obs/trace.h) as the
  /// canonical AVOC-TRACE text dump, served like METRICS.
  kTraceDump = 0x0C,
  /// Operator verb: quiesce `group` on this node, hand its full state to
  /// cluster node `dest`, and answer later requests with MOVED.  Cluster
  /// mode only (see runtime/cluster.h, docs/MIGRATION.md).
  kMigrateGroup = 0x0D,
  // Responses (high bit set).
  kOk = 0x81,
  kError = 0x82,
  kValue = 0x83,
  kNone = 0x84,
  kGroupList = 0x85,
  kText = 0x86,
  kPong = 0x87,
  kBye = 0x88,
  kRangeResult = 0x89,
  kHistory = 0x8A,
  /// Redirect: the addressed group lives on cluster node `node` (at
  /// `address`).  Clients re-resolve and resubmit — with SUBMIT_BATCH_SEQ
  /// the dedup cache travels with the group, so the resubmit stays
  /// exactly-once.
  kMoved = 0x8B,
};

/// Name of a frame type ("SUBMIT_BATCH", ...); "UNKNOWN" for others.
std::string_view FrameTypeName(FrameType type);

/// One decoded frame: the type byte plus its raw payload.
struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

// --- primitive encoders (append to `out`) -----------------------------------

void AppendVarint(std::string& out, uint64_t value);
void AppendDouble(std::string& out, double value);
void AppendLengthPrefixedString(std::string& out, std::string_view s);

/// Wraps a body (type + payload) in its varint length prefix.
std::string EncodeFrame(FrameType type, std::string_view payload = {});

// --- primitive decoder over one payload --------------------------------------

/// Bounds-checked cursor over a frame payload.  Every read fails with
/// ParseError instead of walking off the end.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : data_(payload) {}

  Result<uint64_t> ReadVarint();
  Result<double> ReadDouble();
  /// A varint-length-prefixed string (view into the payload).
  Result<std::string_view> ReadString();

  size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }

  /// Discards up to `n` unread bytes (forward-compat field skipping).
  void Skip(size_t n) { pos_ += std::min(n, remaining()); }

  /// ParseError unless every payload byte was consumed — trailing garbage
  /// inside a frame is a protocol violation.
  Status ExpectEnd() const;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// --- incremental frame decoder -----------------------------------------------

/// Feeds arbitrary byte fragments in, hands complete frames out.  A
/// protocol violation (bad length) poisons the decoder permanently: the
/// caller must drop the connection, because frame boundaries are gone.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(std::string_view bytes);

  /// Next complete frame.  NotFound = need more bytes (not an error);
  /// ParseError = protocol violation, decoder poisoned.
  Result<Frame> Next();

  /// Bytes buffered but not yet returned as frames.
  size_t buffered() const { return buffer_.size() - pos_; }
  bool poisoned() const { return poisoned_; }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  size_t pos_ = 0;
  bool poisoned_ = false;
};

// --- trace context -----------------------------------------------------------

/// Wire form of the distributed-tracing context (obs/trace.h): which
/// trace a request belongs to and which client span to parent the server
/// span under.  trace_id 0 means "absent" — the field is then omitted on
/// encode, so untraced requests are byte-identical to the PR 7 format.
struct WireTraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  uint8_t flags = 0;

  bool valid() const { return trace_id != 0; }
};

/// Appends the versioned trace-context field (caller checks valid()).
void AppendTraceContext(std::string& out, const WireTraceContext& trace);

/// Terminal decode step for group-addressed requests: consumes an
/// optional trailing trace-context field (tolerating future versions by
/// skipping their bytes), then requires end-of-payload.  `trace` may be
/// null to validate-and-discard.
Status FinishWithOptionalTraceContext(PayloadReader& reader,
                                      WireTraceContext* trace);

// --- typed messages ----------------------------------------------------------

/// One reading inside a SUBMIT_BATCH frame.
struct BatchReading {
  uint64_t module = 0;
  uint64_t round = 0;
  double value = 0.0;
};

std::string EncodeSubmitBatch(std::string_view group,
                              std::span<const BatchReading> readings,
                              const WireTraceContext* trace = nullptr);
Status DecodeSubmitBatch(std::string_view payload, std::string* group,
                         std::vector<BatchReading>* readings,
                         WireTraceContext* trace = nullptr);

/// SUBMIT_BATCH_SEQ: string client_id, varint seq, then the SUBMIT_BATCH
/// payload (string group, varint n, readings).
std::string EncodeSubmitBatchSeq(std::string_view client_id, uint64_t seq,
                                 std::string_view group,
                                 std::span<const BatchReading> readings,
                                 const WireTraceContext* trace = nullptr);
Status DecodeSubmitBatchSeq(std::string_view payload, std::string* client_id,
                            uint64_t* seq, std::string* group,
                            std::vector<BatchReading>* readings,
                            WireTraceContext* trace = nullptr);

std::string EncodeClose(std::string_view group, uint64_t round,
                        const WireTraceContext* trace = nullptr);
Status DecodeClose(std::string_view payload, std::string* group,
                   uint64_t* round, WireTraceContext* trace = nullptr);

std::string EncodeQuery(std::string_view group,
                        const WireTraceContext* trace = nullptr);
Status DecodeQuery(std::string_view payload, std::string* group,
                   WireTraceContext* trace = nullptr);

std::string EncodeOk(uint64_t accepted);
Status DecodeOk(std::string_view payload, uint64_t* accepted);

std::string EncodeError(std::string_view reason);
Status DecodeError(std::string_view payload, std::string* reason);

std::string EncodeValue(double value);
Status DecodeValue(std::string_view payload, double* value);

std::string EncodeText(std::string_view text);
Status DecodeText(std::string_view payload, std::string* text);

std::string EncodeGroupList(std::span<const std::string> groups);
Status DecodeGroupList(std::string_view payload,
                       std::vector<std::string>* groups);

/// One point of a RANGE_RESULT response.  `value` carries the exact
/// IEEE-754 bits of the stored trace row (0.0 when not engaged).
struct RangePoint {
  uint64_t round = 0;
  double value = 0.0;
  uint8_t engaged = 0;
};

std::string EncodeQueryRange(std::string_view group, uint64_t lo_round,
                             uint64_t hi_round,
                             const WireTraceContext* trace = nullptr);
Status DecodeQueryRange(std::string_view payload, std::string* group,
                        uint64_t* lo_round, uint64_t* hi_round,
                        WireTraceContext* trace = nullptr);

std::string EncodeRangeResult(std::span<const RangePoint> points);
Status DecodeRangeResult(std::string_view payload,
                         std::vector<RangePoint>* points);

std::string EncodeHistoryGet(std::string_view group,
                             const WireTraceContext* trace = nullptr);
Status DecodeHistoryGet(std::string_view payload, std::string* group,
                        WireTraceContext* trace = nullptr);

/// HISTORY response body: the voter's live reliability ledger.
std::string EncodeHistoryState(uint64_t rounds, std::span<const double> records);
Status DecodeHistoryState(std::string_view payload, uint64_t* rounds,
                          std::vector<double>* records);

/// MIGRATE_GROUP request: string group, varint dest node index.
std::string EncodeMigrateGroup(std::string_view group, uint64_t dest_node);
Status DecodeMigrateGroup(std::string_view payload, std::string* group,
                          uint64_t* dest_node);

/// MOVED response: varint owning node index, string node address
/// (informational — clients resolve the index through their own dialer).
std::string EncodeMoved(uint64_t node, std::string_view address);
Status DecodeMoved(std::string_view payload, uint64_t* node,
                   std::string* address);

}  // namespace avoc::runtime
