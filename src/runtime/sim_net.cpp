#include "runtime/sim_net.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/strings.h"

namespace avoc::runtime {
namespace {

constexpr const char* DirName(bool c2s) { return c2s ? "c2s" : "s2c"; }

unsigned long long U64(uint64_t v) { return static_cast<unsigned long long>(v); }

}  // namespace

// --- FaultPlan ---------------------------------------------------------------

uint64_t FaultPlan::HealedAfterMs() const {
  uint64_t healed = 0;
  for (uint64_t t : reset_at_ms) healed = std::max(healed, t + 1);
  for (const FaultWindow& w : partitions) healed = std::max(healed, w.end_ms);
  for (const FaultWindow& w : blackhole_c2s) healed = std::max(healed, w.end_ms);
  for (const FaultWindow& w : blackhole_s2c) healed = std::max(healed, w.end_ms);
  return healed;
}

FaultPlan FaultPlan::Chaos(uint64_t seed, uint64_t horizon_ms) {
  Rng rng(seed);
  horizon_ms = std::max<uint64_t>(horizon_ms, 100);
  FaultPlan plan;
  switch (rng.UniformInt(3)) {
    case 0: plan.max_segment_bytes = 1 + rng.UniformInt(7); break;
    case 1: plan.max_segment_bytes = 8 + rng.UniformInt(120); break;
    default: break;  // unlimited
  }
  if (rng.Bernoulli(0.3)) plan.max_read_bytes = 1 + rng.UniformInt(15);
  plan.min_delay_ms = rng.UniformInt(4);
  plan.max_delay_ms = plan.min_delay_ms + rng.UniformInt(16);

  const uint64_t resets = rng.UniformInt(3);
  for (uint64_t i = 0; i < resets; ++i) {
    plan.reset_at_ms.push_back(1 + rng.UniformInt(horizon_ms * 4 / 5));
  }
  std::sort(plan.reset_at_ms.begin(), plan.reset_at_ms.end());

  auto draw_window = [&rng, horizon_ms]() -> FaultWindow {
    FaultWindow w;
    w.start_ms = rng.UniformInt(horizon_ms * 3 / 5);
    w.end_ms = std::min(w.start_ms + 1 + rng.UniformInt(horizon_ms / 5),
                        horizon_ms - 1);
    return w;
  };
  const uint64_t parts = rng.UniformInt(3);
  for (uint64_t i = 0; i < parts; ++i) {
    FaultWindow w = draw_window();
    if (w.end_ms > w.start_ms) plan.partitions.push_back(w);
  }
  const uint64_t holes_c2s = rng.UniformInt(2);
  for (uint64_t i = 0; i < holes_c2s; ++i) {
    FaultWindow w = draw_window();
    if (w.end_ms > w.start_ms) plan.blackhole_c2s.push_back(w);
  }
  const uint64_t holes_s2c = rng.UniformInt(2);
  for (uint64_t i = 0; i < holes_s2c; ++i) {
    FaultWindow w = draw_window();
    if (w.end_ms > w.start_ms) plan.blackhole_s2c.push_back(w);
  }
  return plan;
}

FaultPlan FaultPlan::Gentle(uint64_t seed) {
  Rng rng(seed);
  FaultPlan plan;
  plan.max_segment_bytes = 1 + rng.UniformInt(32);
  plan.min_delay_ms = rng.UniformInt(3);
  plan.max_delay_ms = plan.min_delay_ms + rng.UniformInt(8);
  return plan;
}

// --- SimWorld ----------------------------------------------------------------

SimWorld::SimWorld(uint64_t seed) : SimWorld(seed, Options{}) {}

SimWorld::SimWorld(uint64_t seed, Options options)
    : seed_(seed), options_(std::move(options)), rng_(seed) {
  std::sort(options_.fault_plan.reset_at_ms.begin(),
            options_.fault_plan.reset_at_ms.end());
  reactor_ = std::make_shared<SimReactor>(this);
  reactors_.push_back(reactor_);
}

std::shared_ptr<SimReactor> SimWorld::NewReactor() {
  reactors_.push_back(std::make_shared<SimReactor>(this));
  return reactors_.back();
}

SimWorld::~SimWorld() = default;

void SimWorld::Trace(std::string line) {
  if (options_.record_trace) trace_.push_back(std::move(line));
}

std::string SimWorld::TraceText() const {
  std::string text;
  for (const std::string& line : trace_) {
    text += line;
    text += '\n';
  }
  return text;
}

bool SimWorld::PartitionActiveAt(uint64_t t) const {
  for (const FaultWindow& w : options_.fault_plan.partitions) {
    if (w.Contains(t)) return true;
  }
  return false;
}

bool SimWorld::BlackholeActiveAt(uint64_t t, bool c2s) const {
  const auto& windows = c2s ? options_.fault_plan.blackhole_c2s
                            : options_.fault_plan.blackhole_s2c;
  for (const FaultWindow& w : windows) {
    if (w.Contains(t)) return true;
  }
  return false;
}

SimWorld::Conn* SimWorld::FindConn(int conn_id) {
  auto it = conns_.find(conn_id);
  return it == conns_.end() ? nullptr : &it->second;
}

Result<std::unique_ptr<Listener>> SimWorld::Listen(uint16_t port) {
  if (listening_.count(port) != 0) {
    return InvalidArgumentError(StrFormat("sim port %u already bound", port));
  }
  const int handle = next_handle_++;
  Port& state = ports_[handle];
  state.port = port;
  state.handle = handle;
  listening_[port] = handle;
  Trace(StrFormat("t=%llu listen :%u", U64(now_ms_), port));
  return std::unique_ptr<Listener>(
      std::make_unique<SimListener>(this, handle, port));
}

Result<std::unique_ptr<Transport>> SimWorld::Connect(uint16_t port) {
  ApplyScriptedFaults();
  if (PartitionActiveAt(now_ms_)) {
    Trace(StrFormat("t=%llu connect-fail :%u partitioned", U64(now_ms_), port));
    return IoError("sim connect failed: network partitioned");
  }
  auto it = listening_.find(port);
  if (it == listening_.end() || ports_[it->second].closed) {
    Trace(StrFormat("t=%llu connect-fail :%u refused", U64(now_ms_), port));
    return IoError(StrFormat("sim connect to :%u refused", port));
  }
  Conn conn;
  conn.id = next_conn_id_++;
  conn.client_handle = next_handle_++;
  conn.server_handle = next_handle_++;
  const int id = conn.id;
  const int client_handle = conn.client_handle;
  const int server_handle = conn.server_handle;
  conns_.emplace(id, std::move(conn));
  endpoints_[client_handle] = Endpoint{id, /*is_client=*/true};
  endpoints_[server_handle] = Endpoint{id, /*is_client=*/false};
  ports_[it->second].pending.push_back(
      PendingAccept{now_ms_ + options_.connect_delay_ms, id});
  Trace(StrFormat("t=%llu connect #%d -> :%u", U64(now_ms_), id, port));
  return std::unique_ptr<Transport>(
      std::make_unique<SimTransport>(this, client_handle));
}

uint32_t SimWorld::Readiness(int handle) {
  auto port_it = ports_.find(handle);
  if (port_it != ports_.end()) {
    const Port& port = port_it->second;
    if (port.closed) return 0;
    for (const PendingAccept& pending : port.pending) {
      if (pending.ready_at <= now_ms_) return kIoRead;
    }
    return 0;
  }
  auto ep_it = endpoints_.find(handle);
  if (ep_it == endpoints_.end()) return 0;
  Conn* conn = FindConn(ep_it->second.conn_id);
  if (conn == nullptr) return 0;
  const bool is_client = ep_it->second.is_client;
  const bool my_closed = is_client ? conn->client_closed : conn->server_closed;
  if (my_closed) return 0;  // like epoll: a closed fd reports nothing
  if (conn->reset) return kIoError | kIoRead;
  const Pipe& rx = is_client ? conn->s2c : conn->c2s;
  const Pipe& tx = is_client ? conn->c2s : conn->s2c;
  uint32_t ready = 0;
  if (!rx.delivered.empty() || (rx.src_closed && rx.in_flight.empty())) {
    ready |= kIoRead;
  }
  if (tx.bytes_in_flight + tx.delivered.size() < options_.pipe_capacity_bytes) {
    ready |= kIoWrite;
  }
  return ready;
}

IoOp SimWorld::EndpointRead(int handle, char* buffer, size_t len) {
  auto ep_it = endpoints_.find(handle);
  if (ep_it == endpoints_.end()) {
    return IoOp{IoOp::Kind::kError, 0, IoError("unknown sim endpoint")};
  }
  Conn* conn = FindConn(ep_it->second.conn_id);
  const bool is_client = ep_it->second.is_client;
  if (conn == nullptr ||
      (is_client ? conn->client_closed : conn->server_closed)) {
    return IoOp{IoOp::Kind::kError, 0, IoError("read on closed sim transport")};
  }
  if (conn->reset) {
    return IoOp{IoOp::Kind::kError, 0, IoError("connection reset by peer")};
  }
  Pipe& rx = is_client ? conn->s2c : conn->c2s;
  if (rx.delivered.empty()) {
    if (rx.src_closed && rx.in_flight.empty()) return IoOp{IoOp::Kind::kEof};
    return IoOp{IoOp::Kind::kWouldBlock};
  }
  size_t n = std::min(len, rx.delivered.size());
  if (options_.fault_plan.max_read_bytes > 0) {
    n = std::min(n, options_.fault_plan.max_read_bytes);
  }
  std::memcpy(buffer, rx.delivered.data(), n);
  rx.delivered.erase(0, n);
  return IoOp{IoOp::Kind::kDone, n};
}

IoOp SimWorld::EndpointWrite(int handle, const char* data, size_t len) {
  auto ep_it = endpoints_.find(handle);
  if (ep_it == endpoints_.end()) {
    return IoOp{IoOp::Kind::kError, 0, IoError("unknown sim endpoint")};
  }
  Conn* conn = FindConn(ep_it->second.conn_id);
  const bool is_client = ep_it->second.is_client;
  if (conn == nullptr ||
      (is_client ? conn->client_closed : conn->server_closed)) {
    return IoOp{IoOp::Kind::kError, 0,
                IoError("write on closed sim transport")};
  }
  if (conn->reset) {
    return IoOp{IoOp::Kind::kError, 0, IoError("connection reset by peer")};
  }
  Pipe& tx = is_client ? conn->c2s : conn->s2c;
  const size_t used = tx.bytes_in_flight + tx.delivered.size();
  if (used >= options_.pipe_capacity_bytes) return IoOp{IoOp::Kind::kWouldBlock};
  size_t n = std::min(len, options_.pipe_capacity_bytes - used);
  if (options_.fault_plan.max_segment_bytes > 0) {
    n = std::min(n, options_.fault_plan.max_segment_bytes);
  }
  EnqueueBytes(*conn, /*c2s=*/is_client, std::string_view(data, n));
  return IoOp{IoOp::Kind::kDone, n};
}

void SimWorld::EnqueueBytes(Conn& conn, bool c2s, std::string_view data) {
  const FaultPlan& plan = options_.fault_plan;
  if (BlackholeActiveAt(now_ms_, c2s)) {
    Trace(StrFormat("t=%llu drop #%d %s %zuB", U64(now_ms_), conn.id,
                    DirName(c2s), data.size()));
    return;
  }
  Pipe& pipe = c2s ? conn.c2s : conn.s2c;
  auto insert = [this, &pipe](uint64_t deliver_at, std::string bytes) {
    Segment segment;
    segment.deliver_at = deliver_at;
    segment.seq = next_segment_seq_++;
    pipe.bytes_in_flight += bytes.size();
    segment.bytes = std::move(bytes);
    auto pos = std::upper_bound(
        pipe.in_flight.begin(), pipe.in_flight.end(), segment,
        [](const Segment& a, const Segment& b) {
          if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
          return a.seq < b.seq;
        });
    pipe.in_flight.insert(pos, std::move(segment));
  };
  size_t off = 0;
  while (off < data.size()) {
    size_t n = data.size() - off;
    if (plan.max_segment_bytes > 0) n = std::min(n, plan.max_segment_bytes);
    std::string bytes(data.substr(off, n));
    off += n;
    uint64_t delay = plan.min_delay_ms;
    if (plan.max_delay_ms > plan.min_delay_ms) {
      delay += rng_.UniformInt(plan.max_delay_ms - plan.min_delay_ms + 1);
    }
    uint64_t deliver_at = now_ms_ + delay;
    const bool reorder =
        plan.reorder_segment_p > 0 && rng_.Bernoulli(plan.reorder_segment_p);
    if (!reorder) {
      deliver_at = std::max(deliver_at, pipe.fifo_floor);
      pipe.fifo_floor = deliver_at;
    }
    if (plan.corrupt_byte_p > 0 && !bytes.empty() &&
        rng_.Bernoulli(plan.corrupt_byte_p)) {
      const size_t pos = rng_.UniformInt(bytes.size());
      bytes[pos] = static_cast<char>(
          static_cast<uint8_t>(bytes[pos]) ^
          static_cast<uint8_t>(1 + rng_.UniformInt(255)));
      Trace(StrFormat("t=%llu corrupt #%d %s", U64(now_ms_), conn.id,
                      DirName(c2s)));
    }
    const bool duplicate = plan.duplicate_segment_p > 0 &&
                           rng_.Bernoulli(plan.duplicate_segment_p);
    if (duplicate) {
      Trace(StrFormat("t=%llu dup #%d %s %zuB", U64(now_ms_), conn.id,
                      DirName(c2s), bytes.size()));
      insert(now_ms_ + delay, bytes);
    }
    insert(deliver_at, std::move(bytes));
  }
}

void SimWorld::EndpointClose(int handle) {
  auto ep_it = endpoints_.find(handle);
  if (ep_it == endpoints_.end()) return;
  Conn* conn = FindConn(ep_it->second.conn_id);
  if (conn == nullptr) return;
  const bool is_client = ep_it->second.is_client;
  bool& my_closed = is_client ? conn->client_closed : conn->server_closed;
  if (my_closed) return;
  my_closed = true;
  Pipe& tx = is_client ? conn->c2s : conn->s2c;
  tx.src_closed = true;
  Trace(StrFormat("t=%llu close #%d %s", U64(now_ms_), conn->id,
                  is_client ? "client" : "server"));
}

Result<std::unique_ptr<Transport>> SimWorld::AcceptOn(int listener_handle) {
  auto it = ports_.find(listener_handle);
  if (it == ports_.end() || it->second.closed) {
    return IoError("sim listener closed");
  }
  Port& port = it->second;
  while (!port.pending.empty()) {
    if (port.pending.front().ready_at > now_ms_) break;
    const int conn_id = port.pending.front().conn_id;
    port.pending.pop_front();
    Conn* conn = FindConn(conn_id);
    if (conn == nullptr || conn->reset) continue;  // reset before accept
    Trace(StrFormat("t=%llu accept #%d", U64(now_ms_), conn_id));
    return std::unique_ptr<Transport>(
        std::make_unique<SimTransport>(this, conn->server_handle));
  }
  return NotFoundError("no pending sim connection");
}

void SimWorld::CloseListener(int listener_handle) {
  auto it = ports_.find(listener_handle);
  if (it == ports_.end() || it->second.closed) return;
  it->second.closed = true;
  listening_.erase(it->second.port);
  Trace(StrFormat("t=%llu unlisten :%u", U64(now_ms_), it->second.port));
}

void SimWorld::ResetConn(Conn& conn, std::string_view why) {
  conn.reset = true;
  conn.c2s = Pipe{};
  conn.s2c = Pipe{};
  Trace(StrFormat("t=%llu reset #%d (%.*s)", U64(now_ms_), conn.id,
                  static_cast<int>(why.size()), why.data()));
}

void SimWorld::ResetAllConnections() {
  for (auto& [id, conn] : conns_) {
    if (!conn.reset && !(conn.client_closed && conn.server_closed)) {
      ResetConn(conn, "manual");
    }
  }
}

void SimWorld::ApplyScriptedFaults() {
  const auto& resets = options_.fault_plan.reset_at_ms;
  while (scripted_resets_applied_ < resets.size() &&
         resets[scripted_resets_applied_] <= now_ms_) {
    Trace(StrFormat("t=%llu scripted-reset", U64(now_ms_)));
    for (auto& [id, conn] : conns_) {
      if (!conn.reset && !(conn.client_closed && conn.server_closed)) {
        ResetConn(conn, "scripted");
      }
    }
    ++scripted_resets_applied_;
  }
}

void SimWorld::DeliverDue() {
  if (PartitionActiveAt(now_ms_)) return;
  for (auto& [id, conn] : conns_) {
    for (int dir = 0; dir < 2; ++dir) {
      const bool c2s = dir == 0;
      Pipe& pipe = c2s ? conn.c2s : conn.s2c;
      while (!pipe.in_flight.empty() &&
             pipe.in_flight.front().deliver_at <= now_ms_) {
        Segment segment = std::move(pipe.in_flight.front());
        pipe.in_flight.pop_front();
        pipe.bytes_in_flight -= segment.bytes.size();
        pipe.delivered += segment.bytes;
        Trace(StrFormat("t=%llu dlv #%d %s %zuB", U64(now_ms_), conn.id,
                        DirName(c2s), segment.bytes.size()));
      }
    }
  }
}

uint64_t SimWorld::NextEventAtMs() const {
  uint64_t best = UINT64_MAX;
  auto consider = [&best](uint64_t t) { best = std::min(best, t); };
  auto unpartitioned_at_or_after = [this](uint64_t t) {
    bool again = true;
    while (again) {
      again = false;
      for (const FaultWindow& w : options_.fault_plan.partitions) {
        if (w.Contains(t)) {
          t = w.end_ms;
          again = true;
        }
      }
    }
    return t;
  };
  for (const auto& [id, conn] : conns_) {
    for (const Pipe* pipe : {&conn.c2s, &conn.s2c}) {
      if (pipe->in_flight.empty()) continue;
      const uint64_t at = unpartitioned_at_or_after(
          std::max(pipe->in_flight.front().deliver_at, now_ms_));
      if (at > now_ms_) consider(at);
    }
  }
  for (const auto& [handle, port] : ports_) {
    if (port.closed) continue;
    for (const PendingAccept& pending : port.pending) {
      if (pending.ready_at > now_ms_) consider(pending.ready_at);
    }
  }
  const auto& resets = options_.fault_plan.reset_at_ms;
  if (scripted_resets_applied_ < resets.size() &&
      resets[scripted_resets_applied_] > now_ms_) {
    consider(resets[scripted_resets_applied_]);
  }
  for (const auto& reactor : reactors_) {
    const uint64_t timer_at = reactor->NextTimerAtMs();
    if (timer_at != UINT64_MAX) consider(std::max(timer_at, now_ms_ + 1));
  }
  return best;
}

void SimWorld::Pump() {
  // Deliveries can unlock callbacks which write zero-latency segments
  // which unlock more callbacks — iterate to fixpoint (bounded).  With
  // several reactors (sharded servers), each outer iteration dispatches
  // every reactor once in creation order, so a mailbox post from reactor
  // k to reactor j executes this iteration when j > k and the next one
  // when j <= k — deterministic either way.
  for (int i = 0; i < 64; ++i) {
    ApplyScriptedFaults();
    DeliverDue();
    bool progressed = false;
    for (const auto& reactor : reactors_) {
      reactor->AdvanceTimers();
      if (reactor->Dispatch()) progressed = true;
    }
    if (!progressed) break;
  }
}

void SimWorld::AdvanceTo(uint64_t t) {
  now_ms_ = std::max(now_ms_, t);
  Pump();
}

void SimWorld::RunFor(uint64_t ms) {
  const uint64_t target = now_ms_ + ms;
  Pump();
  while (now_ms_ < target) {
    const uint64_t next = NextEventAtMs();
    AdvanceTo(next > target ? target : std::max(next, now_ms_ + 1));
  }
}

bool SimWorld::RunUntil(const std::function<bool()>& pred,
                        uint64_t deadline_ms) {
  Pump();
  while (!pred() && now_ms_ < deadline_ms) {
    const uint64_t next = NextEventAtMs();
    AdvanceTo(next > deadline_ms ? deadline_ms : std::max(next, now_ms_ + 1));
  }
  return pred();
}

void SimWorld::SleepMs(uint64_t ms) { RunFor(ms); }

// --- SimReactor --------------------------------------------------------------

SimReactor::SimReactor(SimWorld* world) : world_(world) {}

uint64_t SimReactor::now_ms() const { return world_->now_ms_; }

Status SimReactor::Watch(int handle, uint32_t interest, IoCallback callback) {
  if (callback == nullptr) return InvalidArgumentError("null callback");
  auto [it, inserted] = watched_.try_emplace(handle);
  if (!inserted) {
    return InvalidArgumentError(StrFormat("handle %d already watched", handle));
  }
  it->second.generation = next_generation_++;
  it->second.interest = interest;
  it->second.callback = std::make_shared<IoCallback>(std::move(callback));
  return Status::Ok();
}

Status SimReactor::SetInterest(int handle, uint32_t interest) {
  auto it = watched_.find(handle);
  if (it == watched_.end()) {
    return InvalidArgumentError(StrFormat("handle %d not watched", handle));
  }
  it->second.interest = interest;
  return Status::Ok();
}

Status SimReactor::Unwatch(int handle) {
  if (watched_.erase(handle) == 0) {
    return InvalidArgumentError(StrFormat("handle %d not watched", handle));
  }
  return Status::Ok();
}

uint64_t SimReactor::ScheduleTimer(uint64_t delay_ms,
                                   std::function<void()> fn) {
  return timers_.Schedule(world_->now_ms_, delay_ms, std::move(fn));
}

bool SimReactor::CancelTimer(uint64_t id) { return timers_.Cancel(id); }

void SimReactor::Post(std::function<void()> fn) {
  posted_.push_back(std::move(fn));
}

void SimReactor::Run() {
  const uint64_t deadline = world_->now_ms_ + world_->options_.max_block_ms;
  world_->RunUntil([this] { return stop_; }, deadline);
}

void SimReactor::AdvanceTimers() { timers_.Advance(world_->now_ms_); }

uint64_t SimReactor::NextTimerAtMs() const {
  const int64_t delta = timers_.MsUntilNext(world_->now_ms_);
  if (delta < 0) return UINT64_MAX;
  return world_->now_ms_ + static_cast<uint64_t>(delta);
}

bool SimReactor::Dispatch() {
  bool any = false;
  // A callback can Watch/Unwatch/post/write, changing readiness — repeat
  // until a full pass makes no progress (bounded against livelock).
  for (int pass = 0; pass < 1000; ++pass) {
    bool progressed = false;
    if (!posted_.empty()) {
      std::vector<std::function<void()>> run;
      run.swap(posted_);
      for (auto& fn : run) fn();
      progressed = true;
    }
    std::vector<int> handles;
    handles.reserve(watched_.size());
    for (const auto& [handle, watched] : watched_) handles.push_back(handle);
    for (int handle : handles) {
      auto it = watched_.find(handle);
      if (it == watched_.end()) continue;  // unwatched by an earlier callback
      const uint32_t ready = world_->Readiness(handle);
      const uint32_t events = ready & (it->second.interest | kIoError);
      if (events == 0) continue;
      auto callback = it->second.callback;  // keep alive across Unwatch
      (*callback)(events);
      progressed = true;
    }
    if (!progressed) break;
    any = true;
  }
  return any;
}

// --- SimTransport ------------------------------------------------------------

SimTransport::SimTransport(SimWorld* world, int handle)
    : world_(world), handle_(handle) {}

SimTransport::~SimTransport() { Close(); }

IoOp SimTransport::ReadSome(char* buffer, size_t len) {
  return world_->EndpointRead(handle_, buffer, len);
}

IoOp SimTransport::WriteSome(const char* data, size_t len) {
  return world_->EndpointWrite(handle_, data, len);
}

Status SimTransport::AwaitReadable() {
  const uint64_t wait = receive_timeout_ms_ > 0
                            ? static_cast<uint64_t>(receive_timeout_ms_)
                            : world_->options().max_block_ms;
  const bool ready = world_->RunUntil(
      [this] {
        return (world_->Readiness(handle_) & (kIoRead | kIoError)) != 0;
      },
      world_->NowMs() + wait);
  if (!ready) return IoError("sim receive timed out");
  return Status::Ok();
}

Status SimTransport::SendAll(std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    IoOp op = world_->EndpointWrite(handle_, data.data() + off,
                                    data.size() - off);
    switch (op.kind) {
      case IoOp::Kind::kDone:
        off += op.bytes;
        break;
      case IoOp::Kind::kWouldBlock: {
        const bool ready = world_->RunUntil(
            [this] {
              return (world_->Readiness(handle_) & (kIoWrite | kIoError)) != 0;
            },
            world_->NowMs() + world_->options().max_block_ms);
        if (!ready) return IoError("sim send stalled");
        break;
      }
      case IoOp::Kind::kEof:
        return IoError("sim send hit eof");
      case IoOp::Kind::kError:
        return op.status;
    }
  }
  return Status::Ok();
}

Result<size_t> SimTransport::ReceiveSome(char* buffer, size_t len) {
  if (len == 0) return InvalidArgumentError("zero-length receive");
  if (!line_buffer_.empty()) {
    const size_t n = std::min(len, line_buffer_.size());
    std::memcpy(buffer, line_buffer_.data(), n);
    line_buffer_.erase(0, n);
    return n;
  }
  while (true) {
    IoOp op = world_->EndpointRead(handle_, buffer, len);
    switch (op.kind) {
      case IoOp::Kind::kDone:
        return op.bytes;
      case IoOp::Kind::kWouldBlock:
        AVOC_RETURN_IF_ERROR(AwaitReadable());
        break;
      case IoOp::Kind::kEof:
        return NotFoundError("connection closed");
      case IoOp::Kind::kError:
        return op.status;
    }
  }
}

Result<std::string> SimTransport::ReceiveLine() {
  while (true) {
    const size_t newline = line_buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = line_buffer_.substr(0, newline);
      line_buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    IoOp op = world_->EndpointRead(handle_, chunk, sizeof chunk);
    switch (op.kind) {
      case IoOp::Kind::kDone:
        line_buffer_.append(chunk, op.bytes);
        break;
      case IoOp::Kind::kWouldBlock:
        AVOC_RETURN_IF_ERROR(AwaitReadable());
        break;
      case IoOp::Kind::kEof: {
        if (line_buffer_.empty()) return NotFoundError("connection closed");
        std::string line;
        line.swap(line_buffer_);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return line;
      }
      case IoOp::Kind::kError:
        return op.status;
    }
  }
}

Status SimTransport::SetReceiveTimeoutMs(int timeout_ms) {
  if (timeout_ms < 0) return InvalidArgumentError("negative timeout");
  receive_timeout_ms_ = timeout_ms;
  return Status::Ok();
}

Status SimTransport::SetNonBlocking(bool) { return Status::Ok(); }

Status SimTransport::SetSendBufferBytes(int bytes) {
  if (bytes <= 0) return InvalidArgumentError("buffer size must be > 0");
  return Status::Ok();  // advisory; pipe capacity is a world option
}

void SimTransport::Close() {
  if (world_ != nullptr) world_->EndpointClose(handle_);
}

// --- SimListener -------------------------------------------------------------

SimListener::SimListener(SimWorld* world, int handle, uint16_t port)
    : world_(world), handle_(handle), port_(port) {}

SimListener::~SimListener() { Close(); }

Result<std::unique_ptr<Transport>> SimListener::TryAcceptTransport() {
  return world_->AcceptOn(handle_);
}

void SimListener::Close() {
  if (world_ != nullptr) world_->CloseListener(handle_);
}

}  // namespace avoc::runtime
