// Middleware nodes: sensor → hub → voter → sink (Fig. 1's topology).
//
// Nodes exchange messages over typed Topics.  The HubNode plays the VINT
// hub's role: it assembles per-round candidate sets from individual
// sensor readings and closes a round either when every registered module
// reported or when the round is flushed (timeout) — missing modules
// become missing values, feeding the §7 missing-value fault scenario.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/trace.h"
#include "data/round_table.h"
#include "obs/metrics.h"
#include "runtime/bus.h"
#include "runtime/datastore.h"
#include "util/status.h"

namespace avoc::runtime {

/// Optional hub instrumentation: null pointers disable each signal.  The
/// metric objects live in an obs::Registry and are thread-safe, so hubs
/// of different groups may share them (labels tell them apart).
struct HubTelemetry {
  obs::Counter* readings = nullptr;       ///< readings accepted
  obs::Counter* late_readings = nullptr;  ///< dropped against a closed round
  obs::Counter* rounds_closed = nullptr;  ///< rounds published downstream
  obs::Gauge* open_rounds = nullptr;      ///< pending-round queue depth
  obs::Gauge* last_closed_round = nullptr;
};

/// Optional sink instrumentation.
struct SinkTelemetry {
  obs::Counter* outputs = nullptr;  ///< fused outputs recorded
  obs::Gauge* last_round = nullptr;
  /// Rounds that closed upstream but never produced an output here
  /// (hard CastVote/persistence errors drop the round before the sink).
  obs::Gauge* lag_rounds = nullptr;
};

/// A single sensor reading addressed to a hub.
struct ReadingMessage {
  size_t module = 0;  ///< module index within the voter group
  size_t round = 0;
  double value = 0.0;
};

/// A closed round: one optional candidate per registered module.
struct RoundMessage {
  size_t round = 0;
  core::Round readings;
};

/// The voter's fused output for one round.
struct OutputMessage {
  size_t round = 0;
  core::VoteResult result;
};

/// Several rounds closed by one batch ingest, as a columnar table.  The
/// pointees are borrowed: valid only for the duration of the publish
/// (subscribers copy what they keep).
struct RoundBatchMessage {
  const std::vector<size_t>* rounds = nullptr;  ///< round number per row
  const data::RoundTable* table = nullptr;
};

/// The voter's fused outputs for one batch, as a columnar trace view.
/// Borrowed like RoundBatchMessage: row i of `trace` is round
/// (*rounds)[i], valid only during the publish.
struct BatchOutputMessage {
  const std::vector<size_t>* rounds = nullptr;
  core::TraceView trace;
};

/// Topics wiring one voter group's pipeline.  The singular topics carry
/// the one-reading-at-a-time path; the *batch* topics carry the framed
/// remote path where one message covers many rounds.
struct GroupChannels {
  Topic<ReadingMessage> readings;
  Topic<RoundMessage> rounds;
  Topic<OutputMessage> outputs;
  Topic<RoundBatchMessage> round_batches;
  Topic<BatchOutputMessage> batches;
};

/// What one IngestBatch call did with its readings.
struct BatchIngestStats {
  size_t accepted = 0;       ///< readings stored into open rounds
  size_t late = 0;           ///< dropped against already-closed rounds
  size_t rejected = 0;       ///< dropped for an out-of-range module index
  size_t rounds_closed = 0;  ///< rounds completed (and voted) by this batch
};

/// Produces readings for one module.  The generator may return nullopt
/// (sensor had nothing to report this round).
class SensorNode {
 public:
  using Generator = std::function<std::optional<double>(size_t round)>;

  SensorNode(size_t module, Generator generator,
             Topic<ReadingMessage>& readings);

  size_t module() const { return module_; }

  /// Samples the generator for `round`; publishes when a value exists.
  void Emit(size_t round);

 private:
  size_t module_;
  Generator generator_;
  Topic<ReadingMessage>* readings_;
};

/// Assembles readings into rounds.
class HubNode {
 public:
  /// `close_at_count` implements VDX's UNTIL quorum at the hub: when > 0,
  /// a round closes as soon as that many readings arrived instead of
  /// waiting for every module (later readings for the round are dropped).
  /// 0 keeps the default close-when-complete behaviour.
  HubNode(size_t module_count, GroupChannels& channels,
          size_t close_at_count = 0, HubTelemetry telemetry = {});
  ~HubNode();

  HubNode(const HubNode&) = delete;
  HubNode& operator=(const HubNode&) = delete;

  size_t module_count() const { return module_count_; }

  /// Closes `round`, publishing whatever arrived (absent modules are
  /// missing values).  No-op when the round was already closed or never
  /// received a reading and `publish_empty` is false.
  void Flush(size_t round, bool publish_empty = false);

  /// Ingests many readings under ONE hub lock and publishes every round
  /// they complete as ONE RoundBatchMessage (one downstream engine call),
  /// instead of N lock/publish cycles.  Readings for closed rounds or
  /// unknown modules are counted, not fatal.
  BatchIngestStats IngestBatch(std::span<const ReadingMessage> readings);

  /// Rounds currently open (received some but not all readings).
  size_t open_rounds() const;

  /// Assembly state for migrating a live hub between nodes: partially
  /// filled rounds plus the closed-round set (the late-reading filter).
  struct State {
    std::vector<std::pair<uint64_t, core::Round>> pending;
    std::vector<uint64_t> closed_rounds;
  };
  State ExportState() const;
  void RestoreState(const State& state);

 private:
  void OnReading(const ReadingMessage& message);

  /// Updates the close-side gauges; caller holds mutex_.
  void NoteClosedLocked(size_t round);

  size_t module_count_;
  size_t close_at_count_;
  GroupChannels* channels_;
  HubTelemetry telemetry_;
  SubscriptionId subscription_;
  mutable std::mutex mutex_;
  std::map<size_t, core::Round> pending_;   // round -> partial readings
  std::map<size_t, bool> closed_;           // rounds already published
};

/// VoterNode configuration.
struct VoterOptions {
  /// Store group key; persistence disabled when store == nullptr.
  std::string group = "default";
  storage::HistoryBackend* store = nullptr;
};

/// Runs the voting engine over incoming rounds; optionally persists the
/// history ledger to a HistoryBackend after every round (the datastore
/// round-trip of the paper's latency notes) and restores it on start.
class VoterNode {
 public:
  VoterNode(core::VotingEngine engine, GroupChannels& channels,
            VoterOptions options = {});
  ~VoterNode();

  VoterNode(const VoterNode&) = delete;
  VoterNode& operator=(const VoterNode&) = delete;

  const core::VotingEngine& engine() const { return engine_; }

  /// Status of the most recent round (persistence failures surface here).
  Status last_status() const;

  /// Full engine state for migration (see core::VotingEngine::State).
  core::VotingEngine::State ExportEngineState() const;
  /// Installs a migrated engine state and persists it to the store.
  Status RestoreEngineState(const core::VotingEngine::State& state);

 private:
  void OnRound(const RoundMessage& message);
  void OnRoundBatch(const RoundBatchMessage& message);

  /// Persists the engine's history ledger; caller holds mutex_.
  void PersistHistoryLocked();

  core::VotingEngine engine_;
  GroupChannels* channels_;
  VoterOptions options_;
  SubscriptionId subscription_;
  SubscriptionId batch_subscription_;
  mutable std::mutex mutex_;
  Status last_status_;
  /// Scratch trace reused across batches (guarded by mutex_; published
  /// views stay valid because the batch publish happens under the lock).
  core::BatchTrace batch_trace_;
};

/// Records outputs (the LCD display / downstream consumer stand-in).
/// Storage is columnar: arriving results land in a BatchTrace (one flat
/// column per field) plus a round-number column, so a long-running sink
/// holds no per-round heap objects; outputs() materializes messages on
/// demand for consumers that still speak VoteResult.
class SinkNode {
 public:
  /// When `trace_store` is set, every appended row is also persisted as a
  /// storage::TracePoint under `group` — the durable feed behind the
  /// QUERY_RANGE wire verb.  Persist errors are logged, never fatal: the
  /// in-memory trace is the source of truth for the live process.
  explicit SinkNode(GroupChannels& channels, SinkTelemetry telemetry = {},
                    storage::TraceBackend* trace_store = nullptr,
                    std::string group = {});
  ~SinkNode();

  SinkNode(const SinkNode&) = delete;
  SinkNode& operator=(const SinkNode&) = delete;

  /// Outputs received so far, in arrival order (materialized per call;
  /// prefer trace() for bulk reads).
  std::vector<OutputMessage> outputs() const;
  size_t output_count() const;

  /// Most recent fused value, if any round voted successfully.
  std::optional<double> last_value() const;

  /// Appends migrated rows as if they had arrived live (same gauge and
  /// persistence side effects), keeping the trace bit-identical across a
  /// handoff.
  void RestoreOutputs(std::span<const OutputMessage> restored);

  /// Columnar read access under the sink lock: calls `fn(trace, rounds)`
  /// where rounds[i] is the round number of trace row i.
  template <typename Fn>
  void WithTrace(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    fn(static_cast<const core::BatchTrace&>(trace_),
       static_cast<const std::vector<size_t>&>(rounds_));
  }

 private:
  void OnOutput(const OutputMessage& message);
  void OnBatch(const BatchOutputMessage& message);

  /// Updates the sink gauges after appending rows; caller holds mutex_.
  void NoteAppendedLocked(size_t last_round, size_t appended);

  /// Persists the last `appended` rows of trace_ to trace_store_; caller
  /// holds mutex_.
  void PersistAppendedLocked(size_t appended);

  GroupChannels* channels_;
  SinkTelemetry telemetry_;
  storage::TraceBackend* trace_store_;
  std::string group_;
  SubscriptionId subscription_;
  SubscriptionId batch_subscription_;
  mutable std::mutex mutex_;
  core::BatchTrace trace_;
  std::vector<size_t> rounds_;  ///< round number of each trace row
};

}  // namespace avoc::runtime
