// Minimal RAII wrappers over POSIX TCP sockets (loopback-oriented).
//
// The paper's deployment streams sensor readings over the network (sensors
// → VINT hub → WiFi → voting sink-node); runtime/remote.h implements that
// wire path, and these wrappers keep the socket handling exception-free
// and leak-free.  IPv4 only.  Two I/O styles coexist: the original
// blocking line-oriented helpers (SendLine/ReceiveLine, used by clients
// and the legacy protocol), and non-blocking ReadSome/WriteSome for the
// epoll event loop (runtime/event_loop.h) behind SetNonBlocking.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "runtime/transport.h"
#include "util/status.h"

namespace avoc::runtime {

/// An owned socket file descriptor.  The descriptor is atomic because
/// Close() is the documented way to unblock another thread sitting in
/// accept/recv on the same socket (see TcpListener::Close) — the loser
/// of that race sees -1 or EBADF, never a torn read.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_.load() >= 0; }
  int fd() const { return fd_.load(); }

  /// Closes the descriptor now (idempotent, thread-safe).
  void Close();

 private:
  std::atomic<int> fd_{-1};
};

/// A connected TCP stream with line-oriented helpers.  Implements the
/// Transport seam (runtime/transport.h) so the remote runtime can run
/// over real sockets or the simulated network interchangeably.
class TcpConnection : public Transport {
 public:
  explicit TcpConnection(Socket socket) : socket_(std::move(socket)) {}

  TcpConnection(TcpConnection&&) = default;
  TcpConnection& operator=(TcpConnection&&) = default;

  /// Connects to host:port (dotted-quad or "localhost").
  static Result<TcpConnection> Connect(const std::string& host,
                                       uint16_t port);

  bool valid() const override { return socket_.valid(); }
  int fd() const { return socket_.fd(); }
  int handle() const override { return socket_.fd(); }

  /// Sends the whole buffer (handles partial writes).
  Status SendAll(std::string_view data) override;

  /// Receives up to the next '\n' (stripped, including a preceding '\r').
  /// Returns NotFound at orderly EOF with no pending data; IoError on
  /// timeout (when set) or socket errors.
  Result<std::string> ReceiveLine() override;

  /// Blocking read of up to `len` raw bytes (at least one).  NotFound at
  /// orderly EOF, IoError on timeout or socket errors.
  Result<size_t> ReceiveSome(char* buffer, size_t len) override;

  /// Sets a receive timeout (SO_RCVTIMEO); 0 disables.
  Status SetReceiveTimeoutMs(int timeout_ms) override;

  /// Switches O_NONBLOCK on or off (event-loop connections set it once).
  Status SetNonBlocking(bool enabled) override;

  /// Shrinks/grows the kernel send buffer (backpressure tests pin it
  /// small so write queues fill deterministically).
  Status SetSendBufferBytes(int bytes) override;

  // --- non-blocking I/O (requires SetNonBlocking(true)) ---------------------

  /// One recv attempt; never blocks.  EINTR is retried internally.
  IoOp ReadSome(char* buffer, size_t len) override;

  /// One send attempt; never blocks.  EINTR is retried internally.
  IoOp WriteSome(const char* data, size_t len) override;

  void Close() override { socket_.Close(); }

 private:
  Socket socket_;
  std::string buffer_;  // bytes received beyond the last returned line
};

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener : public Listener {
 public:
  /// Binds and listens; port 0 picks an ephemeral port (see port()).
  static Result<TcpListener> Listen(uint16_t port);

  uint16_t port() const override { return port_; }
  int fd() const { return socket_.fd(); }
  int handle() const override { return socket_.fd(); }

  /// Blocks until a client connects (or the listener is closed from
  /// another thread, which surfaces as an IoError).
  Result<TcpConnection> Accept();

  /// Non-blocking accept (requires SetNonBlocking(true)): NotFound when
  /// no connection is pending, IoError on socket errors.
  Result<TcpConnection> TryAccept();

  /// TryAccept through the Listener seam (heap-allocates the stream).
  Result<std::unique_ptr<Transport>> TryAcceptTransport() override;

  /// Switches O_NONBLOCK on or off.
  Status SetNonBlocking(bool enabled);

  /// Unblocks pending Accept calls.
  void Close() override { socket_.Close(); }

 private:
  TcpListener(Socket socket, uint16_t port)
      : socket_(std::move(socket)), port_(port) {}

  Socket socket_;
  uint16_t port_ = 0;
};

}  // namespace avoc::runtime
