#include "runtime/migration.h"

#include <cinttypes>

#include "runtime/framing.h"
#include "storage/io.h"
#include "storage/snapshot.h"
#include "util/strings.h"

namespace avoc::runtime {
namespace {

// "AVGS" magic + version byte; trailing CRC32 over everything before it.
constexpr char kBlobMagic[4] = {'A', 'V', 'G', 'S'};
constexpr uint8_t kBlobVersion = 1;
// Replication records get their own magic: they travel independently
// (the shipped-WAL-segment unit), so a record must never decode as a blob.
constexpr char kRecordMagic[4] = {'A', 'V', 'R', 'L'};
constexpr uint8_t kRecordVersion = 1;

constexpr std::string_view kMovedPrefix = "MOVED ";

void AppendVoteResult(std::string& out, const core::VoteResult& result) {
  out.push_back(result.value.has_value() ? '\x01' : '\x00');
  if (result.value.has_value()) AppendDouble(out, *result.value);
  out.push_back(static_cast<char>(result.outcome));
  out.push_back(result.status.ok() ? '\x01' : '\x00');
  if (!result.status.ok()) {
    AppendVarint(out, static_cast<uint64_t>(result.status.code()));
    AppendLengthPrefixedString(out, result.status.message());
  }
  out.push_back(result.used_clustering ? '\x01' : '\x00');
  AppendVarint(out, result.present_count);
  out.push_back(result.had_majority ? '\x01' : '\x00');
  // The per-module columns always share one arity.
  AppendVarint(out, result.weights.size());
  for (size_t i = 0; i < result.weights.size(); ++i) {
    AppendDouble(out, result.weights[i]);
    AppendDouble(out, i < result.agreement.size() ? result.agreement[i] : 0.0);
    AppendDouble(out, i < result.history.size() ? result.history[i] : 0.0);
    out.push_back(i < result.excluded.size() && result.excluded[i] ? '\x01'
                                                                   : '\x00');
    out.push_back(i < result.eliminated.size() && result.eliminated[i]
                      ? '\x01'
                      : '\x00');
  }
}

Result<uint8_t> ReadBool(PayloadReader& reader) {
  AVOC_ASSIGN_OR_RETURN(const uint64_t raw, reader.ReadVarint());
  if (raw > 1) return ParseError("group state: flag byte not 0/1");
  return static_cast<uint8_t>(raw);
}

Result<core::VoteResult> ReadVoteResult(PayloadReader& reader) {
  core::VoteResult result;
  AVOC_ASSIGN_OR_RETURN(const uint8_t engaged, ReadBool(reader));
  if (engaged != 0) {
    AVOC_ASSIGN_OR_RETURN(const double value, reader.ReadDouble());
    result.value = value;
  }
  AVOC_ASSIGN_OR_RETURN(const uint64_t outcome, reader.ReadVarint());
  if (outcome > static_cast<uint64_t>(core::RoundOutcome::kError)) {
    return ParseError("group state: unknown round outcome");
  }
  result.outcome = static_cast<core::RoundOutcome>(outcome);
  AVOC_ASSIGN_OR_RETURN(const uint8_t status_ok, ReadBool(reader));
  if (status_ok == 0) {
    AVOC_ASSIGN_OR_RETURN(const uint64_t code, reader.ReadVarint());
    if (code > static_cast<uint64_t>(ErrorCode::kInternal)) {
      return ParseError("group state: unknown status code");
    }
    AVOC_ASSIGN_OR_RETURN(const std::string_view message, reader.ReadString());
    result.status =
        Status(static_cast<ErrorCode>(code), std::string(message));
  }
  AVOC_ASSIGN_OR_RETURN(const uint8_t used_clustering, ReadBool(reader));
  result.used_clustering = used_clustering != 0;
  AVOC_ASSIGN_OR_RETURN(const uint64_t present, reader.ReadVarint());
  result.present_count = static_cast<size_t>(present);
  AVOC_ASSIGN_OR_RETURN(const uint8_t had_majority, ReadBool(reader));
  result.had_majority = had_majority != 0;
  AVOC_ASSIGN_OR_RETURN(const uint64_t modules, reader.ReadVarint());
  if (modules > reader.remaining() / 26) {  // 3 doubles + 2 flag bytes each
    return ParseError("group state: module count exceeds payload");
  }
  result.weights.reserve(modules);
  result.agreement.reserve(modules);
  result.history.reserve(modules);
  result.excluded.reserve(modules);
  result.eliminated.reserve(modules);
  for (uint64_t i = 0; i < modules; ++i) {
    AVOC_ASSIGN_OR_RETURN(const double weight, reader.ReadDouble());
    AVOC_ASSIGN_OR_RETURN(const double agreement, reader.ReadDouble());
    AVOC_ASSIGN_OR_RETURN(const double history, reader.ReadDouble());
    AVOC_ASSIGN_OR_RETURN(const uint8_t excluded, ReadBool(reader));
    AVOC_ASSIGN_OR_RETURN(const uint8_t eliminated, ReadBool(reader));
    result.weights.push_back(weight);
    result.agreement.push_back(agreement);
    result.history.push_back(history);
    result.excluded.push_back(excluded != 0);
    result.eliminated.push_back(eliminated != 0);
  }
  return result;
}

/// Splits off and checks the trailing CRC32; returns the checked body
/// after the magic + version header.
Result<std::string_view> CheckEnvelope(std::string_view bytes,
                                       std::string_view magic,
                                       uint8_t version, const char* what) {
  if (bytes.size() < magic.size() + 1 + 4) {
    return ParseError(StrFormat("%s: truncated", what));
  }
  if (bytes.substr(0, magic.size()) != magic) {
    return ParseError(StrFormat("%s: bad magic", what));
  }
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  storage::ByteReader crc_reader(bytes.substr(bytes.size() - 4));
  AVOC_ASSIGN_OR_RETURN(const uint32_t stored_crc, crc_reader.ReadU32());
  if (storage::Crc32(body) != stored_crc) {
    return ParseError(StrFormat("%s: CRC mismatch (torn record)", what));
  }
  if (static_cast<uint8_t>(body[magic.size()]) != version) {
    return ParseError(StrFormat("%s: unsupported version", what));
  }
  return body.substr(magic.size() + 1);
}

}  // namespace

std::string EncodeGroupState(const GroupStateBlob& blob) {
  std::string out;
  out.append(kBlobMagic, sizeof(kBlobMagic));
  out.push_back(static_cast<char>(kBlobVersion));
  AppendLengthPrefixedString(out, blob.group);

  // History core in the HistoryBackend seam's portable snapshot format;
  // the cumulative accumulators follow as bit-exact extras.
  const auto& ledger = blob.state.engine.ledger;
  storage::HistorySnapshot snapshot;
  snapshot.records = ledger.records;
  snapshot.rounds = static_cast<size_t>(ledger.rounds);
  AppendLengthPrefixedString(out, storage::EncodeHistorySnapshot(snapshot));
  AppendVarint(out, ledger.agreement_sums.size());
  for (const double sum : ledger.agreement_sums) AppendDouble(out, sum);
  AppendVarint(out, ledger.observations.size());
  for (const uint64_t n : ledger.observations) AppendVarint(out, n);

  const auto& engine = blob.state.engine;
  out.push_back(engine.last_output.has_value() ? '\x01' : '\x00');
  if (engine.last_output.has_value()) AppendDouble(out, *engine.last_output);
  AppendVarint(out, engine.round_index);

  const auto& hub = blob.state.hub;
  AppendVarint(out, hub.pending.size());
  for (const auto& [round, readings] : hub.pending) {
    AppendVarint(out, round);
    AppendVarint(out, readings.size());
    for (const core::Reading& reading : readings) {
      out.push_back(reading.has_value() ? '\x01' : '\x00');
      if (reading.has_value()) AppendDouble(out, *reading);
    }
  }
  AppendVarint(out, hub.closed_rounds.size());
  for (const uint64_t round : hub.closed_rounds) AppendVarint(out, round);

  AppendVarint(out, blob.state.outputs.size());
  for (const OutputMessage& output : blob.state.outputs) {
    AppendVarint(out, output.round);
    AppendVoteResult(out, output.result);
  }

  AppendVarint(out, blob.dedup.size());
  for (const GroupStateBlob::DedupEntry& entry : blob.dedup) {
    AppendLengthPrefixedString(out, entry.client_id);
    AppendVarint(out, entry.seq);
    AppendVarint(out, entry.accepted);
  }

  storage::AppendU32(out, storage::Crc32(out));
  return out;
}

Result<GroupStateBlob> DecodeGroupState(std::string_view bytes) {
  AVOC_ASSIGN_OR_RETURN(
      const std::string_view body,
      CheckEnvelope(bytes, std::string_view(kBlobMagic, sizeof(kBlobMagic)),
                    kBlobVersion, "group state"));
  PayloadReader reader(body);
  GroupStateBlob blob;
  AVOC_ASSIGN_OR_RETURN(const std::string_view group, reader.ReadString());
  blob.group.assign(group);

  AVOC_ASSIGN_OR_RETURN(const std::string_view snapshot_bytes,
                        reader.ReadString());
  AVOC_ASSIGN_OR_RETURN(const storage::HistorySnapshot snapshot,
                        storage::DecodeHistorySnapshot(snapshot_bytes));
  auto& ledger = blob.state.engine.ledger;
  ledger.records = snapshot.records;
  ledger.rounds = static_cast<uint64_t>(snapshot.rounds);
  AVOC_ASSIGN_OR_RETURN(const uint64_t sums, reader.ReadVarint());
  if (sums > reader.remaining() / 8) {
    return ParseError("group state: agreement sums exceed payload");
  }
  ledger.agreement_sums.reserve(sums);
  for (uint64_t i = 0; i < sums; ++i) {
    AVOC_ASSIGN_OR_RETURN(const double sum, reader.ReadDouble());
    ledger.agreement_sums.push_back(sum);
  }
  AVOC_ASSIGN_OR_RETURN(const uint64_t observations, reader.ReadVarint());
  if (observations > reader.remaining()) {
    return ParseError("group state: observation count exceeds payload");
  }
  ledger.observations.reserve(observations);
  for (uint64_t i = 0; i < observations; ++i) {
    AVOC_ASSIGN_OR_RETURN(const uint64_t n, reader.ReadVarint());
    ledger.observations.push_back(n);
  }

  AVOC_ASSIGN_OR_RETURN(const uint8_t has_last, ReadBool(reader));
  if (has_last != 0) {
    AVOC_ASSIGN_OR_RETURN(const double last, reader.ReadDouble());
    blob.state.engine.last_output = last;
  }
  AVOC_ASSIGN_OR_RETURN(blob.state.engine.round_index, reader.ReadVarint());

  AVOC_ASSIGN_OR_RETURN(const uint64_t pending, reader.ReadVarint());
  if (pending > reader.remaining()) {
    return ParseError("group state: pending round count exceeds payload");
  }
  blob.state.hub.pending.reserve(pending);
  for (uint64_t i = 0; i < pending; ++i) {
    AVOC_ASSIGN_OR_RETURN(const uint64_t round, reader.ReadVarint());
    AVOC_ASSIGN_OR_RETURN(const uint64_t modules, reader.ReadVarint());
    if (modules > reader.remaining()) {
      return ParseError("group state: pending arity exceeds payload");
    }
    core::Round readings;
    readings.reserve(modules);
    for (uint64_t m = 0; m < modules; ++m) {
      AVOC_ASSIGN_OR_RETURN(const uint8_t present, ReadBool(reader));
      if (present != 0) {
        AVOC_ASSIGN_OR_RETURN(const double value, reader.ReadDouble());
        readings.emplace_back(value);
      } else {
        readings.emplace_back(std::nullopt);
      }
    }
    blob.state.hub.pending.emplace_back(round, std::move(readings));
  }
  AVOC_ASSIGN_OR_RETURN(const uint64_t closed, reader.ReadVarint());
  if (closed > reader.remaining()) {
    return ParseError("group state: closed round count exceeds payload");
  }
  blob.state.hub.closed_rounds.reserve(closed);
  for (uint64_t i = 0; i < closed; ++i) {
    AVOC_ASSIGN_OR_RETURN(const uint64_t round, reader.ReadVarint());
    blob.state.hub.closed_rounds.push_back(round);
  }

  AVOC_ASSIGN_OR_RETURN(const uint64_t outputs, reader.ReadVarint());
  if (outputs > reader.remaining()) {
    return ParseError("group state: output count exceeds payload");
  }
  blob.state.outputs.reserve(outputs);
  for (uint64_t i = 0; i < outputs; ++i) {
    AVOC_ASSIGN_OR_RETURN(const uint64_t round, reader.ReadVarint());
    AVOC_ASSIGN_OR_RETURN(core::VoteResult result, ReadVoteResult(reader));
    blob.state.outputs.push_back(
        OutputMessage{static_cast<size_t>(round), std::move(result)});
  }

  AVOC_ASSIGN_OR_RETURN(const uint64_t dedup, reader.ReadVarint());
  if (dedup > reader.remaining()) {
    return ParseError("group state: dedup count exceeds payload");
  }
  blob.dedup.reserve(dedup);
  for (uint64_t i = 0; i < dedup; ++i) {
    GroupStateBlob::DedupEntry entry;
    AVOC_ASSIGN_OR_RETURN(const std::string_view client, reader.ReadString());
    entry.client_id.assign(client);
    AVOC_ASSIGN_OR_RETURN(entry.seq, reader.ReadVarint());
    AVOC_ASSIGN_OR_RETURN(entry.accepted, reader.ReadVarint());
    blob.dedup.push_back(std::move(entry));
  }
  AVOC_RETURN_IF_ERROR(reader.ExpectEnd());
  return blob;
}

std::string EncodeReplicationRecord(const ReplicationRecord& record) {
  std::string out;
  out.append(kRecordMagic, sizeof(kRecordMagic));
  out.push_back(static_cast<char>(kRecordVersion));
  AppendVarint(out, static_cast<uint64_t>(record.kind));
  AppendVarint(out, record.frame_type);
  AppendLengthPrefixedString(out, record.group);
  AppendLengthPrefixedString(out, record.bytes);
  storage::AppendU32(out, storage::Crc32(out));
  return out;
}

Result<ReplicationRecord> DecodeReplicationRecord(std::string_view bytes) {
  AVOC_ASSIGN_OR_RETURN(
      const std::string_view body,
      CheckEnvelope(bytes,
                    std::string_view(kRecordMagic, sizeof(kRecordMagic)),
                    kRecordVersion, "replication record"));
  PayloadReader reader(body);
  ReplicationRecord record;
  AVOC_ASSIGN_OR_RETURN(const uint64_t kind, reader.ReadVarint());
  if (kind < 1 || kind > 3) {
    return ParseError("replication record: unknown kind");
  }
  record.kind = static_cast<ReplicationRecord::Kind>(kind);
  AVOC_ASSIGN_OR_RETURN(const uint64_t frame_type, reader.ReadVarint());
  if (frame_type > 0xFF) {
    return ParseError("replication record: bad frame type");
  }
  record.frame_type = static_cast<uint8_t>(frame_type);
  AVOC_ASSIGN_OR_RETURN(const std::string_view group, reader.ReadString());
  record.group.assign(group);
  AVOC_ASSIGN_OR_RETURN(const std::string_view payload, reader.ReadString());
  record.bytes.assign(payload);
  AVOC_RETURN_IF_ERROR(reader.ExpectEnd());
  return record;
}

Status MovedError(uint64_t node, std::string_view address) {
  return FailedPreconditionError(
      StrFormat("%s%" PRIu64 " %.*s", std::string(kMovedPrefix).c_str(), node,
                static_cast<int>(address.size()), address.data()));
}

bool TryParseMoved(const Status& status, uint64_t* node) {
  if (status.code() != ErrorCode::kFailedPrecondition) return false;
  const std::string& message = status.message();
  if (message.rfind(kMovedPrefix, 0) != 0) return false;
  uint64_t value = 0;
  size_t i = kMovedPrefix.size();
  if (i >= message.size() || message[i] < '0' || message[i] > '9') {
    return false;
  }
  for (; i < message.size() && message[i] >= '0' && message[i] <= '9'; ++i) {
    value = value * 10 + static_cast<uint64_t>(message[i] - '0');
  }
  if (node != nullptr) *node = value;
  return true;
}

}  // namespace avoc::runtime
