// Typed in-process publish/subscribe bus.
//
// The middleware's nodes (sensor → hub → voter → sink) communicate through
// topics instead of direct references, mirroring the paper's deployment
// where sensors stream via a VINT hub over WiFi to the voting sink-node.
// Dispatch is synchronous and ordered; thread safety covers concurrent
// publishers (the threaded voter service samples sensors from worker
// threads).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

namespace avoc::runtime {

using SubscriptionId = uint64_t;

template <typename Message>
class Topic {
 public:
  using Handler = std::function<void(const Message&)>;

  /// Registers a handler; returns an id usable with Unsubscribe.
  SubscriptionId Subscribe(Handler handler) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    const SubscriptionId id = next_id_++;
    handlers_.emplace_back(id, std::move(handler));
    return id;
  }

  /// Removes a handler; returns whether it existed.  Blocks until every
  /// in-flight Publish has left the handler list, so a subscriber may
  /// safely destroy itself right after Unsubscribe returns.
  bool Unsubscribe(SubscriptionId id) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    for (auto it = handlers_.begin(); it != handlers_.end(); ++it) {
      if (it->first == id) {
        handlers_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Delivers `message` to every subscriber, in subscription order.
  /// Handlers run under a SHARED lock: concurrent publishers proceed in
  /// parallel (a slow handler on one thread no longer serializes every
  /// other publisher), while Subscribe/Unsubscribe still exclude all
  /// in-flight deliveries.  Handlers must not call Subscribe/Unsubscribe
  /// on the *same* topic (the pipeline topology is a DAG over distinct
  /// topics, so this never bites in practice); re-entrant Publish on the
  /// same topic is fine.
  void Publish(const Message& message) {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    for (const auto& [id, handler] : handlers_) {
      (void)id;
      handler(message);
    }
  }

  size_t subscriber_count() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return handlers_.size();
  }

 private:
  mutable std::shared_mutex mutex_;
  std::vector<std::pair<SubscriptionId, Handler>> handlers_;
  SubscriptionId next_id_ = 1;
};

}  // namespace avoc::runtime
