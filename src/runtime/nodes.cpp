#include "runtime/nodes.h"

#include <algorithm>

#include "util/log.h"

namespace avoc::runtime {

SensorNode::SensorNode(size_t module, Generator generator,
                       Topic<ReadingMessage>& readings)
    : module_(module), generator_(std::move(generator)), readings_(&readings) {}

void SensorNode::Emit(size_t round) {
  const std::optional<double> value = generator_(round);
  if (!value.has_value()) return;
  readings_->Publish(ReadingMessage{module_, round, *value});
}

HubNode::HubNode(size_t module_count, GroupChannels& channels,
                 size_t close_at_count, HubTelemetry telemetry)
    : module_count_(module_count),
      close_at_count_(close_at_count == 0
                          ? module_count
                          : std::min(close_at_count, module_count)),
      channels_(&channels),
      telemetry_(telemetry) {
  subscription_ = channels_->readings.Subscribe(
      [this](const ReadingMessage& message) { OnReading(message); });
}

HubNode::~HubNode() { channels_->readings.Unsubscribe(subscription_); }

void HubNode::OnReading(const ReadingMessage& message) {
  if (message.module >= module_count_) {
    AVOC_LOG_WARN("hub: reading for unknown module %zu dropped",
                  message.module);
    return;
  }
  core::Round complete;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_.count(message.round)) {
      // Late reading, round gone.
      if (telemetry_.late_readings != nullptr) {
        telemetry_.late_readings->Increment();
      }
      return;
    }
    if (telemetry_.readings != nullptr) telemetry_.readings->Increment();
    core::Round& pending = pending_[message.round];
    if (pending.empty()) pending.resize(module_count_);
    pending[message.module] = message.value;
    size_t present = 0;
    for (const auto& reading : pending) {
      if (reading.has_value()) ++present;
    }
    if (present < close_at_count_) {
      if (telemetry_.open_rounds != nullptr) {
        telemetry_.open_rounds->Set(static_cast<double>(pending_.size()));
      }
      return;
    }
    complete = std::move(pending);
    pending_.erase(message.round);
    closed_[message.round] = true;
    NoteClosedLocked(message.round);
  }
  channels_->rounds.Publish(RoundMessage{message.round, std::move(complete)});
}

void HubNode::Flush(size_t round, bool publish_empty) {
  core::Round readings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_.count(round)) return;
    auto it = pending_.find(round);
    if (it == pending_.end()) {
      if (!publish_empty) return;
      readings.resize(module_count_);
    } else {
      readings = std::move(it->second);
      pending_.erase(it);
    }
    closed_[round] = true;
    NoteClosedLocked(round);
  }
  channels_->rounds.Publish(RoundMessage{round, std::move(readings)});
}

void HubNode::NoteClosedLocked(size_t round) {
  if (telemetry_.rounds_closed != nullptr) telemetry_.rounds_closed->Increment();
  if (telemetry_.open_rounds != nullptr) {
    telemetry_.open_rounds->Set(static_cast<double>(pending_.size()));
  }
  if (telemetry_.last_closed_round != nullptr) {
    telemetry_.last_closed_round->Set(static_cast<double>(round));
  }
}

size_t HubNode::open_rounds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

VoterNode::VoterNode(core::VotingEngine engine, GroupChannels& channels,
                     VoterOptions options)
    : engine_(std::move(engine)),
      channels_(&channels),
      options_(std::move(options)) {
  if (options_.store != nullptr) {
    // Restore learned history from the datastore, if present.
    auto snapshot = options_.store->Get(options_.group);
    if (snapshot.ok() &&
        snapshot->records.size() == engine_.module_count()) {
      const Status restored =
          engine_.RestoreHistory(snapshot->records, snapshot->rounds);
      if (!restored.ok()) {
        AVOC_LOG_WARN("voter '%s': history restore failed: %s",
                      options_.group.c_str(),
                      restored.ToString().c_str());
      }
    }
  }
  subscription_ = channels_->rounds.Subscribe(
      [this](const RoundMessage& message) { OnRound(message); });
}

VoterNode::~VoterNode() { channels_->rounds.Unsubscribe(subscription_); }

void VoterNode::OnRound(const RoundMessage& message) {
  OutputMessage output;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto result = engine_.CastVote(message.readings);
    if (!result.ok()) {
      last_status_ = result.status();
      AVOC_LOG_ERROR("voter '%s': round %zu failed: %s",
                     options_.group.c_str(), message.round,
                     result.status().ToString().c_str());
      return;
    }
    output.round = message.round;
    output.result = std::move(*result);
    if (options_.store != nullptr) {
      HistorySnapshot snapshot;
      const auto records = engine_.history().records();
      snapshot.records.assign(records.begin(), records.end());
      snapshot.rounds = engine_.history().round_count();
      last_status_ = options_.store->Put(options_.group, snapshot);
    } else {
      last_status_ = Status::Ok();
    }
  }
  channels_->outputs.Publish(output);
}

Status VoterNode::last_status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_status_;
}

SinkNode::SinkNode(GroupChannels& channels, SinkTelemetry telemetry)
    : channels_(&channels), telemetry_(telemetry) {
  subscription_ = channels_->outputs.Subscribe(
      [this](const OutputMessage& message) { OnOutput(message); });
}

SinkNode::~SinkNode() { channels_->outputs.Unsubscribe(subscription_); }

void SinkNode::OnOutput(const OutputMessage& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_.Append(message.result);
  rounds_.push_back(message.round);
  if (telemetry_.outputs != nullptr) telemetry_.outputs->Increment();
  if (telemetry_.last_round != nullptr) {
    telemetry_.last_round->Set(static_cast<double>(message.round));
  }
  if (telemetry_.lag_rounds != nullptr) {
    // Round numbers start at 0, so message.round + 1 rounds were dispatched
    // up to here; anything this sink has not recorded was lost upstream.
    const double dispatched = static_cast<double>(message.round) + 1.0;
    telemetry_.lag_rounds->Set(
        std::max(0.0, dispatched - static_cast<double>(rounds_.size())));
  }
}

std::vector<OutputMessage> SinkNode::outputs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<OutputMessage> out;
  out.reserve(rounds_.size());
  for (size_t i = 0; i < rounds_.size(); ++i) {
    out.push_back(OutputMessage{rounds_[i], trace_.MaterializeRound(i)});
  }
  return out;
}

size_t SinkNode::output_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rounds_.size();
}

std::optional<double> SinkNode::last_value() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = rounds_.size(); i-- > 0;) {
    const auto value = trace_.output(i);
    if (value.has_value()) return value;
  }
  return std::nullopt;
}

}  // namespace avoc::runtime
