#include "runtime/nodes.h"

#include <algorithm>

#include "core/batch.h"
#include "util/log.h"

namespace avoc::runtime {

SensorNode::SensorNode(size_t module, Generator generator,
                       Topic<ReadingMessage>& readings)
    : module_(module), generator_(std::move(generator)), readings_(&readings) {}

void SensorNode::Emit(size_t round) {
  const std::optional<double> value = generator_(round);
  if (!value.has_value()) return;
  readings_->Publish(ReadingMessage{module_, round, *value});
}

HubNode::HubNode(size_t module_count, GroupChannels& channels,
                 size_t close_at_count, HubTelemetry telemetry)
    : module_count_(module_count),
      close_at_count_(close_at_count == 0
                          ? module_count
                          : std::min(close_at_count, module_count)),
      channels_(&channels),
      telemetry_(telemetry) {
  subscription_ = channels_->readings.Subscribe(
      [this](const ReadingMessage& message) { OnReading(message); });
}

HubNode::~HubNode() { channels_->readings.Unsubscribe(subscription_); }

void HubNode::OnReading(const ReadingMessage& message) {
  if (message.module >= module_count_) {
    AVOC_LOG_WARN("hub: reading for unknown module %zu dropped",
                  message.module);
    return;
  }
  core::Round complete;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_.count(message.round)) {
      // Late reading, round gone.
      if (telemetry_.late_readings != nullptr) {
        telemetry_.late_readings->Increment();
      }
      return;
    }
    if (telemetry_.readings != nullptr) telemetry_.readings->Increment();
    core::Round& pending = pending_[message.round];
    if (pending.empty()) pending.resize(module_count_);
    pending[message.module] = message.value;
    size_t present = 0;
    for (const auto& reading : pending) {
      if (reading.has_value()) ++present;
    }
    if (present < close_at_count_) {
      if (telemetry_.open_rounds != nullptr) {
        telemetry_.open_rounds->Set(static_cast<double>(pending_.size()));
      }
      return;
    }
    complete = std::move(pending);
    pending_.erase(message.round);
    closed_[message.round] = true;
    NoteClosedLocked(message.round);
  }
  channels_->rounds.Publish(RoundMessage{message.round, std::move(complete)});
}

void HubNode::Flush(size_t round, bool publish_empty) {
  core::Round readings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_.count(round)) return;
    auto it = pending_.find(round);
    if (it == pending_.end()) {
      if (!publish_empty) return;
      readings.resize(module_count_);
    } else {
      readings = std::move(it->second);
      pending_.erase(it);
    }
    closed_[round] = true;
    NoteClosedLocked(round);
  }
  channels_->rounds.Publish(RoundMessage{round, std::move(readings)});
}

BatchIngestStats HubNode::IngestBatch(
    std::span<const ReadingMessage> readings) {
  BatchIngestStats stats;
  std::vector<size_t> closed_rounds;
  data::RoundTable table = data::RoundTable::WithModuleCount(module_count_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const ReadingMessage& message : readings) {
      if (message.module >= module_count_) {
        ++stats.rejected;
        continue;
      }
      if (closed_.count(message.round)) {
        ++stats.late;
        if (telemetry_.late_readings != nullptr) {
          telemetry_.late_readings->Increment();
        }
        continue;
      }
      ++stats.accepted;
      core::Round& pending = pending_[message.round];
      if (pending.empty()) pending.resize(module_count_);
      pending[message.module] = message.value;
      size_t present = 0;
      for (const auto& reading : pending) {
        if (reading.has_value()) ++present;
      }
      if (present < close_at_count_) continue;
      (void)table.AppendRound(std::move(pending));
      pending_.erase(message.round);
      closed_[message.round] = true;
      NoteClosedLocked(message.round);
      closed_rounds.push_back(message.round);
    }
    if (telemetry_.readings != nullptr && stats.accepted > 0) {
      telemetry_.readings->Add(static_cast<uint64_t>(stats.accepted));
    }
    if (telemetry_.open_rounds != nullptr) {
      telemetry_.open_rounds->Set(static_cast<double>(pending_.size()));
    }
  }
  stats.rounds_closed = closed_rounds.size();
  if (!closed_rounds.empty()) {
    channels_->round_batches.Publish(RoundBatchMessage{&closed_rounds, &table});
  }
  return stats;
}

void HubNode::NoteClosedLocked(size_t round) {
  if (telemetry_.rounds_closed != nullptr) telemetry_.rounds_closed->Increment();
  if (telemetry_.open_rounds != nullptr) {
    telemetry_.open_rounds->Set(static_cast<double>(pending_.size()));
  }
  if (telemetry_.last_closed_round != nullptr) {
    telemetry_.last_closed_round->Set(static_cast<double>(round));
  }
}

size_t HubNode::open_rounds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

HubNode::State HubNode::ExportState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  State state;
  state.pending.reserve(pending_.size());
  for (const auto& [round, readings] : pending_) {
    state.pending.emplace_back(static_cast<uint64_t>(round), readings);
  }
  state.closed_rounds.reserve(closed_.size());
  for (const auto& [round, flag] : closed_) {
    if (flag) state.closed_rounds.push_back(static_cast<uint64_t>(round));
  }
  return state;
}

void HubNode::RestoreState(const State& state) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.clear();
  closed_.clear();
  for (const auto& [round, readings] : state.pending) {
    core::Round copy = readings;
    copy.resize(module_count_);
    pending_[static_cast<size_t>(round)] = std::move(copy);
  }
  for (const uint64_t round : state.closed_rounds) {
    closed_[static_cast<size_t>(round)] = true;
  }
  if (telemetry_.open_rounds != nullptr) {
    telemetry_.open_rounds->Set(static_cast<double>(pending_.size()));
  }
}

VoterNode::VoterNode(core::VotingEngine engine, GroupChannels& channels,
                     VoterOptions options)
    : engine_(std::move(engine)),
      channels_(&channels),
      options_(std::move(options)) {
  if (options_.store != nullptr) {
    // Restore learned history from the datastore, if present.
    auto snapshot = options_.store->Get(options_.group);
    if (snapshot.ok() &&
        snapshot->records.size() == engine_.module_count()) {
      const Status restored =
          engine_.RestoreHistory(snapshot->records, snapshot->rounds);
      if (!restored.ok()) {
        AVOC_LOG_WARN("voter '%s': history restore failed: %s",
                      options_.group.c_str(),
                      restored.ToString().c_str());
      }
    }
  }
  subscription_ = channels_->rounds.Subscribe(
      [this](const RoundMessage& message) { OnRound(message); });
  batch_subscription_ = channels_->round_batches.Subscribe(
      [this](const RoundBatchMessage& message) { OnRoundBatch(message); });
}

VoterNode::~VoterNode() {
  channels_->round_batches.Unsubscribe(batch_subscription_);
  channels_->rounds.Unsubscribe(subscription_);
}

void VoterNode::OnRound(const RoundMessage& message) {
  OutputMessage output;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto result = engine_.CastVote(message.readings);
    if (!result.ok()) {
      last_status_ = result.status();
      AVOC_LOG_ERROR("voter '%s': round %zu failed: %s",
                     options_.group.c_str(), message.round,
                     result.status().ToString().c_str());
      return;
    }
    output.round = message.round;
    output.result = std::move(*result);
    PersistHistoryLocked();
  }
  channels_->outputs.Publish(output);
}

void VoterNode::OnRoundBatch(const RoundBatchMessage& message) {
  // One lock acquisition, one columnar engine call, one history persist
  // for the whole batch.  The publish happens under the lock because the
  // message borrows batch_trace_'s storage; subscribers must copy out, not
  // call back into this voter.
  std::lock_guard<std::mutex> lock(mutex_);
  batch_trace_.Reset(engine_.module_count());
  batch_trace_.ReserveRounds(message.table->round_count());
  const Status status =
      core::RunOverTable(engine_, *message.table, batch_trace_);
  if (!status.ok()) {
    last_status_ = status;
    AVOC_LOG_ERROR("voter '%s': batch of %zu rounds failed: %s",
                   options_.group.c_str(), message.table->round_count(),
                   status.ToString().c_str());
    return;
  }
  PersistHistoryLocked();
  channels_->batches.Publish(
      BatchOutputMessage{message.rounds, batch_trace_.view()});
}

void VoterNode::PersistHistoryLocked() {
  if (options_.store != nullptr) {
    HistorySnapshot snapshot;
    const auto records = engine_.history().records();
    snapshot.records.assign(records.begin(), records.end());
    snapshot.rounds = engine_.history().round_count();
    last_status_ = options_.store->Put(options_.group, snapshot);
  } else {
    last_status_ = Status::Ok();
  }
}

Status VoterNode::last_status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_status_;
}

core::VotingEngine::State VoterNode::ExportEngineState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return engine_.ExportState();
}

Status VoterNode::RestoreEngineState(const core::VotingEngine::State& state) {
  std::lock_guard<std::mutex> lock(mutex_);
  AVOC_RETURN_IF_ERROR(engine_.RestoreState(state));
  PersistHistoryLocked();
  return last_status_;
}

SinkNode::SinkNode(GroupChannels& channels, SinkTelemetry telemetry,
                   storage::TraceBackend* trace_store, std::string group)
    : channels_(&channels),
      telemetry_(telemetry),
      trace_store_(trace_store),
      group_(std::move(group)) {
  subscription_ = channels_->outputs.Subscribe(
      [this](const OutputMessage& message) { OnOutput(message); });
  batch_subscription_ = channels_->batches.Subscribe(
      [this](const BatchOutputMessage& message) { OnBatch(message); });
}

SinkNode::~SinkNode() {
  channels_->batches.Unsubscribe(batch_subscription_);
  channels_->outputs.Unsubscribe(subscription_);
}

void SinkNode::OnOutput(const OutputMessage& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_.Append(message.result);
  rounds_.push_back(message.round);
  NoteAppendedLocked(message.round, 1);
  PersistAppendedLocked(1);
}

void SinkNode::OnBatch(const BatchOutputMessage& message) {
  const size_t count = message.trace.round_count();
  if (count == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  // Column-to-column copy out of the borrowed view; the message's storage
  // is only valid during this publish.
  for (size_t i = 0; i < count; ++i) {
    trace_.AppendFrom(message.trace, i);
    rounds_.push_back((*message.rounds)[i]);
  }
  size_t last_round = (*message.rounds)[0];
  for (size_t i = 1; i < count; ++i) {
    last_round = std::max(last_round, (*message.rounds)[i]);
  }
  NoteAppendedLocked(last_round, count);
  PersistAppendedLocked(count);
}

void SinkNode::PersistAppendedLocked(size_t appended) {
  if (trace_store_ == nullptr || appended == 0) return;
  // Build the points from the rows just stored, not the message: what the
  // backend holds is then bit-identical to this trace by construction.
  std::vector<storage::TracePoint> points;
  points.reserve(appended);
  for (size_t i = rounds_.size() - appended; i < rounds_.size(); ++i) {
    const std::optional<double> value = trace_.output(i);
    points.push_back(storage::TracePoint{rounds_[i], value.value_or(0.0),
                                         value.has_value()});
  }
  const Status persisted = trace_store_->AppendTrace(group_, points);
  if (!persisted.ok()) {
    AVOC_LOG_WARN("sink '%s': trace persist failed: %s", group_.c_str(),
                  persisted.ToString().c_str());
  }
}

void SinkNode::NoteAppendedLocked(size_t last_round, size_t appended) {
  if (telemetry_.outputs != nullptr) {
    telemetry_.outputs->Add(static_cast<uint64_t>(appended));
  }
  if (telemetry_.last_round != nullptr) {
    telemetry_.last_round->Set(static_cast<double>(last_round));
  }
  if (telemetry_.lag_rounds != nullptr) {
    // Round numbers start at 0, so last_round + 1 rounds were dispatched
    // up to here; anything this sink has not recorded was lost upstream.
    const double dispatched = static_cast<double>(last_round) + 1.0;
    telemetry_.lag_rounds->Set(
        std::max(0.0, dispatched - static_cast<double>(rounds_.size())));
  }
}

std::vector<OutputMessage> SinkNode::outputs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<OutputMessage> out;
  out.reserve(rounds_.size());
  for (size_t i = 0; i < rounds_.size(); ++i) {
    out.push_back(OutputMessage{rounds_[i], trace_.MaterializeRound(i)});
  }
  return out;
}

size_t SinkNode::output_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rounds_.size();
}

void SinkNode::RestoreOutputs(std::span<const OutputMessage> restored) {
  if (restored.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const OutputMessage& message : restored) {
    trace_.Append(message.result);
    rounds_.push_back(message.round);
  }
  NoteAppendedLocked(restored.back().round, restored.size());
  PersistAppendedLocked(restored.size());
}

std::optional<double> SinkNode::last_value() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = rounds_.size(); i-- > 0;) {
    const auto value = trace_.output(i);
    if (value.has_value()) return value;
  }
  return std::nullopt;
}

}  // namespace avoc::runtime
