// The transport seam between the remote runtime and the bytes it moves.
//
// The networked voter (runtime/remote.h) used to be welded to POSIX TCP
// sockets, which made its failure behavior untestable: the connection
// state machines, frame decoder, and timer wheel only ever ran over
// healthy loopback links.  This header splits "what the runtime does"
// from "where the bytes go": Transport is a duplex byte stream, Listener
// accepts them, Clock tells the time.  Production implementations are
// TcpConnection/TcpListener (runtime/tcp.h) and SystemClock; the
// deterministic simulation harness (runtime/sim_net.h) provides in-memory
// implementations driven by a seeded virtual clock so the *same* runtime
// code can be exercised under scripted network faults, reproducibly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace avoc::runtime {

/// Outcome of one non-blocking read or write attempt.
struct IoOp {
  enum class Kind {
    kDone,        ///< `bytes` transferred (> 0)
    kWouldBlock,  ///< no progress possible now (EAGAIN/EWOULDBLOCK)
    kEof,         ///< orderly peer shutdown (reads only)
    kError,       ///< hard socket error, see `status`
  };
  Kind kind = Kind::kDone;
  size_t bytes = 0;
  Status status;
};

/// A connected duplex byte stream.  Two I/O styles coexist, matching the
/// two sides of the remote runtime: the event-loop server uses the
/// non-blocking ReadSome/WriteSome half; clients use the blocking
/// SendAll/ReceiveLine/ReceiveSome half.  A given stream is used in one
/// style at a time.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual bool valid() const = 0;

  /// Registration key for a Reactor (the fd for TCP, an endpoint id in
  /// simulation).  Stable for the stream's lifetime.
  virtual int handle() const = 0;

  // --- non-blocking I/O (server side; requires SetNonBlocking(true)) --------

  /// One receive attempt; never blocks.
  virtual IoOp ReadSome(char* buffer, size_t len) = 0;

  /// One send attempt; never blocks.
  virtual IoOp WriteSome(const char* data, size_t len) = 0;

  // --- blocking I/O (client side) -------------------------------------------

  /// Sends the whole buffer (handles partial writes).
  virtual Status SendAll(std::string_view data) = 0;

  /// Receives up to the next '\n' (stripped, including a preceding '\r').
  /// NotFound at orderly EOF with no pending data; IoError on timeout
  /// (when set) or stream errors.
  virtual Result<std::string> ReceiveLine() = 0;

  /// Blocking read of up to `len` raw bytes (at least one).  NotFound at
  /// orderly EOF, IoError on timeout or stream errors.
  virtual Result<size_t> ReceiveSome(char* buffer, size_t len) = 0;

  /// Bounds every subsequent blocking receive; 0 disables.
  virtual Status SetReceiveTimeoutMs(int timeout_ms) = 0;

  // --- configuration --------------------------------------------------------

  /// Switches non-blocking mode (event-loop streams set it once).
  virtual Status SetNonBlocking(bool enabled) = 0;

  /// Shrinks/grows the outbound buffer (backpressure tests pin it small
  /// so write queues fill deterministically).  Advisory.
  virtual Status SetSendBufferBytes(int bytes) = 0;

  virtual void Close() = 0;

  /// Sends one line (appends '\n').  Convenience over SendAll.
  Status SendLine(std::string_view line) {
    std::string framed(line);
    framed.push_back('\n');
    return SendAll(framed);
  }
};

/// Accepts inbound Transport streams.
class Listener {
 public:
  virtual ~Listener() = default;

  virtual uint16_t port() const = 0;

  /// Registration key for a Reactor.
  virtual int handle() const = 0;

  /// Non-blocking accept: NotFound when no connection is pending,
  /// IoError on hard errors.
  virtual Result<std::unique_ptr<Transport>> TryAcceptTransport() = 0;

  /// Unblocks pending accepts and stops accepting.
  virtual void Close() = 0;
};

/// Time source for retry/backoff logic.  Production code uses
/// SystemClock; the simulation harness advances a virtual clock so
/// backoff schedules are deterministic and tests never really sleep.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic milliseconds.
  virtual uint64_t NowMs() = 0;

  /// Blocks the caller for `ms` (virtual clocks advance time instead).
  virtual void SleepMs(uint64_t ms) = 0;
};

/// Steady-clock Clock.  Stateless; the singleton suits almost every use.
class SystemClock : public Clock {
 public:
  uint64_t NowMs() override;
  void SleepMs(uint64_t ms) override;

  static SystemClock* Instance();
};

}  // namespace avoc::runtime
