// The networked voter service: sensors and edge applications talk to the
// voter over a line-based TCP protocol — the wire realisation of the
// paper's sensors → hub → WiFi → voting sink-node path (Fig. 1) and of
// its closing vision, "a compatible voter service running on an edge
// node" receiving VDX definitions.
//
// Protocol (UTF-8 lines, space-separated tokens; responses are one line
// unless marked multi-line, in which case they end with an "END" line):
//
//   SUBMIT <group> <module> <round> <value>   -> OK | ERR <reason>
//   CLOSE <group> <round>                     -> OK | ERR <reason>
//   QUERY <group>                             -> VALUE <v> | NONE | ERR ...
//   GROUPS                                    -> GROUPS <n> <name...>
//   METRICS      -> multi-line Prometheus text exposition | ERR <reason>
//                   (requires the manager to carry an obs::Registry)
//   HEALTH       -> multi-line: "HEALTH <n>" then one
//                   "GROUP <name> modules=<m> outputs=<o> open=<p>
//                    status=<ok|error>" line per group
//   PING                                      -> PONG
//   QUIT                                      -> BYE (and disconnects)
//
// The server is intentionally plain-text and loopback-bound: §6 notes VDX
// "has no security features that protect against malicious actors, so
// this is left up to the client code"; the same stance applies here.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/group_manager.h"
#include "runtime/tcp.h"

namespace avoc::runtime {

class RemoteVoterServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral, see port()) and serves the
  /// given manager.  The manager must outlive the server; its groups may
  /// be registered before or while serving.
  static Result<std::unique_ptr<RemoteVoterServer>> Start(
      VoterGroupManager* manager, uint16_t port = 0);

  ~RemoteVoterServer();

  RemoteVoterServer(const RemoteVoterServer&) = delete;
  RemoteVoterServer& operator=(const RemoteVoterServer&) = delete;

  uint16_t port() const { return listener_.port(); }

  /// Stops accepting, disconnects clients, joins threads.  Idempotent.
  void Stop();

  /// Requests handled so far (all connections).
  size_t requests_served() const { return requests_.load(); }

 private:
  RemoteVoterServer(VoterGroupManager* manager, TcpListener listener);

  void AcceptLoop();
  void ServeConnection(TcpConnection connection);

  /// Handles one request line; returns the response line.
  std::string Handle(const std::string& line);

  VoterGroupManager* manager_;
  TcpListener listener_;
  std::atomic<bool> running_{true};
  std::atomic<size_t> requests_{0};
  std::thread acceptor_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

/// Client helper wrapping the protocol.
class RemoteVoterClient {
 public:
  static Result<RemoteVoterClient> Connect(const std::string& host,
                                           uint16_t port);

  Status Submit(const std::string& group, size_t module, size_t round,
                double value);
  Status CloseRound(const std::string& group, size_t round);
  /// Last fused value of the group; NotFound when none yet.
  Result<double> Query(const std::string& group);
  Result<std::vector<std::string>> Groups();
  Status Ping();
  /// The server's Prometheus text exposition (one string, '\n'-separated
  /// lines, END sentinel stripped).
  Result<std::string> Metrics();
  /// Per-group health lines ("GROUP <name> ..."), header/END stripped.
  Result<std::vector<std::string>> Health();

 private:
  explicit RemoteVoterClient(TcpConnection connection)
      : connection_(std::move(connection)) {}

  /// Sends one line, reads one response line, fails on ERR.
  Result<std::string> RoundTrip(const std::string& line);

  /// Sends one line, reads response lines until "END", fails on ERR.
  Result<std::vector<std::string>> RoundTripMultiLine(const std::string& line);

  TcpConnection connection_;
};

}  // namespace avoc::runtime
