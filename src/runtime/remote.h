// The networked voter service: sensors and edge applications talk to the
// voter over TCP — the wire realisation of the paper's sensors → hub →
// WiFi → voting sink-node path (Fig. 1) and of its closing vision, "a
// compatible voter service running on an edge node" receiving VDX
// definitions.
//
// The server is a single-threaded epoll event loop (runtime/event_loop.h)
// multiplexing every connection; each connection is a small protocol
// state machine with a bounded outbound queue.  Two protocols share the
// port, auto-detected from a connection's first bytes:
//
//   * Binary frame protocol (runtime/framing.h, docs/PROTOCOL.md).
//     Announced by the 2-byte magic preamble 0xAB 0x0C.  Length-prefixed
//     typed frames; SUBMIT_BATCH carries N readings that the server turns
//     into ONE columnar engine pass (VoterGroupManager::SubmitBatch), and
//     requests may be pipelined back-to-back without waiting.
//
//   * Legacy line protocol (UTF-8 lines, space-separated tokens;
//     multi-line responses end with an "END" line).  Any connection whose
//     first byte is not 0xAB speaks this:
//
//       SUBMIT <group> <module> <round> <value>   -> OK | ERR <reason>
//       CLOSE <group> <round>                     -> OK | ERR <reason>
//       QUERY <group>                             -> VALUE <v> | NONE | ERR
//       GROUPS                                    -> GROUPS <n> <name...>
//       METRICS      -> multi-line Prometheus text exposition | ERR
//       HEALTH       -> multi-line: "HEALTH <n>" then one GROUP line each
//       PING                                      -> PONG
//       QUIT                                      -> BYE (and disconnects)
//
// Backpressure: a client that pipelines faster than it reads accumulates
// an outbound queue.  Past `read_pause_bytes` the server stops reading
// from that connection (EPOLLIN off) until the queue drains; past
// `write_high_water_bytes` further requests are answered with "ERR busy"
// instead of being executed.  Connections idle past `idle_timeout_ms` are
// dropped by the loop's timer wheel.
//
// The server is intentionally plain-text/plain-frame and loopback-bound:
// §6 notes VDX "has no security features that protect against malicious
// actors, so this is left up to the client code"; the same stance
// applies here.
// Sharding (runtime/sharded_remote.h): a server may instead run as one
// of N linked shards, each on its own reactor thread, owning a disjoint
// set of groups (stable GroupRouter hash).  A connection's first
// group-addressed request *migrates* the whole connection to the owning
// shard (the shared-nothing fast path: one device, one group, one
// shard); later requests for foreign groups are forwarded frame-by-frame
// through reactor mailboxes with strict per-connection reply ordering.
// GROUPS/METRICS answer locally (frozen global group list / shared
// lock-free registry); HEALTH scatter-gathers one part per shard.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "runtime/event_loop.h"
#include "runtime/framing.h"
#include "runtime/group_manager.h"
#include "runtime/group_router.h"
#include "runtime/migration.h"
#include "runtime/tcp.h"
#include "runtime/transport.h"

namespace avoc::runtime {

/// Server tuning knobs (defaults suit production; tests shrink them).
struct RemoteServerOptions {
  /// 127.0.0.1 port; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  /// Drop connections with no traffic for this long; 0 disables.
  uint64_t idle_timeout_ms = 0;
  /// Stop reading from a connection whose outbound queue exceeds this.
  size_t read_pause_bytes = 256 * 1024;
  /// Answer "ERR busy" instead of executing requests past this.
  size_t write_high_water_bytes = 1024 * 1024;
  /// Largest accepted binary frame body.
  size_t max_frame_bytes = kMaxFrameBytes;
  /// Kernel send buffer per accepted connection; 0 keeps the default
  /// (backpressure tests pin it small for determinism).
  int send_buffer_bytes = 0;
  /// SUBMIT_BATCH_SEQ dedup: per client, acknowledgements at least this
  /// far below the highest seen sequence number may be forgotten.
  size_t dedup_window = 1024;
  /// Shard scope for telemetry families (e.g. "s2" publishes
  /// avoc_remote_*{shard="s2"}).  Empty keeps the plain family names.
  std::string metrics_scope;
  /// Node identity (e.g. "n0") once several server instances share one
  /// registry/tracer (cluster mode).  Labels every telemetry family with
  /// node="<id>", tags HEALTH group lines and server spans, so fan-out
  /// verbs can tell the instances apart.  Empty keeps single-node output.
  std::string node_id;
  /// Flight recorder / distributed tracing sink (obs/trace.h).  Null
  /// falls back to the manager's tracer; when both are null the server
  /// records nothing and pays one branch per request.
  obs::Tracer* tracer = nullptr;
};

class RemoteVoterServer;

/// Wiring of one shard server into a shard group, installed by
/// ShardedVoterServer before traffic flows and immutable afterwards.
/// `peers[index] == self`; `all_groups` is the frozen global group list
/// (sharded serving registers groups before accepting).
struct ShardLink {
  size_t index = 0;
  std::vector<RemoteVoterServer*> peers;
  std::vector<std::shared_ptr<Reactor>> reactors;
  std::vector<std::string> all_groups;
};

class RemoteVoterServer {
 public:
  using Options = RemoteServerOptions;

  /// Binds 127.0.0.1:`port` (0 = ephemeral, see port()) and serves the
  /// given manager.  The manager must outlive the server; its groups may
  /// be registered before or while serving.  When the manager carries an
  /// obs::Registry the server publishes avoc_remote_* metrics into it.
  static Result<std::unique_ptr<RemoteVoterServer>> Start(
      VoterGroupManager* manager, uint16_t port = 0);

  /// Start with explicit tuning knobs.
  static Result<std::unique_ptr<RemoteVoterServer>> StartWithOptions(
      VoterGroupManager* manager, Options options);

  /// Start over injected transport and dispatch seams.  With
  /// `spawn_loop_thread` false the caller drives the reactor itself —
  /// this is how the deterministic simulation harness (runtime/sim_net.h)
  /// runs the real server state machines over a virtual network and
  /// clock, single-threaded.
  static Result<std::unique_ptr<RemoteVoterServer>> StartOnReactor(
      VoterGroupManager* manager, Options options,
      std::unique_ptr<Listener> listener, std::shared_ptr<Reactor> reactor,
      bool spawn_loop_thread);

  /// A listenerless shard server: connections arrive only through
  /// AdoptConnection (posted by the sharded acceptor) or migration from
  /// a peer shard.  The caller owns the reactor's dispatch (thread or
  /// simulation pump) and must LinkShards() before traffic flows.
  static Result<std::unique_ptr<RemoteVoterServer>> StartShard(
      VoterGroupManager* manager, Options options,
      std::shared_ptr<Reactor> reactor);

  /// Installs the shard wiring (see ShardLink).  Call once, before any
  /// connection is adopted; the link is read-only afterwards.
  void LinkShards(ShardLink link);

  /// Installs the cluster wiring (see ClusterLink / runtime/cluster.h).
  /// Call once before traffic flows; read-only afterwards.  A clustered
  /// server answers requests for groups it does not own with a MOVED
  /// redirect, accepts the MIGRATE_GROUP verb, and (when the cluster
  /// gives it a hot standby) holds mutating replies until the standby
  /// acknowledged the shipped record.
  void LinkCluster(ClusterLink link);

  /// Simulated node crash (DST only): closes the listener and every
  /// connection without the graceful Stop() handshake and marks the
  /// server dead, so stray mailbox posts become no-ops.  Call from the
  /// loop thread or with the simulation world paused.
  void Crash();
  bool crashed() const { return crashed_; }

  /// Source side of a migration without a connection (the chaos driver's
  /// operator entry; the MIGRATE_GROUP verb routes here too): quiesces
  /// `group`, exports its state, ships it to `dest`, then answers the
  /// deferred requests with MOVED.  Loop-thread only; `done` fires on
  /// the loop thread with the outcome (typed errors for a nonexistent
  /// group, a dead/invalid destination, or a concurrent migration).
  void BeginMigration(std::string group, size_t dest,
                      std::function<void(Status)> done);

  /// Destination side: installs a shipped GroupStateBlob (engines come
  /// from the cluster's engine factory), replicates the import to this
  /// node's standby, then completes.  Loop-thread only.
  void BeginImport(std::string blob, std::function<void(Status)> done);

  /// Applies one shipped replication record (hot-standby side).  Returns
  /// the apply outcome; a torn record fails with ParseError.
  Status ApplyReplicated(std::string_view record_bytes);

  /// Group migrations this node completed as source / destination.
  size_t group_migrations_out() const { return group_migrations_out_.load(); }
  size_t group_migrations_in() const { return group_migrations_in_.load(); }
  /// MOVED redirects answered.
  size_t moved_redirects() const { return moved_redirects_.load(); }
  /// Replication records applied as a standby.
  size_t replicated_applies() const { return replicated_applies_.load(); }

  /// Takes ownership of an accepted transport (already non-blocking) and
  /// runs the standard connection state machine on it.  Loop-thread
  /// only — peers reach it via Reactor::Post.
  void AdoptConnection(std::shared_ptr<Transport> transport);

  ~RemoteVoterServer();

  RemoteVoterServer(const RemoteVoterServer&) = delete;
  RemoteVoterServer& operator=(const RemoteVoterServer&) = delete;

  /// Listening port; 0 for listenerless shard servers (the sharded
  /// front door owns the socket).
  uint16_t port() const { return listener_ ? listener_->port() : 0; }

  /// Stops the loop, disconnects clients, joins the loop thread.
  /// Idempotent.
  void Stop();

  /// Requests handled so far (all connections, both protocols; one
  /// binary frame or one legacy line each).
  size_t requests_served() const { return requests_.load(); }

  /// Times a connection hit a backpressure threshold (read pause or
  /// busy-rejection).
  size_t backpressure_events() const { return backpressure_.load(); }

  /// SUBMIT_BATCH_SEQ duplicates answered from the dedup cache instead
  /// of re-ingesting.
  size_t dedup_replays() const { return dedup_replays_count_.load(); }

  /// Requests this shard forwarded to a peer (foreign group on a pinned
  /// connection); 0 unsharded.
  size_t forwarded_requests() const { return forwarded_.load(); }

  /// Connections this shard handed to the owning peer on their first
  /// group-addressed request; 0 unsharded.
  size_t migrations_out() const { return migrations_.load(); }

 private:
  /// One connection's protocol state machine (loop thread only — the
  /// owning shard's; migration moves the whole struct between shards
  /// through a reactor mailbox, never shares it).
  struct Connection {
    explicit Connection(std::shared_ptr<Transport> c) : conn(std::move(c)) {}

    std::shared_ptr<Transport> conn;  ///< shared: posts across reactors
    enum class Mode : uint8_t { kDetecting, kLegacy, kBinary };
    Mode mode = Mode::kDetecting;
    std::string inbuf;     ///< detection + legacy line assembly
    FrameDecoder decoder;  ///< binary frame assembly
    std::string outbuf;    ///< encoded responses not yet written
    size_t out_pos = 0;    ///< written prefix of outbuf
    bool want_close = false;  ///< close once outbuf AND replies drain
    bool paused = false;      ///< reading stopped by backpressure
    bool pinned = false;      ///< shard placement decided (sharded mode)
    uint64_t id = 0;          ///< guards stale cross-shard completions
    uint64_t idle_timer = 0;  ///< timer-wheel handle (0 = none)
    uint64_t last_activity_ms = 0;

    /// In-order reply delivery under forwarding: every response occupies
    /// a slot; forwarded ones complete asynchronously, and only the
    /// ready prefix ever reaches outbuf.  Invariant: when `replies` is
    /// non-empty its front is pending (ready fronts flush immediately),
    /// so local responses append as ready without reordering.
    struct PendingReply {
      bool ready = false;
      std::string bytes;
    };
    std::deque<PendingReply> replies;
    uint64_t reply_base = 0;  ///< absolute slot index of replies.front()
    uint64_t next_slot = 0;   ///< next absolute slot to allocate
  };

  RemoteVoterServer(VoterGroupManager* manager, Options options,
                    std::unique_ptr<Listener> listener,
                    std::shared_ptr<Reactor> loop);

  // Loop-thread handlers.
  void OnAcceptable();
  void OnConnectionEvent(int fd, uint32_t events);
  void ReadPath(int fd);
  void WritePath(int fd);
  void ProcessInput(int fd);
  void ProcessLegacyLines(int fd);
  void ProcessBinaryFrames(int fd);
  void QueueResponse(Connection& c, std::string bytes);
  bool OverHighWater(const Connection& c) const;
  void UpdateInterest(int fd);
  void ScheduleIdleTimer(int fd);
  void CloseConnection(int fd);

  /// Handles one legacy request line; returns the response line.
  std::string Handle(const std::string& line);

  /// Handles one binary frame; returns the encoded response frame and
  /// sets `*close_after` for QUIT.  `route` tags the server span with
  /// how the frame reached this shard ("local" | "forwarded" |
  /// "migrated").
  std::string HandleFrame(const Frame& frame, bool* close_after,
                          const char* route = "local");

  /// The multi-line HEALTH body (shared by both protocols; no END line).
  std::string HealthText() const;

  /// The per-group "GROUP ..." lines of this shard (no header).
  std::string LocalHealthLines() const;

  // --- sharded routing (all loop-thread-only on their shard) ---------------
  bool IsLinked() const { return link_.peers.size() > 1; }

  /// Runs one frame on this shard: accounting, busy check, execution,
  /// in-order response delivery.
  void ExecuteFrameLocally(Connection& c, const Frame& frame,
                           const char* route = "local");
  /// Same for one legacy line.
  void ExecuteLineLocally(Connection& c, const std::string& line);

  /// Appends a response, respecting pending forwarded slots.
  void DeliverResponse(Connection& c, std::string bytes);
  /// Allocates a pending reply slot; returns its absolute index.
  uint64_t AllocatePendingSlot(Connection& c);
  /// Marks `slot` ready and flushes the ready prefix.  Drops silently
  /// when the connection died or was reused (id mismatch).
  void CompleteReply(int fd, uint64_t conn_id, uint64_t slot,
                     std::string bytes);
  void FlushReplies(Connection& c);

  /// Posts `frame` to the owning peer; the response completes the slot.
  void ForwardFrame(int fd, Connection& c, size_t owner, Frame frame);
  /// Legacy-line forwarding (response gains its newline at the origin).
  void ForwardLine(int fd, Connection& c, size_t owner, std::string line);
  /// Hands the whole connection (buffers, decoder, outbuf) to the owning
  /// shard, carrying the request that triggered the move.
  void MigrateConnection(int fd, size_t owner, std::optional<Frame> frame,
                         std::optional<std::string> line);
  /// Receives a migrated connection on the owning shard.
  void AdoptMigrated(std::shared_ptr<Connection> c, std::optional<Frame> frame,
                     std::optional<std::string> line);
  /// HEALTH scatter-gather: one LocalHealthLines() per shard, assembled
  /// into the slot when the last part arrives.
  void StartHealthFanout(int fd, Connection& c, bool binary);

  /// Remembered SUBMIT_BATCH_SEQ acknowledgements for one client
  /// identity (loop thread only).  Each ack remembers the group it
  /// addressed so the entries can travel with a migrated group.
  struct ClientDedup {
    struct AckEntry {
      uint64_t accepted = 0;
      std::string group;
    };
    std::map<uint64_t, AckEntry> acks;  ///< seq -> ack
    uint64_t max_seq = 0;
  };

  // --- cluster mode (all loop-thread-only) ---------------------------------
  bool IsClustered() const { return cluster_.control != nullptr; }

  /// Routes one frame through the cluster layer before local execution.
  /// Returns true when the frame was consumed (deferred behind an active
  /// migration, answered with MOVED, executed with a replication hold,
  /// or started a migration); false to fall through to plain local
  /// execution.
  bool ClusterIntercept(int fd, Connection& c, const Frame& frame);

  /// Executes a mutating frame and holds its reply slot until the
  /// standby acknowledged the shipped record (no-op pass-through when
  /// the node has no standby).
  void CompleteAfterReplication(int fd, uint64_t conn_id, uint64_t slot,
                                const Frame& frame, std::string response);

  /// Source-side completion: on success removes the group, erases its
  /// travelling dedup, commits placement, and answers deferred requests
  /// with MOVED; on failure re-executes them locally in order.
  void FinishMigration(const std::string& group, size_t dest, Status result);

  /// Serializes one group (pipeline state + travelling dedup entries).
  Result<std::string> ExportGroupBlob(const std::string& group);
  /// Installs a shipped blob (engine from the cluster catalog, state
  /// restore with rollback, dedup merge).
  Status ImportGroupBlob(std::string_view bytes);
  /// Drops dedup acks addressed to `group`; returns the erased entries.
  std::vector<GroupStateBlob::DedupEntry> EraseDedupForGroup(
      const std::string& group);

  /// One in-flight outbound migration: requests for the group arriving
  /// while it runs are parked here instead of executing.
  struct ActiveMigration {
    size_t dest = 0;
    struct Deferred {
      int fd = -1;
      uint64_t conn_id = 0;
      uint64_t slot = 0;
      Frame frame;
    };
    std::vector<Deferred> deferred;
    std::vector<std::function<void(Status)>> done;
  };

  VoterGroupManager* manager_;
  Options options_;
  std::unique_ptr<Listener> listener_;  ///< null for shard servers
  std::shared_ptr<Reactor> loop_;
  std::thread loop_thread_;
  std::atomic<bool> running_{true};
  std::atomic<size_t> requests_{0};
  std::atomic<size_t> backpressure_{0};
  std::atomic<size_t> dedup_replays_count_{0};
  std::atomic<size_t> forwarded_{0};
  std::atomic<size_t> migrations_{0};
  uint64_t next_conn_id_ = 1;                           // loop thread
  std::map<int, std::shared_ptr<Connection>> connections_;  // loop thread
  std::map<std::string, ClientDedup> dedup_;                // loop thread

  /// Shard wiring; empty (unlinked) for a standalone server.  Installed
  /// once before traffic, read-only afterwards — safe to read from the
  /// loop thread without locks.
  ShardLink link_;
  GroupRouter router_{1};

  /// Cluster wiring; control == nullptr for a standalone server.  Same
  /// install-once discipline as link_.
  ClusterLink cluster_;
  std::map<std::string, ActiveMigration> active_migrations_;  // loop thread
  bool crashed_ = false;                                      // loop thread
  std::atomic<size_t> group_migrations_out_{0};
  std::atomic<size_t> group_migrations_in_{0};
  std::atomic<size_t> moved_redirects_{0};
  std::atomic<size_t> replicated_applies_{0};
  /// " node=<id>" when options_.node_id set, else empty — appended to
  /// HEALTH group lines and span details so fan-outs identify the node.
  std::string node_suffix_;

  /// Resolved tracing sink: options_.tracer, else the manager's tracer,
  /// else null (tracing off).  Shared across shards — spans from every
  /// shard land in one flight recorder, so TRACE_DUMP on any connection
  /// sees the whole request path.
  obs::Tracer* tracer_ = nullptr;

  // Optional telemetry (null without a manager registry).
  obs::Gauge* connections_gauge_ = nullptr;
  obs::Counter* frames_in_ = nullptr;
  obs::Counter* frames_out_ = nullptr;
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
  obs::Counter* backpressure_counter_ = nullptr;
  obs::Counter* dedup_replays_ = nullptr;
  obs::Gauge* dedup_clients_ = nullptr;
  obs::LatencyHistogram* request_latency_ = nullptr;
  obs::Counter* query_range_requests_ = nullptr;
  obs::Counter* history_get_requests_ = nullptr;
  obs::LatencyHistogram* query_range_latency_ = nullptr;
  obs::LatencyHistogram* history_get_latency_ = nullptr;
  obs::Counter* forwarded_counter_ = nullptr;
  obs::Counter* migrations_counter_ = nullptr;
  obs::Counter* adopted_counter_ = nullptr;
  obs::Gauge* owned_groups_gauge_ = nullptr;
  obs::Counter* group_migrations_out_counter_ = nullptr;
  obs::Counter* group_migrations_in_counter_ = nullptr;
  obs::Counter* moved_redirects_counter_ = nullptr;
  obs::Counter* replicated_applies_counter_ = nullptr;
};

/// Client helper speaking either protocol.  Connect() yields a legacy
/// line-protocol client (bit-compatible with the original); ConnectBinary
/// sends the 0xAB 0x0C preamble and speaks frames, which unlocks
/// SubmitBatch and pipelining.  One client is one connection; methods are
/// not thread-safe.
class RemoteVoterClient {
 public:
  static Result<RemoteVoterClient> Connect(const std::string& host,
                                           uint16_t port);

  /// Binary-framed connection (preamble sent immediately).
  static Result<RemoteVoterClient> ConnectBinary(const std::string& host,
                                                 uint16_t port);

  /// Speaks over an already-connected stream (the simulation harness
  /// hands in in-memory transports here).  `binary` sends the protocol
  /// preamble immediately.
  static Result<RemoteVoterClient> FromTransport(
      std::unique_ptr<Transport> transport, bool binary);

  /// Bounds every subsequent reply wait; 0 disables.
  Status SetRequestTimeoutMs(int timeout_ms);

  Status Submit(const std::string& group, size_t module, size_t round,
                double value);

  /// Sends `readings` as one SUBMIT_BATCH frame and awaits the reply;
  /// returns the number of readings the server accepted.  Binary mode
  /// only.
  Result<uint64_t> SubmitBatch(const std::string& group,
                               std::span<const BatchReading> readings);

  /// SUBMIT_BATCH_SEQ: like SubmitBatch, tagged with a client identity
  /// and sequence number so a resend after a lost reply is answered from
  /// the server's dedup cache instead of double-ingested.  Binary mode
  /// only.
  /// `trace` (optional) rides the frame as the trailing trace-context
  /// field, parenting the server-side span tree to the caller's span.
  Result<uint64_t> SubmitBatchSeq(std::string_view client_id, uint64_t seq,
                                  const std::string& group,
                                  std::span<const BatchReading> readings,
                                  const WireTraceContext* trace = nullptr);

  /// Pipelining (binary mode only): queue a SUBMIT_BATCH without reading
  /// the reply...
  Status PipelineSubmitBatch(const std::string& group,
                             std::span<const BatchReading> readings);
  /// ...then collect one pending reply per earlier Pipeline call, in
  /// order.
  Result<uint64_t> AwaitSubmitBatch();
  size_t pending_replies() const { return pending_submits_; }

  Status CloseRound(const std::string& group, size_t round);
  /// Operator verb: asks the server to migrate `group` to cluster node
  /// `dest_node` (MIGRATE_GROUP).  Binary mode only; FailedPrecondition
  /// on a standalone (non-clustered) server.
  Status MigrateGroup(const std::string& group, uint64_t dest_node);
  /// Last fused value of the group; NotFound when none yet.
  Result<double> Query(const std::string& group);
  /// The group's stored vote trace restricted to rounds in
  /// [lo_round, hi_round] (inclusive).  Values are bit-identical to the
  /// server's trace.  Binary mode only (kUnsupported on legacy lines).
  Result<std::vector<RangePoint>> QueryRange(const std::string& group,
                                             uint64_t lo_round,
                                             uint64_t hi_round);
  /// A group's live reliability ledger as served by HISTORY_GET.
  struct RemoteHistory {
    uint64_t rounds = 0;            ///< rounds absorbed by the ledger
    std::vector<double> records;    ///< per-module reliability records
  };
  /// The group's reliability ledger.  Binary mode only.
  Result<RemoteHistory> HistoryGet(const std::string& group);
  Result<std::vector<std::string>> Groups();
  Status Ping();
  /// The server's Prometheus text exposition (one string, '\n'-separated
  /// lines, END sentinel stripped).
  Result<std::string> Metrics();
  /// Snapshot of the server's flight recorder as AVOC-TRACE v1 text
  /// (obs::Tracer::DumpText).  Binary mode only; FailedPrecondition when
  /// the server runs without a tracer.
  Result<std::string> TraceDump();
  /// Per-group health lines ("GROUP <name> ..."), header/END stripped.
  Result<std::vector<std::string>> Health();

 private:
  enum class Mode : uint8_t { kLegacy, kBinary };

  RemoteVoterClient(std::unique_ptr<Transport> connection, Mode mode)
      : connection_(std::move(connection)), mode_(mode) {}

  /// Sends one line, reads one response line, fails on ERR.
  Result<std::string> RoundTrip(const std::string& line);

  /// Sends one line, reads response lines until "END", fails on ERR.
  Result<std::vector<std::string>> RoundTripMultiLine(const std::string& line);

  /// Binary mode: blocks until one complete frame arrives.
  Result<Frame> ReadFrame();

  /// Binary mode: sends a request frame and reads its response frame
  /// (decoding kError into a Status).
  Result<Frame> FrameRoundTrip(FrameType type, std::string_view payload = {});

  /// Unwraps a kError frame into a Status; passes others through.
  Result<Frame> CheckFrame(Frame frame);

  std::unique_ptr<Transport> connection_;
  Mode mode_ = Mode::kLegacy;
  FrameDecoder decoder_;
  size_t pending_submits_ = 0;
};

}  // namespace avoc::runtime
