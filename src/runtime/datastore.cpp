#include "runtime/datastore.h"

#include <fstream>
#include <sstream>

#include "json/parse.h"
#include "json/write.h"
#include "storage/io.h"

namespace avoc::runtime {

Result<HistoryStore> HistoryStore::Open(const std::string& path) {
  HistoryStore store;
  store.path_ = path;
  std::ifstream in(path, std::ios::binary);
  if (!in) return store;  // fresh store; file created on first Put
  std::ostringstream buffer;
  buffer << in.rdbuf();
  AVOC_ASSIGN_OR_RETURN(const json::Value doc, json::Parse(buffer.str()));
  if (!doc.is_object()) {
    return ParseError("history store file must hold a JSON object");
  }
  for (const auto& [group, entry] : doc.object().entries()) {
    HistorySnapshot snapshot;
    if (const json::Value* rounds = entry.Find("rounds")) {
      snapshot.rounds = static_cast<size_t>(rounds->DoubleOr(0));
    }
    if (const json::Value* records = entry.Find("records")) {
      if (!records->is_array()) {
        return ParseError("records of '" + group + "' must be an array");
      }
      for (const json::Value& r : records->array()) {
        AVOC_ASSIGN_OR_RETURN(const double value, r.AsDouble());
        snapshot.records.push_back(value);
      }
    }
    store.snapshots_[group] = std::move(snapshot);
  }
  return store;
}

Status HistoryStore::Flush() const {
  if (path_.empty()) return Status::Ok();
  json::Object doc;
  for (const auto& [group, snapshot] : snapshots_) {
    json::Array records;
    records.reserve(snapshot.records.size());
    for (const double r : snapshot.records) records.emplace_back(r);
    doc.Set(group, json::MakeObject({
                       {"records", std::move(records)},
                       {"rounds", static_cast<double>(snapshot.rounds)},
                   }));
  }
  // Durable replacement (tmp + fsync + rename + dir fsync): a plain
  // rename could vanish on power loss, losing the whole store.
  return storage::WriteFileDurable(path_,
                                   json::Write(json::Value(std::move(doc))));
}

Status HistoryStore::Put(const std::string& group,
                         const HistorySnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(*mutex_);
  snapshots_[group] = snapshot;
  return Flush();
}

Result<HistorySnapshot> HistoryStore::Get(const std::string& group) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  auto it = snapshots_.find(group);
  if (it == snapshots_.end()) {
    return NotFoundError("no history for group '" + group + "'");
  }
  return it->second;
}

Result<bool> HistoryStore::Erase(const std::string& group) {
  std::lock_guard<std::mutex> lock(*mutex_);
  const bool existed = snapshots_.erase(group) > 0;
  if (existed) AVOC_RETURN_IF_ERROR(Flush());
  return existed;
}

std::vector<std::string> HistoryStore::Groups() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::vector<std::string> names;
  names.reserve(snapshots_.size());
  for (const auto& [group, snapshot] : snapshots_) {
    (void)snapshot;
    names.push_back(group);
  }
  return names;
}

size_t HistoryStore::size() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return snapshots_.size();
}

}  // namespace avoc::runtime
