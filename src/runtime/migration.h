// Cluster seams for voter-group migration and replicated failover.
//
// A cluster (runtime/cluster.h) runs several RemoteVoterServer instances
// that share a consistent-hash ring.  This header holds what the server
// and the cluster control plane exchange:
//
//   * ClusterControl / ClusterLink — how one node reaches the rest of
//     the cluster (placement lookups, state transfer, standby
//     replication).  Installed before traffic flows, like ShardLink.
//   * GroupStateBlob — the serialized full pipeline state of one group
//     (engine accumulators, hub assembly state, sink trace, travelling
//     SUBMIT_BATCH_SEQ dedup entries) shipped on MIGRATE_GROUP.  The
//     history core rides the storage snapshot codec (storage/snapshot.h),
//     i.e. the HistoryBackend seam's own portable format.
//   * ReplicationRecord — the unit shipped to a hot standby: a raw frame
//     to re-execute, a whole group import, or a group removal.  CRC-framed
//     like a WAL segment, so a torn record fails typed.
//   * MOVED redirect helpers — the Status form redirects travel in
//     between RemoteVoterClient and ResilientVoterClient.
//
// All doubles round-trip bit-exactly: a migrated group must keep voting
// bit-identically with the source (see docs/MIGRATION.md).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/group_runner.h"
#include "util/status.h"

namespace avoc::runtime {

/// How one cluster node reaches the rest of the cluster.  Implemented by
/// VoterCluster over reactor mailboxes; every method is called from the
/// node's loop thread and every completion callback is posted back to it.
class ClusterControl {
 public:
  virtual ~ClusterControl() = default;

  /// Current owner of `group` per the placement map (hash ring plus the
  /// migration overlay).
  virtual size_t OwnerOf(const std::string& group) const = 0;
  virtual size_t NodeCount() const = 0;
  /// Advertised address of `node` ("127.0.0.1:<port>"), informational —
  /// clients resolve node indices through their own dialer.
  virtual std::string NodeAddress(size_t node) const = 0;
  /// False once the node crashed (failover may later revive the index on
  /// its standby).
  virtual bool NodeAlive(size_t node) const = 0;
  /// Whether `node` currently has a live hot standby to replicate to.
  virtual bool HasStandby(size_t node) const = 0;

  /// Ships an exported GroupStateBlob to `dest` for import.  `done` is
  /// posted back to node `from`'s reactor with the import result; a dead
  /// destination fails fast instead of hanging.
  virtual void TransferGroup(size_t from, size_t dest, std::string blob,
                             std::function<void(Status)> done) = 0;

  /// Moves `group` to `dest` in the shared placement map (called by the
  /// source after a successful transfer).
  virtual void CommitPlacement(const std::string& group, size_t dest) = 0;

  /// Ships one encoded ReplicationRecord to `node`'s hot standby; `done`
  /// is posted back to the calling node's reactor once the standby
  /// applied it.  Immediate success when the node has no standby.
  virtual void Replicate(size_t node, std::string record,
                         std::function<void(Status)> done) = 0;
};

/// Resolves a group name to a fresh engine instance (the cluster's group
/// catalog) when a migrated group lands on a node that never hosted it.
using EngineFactory =
    std::function<Result<core::VotingEngine>(const std::string& group)>;

/// Wiring of one server into a cluster, installed before Serve and
/// immutable afterwards (like ShardLink).
struct ClusterLink {
  size_t node_index = 0;
  ClusterControl* control = nullptr;
  /// Group catalog for imports (must be thread-safe to call; the cluster
  /// freezes its catalog before traffic flows).
  EngineFactory engine_factory;
};

// --- group-state blob --------------------------------------------------------

/// Everything one group needs to keep running bit-identically on another
/// node.
struct GroupStateBlob {
  std::string group;
  GroupRunner::State state;

  /// SUBMIT_BATCH_SEQ acknowledgements addressed to this group: they
  /// travel with it so a client retry after the MOVED redirect replays
  /// from the destination's dedup cache instead of double-ingesting.
  struct DedupEntry {
    std::string client_id;
    uint64_t seq = 0;
    uint64_t accepted = 0;
  };
  std::vector<DedupEntry> dedup;
};

std::string EncodeGroupState(const GroupStateBlob& blob);
/// ParseError on truncation, bad magic/version, CRC mismatch (the nested
/// history snapshot), or trailing bytes.
Result<GroupStateBlob> DecodeGroupState(std::string_view bytes);

// --- replication records -----------------------------------------------------

/// One shipped-WAL-segment unit applied by a hot standby.
struct ReplicationRecord {
  enum class Kind : uint8_t {
    kFrame = 1,   ///< re-execute `frame_type` + `bytes` (a request payload)
    kImport = 2,  ///< install the GroupStateBlob in `bytes`
    kRemove = 3,  ///< drop `group` (source side of a migration)
  };
  Kind kind = Kind::kFrame;
  uint8_t frame_type = 0;  ///< kFrame only
  std::string group;       ///< kRemove only
  std::string bytes;       ///< kFrame: frame payload; kImport: state blob
};

std::string EncodeReplicationRecord(const ReplicationRecord& record);
/// ParseError on CRC mismatch, unknown kind, or truncation.
Result<ReplicationRecord> DecodeReplicationRecord(std::string_view bytes);

// --- MOVED redirects ---------------------------------------------------------

/// The Status form of a MOVED redirect, carried between the plain client
/// (which decodes the kMoved frame) and the resilient client (which
/// re-resolves the node and resubmits).  FailedPrecondition with a
/// machine-parseable "MOVED <node> <address>" message.
Status MovedError(uint64_t node, std::string_view address);

/// True when `status` is a MOVED redirect; extracts the owning node.
bool TryParseMoved(const Status& status, uint64_t* node);

}  // namespace avoc::runtime
