// Deterministic replay pipeline.
//
// A thin adapter over GroupRunner (group_runner.h): each Step() is one
// fully synchronous RunRound, so tests and benches observe exact
// per-round behaviour — the reproducible counterpart of the threaded
// service (service.h).  Sensors replay a RoundTable or sample arbitrary
// generators.
#pragma once

#include <memory>
#include <vector>

#include "core/engine.h"
#include "data/round_table.h"
#include "runtime/group_runner.h"
#include "util/status.h"

namespace avoc::runtime {

/// Pipeline configuration.
struct PipelineOptions {
  /// Persist/restore voter history through this backend (optional).
  storage::HistoryBackend* store = nullptr;
  /// Persist every sink row as a trace point (optional).
  storage::TraceBackend* trace_store = nullptr;
  std::string group = "default";
};

class Pipeline {
 public:

  /// Replays a recorded table through the given engine.
  static Result<Pipeline> FromTable(const data::RoundTable& table,
                                    core::VotingEngine engine,
                                    PipelineOptions options = {});

  /// Drives arbitrary per-module generators.
  static Result<Pipeline> FromGenerators(
      std::vector<SensorNode::Generator> generators,
      core::VotingEngine engine, PipelineOptions options = {});

  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  /// Runs one round: every sensor emits, then the hub flushes the round
  /// (turning silent sensors into missing values).
  void Step();

  /// Runs `rounds` steps.
  void Run(size_t rounds);

  /// Rounds stepped so far.
  size_t rounds_run() const { return next_round_; }

  const SinkNode& sink() const { return runner_->sink(); }
  const VoterNode& voter() const { return runner_->voter(); }
  const GroupRunner& runner() const { return *runner_; }

 private:
  explicit Pipeline(std::unique_ptr<GroupRunner> runner)
      : runner_(std::move(runner)) {}

  std::unique_ptr<GroupRunner> runner_;
  size_t next_round_ = 0;
};

}  // namespace avoc::runtime
