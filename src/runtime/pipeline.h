// Deterministic replay pipeline.
//
// Wires sensor/hub/voter/sink nodes for one voter group and steps them
// round by round — the reproducible counterpart of the threaded service
// (service.h).  Sensors replay a RoundTable or sample arbitrary
// generators; each Step() is fully synchronous, so tests and benches
// observe exact per-round behaviour.
#pragma once

#include <memory>
#include <vector>

#include "core/engine.h"
#include "data/round_table.h"
#include "runtime/nodes.h"
#include "util/status.h"

namespace avoc::runtime {

/// Pipeline configuration.
struct PipelineOptions {
  /// Persist/restore voter history through this store (optional).
  HistoryStore* store = nullptr;
  std::string group = "default";
};

class Pipeline {
 public:

  /// Replays a recorded table through the given engine.
  static Result<Pipeline> FromTable(const data::RoundTable& table,
                                    core::VotingEngine engine,
                                    PipelineOptions options = {});

  /// Drives arbitrary per-module generators.
  static Result<Pipeline> FromGenerators(
      std::vector<SensorNode::Generator> generators,
      core::VotingEngine engine, PipelineOptions options = {});

  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  /// Runs one round: every sensor emits, then the hub flushes the round
  /// (turning silent sensors into missing values).
  void Step();

  /// Runs `rounds` steps.
  void Run(size_t rounds);

  /// Rounds stepped so far.
  size_t rounds_run() const { return next_round_; }

  const SinkNode& sink() const { return *sink_; }
  const VoterNode& voter() const { return *voter_; }

 private:
  Pipeline(std::vector<SensorNode::Generator> generators,
           core::VotingEngine engine, PipelineOptions options);

  // Channels must outlive the nodes; unique_ptr keeps addresses stable
  // across Pipeline moves.
  std::unique_ptr<GroupChannels> channels_;
  std::vector<std::unique_ptr<SensorNode>> sensors_;
  std::unique_ptr<HubNode> hub_;
  std::unique_ptr<VoterNode> voter_;
  std::unique_ptr<SinkNode> sink_;
  size_t next_round_ = 0;
};

}  // namespace avoc::runtime
