#include "runtime/transport.h"

#include <chrono>
#include <thread>

namespace avoc::runtime {

uint64_t SystemClock::NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SystemClock::SleepMs(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

SystemClock* SystemClock::Instance() {
  static SystemClock clock;
  return &clock;
}

}  // namespace avoc::runtime
