#include "runtime/service.h"

#include "util/log.h"

namespace avoc::runtime {

VoterService::VoterService(std::vector<SensorNode::Generator> samplers,
                           core::VotingEngine engine, ServiceOptions options)
    : options_(std::move(options)),
      channels_(std::make_unique<GroupChannels>()) {
  hub_ = std::make_unique<HubNode>(samplers.size(), *channels_);
  VoterOptions voter_options;
  voter_options.group = options_.group;
  voter_options.store = options_.store;
  voter_ = std::make_unique<VoterNode>(std::move(engine), *channels_,
                                       std::move(voter_options));
  sink_ = std::make_unique<SinkNode>(*channels_);
  for (size_t m = 0; m < samplers.size(); ++m) {
    sensors_.push_back(std::make_unique<SensorNode>(
        m, std::move(samplers[m]), channels_->readings));
  }
}

Result<std::unique_ptr<VoterService>> VoterService::Create(
    std::vector<SensorNode::Generator> samplers, core::VotingEngine engine,
    ServiceOptions options) {
  if (samplers.size() != engine.module_count()) {
    return InvalidArgumentError("sampler/engine module count mismatch");
  }
  if (samplers.empty()) {
    return InvalidArgumentError("service needs at least one sensor");
  }
  if (options.round_period.count() <= 0) {
    return InvalidArgumentError("round period must be positive");
  }
  return std::unique_ptr<VoterService>(new VoterService(
      std::move(samplers), std::move(engine), std::move(options)));
}

VoterService::~VoterService() { Stop(); }

void VoterService::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

void VoterService::SchedulerLoop() {
  AVOC_LOG_INFO("voter service '%s': started (%lld ms rounds)",
                options_.group.c_str(),
                static_cast<long long>(options_.round_period.count()));
  while (running_.load()) {
    const size_t round = current_round_.fetch_add(1);
    // Fan the sampling out to one short-lived worker per sensor so a slow
    // sensor cannot stall the others — its reading simply misses the
    // timeout and the round proceeds without it.
    std::vector<std::thread> workers;
    workers.reserve(sensors_.size());
    for (const auto& sensor : sensors_) {
      workers.emplace_back([&sensor, round] { sensor->Emit(round); });
    }
    std::this_thread::sleep_for(
        std::min(options_.round_timeout, options_.round_period));
    // Close the round at the timeout: whatever has not arrived becomes a
    // missing value, and a late worker's publish is discarded by the hub
    // against the already-closed round.
    hub_->Flush(round, /*publish_empty=*/true);
    for (std::thread& worker : workers) {
      worker.join();
    }
    const auto remainder = options_.round_period - options_.round_timeout;
    if (remainder.count() > 0) std::this_thread::sleep_for(remainder);
  }
  AVOC_LOG_INFO("voter service '%s': stopped after %zu rounds",
                options_.group.c_str(), current_round_.load());
}

void VoterService::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  if (scheduler_.joinable()) scheduler_.join();
}

size_t VoterService::rounds_completed() const {
  return sink_->output_count();
}

}  // namespace avoc::runtime
