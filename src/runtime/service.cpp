#include "runtime/service.h"

#include "util/log.h"

namespace avoc::runtime {

VoterService::VoterService(std::unique_ptr<GroupRunner> runner,
                           ServiceOptions options)
    : options_(std::move(options)), runner_(std::move(runner)) {
  if (options_.registry != nullptr) {
    running_gauge_ = &options_.registry->GetGauge(
        obs::LabeledName("avoc_service_running", "group", options_.group));
    rounds_opened_counter_ = &options_.registry->GetCounter(obs::LabeledName(
        "avoc_service_rounds_opened_total", "group", options_.group));
  }
}

Result<std::unique_ptr<VoterService>> VoterService::Create(
    std::vector<SensorNode::Generator> samplers, core::VotingEngine engine,
    ServiceOptions options) {
  if (samplers.size() != engine.module_count()) {
    return InvalidArgumentError("sampler/engine module count mismatch");
  }
  if (samplers.empty()) {
    return InvalidArgumentError("service needs at least one sensor");
  }
  if (options.round_period.count() <= 0) {
    return InvalidArgumentError("round period must be positive");
  }
  GroupRunner::Options runner_options;
  runner_options.group = options.group;
  runner_options.store = options.store;
  runner_options.trace_store = options.trace_store;
  runner_options.registry = options.registry;
  AVOC_ASSIGN_OR_RETURN(
      std::unique_ptr<GroupRunner> runner,
      GroupRunner::WithGenerators(std::move(samplers), std::move(engine),
                                  std::move(runner_options)));
  return std::unique_ptr<VoterService>(
      new VoterService(std::move(runner), std::move(options)));
}

VoterService::~VoterService() { Stop(); }

Status VoterService::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (running_.load()) return Status::Ok();
  // A previous run's scheduler is joined by Stop(); a stale handle here
  // would mean Stop() was never called, which the flag above rules out.
  if (scheduler_.joinable()) scheduler_.join();
  running_.store(true);
  scheduler_ = std::thread([this] { SchedulerLoop(); });
  return Status::Ok();
}

void VoterService::SchedulerLoop() {
  AVOC_LOG_INFO("voter service '%s': started (%lld ms rounds)",
                options_.group.c_str(),
                static_cast<long long>(options_.round_period.count()));
  if (running_gauge_ != nullptr) running_gauge_->Set(1.0);
  while (running_.load()) {
    const size_t round = current_round_.fetch_add(1);
    if (rounds_opened_counter_ != nullptr) rounds_opened_counter_->Increment();
    // Fan the sampling out to one short-lived worker per sensor so a slow
    // sensor cannot stall the others — its reading simply misses the
    // timeout and the round proceeds without it.
    std::vector<std::thread> workers = runner_->EmitAsync(round);
    std::this_thread::sleep_for(
        std::min(options_.round_timeout, options_.round_period));
    // Close the round at the timeout: whatever has not arrived becomes a
    // missing value, and a late worker's publish is discarded by the hub
    // against the already-closed round.
    runner_->FlushRound(round);
    for (std::thread& worker : workers) {
      worker.join();
    }
    const auto remainder = options_.round_period - options_.round_timeout;
    if (remainder.count() > 0) std::this_thread::sleep_for(remainder);
  }
  if (running_gauge_ != nullptr) running_gauge_->Set(0.0);
  AVOC_LOG_INFO("voter service '%s': stopped after %zu rounds",
                options_.group.c_str(), current_round_.load());
}

void VoterService::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  // Joining the scheduler lets it finish the round it already opened:
  // the loop flushes that round and joins its sensor workers before it
  // rechecks the flag, so the last output reaches the sink here.
  if (scheduler_.joinable()) scheduler_.join();
}

size_t VoterService::rounds_completed() const {
  return runner_->sink().output_count();
}

}  // namespace avoc::runtime
