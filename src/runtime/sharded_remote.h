// Thread-per-core shared-nothing sharding of the networked voter.
//
// One ShardedVoterServer is N independent reactor shards, each a full
// vertical slice owned end to end by one thread: its own EventLoop (or
// SimReactor under the deterministic simulation), its own
// VoterGroupManager with a disjoint set of voter groups (stable
// GroupRouter hash over the group id), its own connections, dedup
// windows, and shard-labeled metrics scope.  There are no cross-shard
// locks and no shared mutable state on the hot path; shards communicate
// only through reactor mailboxes (Reactor::Post):
//
//   accept   One listener, watched by shard 0.  Accepted connections are
//            handed off round-robin; a connection's first group-addressed
//            request then *migrates* it to the shard owning that group,
//            so the steady state of the common IoT shape (one device
//            connection feeding one group) is strictly shard-local.
//   forward  A pinned connection addressing a foreign group has that one
//            request executed on the owning shard (two mailbox hops),
//            with per-connection reply slots keeping responses in
//            request order even under pipelining.
//   fan-out  GROUPS answers from the frozen global group list, METRICS
//            from the shared lock-free registry; HEALTH scatter-gathers
//            one part per shard.
//
// Groups are registered before Serve() and frozen afterwards — that is
// what makes the routing table immutable and lock-free.  A future
// rebalancing item would speak MOVED redirects instead (see
// docs/MIDDLEWARE.md).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "runtime/group_router.h"
#include "runtime/remote.h"

namespace avoc::runtime {

struct ShardedServerOptions {
  /// Per-shard server tuning; `port` is the single listening port and
  /// `metrics_scope` is overwritten per shard ("s0".."s<n-1>").
  RemoteServerOptions base;
  /// Reactor shards (0 = one per hardware thread).
  size_t shards = 0;
};

class ShardedVoterServer {
 public:
  using Options = ShardedServerOptions;

  /// Real TCP serving: binds 127.0.0.1:port, creates one EventLoop per
  /// shard.  Register groups, then Serve().  `store`/`registry` are
  /// optional and shared by every shard (the registry is lock-free and
  /// the store is only touched at group registration).
  static Result<std::unique_ptr<ShardedVoterServer>> Start(
      Options options, storage::HistoryBackend* store = nullptr,
      obs::Registry* registry = nullptr,
      storage::TraceBackend* trace_store = nullptr);

  /// Injected seams: one reactor per shard (the deterministic simulation
  /// passes SimWorld reactors and drives them itself with
  /// `spawn_loop_threads` false).
  static Result<std::unique_ptr<ShardedVoterServer>> StartOnReactors(
      Options options, std::unique_ptr<Listener> listener,
      std::vector<std::shared_ptr<Reactor>> reactors, bool spawn_loop_threads,
      storage::HistoryBackend* store = nullptr,
      obs::Registry* registry = nullptr,
      storage::TraceBackend* trace_store = nullptr);

  ~ShardedVoterServer();

  ShardedVoterServer(const ShardedVoterServer&) = delete;
  ShardedVoterServer& operator=(const ShardedVoterServer&) = delete;

  /// Registers a group on its owning shard (GroupRouter placement).
  /// Pre-Serve only; the group set is frozen once serving.
  Status AddGroup(const std::string& name, core::VotingEngine engine);
  Status AddGroupFromSpec(const std::string& name, const vdx::Spec& spec,
                          size_t modules);

  /// Freezes the group set, links the shards, starts accepting (and the
  /// per-shard loop threads when configured).  Call once.
  Status Serve();

  /// Stops every loop, joins the shard threads, closes everything.
  /// Idempotent.
  void Stop();

  uint16_t port() const { return listener_->port(); }
  size_t shard_count() const { return shards_.size(); }

  /// The shard owning `group`.
  size_t shard_of(std::string_view group) const {
    return router_.ShardFor(group);
  }

  /// One shard's group manager (tests and embedding; the sink/voter
  /// accessors below are usually enough).
  VoterGroupManager& manager(size_t shard) { return *managers_[shard]; }
  const VoterGroupManager& manager(size_t shard) const {
    return *managers_[shard];
  }

  /// The group's output sink, wherever it lives.  SinkNode reads are
  /// internally locked, so cross-shard inspection is safe.
  Result<const SinkNode*> sink(const std::string& group) const;

  // Aggregated introspection across all shards.
  size_t requests_served() const;
  size_t dedup_replays() const;
  size_t forwarded_requests() const;
  size_t migrations() const;

 private:
  ShardedVoterServer(Options options, std::unique_ptr<Listener> listener,
                     std::vector<std::shared_ptr<Reactor>> reactors,
                     bool spawn_loop_threads, storage::HistoryBackend* store,
                     obs::Registry* registry,
                     storage::TraceBackend* trace_store);

  /// Shard-0 loop thread: accept and hand off round-robin.
  void OnAcceptable();

  Options options_;
  std::unique_ptr<Listener> listener_;
  std::vector<std::shared_ptr<Reactor>> reactors_;
  std::vector<std::unique_ptr<VoterGroupManager>> managers_;
  std::vector<std::unique_ptr<RemoteVoterServer>> shards_;
  std::vector<std::thread> threads_;
  GroupRouter router_{1};
  bool spawn_loop_threads_ = false;
  bool serving_ = false;
  std::atomic<bool> running_{true};
  size_t next_handoff_ = 0;  // shard-0 loop thread only
};

}  // namespace avoc::runtime
