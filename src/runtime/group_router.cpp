#include "runtime/group_router.h"

namespace avoc::runtime {
namespace {

/// splitmix64 finalizer (Vigna) — the avalanche stage of the frozen hash.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t GroupIdHash(std::string_view group) {
  // Byte-mixing loop feeding the splitmix64 avalanche: the seed constant
  // and per-byte multiplier are part of the frozen wire contract.
  uint64_t h = 0x5115CA7EDB15C0DEull ^ (uint64_t{group.size()} << 32);
  for (unsigned char byte : group) {
    h = (h ^ byte) * 0x100000001B3ull;  // FNV-1a style byte fold
    h = SplitMix64(h);
  }
  return SplitMix64(h);
}

size_t GroupRouter::ShardFor(std::string_view group) const {
  if (shard_count_ == 1) return 0;
  // Lemire multiply-shift over the hash's top 32 bits: uniform on
  // [0, shard_count) without modulo bias, no 128-bit arithmetic needed
  // for realistic shard counts.
  const uint64_t hash = GroupIdHash(group);
  return static_cast<size_t>(((hash >> 32) * shard_count_) >> 32);
}

size_t GroupRouter::ShardForIndex(size_t g, size_t group_count) const {
  if (shard_count_ == 1 || group_count == 0) return 0;
  const size_t base = group_count / shard_count_;
  const size_t extra = group_count % shard_count_;
  // The first `extra` shards own base+1 groups, the rest own base.
  const size_t fat_span = extra * (base + 1);
  if (g < fat_span) return g / (base + 1);
  if (base == 0) return shard_count_ - 1;  // more shards than groups
  return extra + (g - fat_span) / base;
}

ShardRange GroupRouter::RangeFor(size_t shard, size_t group_count) const {
  if (shard >= shard_count_) return ShardRange{group_count, group_count};
  const size_t base = group_count / shard_count_;
  const size_t extra = group_count % shard_count_;
  ShardRange range;
  range.begin = shard * base + (shard < extra ? shard : extra);
  range.end = range.begin + base + (shard < extra ? 1 : 0);
  return range;
}

}  // namespace avoc::runtime
