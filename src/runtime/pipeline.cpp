#include "runtime/pipeline.h"

namespace avoc::runtime {

namespace {

GroupRunner::Options ToRunnerOptions(PipelineOptions options) {
  GroupRunner::Options runner_options;
  runner_options.group = std::move(options.group);
  runner_options.store = options.store;
  runner_options.trace_store = options.trace_store;
  return runner_options;
}

}  // namespace

Result<Pipeline> Pipeline::FromGenerators(
    std::vector<SensorNode::Generator> generators, core::VotingEngine engine,
    PipelineOptions options) {
  AVOC_ASSIGN_OR_RETURN(
      std::unique_ptr<GroupRunner> runner,
      GroupRunner::WithGenerators(std::move(generators), std::move(engine),
                                  ToRunnerOptions(std::move(options))));
  return Pipeline(std::move(runner));
}

Result<Pipeline> Pipeline::FromTable(const data::RoundTable& table,
                                     core::VotingEngine engine,
                                     PipelineOptions options) {
  AVOC_ASSIGN_OR_RETURN(
      std::unique_ptr<GroupRunner> runner,
      GroupRunner::FromTable(table, std::move(engine),
                             ToRunnerOptions(std::move(options))));
  return Pipeline(std::move(runner));
}

void Pipeline::Step() { runner_->RunRound(next_round_++); }

void Pipeline::Run(size_t rounds) {
  for (size_t i = 0; i < rounds; ++i) Step();
}

}  // namespace avoc::runtime
