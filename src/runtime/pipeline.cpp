#include "runtime/pipeline.h"

namespace avoc::runtime {

Pipeline::Pipeline(std::vector<SensorNode::Generator> generators,
                   core::VotingEngine engine, PipelineOptions options)
    : channels_(std::make_unique<GroupChannels>()) {
  hub_ = std::make_unique<HubNode>(generators.size(), *channels_);
  VoterOptions voter_options;
  voter_options.group = options.group;
  voter_options.store = options.store;
  voter_ = std::make_unique<VoterNode>(std::move(engine), *channels_,
                                       std::move(voter_options));
  sink_ = std::make_unique<SinkNode>(*channels_);
  for (size_t m = 0; m < generators.size(); ++m) {
    sensors_.push_back(std::make_unique<SensorNode>(
        m, std::move(generators[m]), channels_->readings));
  }
}

Result<Pipeline> Pipeline::FromGenerators(
    std::vector<SensorNode::Generator> generators, core::VotingEngine engine,
    PipelineOptions options) {
  if (generators.size() != engine.module_count()) {
    return InvalidArgumentError("generator/engine module count mismatch");
  }
  if (generators.empty()) {
    return InvalidArgumentError("pipeline needs at least one sensor");
  }
  return Pipeline(std::move(generators), std::move(engine),
                  std::move(options));
}

Result<Pipeline> Pipeline::FromTable(const data::RoundTable& table,
                                     core::VotingEngine engine,
                                     PipelineOptions options) {
  // Copy the table into a shared replay buffer the generators index into.
  auto shared = std::make_shared<data::RoundTable>(table);
  std::vector<SensorNode::Generator> generators;
  generators.reserve(table.module_count());
  for (size_t m = 0; m < table.module_count(); ++m) {
    generators.push_back(
        [shared, m](size_t round) -> std::optional<double> {
          if (round >= shared->round_count()) return std::nullopt;
          return shared->At(round, m);
        });
  }
  return FromGenerators(std::move(generators), std::move(engine),
                        std::move(options));
}

void Pipeline::Step() {
  const size_t round = next_round_++;
  for (const auto& sensor : sensors_) {
    sensor->Emit(round);
  }
  // Timeout stand-in: whatever has not arrived by now is missing.
  hub_->Flush(round, /*publish_empty=*/true);
}

void Pipeline::Run(size_t rounds) {
  for (size_t i = 0; i < rounds; ++i) Step();
}

}  // namespace avoc::runtime
