#include "runtime/group_runner.h"

namespace avoc::runtime {

GroupRunner::GroupRunner(std::vector<SensorNode::Generator> generators,
                         core::VotingEngine engine, Options options)
    : options_(std::move(options)),
      channels_(std::make_unique<GroupChannels>()) {
  hub_ = std::make_unique<HubNode>(engine.module_count(), *channels_,
                                   options_.hub_close_at_count);
  VoterOptions voter_options;
  voter_options.group = options_.group;
  voter_options.store = options_.store;
  voter_ = std::make_unique<VoterNode>(std::move(engine), *channels_,
                                       std::move(voter_options));
  sink_ = std::make_unique<SinkNode>(*channels_);
  for (size_t m = 0; m < generators.size(); ++m) {
    sensors_.push_back(std::make_unique<SensorNode>(
        m, std::move(generators[m]), channels_->readings));
  }
}

Result<std::unique_ptr<GroupRunner>> GroupRunner::Create(
    core::VotingEngine engine, Options options) {
  if (options.group.empty()) {
    return InvalidArgumentError("group name must not be empty");
  }
  return std::unique_ptr<GroupRunner>(
      new GroupRunner({}, std::move(engine), std::move(options)));
}

Result<std::unique_ptr<GroupRunner>> GroupRunner::WithGenerators(
    std::vector<SensorNode::Generator> generators, core::VotingEngine engine,
    Options options) {
  if (generators.size() != engine.module_count()) {
    return InvalidArgumentError("generator/engine module count mismatch");
  }
  if (generators.empty()) {
    return InvalidArgumentError("pipeline needs at least one sensor");
  }
  if (options.group.empty()) {
    return InvalidArgumentError("group name must not be empty");
  }
  return std::unique_ptr<GroupRunner>(new GroupRunner(
      std::move(generators), std::move(engine), std::move(options)));
}

Result<std::unique_ptr<GroupRunner>> GroupRunner::FromTable(
    const data::RoundTable& table, core::VotingEngine engine,
    Options options) {
  // Copy the table into a shared replay buffer the generators index into.
  auto shared = std::make_shared<data::RoundTable>(table);
  std::vector<SensorNode::Generator> generators;
  generators.reserve(table.module_count());
  for (size_t m = 0; m < table.module_count(); ++m) {
    generators.push_back(
        [shared, m](size_t round) -> std::optional<double> {
          if (round >= shared->round_count()) return std::nullopt;
          return shared->At(round, m);
        });
  }
  return WithGenerators(std::move(generators), std::move(engine),
                        std::move(options));
}

void GroupRunner::RunRound(size_t round) {
  for (const auto& sensor : sensors_) {
    sensor->Emit(round);
  }
  // Timeout stand-in: whatever has not arrived by now is missing.
  hub_->Flush(round, /*publish_empty=*/true);
}

std::vector<std::thread> GroupRunner::EmitAsync(size_t round) {
  std::vector<std::thread> workers;
  workers.reserve(sensors_.size());
  for (const auto& sensor : sensors_) {
    SensorNode* raw = sensor.get();
    workers.emplace_back([raw, round] { raw->Emit(round); });
  }
  return workers;
}

Status GroupRunner::Submit(size_t module, size_t round, double value) {
  if (module >= hub_->module_count()) {
    return OutOfRangeError("module index out of range for group '" +
                           options_.group + "'");
  }
  channels_->readings.Publish(ReadingMessage{module, round, value});
  return Status::Ok();
}

void GroupRunner::FlushRound(size_t round) {
  hub_->Flush(round, /*publish_empty=*/true);
}

}  // namespace avoc::runtime
