#include "runtime/group_runner.h"

#include "util/strings.h"

namespace avoc::runtime {

GroupRunner::GroupRunner(std::vector<SensorNode::Generator> generators,
                         core::VotingEngine engine, Options options)
    : options_(std::move(options)),
      channels_(std::make_unique<GroupChannels>()) {
  HubTelemetry hub_telemetry;
  SinkTelemetry sink_telemetry;
  if (options_.registry != nullptr) {
    obs::Registry& reg = *options_.registry;
    const std::string& g = options_.group;
    auto counter = [&](std::string_view family) {
      return &reg.GetCounter(obs::LabeledName(family, "group", g));
    };
    auto gauge = [&](std::string_view family) {
      return &reg.GetGauge(obs::LabeledName(family, "group", g));
    };
    hub_telemetry.readings = counter("avoc_hub_readings_total");
    hub_telemetry.late_readings = counter("avoc_hub_late_readings_total");
    hub_telemetry.rounds_closed = counter("avoc_hub_rounds_closed_total");
    hub_telemetry.open_rounds = gauge("avoc_hub_open_rounds");
    hub_telemetry.last_closed_round = gauge("avoc_hub_last_closed_round");
    sink_telemetry.outputs = counter("avoc_sink_outputs_total");
    sink_telemetry.last_round = gauge("avoc_sink_last_round");
    sink_telemetry.lag_rounds = gauge("avoc_sink_lag_rounds");

    obs::MetricsObserverOptions observer_options;
    observer_options.scope = options_.group;
    observer_options.scope_label = "group";
    observer_options.sample_every = options_.metrics_sample_every;
    // Live rounds tick at millisecond cadence; flushing every round keeps
    // scrapes exact for negligible cost.
    observer_options.flush_every = 1;
    observer_options.exclusion_streak_alert = options_.exclusion_streak_alert;
    observer_options.tracer = options_.tracer;
    observer_ = std::make_unique<obs::MetricsObserver>(
        reg, std::move(observer_options));
    // The voter serializes rounds under its mutex, satisfying the
    // observer's one-scope threading contract.
    engine.set_observer(observer_.get());
  }
  hub_ = std::make_unique<HubNode>(engine.module_count(), *channels_,
                                   options_.hub_close_at_count, hub_telemetry);
  VoterOptions voter_options;
  voter_options.group = options_.group;
  voter_options.store = options_.store;
  voter_ = std::make_unique<VoterNode>(std::move(engine), *channels_,
                                       std::move(voter_options));
  sink_ = std::make_unique<SinkNode>(*channels_, sink_telemetry,
                                     options_.trace_store, options_.group);
  for (size_t m = 0; m < generators.size(); ++m) {
    sensors_.push_back(std::make_unique<SensorNode>(
        m, std::move(generators[m]), channels_->readings));
  }
}

Result<std::unique_ptr<GroupRunner>> GroupRunner::Create(
    core::VotingEngine engine, Options options) {
  if (options.group.empty()) {
    return InvalidArgumentError("group name must not be empty");
  }
  return std::unique_ptr<GroupRunner>(
      new GroupRunner({}, std::move(engine), std::move(options)));
}

Result<std::unique_ptr<GroupRunner>> GroupRunner::WithGenerators(
    std::vector<SensorNode::Generator> generators, core::VotingEngine engine,
    Options options) {
  if (generators.size() != engine.module_count()) {
    return InvalidArgumentError("generator/engine module count mismatch");
  }
  if (generators.empty()) {
    return InvalidArgumentError("pipeline needs at least one sensor");
  }
  if (options.group.empty()) {
    return InvalidArgumentError("group name must not be empty");
  }
  return std::unique_ptr<GroupRunner>(new GroupRunner(
      std::move(generators), std::move(engine), std::move(options)));
}

Result<std::unique_ptr<GroupRunner>> GroupRunner::FromTable(
    const data::RoundTable& table, core::VotingEngine engine,
    Options options) {
  // Copy the table into a shared replay buffer the generators index into.
  auto shared = std::make_shared<data::RoundTable>(table);
  std::vector<SensorNode::Generator> generators;
  generators.reserve(table.module_count());
  for (size_t m = 0; m < table.module_count(); ++m) {
    generators.push_back(
        [shared, m](size_t round) -> std::optional<double> {
          if (round >= shared->round_count()) return std::nullopt;
          return shared->At(round, m);
        });
  }
  return WithGenerators(std::move(generators), std::move(engine),
                        std::move(options));
}

void GroupRunner::RunRound(size_t round) {
  for (const auto& sensor : sensors_) {
    sensor->Emit(round);
  }
  // Timeout stand-in: whatever has not arrived by now is missing.
  hub_->Flush(round, /*publish_empty=*/true);
}

std::vector<std::thread> GroupRunner::EmitAsync(size_t round) {
  std::vector<std::thread> workers;
  workers.reserve(sensors_.size());
  for (const auto& sensor : sensors_) {
    SensorNode* raw = sensor.get();
    workers.emplace_back([raw, round] { raw->Emit(round); });
  }
  return workers;
}

Status GroupRunner::Submit(size_t module, size_t round, double value) {
  if (module >= hub_->module_count()) {
    return OutOfRangeError("module index out of range for group '" +
                           options_.group + "'");
  }
  channels_->readings.Publish(ReadingMessage{module, round, value});
  return Status::Ok();
}

BatchIngestStats GroupRunner::SubmitBatch(
    std::span<const ReadingMessage> readings) {
  if (options_.tracer == nullptr) return hub_->IngestBatch(readings);
  // Parent the engine span to whatever span is current on this thread
  // (the server verb span when reached over the wire).
  obs::SpanContext parent;
  if (const obs::CurrentSpan current = obs::CurrentTraceSpan();
      current.tracer == options_.tracer) {
    parent = current.context;
  }
  obs::ScopedSpan span(options_.tracer, obs::SpanKind::kEngine,
                       "engine.batch", parent);
  const BatchIngestStats stats = hub_->IngestBatch(readings);
  if (span.active()) {
    span.SetDetailF("group=%s readings=%zu rounds=%zu",
                    options_.group.c_str(), readings.size(),
                    stats.rounds_closed);
  }
  return stats;
}

void GroupRunner::FlushRound(size_t round) {
  hub_->Flush(round, /*publish_empty=*/true);
}

GroupRunner::State GroupRunner::ExportState() const {
  State state;
  state.engine = voter_->ExportEngineState();
  state.hub = hub_->ExportState();
  state.outputs = sink_->outputs();
  return state;
}

Status GroupRunner::RestoreState(const State& state) {
  AVOC_RETURN_IF_ERROR(voter_->RestoreEngineState(state.engine));
  hub_->RestoreState(state.hub);
  sink_->RestoreOutputs(state.outputs);
  return Status::Ok();
}

}  // namespace avoc::runtime
