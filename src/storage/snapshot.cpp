#include "storage/snapshot.h"

#include "storage/io.h"
#include "util/strings.h"

namespace avoc::storage {
namespace {

// "AVSN" magic + one version byte.  The CRC is appended last, over the
// magic, version, and body together.
constexpr char kMagic[4] = {'A', 'V', 'S', 'N'};
constexpr uint8_t kVersion = 1;

}  // namespace

std::string EncodeHistorySnapshot(const HistorySnapshot& snapshot) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU8(out, kVersion);
  AppendU64(out, static_cast<uint64_t>(snapshot.rounds));
  AppendU64(out, static_cast<uint64_t>(snapshot.records.size()));
  for (const double record : snapshot.records) AppendF64(out, record);
  AppendU32(out, Crc32(out));
  return out;
}

Result<HistorySnapshot> DecodeHistorySnapshot(std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic) + 1 + 4) {
    return ParseError("snapshot: truncated header");
  }
  if (bytes.substr(0, sizeof(kMagic)) !=
      std::string_view(kMagic, sizeof(kMagic))) {
    return ParseError("snapshot: bad magic");
  }
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  ByteReader crc_reader(bytes.substr(bytes.size() - 4));
  AVOC_ASSIGN_OR_RETURN(const uint32_t stored_crc, crc_reader.ReadU32());
  if (Crc32(body) != stored_crc) {
    return ParseError("snapshot: CRC mismatch (torn or corrupted file)");
  }
  ByteReader reader(body.substr(sizeof(kMagic)));
  AVOC_ASSIGN_OR_RETURN(const uint8_t version, reader.ReadU8());
  if (version != kVersion) {
    return ParseError(
        StrFormat("snapshot: unsupported version %u", unsigned{version}));
  }
  HistorySnapshot snapshot;
  AVOC_ASSIGN_OR_RETURN(const uint64_t rounds, reader.ReadU64());
  snapshot.rounds = static_cast<size_t>(rounds);
  AVOC_ASSIGN_OR_RETURN(const uint64_t count, reader.ReadU64());
  if (count > reader.remaining() / 8) {
    return ParseError("snapshot: record count exceeds payload");
  }
  snapshot.records.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    AVOC_ASSIGN_OR_RETURN(const double record, reader.ReadF64());
    snapshot.records.push_back(record);
  }
  AVOC_RETURN_IF_ERROR(reader.ExpectEnd());
  return snapshot;
}

Status ExportSnapshotToFile(const HistoryBackend& store,
                            const std::string& group,
                            const std::string& path) {
  AVOC_ASSIGN_OR_RETURN(const HistorySnapshot snapshot, store.Get(group));
  return WriteFileDurable(path, EncodeHistorySnapshot(snapshot));
}

Status ImportSnapshotFromFile(HistoryBackend& store, const std::string& group,
                              const std::string& path) {
  AVOC_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  AVOC_ASSIGN_OR_RETURN(const HistorySnapshot snapshot,
                        DecodeHistorySnapshot(bytes));
  return store.Put(group, snapshot);
}

}  // namespace avoc::storage
