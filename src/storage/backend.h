// Storage seams for history and trace persistence.
//
// The paper's premise is that per-module reliability records outlive the
// voter process: a voter service restarts (or migrates between edge
// nodes) and resumes with its learned history.  Every runtime component
// that persists or restores history talks to these two small interfaces,
// so the execution layer never knows whether it is writing the legacy
// JSON file (runtime::HistoryStore) or the embedded WAL + compressed
// chunk engine (storage::StorageEngine, see storage/engine.h and
// docs/STORAGE.md).
//
//   HistoryBackend  per-group history snapshots (the voter's reliability
//                   ledger), keyed by group name.
//   TraceBackend    append-only per-group vote traces (round, engaged,
//                   fused value) with round-range queries — what the
//                   QUERY_RANGE wire verb serves.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace avoc::storage {

/// One persisted history snapshot.
struct HistorySnapshot {
  std::vector<double> records;  ///< per-module reliability records
  size_t rounds = 0;            ///< rounds absorbed when snapshotted
};

/// One persisted vote-trace point.  `value` carries the exact IEEE-754
/// bits of the fused output (0.0 when the round produced none), so a
/// range query is bit-identical to the in-memory BatchTrace row.
struct TracePoint {
  uint64_t round = 0;
  double value = 0.0;
  bool engaged = false;  ///< round produced a fused output
};

/// Keyed history persistence.  Implementations are thread-safe: the
/// sharded runtime calls one backend from every shard loop.
class HistoryBackend {
 public:
  virtual ~HistoryBackend() = default;

  /// Writes (replaces) the snapshot of `group`.
  virtual Status Put(const std::string& group,
                     const HistorySnapshot& snapshot) = 0;

  /// Reads the snapshot of `group`; NotFound when absent.
  virtual Result<HistorySnapshot> Get(const std::string& group) const = 0;

  /// Removes `group`.  Returns whether it existed; a failed persist is an
  /// error (a silently resurrected group is exactly the bug this seam
  /// retired from the legacy store).
  virtual Result<bool> Erase(const std::string& group) = 0;

  /// All group names, sorted.
  virtual std::vector<std::string> Groups() const = 0;

  virtual size_t size() const = 0;
};

/// Append-only vote-trace persistence with round-range reads.
class TraceBackend {
 public:
  virtual ~TraceBackend() = default;

  /// Appends `points` to the group's trace, in order.
  virtual Status AppendTrace(const std::string& group,
                             std::span<const TracePoint> points) = 0;

  /// Every stored point of `group` with round in [lo_round, hi_round]
  /// (inclusive), in append order.  An unknown group yields an empty
  /// vector — the trace of a group that never voted is empty, not an
  /// error.
  virtual Result<std::vector<TracePoint>> QueryTraceRange(
      const std::string& group, uint64_t lo_round,
      uint64_t hi_round) const = 0;
};

}  // namespace avoc::storage
