#include "storage/bits.h"

namespace avoc::storage {

void BitWriter::WriteBit(uint32_t bit) {
  current_ = static_cast<uint8_t>((current_ << 1) | (bit & 1u));
  ++used_;
  ++bit_count_;
  if (used_ == 8) {
    bytes_.push_back(static_cast<char>(current_));
    current_ = 0;
    used_ = 0;
  }
}

void BitWriter::WriteBits(uint64_t value, unsigned count) {
  for (unsigned i = count; i-- > 0;) {
    WriteBit(static_cast<uint32_t>((value >> i) & 1u));
  }
}

std::string BitWriter::Finish() {
  if (used_ > 0) {
    bytes_.push_back(static_cast<char>(current_ << (8 - used_)));
    current_ = 0;
    used_ = 0;
  }
  return std::move(bytes_);
}

Result<uint32_t> BitReader::ReadBit() {
  if (pos_ >= bytes_.size() * 8) {
    return ParseError("bit stream exhausted");
  }
  const uint8_t byte = static_cast<uint8_t>(bytes_[pos_ / 8]);
  const uint32_t bit = (byte >> (7 - (pos_ % 8))) & 1u;
  ++pos_;
  return bit;
}

Result<uint64_t> BitReader::ReadBits(unsigned count) {
  if (count > 64) return ParseError("bit read wider than 64");
  uint64_t value = 0;
  for (unsigned i = 0; i < count; ++i) {
    AVOC_ASSIGN_OR_RETURN(const uint32_t bit, ReadBit());
    value = (value << 1) | bit;
  }
  return value;
}

}  // namespace avoc::storage
