#include "storage/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace avoc::storage {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::string ErrnoMessage(std::string_view what, const std::string& path) {
  return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

Status SyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) return IoError(ErrnoMessage("fsync", path));
  return Status::Ok();
}

Status WriteAllFd(int fd, std::string_view bytes, const std::string& path) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError(ErrnoMessage("write", path));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

uint32_t Crc32(std::string_view bytes, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = table[(c ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void AppendU8(std::string& out, uint8_t value) {
  out.push_back(static_cast<char>(value));
}

void AppendU32(std::string& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void AppendU64(std::string& out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void AppendF64(std::string& out, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(out, bits);
}

void AppendBytes(std::string& out, std::string_view bytes) {
  AppendU32(out, static_cast<uint32_t>(bytes.size()));
  out.append(bytes);
}

Result<uint8_t> ByteReader::ReadU8() {
  if (remaining() < 1) return ParseError("record truncated reading u8");
  const uint8_t value = static_cast<uint8_t>(data_[pos_]);
  pos_ += 1;
  return value;
}

Result<uint32_t> ByteReader::ReadU32() {
  if (remaining() < 4) return ParseError("record truncated reading u32");
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 4;
  return value;
}

Result<uint64_t> ByteReader::ReadU64() {
  if (remaining() < 8) return ParseError("record truncated reading u64");
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 8;
  return value;
}

Result<double> ByteReader::ReadF64() {
  AVOC_ASSIGN_OR_RETURN(const uint64_t bits, ReadU64());
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<std::string_view> ByteReader::ReadBytes() {
  AVOC_ASSIGN_OR_RETURN(const uint32_t len, ReadU32());
  if (remaining() < len) return ParseError("record truncated reading bytes");
  std::string_view view = data_.substr(pos_, len);
  pos_ += len;
  return view;
}

Status ByteReader::ExpectEnd() const {
  if (!empty()) return ParseError("trailing bytes in record");
  return Status::Ok();
}

Status SyncParentDirectory(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  const int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return IoError(ErrnoMessage("open dir", parent.string()));
  const Status synced = SyncFd(fd, parent.string());
  ::close(fd);
  return synced;
}

Status WriteFileDurable(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError(ErrnoMessage("open", tmp));
  Status status = WriteAllFd(fd, contents, tmp);
  if (status.ok()) status = SyncFd(fd, tmp);
  ::close(fd);
  if (!status.ok()) return status;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return IoError("rename to '" + path + "' failed: " + ec.message());
  return SyncParentDirectory(path);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return IoError("read failure on '" + path + "'");
  return buffer.str();
}

AppendFile::~AppendFile() { CloseNoSync(); }

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      size_(other.size_),
      synced_size_(other.synced_size_) {}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    CloseNoSync();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    size_ = other.size_;
    synced_size_ = other.synced_size_;
  }
  return *this;
}

Result<AppendFile> AppendFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return IoError(ErrnoMessage("open", path));
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return IoError(ErrnoMessage("lseek", path));
  }
  AppendFile file;
  file.fd_ = fd;
  file.path_ = path;
  file.size_ = static_cast<uint64_t>(end);
  file.synced_size_ = file.size_;
  return file;
}

Status AppendFile::Append(std::string_view bytes) {
  if (fd_ < 0) return FailedPreconditionError("append file is closed");
  AVOC_RETURN_IF_ERROR(WriteAllFd(fd_, bytes, path_));
  size_ += bytes.size();
  return Status::Ok();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return FailedPreconditionError("append file is closed");
  AVOC_RETURN_IF_ERROR(SyncFd(fd_, path_));
  synced_size_ = size_;
  return Status::Ok();
}

void AppendFile::CloseNoSync() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace avoc::storage
