// Bit-granular writer/reader for the Gorilla-style chunk codec
// (storage/chunk.h).  Bits are packed MSB-first within each byte, which
// keeps the encoded stream readable in hex dumps and matches the order
// the Facebook Gorilla paper describes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace avoc::storage {

class BitWriter {
 public:
  void WriteBit(uint32_t bit);
  /// Writes the low `count` bits of `value`, most significant first.
  /// `count` must be <= 64.
  void WriteBits(uint64_t value, unsigned count);

  /// Pads the final partial byte with zero bits and returns the buffer.
  /// No further writes afterwards.
  std::string Finish();

  size_t bit_count() const { return bit_count_; }

 private:
  std::string bytes_;
  uint8_t current_ = 0;
  unsigned used_ = 0;  ///< bits filled in current_
  size_t bit_count_ = 0;
};

/// Every read fails with ParseError past the end — a truncated or
/// corrupted chunk decodes to an error, never out-of-bounds access.
class BitReader {
 public:
  explicit BitReader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint32_t> ReadBit();
  /// Reads `count` (<= 64) bits, most significant first.
  Result<uint64_t> ReadBits(unsigned count);

  size_t bits_remaining() const { return bytes_.size() * 8 - pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;  ///< bit position
};

}  // namespace avoc::storage
