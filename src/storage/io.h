// Low-level durable-file plumbing shared by the storage engine and the
// legacy JSON HistoryStore: CRC32, fixed-width little-endian byte
// encoding, fd-level fsync helpers, durable atomic file replacement, and
// an append-only file handle that tracks its synced prefix (the unit the
// WAL's "no loss beyond the last synced entry" contract is written in).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace avoc::storage {

/// CRC-32 (IEEE 802.3 polynomial, reflected).  `seed` chains partial
/// computations: Crc32(b, Crc32(a)) == Crc32(a + b).
uint32_t Crc32(std::string_view bytes, uint32_t seed = 0);

// --- fixed-width little-endian encoding --------------------------------------
//
// On-disk records favour fixed-width fields over varints: simpler
// decoders are easier to keep crash/corruption-safe, and the WAL is
// about durability, not wire compactness (chunks carry the compressed
// representation).

void AppendU8(std::string& out, uint8_t value);
void AppendU32(std::string& out, uint32_t value);
void AppendU64(std::string& out, uint64_t value);
void AppendF64(std::string& out, double value);
/// u32 length prefix + raw bytes.
void AppendBytes(std::string& out, std::string_view bytes);

/// Bounds-checked cursor over one on-disk record payload.  Every read
/// fails with ParseError instead of walking off the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<double> ReadF64();
  /// A u32-length-prefixed byte string (view into the payload).
  Result<std::string_view> ReadBytes();

  size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }

  /// ParseError unless every byte was consumed.
  Status ExpectEnd() const;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// --- fsync helpers -----------------------------------------------------------

/// fsyncs the directory containing `path`, making a rename/create of
/// that name durable (a rename without it can vanish on power loss).
Status SyncParentDirectory(const std::string& path);

/// Durable atomic replacement: writes `path`.tmp, fsyncs the file
/// descriptor, renames over `path`, fsyncs the directory.  Readers see
/// the old or the new contents, never a torn file — and after it
/// returns OK the new contents survive a crash.
Status WriteFileDurable(const std::string& path, std::string_view contents);

/// Whole file as a string; NotFound when the file does not exist.
Result<std::string> ReadFileToString(const std::string& path);

// --- append-only file --------------------------------------------------------

/// An append-only file descriptor tracking written vs synced bytes.
/// Movable, not copyable.  The destructor closes WITHOUT syncing —
/// owners decide durability explicitly (StorageEngine syncs on graceful
/// shutdown; SimulateCrash drops the handle to model power loss).
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Opens (creating if absent) for appending; `size()` starts at the
  /// current file size and `synced_size()` assumes the existing prefix
  /// is durable (recovery truncates to the valid prefix before opening).
  static Result<AppendFile> Open(const std::string& path);

  Status Append(std::string_view bytes);
  /// fsyncs; afterwards synced_size() == size().
  Status Sync();
  /// Closes the descriptor without syncing (crash simulation / error
  /// paths).  Idempotent.
  void CloseNoSync();

  bool open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  uint64_t size() const { return size_; }
  uint64_t synced_size() const { return synced_size_; }

 private:
  int fd_ = -1;
  std::string path_;
  uint64_t size_ = 0;
  uint64_t synced_size_ = 0;
};

}  // namespace avoc::storage
