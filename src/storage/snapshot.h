// Portable history-snapshot files: the HistoryBackend seam serialized to
// one self-checking byte string, used when a voter group's learned
// reliability records leave the process — migration handoff between
// nodes (runtime/cluster.h) and operator export/import.  See
// docs/MIGRATION.md.
//
// The codec is bit-exact for every double (NaN, infinities, -0.0 round
// trip verbatim) because a migrated voter must keep voting
// bit-identically with the source.  Files carry a magic, a version, and
// a trailing CRC32 over everything before it; a torn or corrupted file
// decodes to a typed ParseError, never garbage.
#pragma once

#include <string>
#include <string_view>

#include "storage/backend.h"
#include "util/status.h"

namespace avoc::storage {

/// One group's HistorySnapshot as a self-checking byte string.
std::string EncodeHistorySnapshot(const HistorySnapshot& snapshot);

/// Decodes EncodeHistorySnapshot output.  ParseError on bad magic,
/// unknown version, truncation, trailing bytes, or CRC mismatch.
Result<HistorySnapshot> DecodeHistorySnapshot(std::string_view bytes);

/// Reads `group` from `store` and writes its snapshot durably (atomic
/// replace) to `path`.  NotFound when the store has no such group.
Status ExportSnapshotToFile(const HistoryBackend& store,
                            const std::string& group,
                            const std::string& path);

/// Decodes `path` and installs it under `group`.  All-or-nothing: a
/// torn or corrupted file leaves the store untouched.
Status ImportSnapshotFromFile(HistoryBackend& store, const std::string& group,
                              const std::string& path);

}  // namespace avoc::storage
