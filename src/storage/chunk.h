// Gorilla-style chunk codec for vote traces.
//
// A sealed chunk compresses a run of TracePoints (round, engaged, fused
// value) with the two tricks of the Facebook Gorilla paper, adapted to
// voting rounds:
//
//   rounds  delta-of-delta.  Round numbers normally advance by a
//           constant stride (usually 1), so the second difference is 0
//           and costs one bit.  Out-of-order closes produce negative
//           deltas; zig-zag encoding keeps those cheap too:
//             '0'                    dod == 0
//             '10'  +  7 bits        zig-zag dod  <  2^7
//             '110' + 12 bits        zig-zag dod  <  2^12
//             '1110'+ 20 bits        zig-zag dod  <  2^20
//             '1111'+ 64 bits        anything else (raw)
//
//   values  XOR with the previous value.  Fused outputs drift slowly, so
//           the XOR concentrates in a few significand bits:
//             '0'                    identical value
//             '10' + meaningful      previous leading/length window fits
//             '11' + 6b lead + 6b (len-1) + meaningful bits
//
//   engaged one bit per point (value is encoded as 0.0 for non-engaged
//           rounds, which the XOR path compresses to almost nothing).
//
// The codec is bit-exact: NaN payloads, infinities and signed zeros
// round-trip unchanged, which is what makes QUERY_RANGE responses
// hex-float-identical to the in-memory BatchTrace.  The decoder is
// defensive — truncated or bit-flipped input yields ParseError, never
// out-of-bounds access (see storage_corruption_soak_test).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/backend.h"
#include "util/status.h"

namespace avoc::storage {

/// Compresses `points` (must be non-empty) into a chunk body.
std::string EncodeChunk(std::span<const TracePoint> points);

/// Decompresses a chunk body holding exactly `count` points (the count
/// lives in the chunk-file entry header, covered by its CRC).
Status DecodeChunk(std::string_view bytes, uint64_t count,
                   std::vector<TracePoint>* out);

/// A sealed chunk as held in memory: metadata + compressed body.
/// `base_index` is the index of the first point within the group's
/// append history — recovery uses it to dedupe the WAL tail against
/// already-sealed points (docs/STORAGE.md).
struct SealedChunk {
  uint64_t base_index = 0;
  uint64_t count = 0;
  uint64_t first_round = 0;  ///< min round in the chunk
  uint64_t last_round = 0;   ///< max round in the chunk
  std::string body;          ///< EncodeChunk output
};

}  // namespace avoc::storage
