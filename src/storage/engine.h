// The embedded storage engine: WAL + snapshot segments for history,
// sealed Gorilla chunks for vote traces.
//
// One StorageEngine owns one directory:
//
//   wal-<seq>    CRC-framed mutation log (storage/wal.h): HISTORY_PUT,
//                HISTORY_ERASE, TRACE_APPEND.  fsynced per policy.
//   snap-<seq>   compacted snapshot: the full history map plus every
//                group's unsealed trace tail.  Written durably
//                (tmp + fsync + rename + dir fsync); compaction bumps
//                <seq>, rotates the WAL and deletes the old generation.
//   chunks       append-only sealed trace chunks (storage/chunk.h),
//                fsynced at each seal.  Never rewritten; recovery
//                truncates a torn tail.
//
// Recovery order: chunks (truncate to last valid entry) -> newest valid
// snapshot -> replay the matching WAL (truncate to last valid record).
// Per-group monotone point indices (`base_index`) make replay idempotent
// against sealed chunks regardless of where a crash interleaved —
// docs/STORAGE.md walks every window.
//
// Thread-safe behind one mutex; the sharded runtime calls one engine
// from every shard loop.  Registers avoc_storage_* metrics when opened
// with a registry.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/backend.h"
#include "storage/chunk.h"
#include "storage/wal.h"
#include "util/status.h"

namespace avoc::storage {

struct StorageEngineOptions {
  /// Directory holding the store (created if absent).
  std::string dir;
  /// WAL fsync policy; 0 = fsync every commit (see WalWriterOptions).
  size_t wal_sync_every_bytes = 0;
  /// Seal a group's trace tail into a compressed chunk at this many
  /// points.
  size_t chunk_max_points = 512;
  /// Auto-compact (snapshot + WAL rotation) once the live WAL exceeds
  /// this many bytes; 0 disables auto-compaction.
  size_t compact_wal_bytes = 8u << 20;
  /// Optional metrics registry (must outlive the engine).
  obs::Registry* registry = nullptr;
  /// Optional flight-recorder tracer (must outlive the engine): WAL
  /// appends become storage spans parented to the calling request's
  /// span; fsync, chunk-seal, and compaction drop point events.
  obs::Tracer* tracer = nullptr;
};

/// Counters for introspection, avoc_storectl and BENCH_storage.
struct StorageStats {
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;         ///< live WAL file size
  uint64_t wal_synced_bytes = 0;  ///< durable prefix of the live WAL
  uint64_t fsyncs = 0;
  uint64_t compactions = 0;
  uint64_t snapshot_seq = 0;
  uint64_t sealed_chunks = 0;
  uint64_t chunk_raw_bytes = 0;         ///< 17 bytes/point before encoding
  uint64_t chunk_compressed_bytes = 0;  ///< sealed chunk bodies
  uint64_t history_groups = 0;
  uint64_t trace_points = 0;  ///< sealed + tail points across groups
  uint64_t recovery_ms = 0;   ///< wall time of the last Open
  bool recovered_truncated_tail = false;

  /// raw/compressed over sealed chunks (1.0 when nothing sealed yet).
  double compression_ratio() const {
    return chunk_compressed_bytes == 0
               ? 1.0
               : static_cast<double>(chunk_raw_bytes) /
                     static_cast<double>(chunk_compressed_bytes);
  }
};

class StorageEngine final : public HistoryBackend, public TraceBackend {
 public:
  /// Opens (recovering) or creates the store at options.dir.
  static Result<std::unique_ptr<StorageEngine>> Open(
      StorageEngineOptions options);

  /// Graceful shutdown: syncs the WAL (best effort).
  ~StorageEngine() override;

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  // --- HistoryBackend --------------------------------------------------------
  Status Put(const std::string& group, const HistorySnapshot& snapshot) override;
  Result<HistorySnapshot> Get(const std::string& group) const override;
  Result<bool> Erase(const std::string& group) override;
  std::vector<std::string> Groups() const override;
  size_t size() const override;

  // --- TraceBackend ----------------------------------------------------------
  Status AppendTrace(const std::string& group,
                     std::span<const TracePoint> points) override;
  Result<std::vector<TracePoint>> QueryTraceRange(
      const std::string& group, uint64_t lo_round,
      uint64_t hi_round) const override;

  // --- maintenance -----------------------------------------------------------

  /// Commit barrier: fsyncs the WAL now.
  Status Sync();

  /// Seals full trace tails, writes a fresh snapshot, rotates the WAL
  /// and deletes the previous generation.
  Status Compact();

  StorageStats stats() const;
  const std::string& dir() const { return options_.dir; }

  // --- crash simulation (DST) ------------------------------------------------

  /// What a simulated power loss leaves on disk.
  struct CrashState {
    std::string wal_path;
    uint64_t wal_bytes = 0;         ///< bytes written (page cache)
    uint64_t wal_synced_bytes = 0;  ///< bytes guaranteed durable
  };

  /// Models power loss: closes every descriptor WITHOUT syncing and
  /// marks the engine dead (every later call fails).  The caller decides
  /// how much of the unsynced WAL tail "reached the platter" by
  /// truncating wal_path anywhere in [wal_synced_bytes, wal_bytes]
  /// before reopening the directory.
  CrashState SimulateCrash();

 private:
  /// One group's trace: sealed chunks plus the open tail.
  struct GroupTrace {
    std::vector<SealedChunk> sealed;
    uint64_t tail_base = 0;  ///< append index of tail.front()
    std::vector<TracePoint> tail;

    uint64_t next_index() const { return tail_base + tail.size(); }
  };

  explicit StorageEngine(StorageEngineOptions options);

  std::string WalPath(uint64_t seq) const;
  std::string SnapshotPath(uint64_t seq) const;
  std::string ChunksPath() const;

  Status RecoverLocked();
  Status LoadChunksLocked();
  /// Loads the newest valid snapshot; sets seq_ (0 = none).
  Status LoadSnapshotLocked();
  Status ReplayWalLocked();
  /// Drops tail points already covered by sealed chunks (crash between
  /// a seal and the next snapshot replays them from the WAL).
  void TrimSealedTailsLocked();
  Status RemoveStaleFilesLocked();

  Status AppendWalLocked(WalRecordType type, std::string_view payload);
  /// Seals chunk_max_points off `trace`'s tail into the chunks file.
  Status SealLocked(const std::string& group, GroupTrace& trace);
  Status CompactLocked();
  std::string EncodeSnapshotLocked() const;

  void UpdateGaugesLocked();

  StorageEngineOptions options_;
  mutable std::mutex mutex_;
  bool dead_ = false;  ///< SimulateCrash called
  uint64_t seq_ = 0;   ///< current snapshot/WAL generation
  WalWriter wal_;
  AppendFile chunks_;
  std::map<std::string, HistorySnapshot> history_;
  std::map<std::string, GroupTrace> traces_;

  // Lifetime counters (monotone across compactions, not across Open).
  uint64_t compactions_ = 0;
  uint64_t sealed_chunks_ = 0;
  uint64_t chunk_raw_bytes_ = 0;
  uint64_t chunk_compressed_bytes_ = 0;
  uint64_t trace_points_ = 0;  ///< sealed + tail points across groups
  uint64_t wal_records_total_ = 0;
  uint64_t fsyncs_total_ = 0;
  uint64_t wal_fsyncs_seen_ = 0;  ///< wal_.fsyncs() already folded in
  uint64_t recovery_ms_ = 0;
  bool recovered_truncated_tail_ = false;

  // Optional metrics (null without a registry).
  obs::Counter* wal_bytes_metric_ = nullptr;
  obs::Counter* wal_records_metric_ = nullptr;
  obs::Counter* fsyncs_metric_ = nullptr;
  obs::Counter* compactions_metric_ = nullptr;
  obs::Counter* chunks_sealed_metric_ = nullptr;
  obs::Counter* chunk_raw_metric_ = nullptr;
  obs::Counter* chunk_compressed_metric_ = nullptr;
  obs::Gauge* groups_gauge_ = nullptr;
  obs::Gauge* trace_points_gauge_ = nullptr;
  obs::Gauge* recovery_ms_gauge_ = nullptr;
};

}  // namespace avoc::storage
