#include "storage/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string_view>
#include <utility>

#include "util/strings.h"

namespace avoc::storage {

namespace {

constexpr std::string_view kSnapshotMagic = "AVSN";
constexpr std::string_view kChunkMagic = "AVCK";
constexpr uint32_t kSnapshotVersion = 1;

/// Uncompressed footprint of one TracePoint on disk (u64 round + u64
/// value bits + u8 engaged) — the numerator of the compression ratio.
constexpr uint64_t kRawPointBytes = 17;

/// Upper bound on a sealed chunk body; larger lengths in the chunks
/// file are corruption (mirrors the WAL's record bound).
constexpr uint64_t kMaxChunkBytes = 64ull << 20;

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string EncodeHistoryPutPayload(const std::string& group,
                                    const HistorySnapshot& snapshot) {
  std::string payload;
  AppendBytes(payload, group);
  AppendU64(payload, snapshot.rounds);
  AppendU64(payload, snapshot.records.size());
  for (const double record : snapshot.records) AppendF64(payload, record);
  return payload;
}

std::string EncodeHistoryErasePayload(const std::string& group) {
  std::string payload;
  AppendBytes(payload, group);
  return payload;
}

std::string EncodeTraceAppendPayload(const std::string& group,
                                     uint64_t base_index,
                                     std::span<const TracePoint> points) {
  std::string payload;
  AppendBytes(payload, group);
  AppendU64(payload, base_index);
  AppendU64(payload, points.size());
  for (const TracePoint& point : points) {
    AppendU64(payload, point.round);
    AppendU64(payload, DoubleBits(point.value));
    AppendU8(payload, point.engaged ? 1 : 0);
  }
  return payload;
}

void AppendTracePointsSnapshot(std::string& out,
                               std::span<const TracePoint> points) {
  AppendU64(out, points.size());
  for (const TracePoint& point : points) {
    AppendU64(out, point.round);
    AppendU64(out, DoubleBits(point.value));
    AppendU8(out, point.engaged ? 1 : 0);
  }
}

Result<std::vector<TracePoint>> ReadTracePoints(ByteReader& reader) {
  AVOC_ASSIGN_OR_RETURN(const uint64_t n, reader.ReadU64());
  std::vector<TracePoint> points;
  points.reserve(static_cast<size_t>(std::min<uint64_t>(n, 1u << 20)));
  for (uint64_t i = 0; i < n; ++i) {
    TracePoint point;
    AVOC_ASSIGN_OR_RETURN(point.round, reader.ReadU64());
    AVOC_ASSIGN_OR_RETURN(const uint64_t bits, reader.ReadU64());
    point.value = BitsToDouble(bits);
    AVOC_ASSIGN_OR_RETURN(const uint8_t engaged, reader.ReadU8());
    point.engaged = engaged != 0;
    points.push_back(point);
  }
  return points;
}

/// Sequence number of a "wal-NNNNNN" / "snap-NNNNNN" file name, or 0.
uint64_t ParseSeq(std::string_view name, std::string_view prefix) {
  if (!name.starts_with(prefix)) return 0;
  const std::string digits(name.substr(prefix.size()));
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return 0;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

}  // namespace

StorageEngine::StorageEngine(StorageEngineOptions options)
    : options_(std::move(options)) {}

StorageEngine::~StorageEngine() {
  std::lock_guard lock(mutex_);
  if (!dead_ && wal_.open()) (void)wal_.Sync();
}

std::string StorageEngine::WalPath(uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06llu",
                static_cast<unsigned long long>(seq));
  return options_.dir + "/" + name;
}

std::string StorageEngine::SnapshotPath(uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "snap-%06llu",
                static_cast<unsigned long long>(seq));
  return options_.dir + "/" + name;
}

std::string StorageEngine::ChunksPath() const { return options_.dir + "/chunks"; }

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    StorageEngineOptions options) {
  if (options.dir.empty()) {
    return InvalidArgumentError("storage directory must be set");
  }
  if (options.chunk_max_points == 0) options.chunk_max_points = 512;
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return IoError("create storage dir '" + options.dir +
                   "': " + ec.message());
  }

  const auto start = std::chrono::steady_clock::now();
  std::unique_ptr<StorageEngine> engine(
      new StorageEngine(std::move(options)));
  {
    std::lock_guard lock(engine->mutex_);
    AVOC_RETURN_IF_ERROR(engine->RecoverLocked());
    engine->recovery_ms_ = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    if (obs::Registry* registry = engine->options_.registry) {
      engine->wal_bytes_metric_ =
          &registry->GetCounter("avoc_storage_wal_bytes_total");
      engine->wal_records_metric_ =
          &registry->GetCounter("avoc_storage_wal_records_total");
      engine->fsyncs_metric_ =
          &registry->GetCounter("avoc_storage_fsyncs_total");
      engine->compactions_metric_ =
          &registry->GetCounter("avoc_storage_compactions_total");
      engine->chunks_sealed_metric_ =
          &registry->GetCounter("avoc_storage_chunks_sealed_total");
      engine->chunk_raw_metric_ =
          &registry->GetCounter("avoc_storage_chunk_raw_bytes_total");
      engine->chunk_compressed_metric_ =
          &registry->GetCounter("avoc_storage_chunk_bytes_total");
      engine->groups_gauge_ = &registry->GetGauge("avoc_storage_groups");
      engine->trace_points_gauge_ =
          &registry->GetGauge("avoc_storage_trace_points");
      engine->recovery_ms_gauge_ =
          &registry->GetGauge("avoc_storage_recovery_ms");
      engine->recovery_ms_gauge_->Set(
          static_cast<double>(engine->recovery_ms_));
    }
    engine->UpdateGaugesLocked();
  }
  return engine;
}

Status StorageEngine::RecoverLocked() {
  AVOC_RETURN_IF_ERROR(LoadChunksLocked());
  AVOC_RETURN_IF_ERROR(LoadSnapshotLocked());
  TrimSealedTailsLocked();
  AVOC_RETURN_IF_ERROR(ReplayWalLocked());
  AVOC_RETURN_IF_ERROR(RemoveStaleFilesLocked());
  AVOC_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(WalPath(seq_),
                            WalWriterOptions{options_.wal_sync_every_bytes}));
  AVOC_ASSIGN_OR_RETURN(chunks_, AppendFile::Open(ChunksPath()));

  trace_points_ = 0;
  for (const auto& [group, trace] : traces_) {
    for (const SealedChunk& chunk : trace.sealed) trace_points_ += chunk.count;
    trace_points_ += trace.tail.size();
  }
  return Status::Ok();
}

Status StorageEngine::LoadChunksLocked() {
  auto contents = ReadFileToString(ChunksPath());
  if (!contents.ok()) {
    if (contents.status().code() == ErrorCode::kNotFound) return Status::Ok();
    return contents.status();
  }
  const std::string& data = *contents;
  size_t pos = 0;
  while (pos + kChunkMagic.size() <= data.size()) {
    if (std::string_view(data).substr(pos, kChunkMagic.size()) !=
        kChunkMagic) {
      break;
    }
    const std::string_view rest =
        std::string_view(data).substr(pos + kChunkMagic.size());
    ByteReader reader(rest);
    SealedChunk chunk;
    std::string group;
    uint32_t body_len = 0;
    uint32_t crc = 0;
    {
      auto name = reader.ReadBytes();
      if (!name.ok()) break;
      group.assign(*name);
    }
    bool header_ok = true;
    for (uint64_t* field :
         {&chunk.base_index, &chunk.count, &chunk.first_round,
          &chunk.last_round}) {
      auto value = reader.ReadU64();
      if (!value.ok()) {
        header_ok = false;
        break;
      }
      *field = *value;
    }
    if (!header_ok) break;
    {
      auto len = reader.ReadU32();
      auto sum = reader.ReadU32();
      if (!len.ok() || !sum.ok()) break;
      body_len = *len;
      crc = *sum;
    }
    if (chunk.count == 0 || body_len > kMaxChunkBytes ||
        reader.remaining() < body_len) {
      break;
    }
    const size_t body_off =
        pos + kChunkMagic.size() + (rest.size() - reader.remaining());
    const std::string_view body =
        std::string_view(data).substr(body_off, body_len);
    if (Crc32(body) != crc) break;
    chunk.body.assign(body);

    GroupTrace& trace = traces_[group];
    trace.sealed.push_back(std::move(chunk));
    ++sealed_chunks_;
    chunk_raw_bytes_ += trace.sealed.back().count * kRawPointBytes;
    chunk_compressed_bytes_ += body_len;
    pos = body_off + body_len;
  }
  if (pos != data.size()) {
    recovered_truncated_tail_ = true;
    std::error_code ec;
    std::filesystem::resize_file(ChunksPath(), pos, ec);
    if (ec) {
      return IoError("truncate torn chunks file: " + ec.message());
    }
  }
  // Sealed coverage defines where each tail starts until a snapshot or
  // WAL replay says otherwise.
  for (auto& [group, trace] : traces_) {
    if (!trace.sealed.empty()) {
      trace.tail_base =
          trace.sealed.back().base_index + trace.sealed.back().count;
    }
  }
  return Status::Ok();
}

Status StorageEngine::LoadSnapshotLocked() {
  std::vector<uint64_t> snapshot_seqs;
  uint64_t max_wal_seq = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (const uint64_t seq = ParseSeq(name, "snap-"); seq != 0) {
      snapshot_seqs.push_back(seq);
    }
    if (const uint64_t seq = ParseSeq(name, "wal-"); seq != 0) {
      max_wal_seq = std::max(max_wal_seq, seq);
    }
  }
  if (ec) return IoError("scan storage dir: " + ec.message());
  std::sort(snapshot_seqs.rbegin(), snapshot_seqs.rend());

  for (const uint64_t seq : snapshot_seqs) {
    auto contents = ReadFileToString(SnapshotPath(seq));
    if (!contents.ok()) continue;
    const std::string& data = *contents;
    if (data.size() < kSnapshotMagic.size() + 8 ||
        std::string_view(data).substr(0, kSnapshotMagic.size()) !=
            kSnapshotMagic) {
      recovered_truncated_tail_ = true;
      continue;
    }
    ByteReader header(
        std::string_view(data).substr(kSnapshotMagic.size(), 8));
    const uint32_t version = *header.ReadU32();
    const uint32_t crc = *header.ReadU32();
    const std::string_view body =
        std::string_view(data).substr(kSnapshotMagic.size() + 8);
    if (version != kSnapshotVersion || Crc32(body) != crc) {
      recovered_truncated_tail_ = true;
      continue;
    }

    // Body parse; a CRC-valid body that fails to parse is treated like a
    // corrupt snapshot (fall back to the next-older one).
    std::map<std::string, HistorySnapshot> history;
    std::map<std::string, std::pair<uint64_t, std::vector<TracePoint>>> tails;
    ByteReader reader(body);
    const Status parsed = [&]() -> Status {
      AVOC_ASSIGN_OR_RETURN(const uint64_t history_count, reader.ReadU64());
      for (uint64_t i = 0; i < history_count; ++i) {
        AVOC_ASSIGN_OR_RETURN(const std::string_view name,
                              reader.ReadBytes());
        HistorySnapshot snapshot;
        AVOC_ASSIGN_OR_RETURN(const uint64_t rounds, reader.ReadU64());
        snapshot.rounds = static_cast<size_t>(rounds);
        AVOC_ASSIGN_OR_RETURN(const uint64_t n, reader.ReadU64());
        snapshot.records.reserve(
            static_cast<size_t>(std::min<uint64_t>(n, 1u << 20)));
        for (uint64_t j = 0; j < n; ++j) {
          AVOC_ASSIGN_OR_RETURN(const double record, reader.ReadF64());
          snapshot.records.push_back(record);
        }
        history[std::string(name)] = std::move(snapshot);
      }
      AVOC_ASSIGN_OR_RETURN(const uint64_t trace_count, reader.ReadU64());
      for (uint64_t i = 0; i < trace_count; ++i) {
        AVOC_ASSIGN_OR_RETURN(const std::string_view name,
                              reader.ReadBytes());
        AVOC_ASSIGN_OR_RETURN(const uint64_t tail_base, reader.ReadU64());
        AVOC_ASSIGN_OR_RETURN(std::vector<TracePoint> points,
                              ReadTracePoints(reader));
        tails[std::string(name)] = {tail_base, std::move(points)};
      }
      return reader.ExpectEnd();
    }();
    if (!parsed.ok()) {
      recovered_truncated_tail_ = true;
      continue;
    }

    history_ = std::move(history);
    for (auto& [name, tail] : tails) {
      GroupTrace& trace = traces_[name];
      trace.tail_base = tail.first;
      trace.tail = std::move(tail.second);
    }
    seq_ = seq;
    return Status::Ok();
  }

  // No usable snapshot: a fresh store, or one that never compacted.
  seq_ = std::max<uint64_t>(1, max_wal_seq);
  return Status::Ok();
}

void StorageEngine::TrimSealedTailsLocked() {
  for (auto& [group, trace] : traces_) {
    if (trace.sealed.empty()) continue;
    const uint64_t sealed_end =
        trace.sealed.back().base_index + trace.sealed.back().count;
    if (trace.tail_base >= sealed_end) continue;
    const uint64_t overlap = sealed_end - trace.tail_base;
    if (overlap >= trace.tail.size()) {
      trace.tail.clear();
    } else {
      trace.tail.erase(trace.tail.begin(),
                       trace.tail.begin() + static_cast<ptrdiff_t>(overlap));
    }
    trace.tail_base = sealed_end;
  }
}

Status StorageEngine::ReplayWalLocked() {
  AVOC_ASSIGN_OR_RETURN(const WalReplay replay, ReadWal(WalPath(seq_)));
  if (replay.truncated_tail) {
    recovered_truncated_tail_ = true;
    std::error_code ec;
    std::filesystem::resize_file(WalPath(seq_), replay.valid_bytes, ec);
    if (ec) return IoError("truncate torn WAL: " + ec.message());
  }
  for (const WalRecord& record : replay.records) {
    ByteReader reader(record.payload);
    switch (record.type) {
      case WalRecordType::kHistoryPut: {
        AVOC_ASSIGN_OR_RETURN(const std::string_view name,
                              reader.ReadBytes());
        HistorySnapshot snapshot;
        AVOC_ASSIGN_OR_RETURN(const uint64_t rounds, reader.ReadU64());
        snapshot.rounds = static_cast<size_t>(rounds);
        AVOC_ASSIGN_OR_RETURN(const uint64_t n, reader.ReadU64());
        snapshot.records.reserve(
            static_cast<size_t>(std::min<uint64_t>(n, 1u << 20)));
        for (uint64_t j = 0; j < n; ++j) {
          AVOC_ASSIGN_OR_RETURN(const double value, reader.ReadF64());
          snapshot.records.push_back(value);
        }
        AVOC_RETURN_IF_ERROR(reader.ExpectEnd());
        history_[std::string(name)] = std::move(snapshot);
        break;
      }
      case WalRecordType::kHistoryErase: {
        AVOC_ASSIGN_OR_RETURN(const std::string_view name,
                              reader.ReadBytes());
        AVOC_RETURN_IF_ERROR(reader.ExpectEnd());
        history_.erase(std::string(name));
        break;
      }
      case WalRecordType::kTraceAppend: {
        AVOC_ASSIGN_OR_RETURN(const std::string_view name,
                              reader.ReadBytes());
        AVOC_ASSIGN_OR_RETURN(const uint64_t base_index, reader.ReadU64());
        AVOC_ASSIGN_OR_RETURN(std::vector<TracePoint> points,
                              ReadTracePoints(reader));
        AVOC_RETURN_IF_ERROR(reader.ExpectEnd());
        GroupTrace& trace = traces_[std::string(name)];
        const uint64_t next = trace.next_index();
        if (base_index + points.size() <= next) break;  // fully covered
        size_t skip = 0;
        if (base_index < next) skip = static_cast<size_t>(next - base_index);
        trace.tail.insert(trace.tail.end(),
                          points.begin() + static_cast<ptrdiff_t>(skip),
                          points.end());
        break;
      }
      default:
        return ParseError("unknown WAL record type");
    }
  }
  return Status::Ok();
}

Status StorageEngine::RemoveStaleFilesLocked() {
  std::error_code ec;
  std::vector<std::filesystem::path> stale;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".tmp")) {
      stale.push_back(entry.path());
      continue;
    }
    const uint64_t wal_seq = ParseSeq(name, "wal-");
    const uint64_t snap_seq = ParseSeq(name, "snap-");
    if ((wal_seq != 0 && wal_seq != seq_) ||
        (snap_seq != 0 && snap_seq != seq_)) {
      stale.push_back(entry.path());
    }
  }
  if (ec) return IoError("scan storage dir: " + ec.message());
  for (const std::filesystem::path& path : stale) {
    std::filesystem::remove(path, ec);  // best effort
  }
  return Status::Ok();
}

Status StorageEngine::AppendWalLocked(WalRecordType type,
                                      std::string_view payload) {
  // The append runs under a storage span parented to the calling
  // request's span (the server verb span when reached over the wire), so
  // a traced SUBMIT_BATCH_SEQ shows its own WAL write and fsync.
  obs::SpanContext parent;
  if (options_.tracer != nullptr) {
    if (const obs::CurrentSpan current = obs::CurrentTraceSpan();
        current.tracer == options_.tracer) {
      parent = current.context;
    }
  }
  obs::ScopedSpan span(options_.tracer, obs::SpanKind::kStorage,
                       "wal.append", parent);
  const uint64_t before = wal_.bytes();
  AVOC_RETURN_IF_ERROR(wal_.Append(type, payload));
  ++wal_records_total_;
  const uint64_t fsync_delta = wal_.fsyncs() - wal_fsyncs_seen_;
  wal_fsyncs_seen_ = wal_.fsyncs();
  fsyncs_total_ += fsync_delta;
  if (wal_bytes_metric_) wal_bytes_metric_->Add(wal_.bytes() - before);
  if (wal_records_metric_) wal_records_metric_->Increment();
  if (fsyncs_metric_ && fsync_delta != 0) fsyncs_metric_->Add(fsync_delta);
  if (span.active()) {
    span.SetDetailF("type=%u bytes=%zu synced=%s",
                    static_cast<unsigned>(type), payload.size(),
                    fsync_delta != 0 ? "yes" : "no");
    if (fsync_delta != 0) options_.tracer->Event("wal.fsync");
  }
  if (options_.compact_wal_bytes != 0 &&
      wal_.bytes() >= options_.compact_wal_bytes) {
    return CompactLocked();
  }
  return Status::Ok();
}

Status StorageEngine::Put(const std::string& group,
                          const HistorySnapshot& snapshot) {
  std::lock_guard lock(mutex_);
  if (dead_) return FailedPreconditionError("storage engine crashed");
  AVOC_RETURN_IF_ERROR(AppendWalLocked(
      WalRecordType::kHistoryPut, EncodeHistoryPutPayload(group, snapshot)));
  history_[group] = snapshot;
  UpdateGaugesLocked();
  return Status::Ok();
}

Result<HistorySnapshot> StorageEngine::Get(const std::string& group) const {
  std::lock_guard lock(mutex_);
  if (dead_) return FailedPreconditionError("storage engine crashed");
  const auto it = history_.find(group);
  if (it == history_.end()) {
    return NotFoundError("no history for group '" + group + "'");
  }
  return it->second;
}

Result<bool> StorageEngine::Erase(const std::string& group) {
  std::lock_guard lock(mutex_);
  if (dead_) return FailedPreconditionError("storage engine crashed");
  const auto it = history_.find(group);
  if (it == history_.end()) return false;
  AVOC_RETURN_IF_ERROR(AppendWalLocked(WalRecordType::kHistoryErase,
                                       EncodeHistoryErasePayload(group)));
  history_.erase(it);
  UpdateGaugesLocked();
  return true;
}

std::vector<std::string> StorageEngine::Groups() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> groups;
  groups.reserve(history_.size());
  for (const auto& [group, snapshot] : history_) groups.push_back(group);
  return groups;
}

size_t StorageEngine::size() const {
  std::lock_guard lock(mutex_);
  return history_.size();
}

Status StorageEngine::AppendTrace(const std::string& group,
                                  std::span<const TracePoint> points) {
  if (points.empty()) return Status::Ok();
  std::lock_guard lock(mutex_);
  if (dead_) return FailedPreconditionError("storage engine crashed");
  GroupTrace& trace = traces_[group];
  AVOC_RETURN_IF_ERROR(AppendWalLocked(
      WalRecordType::kTraceAppend,
      EncodeTraceAppendPayload(group, trace.next_index(), points)));
  trace.tail.insert(trace.tail.end(), points.begin(), points.end());
  trace_points_ += points.size();
  while (trace.tail.size() >= options_.chunk_max_points) {
    AVOC_RETURN_IF_ERROR(SealLocked(group, trace));
  }
  UpdateGaugesLocked();
  return Status::Ok();
}

Result<std::vector<TracePoint>> StorageEngine::QueryTraceRange(
    const std::string& group, uint64_t lo_round, uint64_t hi_round) const {
  std::lock_guard lock(mutex_);
  if (dead_) return FailedPreconditionError("storage engine crashed");
  std::vector<TracePoint> out;
  const auto it = traces_.find(group);
  if (it == traces_.end()) return out;
  std::vector<TracePoint> decoded;
  for (const SealedChunk& chunk : it->second.sealed) {
    if (chunk.last_round < lo_round || chunk.first_round > hi_round) continue;
    AVOC_RETURN_IF_ERROR(DecodeChunk(chunk.body, chunk.count, &decoded));
    for (const TracePoint& point : decoded) {
      if (point.round >= lo_round && point.round <= hi_round) {
        out.push_back(point);
      }
    }
  }
  for (const TracePoint& point : it->second.tail) {
    if (point.round >= lo_round && point.round <= hi_round) {
      out.push_back(point);
    }
  }
  return out;
}

Status StorageEngine::SealLocked(const std::string& group, GroupTrace& trace) {
  const size_t n = options_.chunk_max_points;
  const std::span<const TracePoint> points(trace.tail.data(), n);
  SealedChunk chunk;
  chunk.base_index = trace.tail_base;
  chunk.count = n;
  chunk.first_round = points[0].round;
  chunk.last_round = points[0].round;
  for (const TracePoint& point : points) {
    chunk.first_round = std::min(chunk.first_round, point.round);
    chunk.last_round = std::max(chunk.last_round, point.round);
  }
  chunk.body = EncodeChunk(points);

  std::string entry(kChunkMagic);
  AppendBytes(entry, group);
  AppendU64(entry, chunk.base_index);
  AppendU64(entry, chunk.count);
  AppendU64(entry, chunk.first_round);
  AppendU64(entry, chunk.last_round);
  AppendU32(entry, static_cast<uint32_t>(chunk.body.size()));
  AppendU32(entry, Crc32(chunk.body));
  entry.append(chunk.body);
  AVOC_RETURN_IF_ERROR(chunks_.Append(entry));
  AVOC_RETURN_IF_ERROR(chunks_.Sync());
  ++fsyncs_total_;
  if (fsyncs_metric_) fsyncs_metric_->Increment();
  if (options_.tracer != nullptr) {
    options_.tracer->Event(
        "storage.chunk_seal",
        StrFormat("group=%s points=%zu bytes=%zu", group.c_str(), n,
                  chunk.body.size()));
  }

  trace.tail.erase(trace.tail.begin(), trace.tail.begin() + static_cast<ptrdiff_t>(n));
  trace.tail_base += n;
  ++sealed_chunks_;
  chunk_raw_bytes_ += chunk.count * kRawPointBytes;
  chunk_compressed_bytes_ += chunk.body.size();
  if (chunks_sealed_metric_) chunks_sealed_metric_->Increment();
  if (chunk_raw_metric_) chunk_raw_metric_->Add(chunk.count * kRawPointBytes);
  if (chunk_compressed_metric_) chunk_compressed_metric_->Add(chunk.body.size());
  trace.sealed.push_back(std::move(chunk));
  return Status::Ok();
}

std::string StorageEngine::EncodeSnapshotLocked() const {
  std::string body;
  AppendU64(body, history_.size());
  for (const auto& [group, snapshot] : history_) {
    AppendBytes(body, group);
    AppendU64(body, snapshot.rounds);
    AppendU64(body, snapshot.records.size());
    for (const double record : snapshot.records) AppendF64(body, record);
  }
  AppendU64(body, traces_.size());
  for (const auto& [group, trace] : traces_) {
    AppendBytes(body, group);
    AppendU64(body, trace.tail_base);
    AppendTracePointsSnapshot(
        body, std::span<const TracePoint>(trace.tail.data(),
                                          trace.tail.size()));
  }
  std::string file(kSnapshotMagic);
  AppendU32(file, kSnapshotVersion);
  AppendU32(file, Crc32(body));
  file.append(body);
  return file;
}

Status StorageEngine::CompactLocked() {
  const uint64_t new_seq = seq_ + 1;
  AVOC_RETURN_IF_ERROR(
      WriteFileDurable(SnapshotPath(new_seq), EncodeSnapshotLocked()));

  // Fold the retiring writer's fsyncs in before replacing it.
  const uint64_t fsync_delta = wal_.fsyncs() - wal_fsyncs_seen_;
  fsyncs_total_ += fsync_delta;
  if (fsyncs_metric_ && fsync_delta != 0) fsyncs_metric_->Add(fsync_delta);
  const std::string old_wal = WalPath(seq_);
  const std::string old_snap = SnapshotPath(seq_);
  wal_.CloseNoSync();  // the new snapshot covers everything in it
  AVOC_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(WalPath(new_seq),
                            WalWriterOptions{options_.wal_sync_every_bytes}));
  wal_fsyncs_seen_ = 0;

  std::error_code ec;
  std::filesystem::remove(old_wal, ec);
  std::filesystem::remove(old_snap, ec);
  seq_ = new_seq;
  ++compactions_;
  if (compactions_metric_) compactions_metric_->Increment();
  if (options_.tracer != nullptr) {
    options_.tracer->Event(
        "storage.compaction",
        StrFormat("seq=%llu", static_cast<unsigned long long>(new_seq)));
  }
  return Status::Ok();
}

Status StorageEngine::Sync() {
  std::lock_guard lock(mutex_);
  if (dead_) return FailedPreconditionError("storage engine crashed");
  AVOC_RETURN_IF_ERROR(wal_.Sync());
  const uint64_t fsync_delta = wal_.fsyncs() - wal_fsyncs_seen_;
  wal_fsyncs_seen_ = wal_.fsyncs();
  fsyncs_total_ += fsync_delta;
  if (fsyncs_metric_ && fsync_delta != 0) fsyncs_metric_->Add(fsync_delta);
  return Status::Ok();
}

Status StorageEngine::Compact() {
  std::lock_guard lock(mutex_);
  if (dead_) return FailedPreconditionError("storage engine crashed");
  return CompactLocked();
}

StorageStats StorageEngine::stats() const {
  std::lock_guard lock(mutex_);
  StorageStats stats;
  stats.wal_records = wal_records_total_;
  stats.wal_bytes = wal_.open() ? wal_.bytes() : 0;
  stats.wal_synced_bytes = wal_.open() ? wal_.synced_bytes() : 0;
  stats.fsyncs = fsyncs_total_ + (wal_.open() ? wal_.fsyncs() : 0) -
                 wal_fsyncs_seen_;
  stats.compactions = compactions_;
  stats.snapshot_seq = seq_;
  stats.sealed_chunks = sealed_chunks_;
  stats.chunk_raw_bytes = chunk_raw_bytes_;
  stats.chunk_compressed_bytes = chunk_compressed_bytes_;
  stats.history_groups = history_.size();
  stats.trace_points = trace_points_;
  stats.recovery_ms = recovery_ms_;
  stats.recovered_truncated_tail = recovered_truncated_tail_;
  return stats;
}

StorageEngine::CrashState StorageEngine::SimulateCrash() {
  std::lock_guard lock(mutex_);
  CrashState state;
  state.wal_path = wal_.open() ? wal_.path() : WalPath(seq_);
  state.wal_bytes = wal_.open() ? wal_.bytes() : 0;
  state.wal_synced_bytes = wal_.open() ? wal_.synced_bytes() : 0;
  wal_.CloseNoSync();
  chunks_.CloseNoSync();
  dead_ = true;
  return state;
}

void StorageEngine::UpdateGaugesLocked() {
  if (groups_gauge_) groups_gauge_->Set(static_cast<double>(history_.size()));
  if (trace_points_gauge_) {
    trace_points_gauge_->Set(static_cast<double>(trace_points_));
  }
}

}  // namespace avoc::storage
