// Append-only write-ahead log with CRC-framed records.
//
// Record framing (little-endian, see docs/STORAGE.md):
//
//   record := u32 body_len  u32 crc32(body)  body
//   body   := u8 type  payload
//
// Writers append records and fsync per policy (`sync_every_bytes`; 0 =
// fsync on every commit).  Readers scan the file front to back and stop
// at the first record that is truncated or fails its CRC — a torn tail
// from a crash mid-write is expected, not an error; everything before it
// is trusted.  The durability contract is exactly "nothing synced is
// ever lost; unsynced tail records may be" (the DST crash-recovery
// sweep proves it seed by seed).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storage/io.h"
#include "util/status.h"

namespace avoc::storage {

enum class WalRecordType : uint8_t {
  kHistoryPut = 1,    ///< str group, u64 rounds, u64 n, n x f64
  kHistoryErase = 2,  ///< str group
  kTraceAppend = 3,   ///< str group, u64 base_index, u64 n,
                      ///<   n x (u64 round, u64 value_bits, u8 engaged)
};

struct WalRecord {
  WalRecordType type = WalRecordType::kHistoryPut;
  std::string payload;
};

struct WalWriterOptions {
  /// fsync once this many bytes accumulated since the last sync;
  /// 0 = fsync after every Append (strictest durability).
  size_t sync_every_bytes = 0;
};

/// Appends CRC-framed records to one WAL file.  Movable, not copyable.
class WalWriter {
 public:
  WalWriter() = default;

  static Result<WalWriter> Open(const std::string& path,
                                WalWriterOptions options = {});

  /// Appends one record and applies the sync policy.
  Status Append(WalRecordType type, std::string_view payload);

  /// Forces an fsync now (commit barrier).
  Status Sync();

  /// Closes without syncing — crash simulation and teardown paths.
  void CloseNoSync() { file_.CloseNoSync(); }

  bool open() const { return file_.open(); }
  const std::string& path() const { return file_.path(); }
  uint64_t bytes() const { return file_.size(); }
  uint64_t synced_bytes() const { return file_.synced_size(); }
  uint64_t records() const { return records_; }
  uint64_t fsyncs() const { return fsyncs_; }

 private:
  AppendFile file_;
  WalWriterOptions options_;
  uint64_t records_ = 0;
  uint64_t fsyncs_ = 0;
};

/// Result of scanning one WAL file.
struct WalReplay {
  std::vector<WalRecord> records;  ///< every valid record, in order
  uint64_t valid_bytes = 0;        ///< offset just past the last valid record
  bool truncated_tail = false;     ///< trailing bytes were torn/corrupt
};

/// Scans `path` front to back; stops at the first invalid record.
/// A missing file replays as empty.  Never fails on corruption — the
/// caller truncates to `valid_bytes` and moves on.
Result<WalReplay> ReadWal(const std::string& path);

}  // namespace avoc::storage
