#include "storage/chunk.h"

#include <cstring>

#include "storage/bits.h"

namespace avoc::storage {

namespace {

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

unsigned LeadingZeros(uint64_t v) {
  return v == 0 ? 64u : static_cast<unsigned>(__builtin_clzll(v));
}

unsigned TrailingZeros(uint64_t v) {
  return v == 0 ? 64u : static_cast<unsigned>(__builtin_ctzll(v));
}

void WriteDod(BitWriter& bits, int64_t dod) {
  const uint64_t zz = ZigZag(dod);
  if (zz == 0) {
    bits.WriteBit(0);
  } else if (zz < (1ull << 7)) {
    bits.WriteBits(0b10, 2);
    bits.WriteBits(zz, 7);
  } else if (zz < (1ull << 12)) {
    bits.WriteBits(0b110, 3);
    bits.WriteBits(zz, 12);
  } else if (zz < (1ull << 20)) {
    bits.WriteBits(0b1110, 4);
    bits.WriteBits(zz, 20);
  } else {
    bits.WriteBits(0b1111, 4);
    bits.WriteBits(zz, 64);
  }
}

Result<int64_t> ReadDod(BitReader& bits) {
  AVOC_ASSIGN_OR_RETURN(uint32_t bit, bits.ReadBit());
  if (bit == 0) return int64_t{0};
  AVOC_ASSIGN_OR_RETURN(bit, bits.ReadBit());
  if (bit == 0) {
    AVOC_ASSIGN_OR_RETURN(const uint64_t zz, bits.ReadBits(7));
    return UnZigZag(zz);
  }
  AVOC_ASSIGN_OR_RETURN(bit, bits.ReadBit());
  if (bit == 0) {
    AVOC_ASSIGN_OR_RETURN(const uint64_t zz, bits.ReadBits(12));
    return UnZigZag(zz);
  }
  AVOC_ASSIGN_OR_RETURN(bit, bits.ReadBit());
  if (bit == 0) {
    AVOC_ASSIGN_OR_RETURN(const uint64_t zz, bits.ReadBits(20));
    return UnZigZag(zz);
  }
  AVOC_ASSIGN_OR_RETURN(const uint64_t zz, bits.ReadBits(64));
  return UnZigZag(zz);
}

}  // namespace

std::string EncodeChunk(std::span<const TracePoint> points) {
  BitWriter bits;
  if (points.empty()) return bits.Finish();

  // First point: raw round, raw value bits, engaged bit.
  bits.WriteBits(points[0].round, 64);
  bits.WriteBits(DoubleBits(points[0].value), 64);
  bits.WriteBit(points[0].engaged ? 1 : 0);

  int64_t prev_delta = 0;
  uint64_t prev_round = points[0].round;
  uint64_t prev_bits = DoubleBits(points[0].value);
  unsigned window_lead = 64;  // 64 = no reusable XOR window yet
  unsigned window_len = 0;

  for (size_t i = 1; i < points.size(); ++i) {
    const TracePoint& p = points[i];

    // Round: delta-of-delta.
    const int64_t delta = static_cast<int64_t>(p.round - prev_round);
    WriteDod(bits, delta - prev_delta);
    prev_delta = delta;
    prev_round = p.round;

    // Value: XOR against the previous value.
    const uint64_t value_bits = DoubleBits(p.value);
    const uint64_t x = value_bits ^ prev_bits;
    prev_bits = value_bits;
    if (x == 0) {
      bits.WriteBit(0);
    } else {
      bits.WriteBit(1);
      unsigned lead = LeadingZeros(x);
      if (lead > 31) lead = 31;  // 5 bits of headroom beat a wider field
      const unsigned trail = TrailingZeros(x);
      const unsigned len = 64 - lead - trail;
      if (window_lead <= lead && window_lead + window_len >= lead + len) {
        // The previous window still covers every meaningful bit.
        bits.WriteBit(0);
        bits.WriteBits(x >> (64 - window_lead - window_len), window_len);
      } else {
        bits.WriteBit(1);
        bits.WriteBits(lead, 6);
        bits.WriteBits(len - 1, 6);
        bits.WriteBits(x >> trail, len);
        window_lead = lead;
        window_len = len;
      }
    }

    bits.WriteBit(p.engaged ? 1 : 0);
  }
  return bits.Finish();
}

Status DecodeChunk(std::string_view bytes, uint64_t count,
                   std::vector<TracePoint>* out) {
  out->clear();
  if (count == 0) return Status::Ok();
  if (count > bytes.size() * 8) {
    // Cheap sanity bound: every point costs >= 3 bits.
    return ParseError("chunk count exceeds encoded capacity");
  }
  BitReader bits(bytes);
  out->reserve(static_cast<size_t>(count));

  AVOC_ASSIGN_OR_RETURN(const uint64_t first_round, bits.ReadBits(64));
  AVOC_ASSIGN_OR_RETURN(const uint64_t first_bits, bits.ReadBits(64));
  AVOC_ASSIGN_OR_RETURN(const uint32_t first_engaged, bits.ReadBit());
  out->push_back(
      TracePoint{first_round, BitsToDouble(first_bits), first_engaged != 0});

  int64_t prev_delta = 0;
  uint64_t prev_round = first_round;
  uint64_t prev_bits = first_bits;
  unsigned window_lead = 64;
  unsigned window_len = 0;

  for (uint64_t i = 1; i < count; ++i) {
    AVOC_ASSIGN_OR_RETURN(const int64_t dod, ReadDod(bits));
    const int64_t delta = prev_delta + dod;
    const uint64_t round = prev_round + static_cast<uint64_t>(delta);
    prev_delta = delta;
    prev_round = round;

    AVOC_ASSIGN_OR_RETURN(uint32_t bit, bits.ReadBit());
    uint64_t value_bits = prev_bits;
    if (bit != 0) {
      AVOC_ASSIGN_OR_RETURN(bit, bits.ReadBit());
      if (bit == 0) {
        if (window_len == 0) {
          return ParseError("chunk reuses XOR window before defining one");
        }
        AVOC_ASSIGN_OR_RETURN(const uint64_t meaningful,
                              bits.ReadBits(window_len));
        value_bits =
            prev_bits ^ (meaningful << (64 - window_lead - window_len));
      } else {
        AVOC_ASSIGN_OR_RETURN(const uint64_t lead64, bits.ReadBits(6));
        AVOC_ASSIGN_OR_RETURN(const uint64_t len64, bits.ReadBits(6));
        const unsigned lead = static_cast<unsigned>(lead64);
        const unsigned len = static_cast<unsigned>(len64) + 1;
        if (lead + len > 64) {
          return ParseError("chunk XOR window exceeds 64 bits");
        }
        AVOC_ASSIGN_OR_RETURN(const uint64_t meaningful, bits.ReadBits(len));
        const unsigned trail = 64 - lead - len;
        value_bits = prev_bits ^ (meaningful << trail);
        window_lead = lead;
        window_len = len;
      }
    }
    prev_bits = value_bits;

    AVOC_ASSIGN_OR_RETURN(const uint32_t engaged, bits.ReadBit());
    out->push_back(TracePoint{round, BitsToDouble(value_bits), engaged != 0});
  }
  return Status::Ok();
}

}  // namespace avoc::storage
