#include "storage/wal.h"

namespace avoc::storage {

namespace {

/// Largest body one record may carry.  A length field beyond this is
/// corruption by definition (the engine's payloads are far smaller), and
/// bounding it keeps a flipped length bit from turning into a giant
/// allocation during replay.
constexpr uint64_t kMaxRecordBytes = 64ull << 20;

}  // namespace

Result<WalWriter> WalWriter::Open(const std::string& path,
                                  WalWriterOptions options) {
  WalWriter writer;
  AVOC_ASSIGN_OR_RETURN(writer.file_, AppendFile::Open(path));
  writer.options_ = options;
  return writer;
}

Status WalWriter::Append(WalRecordType type, std::string_view payload) {
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body.append(payload);

  std::string record;
  record.reserve(8 + body.size());
  AppendU32(record, static_cast<uint32_t>(body.size()));
  AppendU32(record, Crc32(body));
  record.append(body);

  AVOC_RETURN_IF_ERROR(file_.Append(record));
  ++records_;
  if (options_.sync_every_bytes == 0 ||
      file_.size() - file_.synced_size() >= options_.sync_every_bytes) {
    return Sync();
  }
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (file_.synced_size() == file_.size()) return Status::Ok();
  AVOC_RETURN_IF_ERROR(file_.Sync());
  ++fsyncs_;
  return Status::Ok();
}

Result<WalReplay> ReadWal(const std::string& path) {
  WalReplay replay;
  auto contents = ReadFileToString(path);
  if (!contents.ok()) {
    if (contents.status().code() == ErrorCode::kNotFound) return replay;
    return contents.status();
  }
  const std::string& data = *contents;
  size_t pos = 0;
  while (pos + 8 <= data.size()) {
    ByteReader header(std::string_view(data).substr(pos, 8));
    const uint32_t body_len = *header.ReadU32();
    const uint32_t crc = *header.ReadU32();
    if (body_len < 1 || body_len > kMaxRecordBytes ||
        pos + 8 + body_len > data.size()) {
      break;  // torn or corrupt tail
    }
    const std::string_view body =
        std::string_view(data).substr(pos + 8, body_len);
    if (Crc32(body) != crc) break;
    WalRecord record;
    record.type = static_cast<WalRecordType>(static_cast<uint8_t>(body[0]));
    record.payload.assign(body.substr(1));
    replay.records.push_back(std::move(record));
    pos += 8 + body_len;
  }
  replay.valid_bytes = pos;
  replay.truncated_tail = pos != data.size();
  return replay;
}

}  // namespace avoc::storage
