// Distributed tracing + always-on flight recorder for the voter runtime.
//
// The metrics registry (obs/metrics.h) answers "how much / how slow in
// aggregate"; this subsystem answers "what happened to THIS request".  A
// trace is a tree of spans sharing one trace id: the resilient client
// opens a root span per logical submit, each retry attempt is a child,
// the wire context rides an optional trailing frame field
// (runtime/framing.h), and the serving shard, engine batch, and WAL
// append each hang their own span under the id that arrived on the wire
// — across the cross-shard forward hop, because the context lives in the
// frame payload, not in the connection.
//
// Spans land in per-shard lock-free ring buffers that double as an
// always-on flight recorder: a bounded in-memory log of the most recent
// spans plus point events (backpressure, poisoned frames, WAL fsync,
// compaction, migration) that is cheap enough to leave on in production
// and can be snapshotted at any moment via the TRACE_DUMP verb, then
// converted to Chrome trace_event JSON (obs/trace_export.h) for
// chrome://tracing.
//
// Concurrency: each ring slot is a seqlock — a per-slot sequence word
// (odd = write in progress) guarding a fixed array of atomic u64 payload
// words.  Writers claim a slot with a fetch_add on the ring head and a
// CAS even->odd on the slot; a lost CAS drops the record (counted) so
// writers never spin.  Readers copy the words between two acquire loads
// of the sequence and discard torn copies.  Every payload access is a
// (relaxed) atomic, so the scheme is clean under TSan, and no path ever
// blocks: tracing a request costs ~20 relaxed stores.
//
// Determinism: the tracer takes its clock as a seam (TracerOptions::
// now_ns).  Production uses steady_clock; under deterministic simulation
// the SimWorld virtual clock is injected, and because span/trace ids come
// from a counter and a pure hash of (client_id, seq), the same seed
// produces a byte-identical DumpText() — chaos sweeps can assert on it.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace avoc::obs {

/// Propagated trace identity: which trace, which span to parent under.
/// flags bit 0 = sampled (the client elected this submit for tracing).
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint8_t flags = 0;

  bool valid() const { return trace_id != 0; }
  bool sampled() const { return (flags & 0x1) != 0; }
};

/// Which layer produced a record; doubles as the Chrome-export lane.
enum class SpanKind : uint8_t {
  kInvalid = 0,
  kClient = 1,   ///< ResilientVoterClient submit + attempt spans
  kServer = 2,   ///< per-verb request handling on a shard
  kEngine = 3,   ///< engine batch execution / pipeline stages
  kStorage = 4,  ///< WAL append / chunk seal / compaction
  kEvent = 5,    ///< point annotation (flight-recorder event)
};

/// Name of a span kind ("client", ...); "invalid" for others.
std::string_view SpanKindName(SpanKind kind);

/// One flight-recorder record.  Fixed-size POD so a ring slot is a plain
/// array of u64 words; events are spans with start == end.  Names and
/// details are truncated, NUL-padded token strings.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint8_t kind = 0;
  char name[31] = {};
  char detail[80] = {};
};
static_assert(std::is_trivially_copyable_v<SpanRecord>);
static_assert(sizeof(SpanRecord) % sizeof(uint64_t) == 0);

/// Payload words per ring slot.
inline constexpr size_t kSpanRecordWords = sizeof(SpanRecord) / sizeof(uint64_t);

/// Bounded lock-free span log; the flight recorder proper.  Overwrites
/// the oldest records once full (it is a window, not a queue).
class TraceRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit TraceRing(size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Publishes one record; false when a concurrent writer owned the
  /// claimed slot (the record is dropped and counted, never blocked on).
  bool Record(const SpanRecord& record);

  /// Appends a consistent copy of every published record to `out`
  /// (ring order, not time order; torn slots are skipped).
  void Snapshot(std::vector<SpanRecord>* out) const;

  size_t capacity() const { return mask_ + 1; }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    /// Seqlock word: 0 = never written, odd = write in progress.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> words[kSpanRecordWords] = {};
  };

  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> dropped_{0};
};

struct TracerOptions {
  /// Independent rings; record routing uses the caller's metrics shard so
  /// per-core server threads rarely contend on a head counter.
  size_t ring_count = 4;
  /// Records retained per ring.
  size_t ring_capacity = 4096;
  /// Clock seam: monotonic nanoseconds.  Defaults to steady_clock; the
  /// DST harness injects the SimWorld virtual clock so same-seed chaos
  /// schedules yield byte-identical dumps.
  std::function<uint64_t()> now_ns;
};

/// The tracing façade: owns the rings, the span-id counter, and the
/// clock seam.  One Tracer is shared by every shard of a server plus its
/// storage engine and clients under test; all methods are thread-safe.
class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Monotonic nanoseconds from the injected clock seam.
  uint64_t now_ns() const { return now_ns_(); }

  /// Unique (per tracer) id for a new span or event record.
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Deterministic trace id for a client submit: a pure hash of
  /// (client_id, seq), never 0.  Same identity -> same trace id, so a
  /// resubmitted request joins the trace of its first attempt.
  static uint64_t DeriveTraceId(std::string_view client_id, uint64_t seq);

  /// Publishes a finished record into the caller's shard ring.
  void Record(const SpanRecord& record);

  /// Point annotation (flight-recorder event).  Parents under the
  /// calling thread's current span when that span belongs to this
  /// tracer; otherwise records an untraced event (trace id 0).
  void Event(std::string_view name, std::string_view detail = {});

  /// Consistent copy of every live record across all rings.
  std::vector<SpanRecord> Snapshot() const;

  /// Canonical text dump: "AVOC-TRACE v1" header + one line per record,
  /// sorted by (start_ns, span_id) so equal inputs yield equal bytes.
  /// This is the TRACE_DUMP wire payload and the tracectl interchange
  /// format (obs/trace_export.h parses it).
  std::string DumpText() const;

  /// Records dropped across all rings (slot contention).
  uint64_t dropped() const;

  size_t ring_count() const { return rings_.size(); }

  /// Runtime mute switch.  While disabled, spans and events become
  /// no-ops (one relaxed load on the hot path) and the rings keep their
  /// last records — pausing the flight recorder freezes the evidence,
  /// it does not erase it.  TRACE_DUMP keeps answering.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  std::function<uint64_t()> now_ns_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<bool> enabled_{true};
};

/// Formats one record as its canonical dump line (no trailing newline).
std::string FormatSpanLine(const SpanRecord& record);

/// The calling thread's innermost open span (tracer nullptr when none).
/// This is how layers that never see the wire context — the engine batch
/// under GroupRunner, the WAL append under the engine — find the span to
/// parent under without threading contexts through every call signature.
struct CurrentSpan {
  Tracer* tracer = nullptr;
  SpanContext context;
};
CurrentSpan CurrentTraceSpan();

/// Trace id of the most recently closed span on this thread, consumed at
/// most once — the histogram-exemplar hook (metrics record the latency
/// right after the traced call returns, on the same thread).
uint64_t ConsumeLastTraceId();

/// RAII span: opens at construction (pushing itself as the thread's
/// current span), records at destruction.  A null tracer makes every
/// operation a no-op, so untraced builds pay one branch.
class ScopedSpan {
 public:
  /// Inactive span (no tracer).
  ScopedSpan() = default;

  /// Opens a span under `parent`; an invalid parent starts a new locally
  /// rooted trace (trace id = the new span id) so flight-recorder
  /// coverage does not depend on clients sending context.
  ScopedSpan(Tracer* tracer, SpanKind kind, std::string_view name,
             const SpanContext& parent, std::string_view detail = {});

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan();

  bool active() const { return tracer_ != nullptr; }

  /// Context for propagation (wire encoding, child spans).
  SpanContext context() const;

  /// Replaces the record's detail string (outcome annotations).
  void SetDetail(std::string_view detail);

  /// printf-style SetDetail formatting straight into the record's fixed
  /// detail buffer — no heap allocation, which matters on the per-batch
  /// hot path (SetDetail(StrFormat(...)) pays a std::string round trip).
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 2, 3)))
#endif
  void SetDetailF(const char* format, ...);

 private:
  Tracer* tracer_ = nullptr;
  SpanRecord record_;
};

/// Bounded copy of `s` into a NUL-padded char field.
void CopyToken(char* dst, size_t capacity, std::string_view s);

}  // namespace avoc::obs
