#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "util/strings.h"

namespace avoc::obs {

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

// --- LatencyHistogram -------------------------------------------------------
//
// Bucket layout: [0..7] are exact one-nanosecond buckets.  From octave 3
// (values in [8, 16)) upward each octave splits into kSubBuckets equal
// ranges, so bucket width is value/4 and quantile error stays under 12.5%.

size_t LatencyHistogram::BucketIndex(uint64_t nanos) {
  if (nanos < kLinearBuckets) return static_cast<size_t>(nanos);
  const size_t octave = static_cast<size_t>(std::bit_width(nanos)) - 1;
  const size_t capped = std::min(octave, size_t{3 + kOctaves - 1});
  const size_t sub =
      octave == capped
          ? static_cast<size_t>((nanos >> (capped - 2)) & (kSubBuckets - 1))
          : kSubBuckets - 1;  // beyond range: clamp into the last bucket
  return kLinearBuckets + (capped - 3) * kSubBuckets + sub;
}

uint64_t LatencyHistogram::BucketLowerBound(size_t index) {
  if (index < kLinearBuckets) return index;
  const size_t k = index - kLinearBuckets;
  const size_t octave = 3 + k / kSubBuckets;
  const size_t sub = k % kSubBuckets;
  return (uint64_t{1} << octave) +
         static_cast<uint64_t>(sub) * (uint64_t{1} << (octave - 2));
}

LatencySnapshot LatencyHistogram::Snapshot() const {
  LatencySnapshot snapshot;
  snapshot.counts.resize(kBucketCount);
  for (size_t i = 0; i < kBucketCount; ++i) {
    snapshot.counts[i] = bins_[i].load(std::memory_order_relaxed);
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.exemplar_trace_id =
      exemplar_trace_id_.load(std::memory_order_relaxed);
  snapshot.exemplar_nanos = exemplar_nanos_.load(std::memory_order_relaxed);
  return snapshot;
}

void LatencySnapshot::Merge(const LatencySnapshot& other) {
  if (counts.empty()) {
    counts.resize(other.counts.size());
  }
  const size_t n = std::min(counts.size(), other.counts.size());
  for (size_t i = 0; i < n; ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum += other.sum;
  if (other.exemplar_trace_id != 0) {
    exemplar_trace_id = other.exemplar_trace_id;
    exemplar_nanos = other.exemplar_nanos;
  }
}

double LatencySnapshot::Quantile(double q) const {
  if (count == 0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile among `count` ordered samples (nearest-rank).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      const uint64_t lo = LatencyHistogram::BucketLowerBound(i);
      const uint64_t hi = LatencyHistogram::BucketLowerBound(i + 1);
      return 0.5 * static_cast<double>(lo + hi);
    }
  }
  return static_cast<double>(
      LatencyHistogram::BucketLowerBound(counts.size()));
}

// --- Registry ---------------------------------------------------------------

std::string EscapeLabelValue(std::string_view value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': escaped += "\\\\"; break;
      case '"': escaped += "\\\""; break;
      case '\n': escaped += "\\n"; break;
      default: escaped.push_back(c);
    }
  }
  return escaped;
}

// Escaping happens here, at registration, so every render/sum/merge path
// inherits it and a registry never holds an unescaped name.
std::string LabeledName(std::string_view family, std::string_view label_key,
                        std::string_view label_value) {
  std::string name(family);
  name += '{';
  name += label_key;
  name += "=\"";
  name += EscapeLabelValue(label_value);
  name += "\"}";
  return name;
}

std::string LabeledName(std::string_view family, std::string_view key1,
                        std::string_view value1, std::string_view key2,
                        std::string_view value2) {
  std::string name(family);
  name += '{';
  name += key1;
  name += "=\"";
  name += EscapeLabelValue(value1);
  name += "\",";
  name += key2;
  name += "=\"";
  name += EscapeLabelValue(value2);
  name += "\"}";
  return name;
}

namespace {

/// True when `name` is `family` itself or a labeled instance of it.
bool InFamily(std::string_view name, std::string_view family) {
  if (!name.starts_with(family)) return false;
  return name.size() == family.size() || name[family.size()] == '{';
}

/// Splits "fam{a=\"b\"}" into its family and "a=\"b\"" label body (empty
/// body when the name carries no labels).
std::pair<std::string_view, std::string_view> SplitLabels(
    std::string_view name) {
  const size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  std::string_view body = name.substr(brace + 1);
  if (!body.empty() && body.back() == '}') body.remove_suffix(1);
  return {name.substr(0, brace), body};
}

/// "fam" + suffix + labels, e.g. SuffixedName("f{a=\"b\"}", "_count")
/// -> "f_count{a=\"b\"}".
std::string SuffixedName(std::string_view name, std::string_view suffix,
                         std::string_view extra_label = {}) {
  const auto [family, body] = SplitLabels(name);
  std::string out(family);
  out += suffix;
  if (!body.empty() || !extra_label.empty()) {
    out += '{';
    out += body;
    if (!body.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  return out;
}

}  // namespace

template <typename T>
T& Registry::GetOrCreate(std::mutex& mutex,
                         std::map<std::string, std::unique_ptr<T>>& metrics,
                         const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex);
  std::unique_ptr<T>& slot = metrics[name];
  if (slot == nullptr) slot = std::make_unique<T>();
  return *slot;
}

Counter& Registry::GetCounter(const std::string& name) {
  return GetOrCreate(mutex_, counters_, name);
}

Gauge& Registry::GetGauge(const std::string& name) {
  return GetOrCreate(mutex_, gauges_, name);
}

LatencyHistogram& Registry::GetHistogram(const std::string& name) {
  return GetOrCreate(mutex_, histograms_, name);
}

size_t Registry::metric_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

uint64_t Registry::SumCounters(std::string_view family) const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t sum = 0;
  for (const auto& [name, counter] : counters_) {
    if (InFamily(name, family)) sum += counter->Value();
  }
  return sum;
}

LatencySnapshot Registry::MergeHistograms(std::string_view family) const {
  std::lock_guard<std::mutex> lock(mutex_);
  LatencySnapshot merged;
  for (const auto& [name, histogram] : histograms_) {
    if (InFamily(name, family)) merged.Merge(histogram->Snapshot());
  }
  return merged;
}

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += StrFormat("%s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(counter->Value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out += StrFormat("%s %.17g\n", name.c_str(), gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    const LatencySnapshot snapshot = histogram->Snapshot();
    const struct {
      const char* label;
      double q;
    } quantiles[] = {{"quantile=\"0.5\"", 0.50},
                     {"quantile=\"0.95\"", 0.95},
                     {"quantile=\"0.99\"", 0.99}};
    for (const auto& quantile : quantiles) {
      out += StrFormat("%s %.0f\n",
                       SuffixedName(name, "", quantile.label).c_str(),
                       snapshot.Quantile(quantile.q));
    }
    out += StrFormat("%s %llu\n", SuffixedName(name, "_count").c_str(),
                     static_cast<unsigned long long>(snapshot.count));
    out += StrFormat("%s %llu\n", SuffixedName(name, "_sum").c_str(),
                     static_cast<unsigned long long>(snapshot.sum));
    if (snapshot.exemplar_trace_id != 0) {
      // Exemplar: the trace id of a recent sample, so a latency spike in
      // this family links to a TRACE_DUMP span tree.  Untraced
      // histograms render exactly as before.
      const std::string label = StrFormat(
          "trace_id=\"%016llx\"",
          static_cast<unsigned long long>(snapshot.exemplar_trace_id));
      out += StrFormat("%s %llu\n",
                       SuffixedName(name, "_exemplar", label).c_str(),
                       static_cast<unsigned long long>(snapshot.exemplar_nanos));
    }
  }
  return out;
}

Registry& Registry::Default() {
  static Registry* instance = new Registry();
  return *instance;
}

}  // namespace avoc::obs
