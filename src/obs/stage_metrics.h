// MetricsObserver: the production StageObserver.
//
// PR 1 cut the observation seam into the voting engine; this is its first
// production implementation.  One observer instance watches one engine
// "scope" (a live group, or one shard of a MultiGroupEngine) and turns
// the per-stage hooks into registry metrics:
//
//   * outcome / exclusion / elimination / quorum / majority counters,
//   * re-cluster and history-collapse counters plus JSON events,
//   * sampled per-stage and per-round latency histograms,
//   * per-module consecutive-exclusion streaks with a JSON alert event.
//
// Hot-path budget: an AVOC round runs in well under a microsecond, so the
// observer (a) times stages/rounds only every `sample_every` rounds,
// using the engine-side stage_hooks_enabled_ gate to suppress the
// OnRoundBegin + nine OnStageDone dispatches in between — an unsampled
// round costs one OnRoundCommitted call — and (b) accumulates counters
// in plain members and flushes them to the shared registry objects every
// `flush_every` rounds.  Between flushes a live scrape lags by at most
// flush_every rounds.
//
// Threading contract: the engine serializes hooks per round, so one
// observer instance must not be attached to engines voting concurrently
// (use one instance per shard — the instances may share registry metrics,
// which are thread-safe).  The streak table allocates once at the first
// round; after that warm-up every hook is allocation-free.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/stages.h"
#include "core/vote_sink.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace avoc::obs {

struct MetricsObserverOptions {
  /// Label value naming this observer's scope ("live", "shard0", ...).
  std::string scope = "default";
  /// Label key the scope registers under ("group" for live runners,
  /// "shard" for multi-group shards).
  std::string scope_label = "group";
  /// Record stage/round latency every N-th round (0 disables timing).
  size_t sample_every = 16;
  /// Publish accumulated counters to the registry every N rounds.
  size_t flush_every = 1;
  /// Log a JSON event when a module has been excluded for this many
  /// consecutive rounds (0 disables streak tracking entirely).
  size_t exclusion_streak_alert = 0;
  /// Emit JSON events (history collapse, streak alerts) through
  /// util::log; counters are unaffected.
  bool log_events = true;
  /// Flight-recorder tracer (optional).  Sampled rounds emit one
  /// "engine.stage" event per stage, parented to the thread's current
  /// span when one is active — so a traced request shows which voting
  /// stage its rounds spent time in.
  Tracer* tracer = nullptr;
};

class MetricsObserver final : public core::StageObserver {
 public:
  MetricsObserver(Registry& registry, MetricsObserverOptions options);
  ~MetricsObserver() override;

  MetricsObserver(const MetricsObserver&) = delete;
  MetricsObserver& operator=(const MetricsObserver&) = delete;

  void OnRoundBegin(size_t round_index,
                    const core::VoteContext& context) override;
  void OnStageDone(std::string_view stage,
                   const core::VoteContext& context) override;
  void OnRoundCommitted(size_t round_index,
                        const core::RoundColumns& columns,
                        const core::RoundScalars& scalars) override;
  bool wants_vote_result() const override { return false; }

  /// Publishes the locally accumulated counts to the registry now.
  void Flush();

  const MetricsObserverOptions& options() const { return options_; }

  // Registry handles, exposed so owners (MultiGroupEngine::Stats) can
  // aggregate without going back through name lookups.
  const Counter& rounds_total() const { return *rounds_total_; }
  const Counter& voted_total() const { return *outcome_[0]; }
  const Counter& no_output_total() const { return *outcome_[2]; }
  const Counter& reverted_total() const { return *outcome_[1]; }
  const Counter& error_total() const { return *outcome_[3]; }
  const Counter& excluded_modules_total() const { return *excluded_modules_; }
  const Counter& eliminated_modules_total() const {
    return *eliminated_modules_;
  }
  const Counter& clustered_rounds_total() const { return *clustered_rounds_; }
  const Counter& history_collapse_total() const { return *history_collapse_; }
  const Counter& quorum_failures_total() const { return *quorum_failures_; }
  const Counter& majority_failures_total() const {
    return *majority_failures_;
  }
  const LatencyHistogram& round_latency() const { return *round_latency_; }
  const LatencyHistogram& stage_latency(size_t stage_index) const {
    return *stage_latency_[stage_index];
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// Locally accumulated counts since the last Flush.
  struct Pending {
    uint64_t rounds = 0;
    std::array<uint64_t, 4> outcome{};  ///< indexed by RoundOutcome
    uint64_t excluded_modules = 0;
    uint64_t eliminated_modules = 0;
    uint64_t clustered_rounds = 0;
    uint64_t history_collapse = 0;
    uint64_t quorum_failures = 0;
    uint64_t majority_failures = 0;
    uint64_t no_majority_rounds = 0;
  };

  Registry* registry_;
  MetricsObserverOptions options_;

  // Shared registry objects (stable addresses, thread-safe writes).
  Counter* rounds_total_;
  std::array<Counter*, 4> outcome_;  ///< indexed by RoundOutcome value
  Counter* excluded_modules_;
  Counter* eliminated_modules_;
  Counter* clustered_rounds_;
  Counter* history_collapse_;
  Counter* quorum_failures_;
  Counter* majority_failures_;
  Counter* no_majority_rounds_;
  LatencyHistogram* round_latency_;
  std::array<LatencyHistogram*, core::kStageNames.size()> stage_latency_;

  // Per-round state (single-threaded per the threading contract).
  Pending pending_;
  size_t rounds_since_flush_ = 0;
  size_t rounds_since_sample_ = 0;
  bool sampling_round_ = false;
  /// Quorum threshold, mirrored from the engine config on first round;
  /// attributes non-voted outcomes to the quorum vs majority stage.
  size_t quorum_required_ = 0;
  bool quorum_required_known_ = false;
  size_t stage_cursor_ = 0;
  Clock::time_point round_start_{};
  Clock::time_point stage_mark_{};
  /// Consecutive-exclusion streak per module; sized at the first round.
  std::vector<uint32_t> exclusion_streaks_;
};

}  // namespace avoc::obs
