#include "obs/stage_metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/events.h"

namespace avoc::obs {
namespace {

/// Outcome label values, indexed like RoundOutcome.
constexpr std::array<std::string_view, 4> kOutcomeLabels = {
    "voted", "reverted", "no_output", "error"};

}  // namespace

MetricsObserver::MetricsObserver(Registry& registry,
                                 MetricsObserverOptions options)
    : registry_(&registry), options_(std::move(options)) {
  const std::string& key = options_.scope_label;
  const std::string& scope = options_.scope;
  auto counter = [&](std::string_view family) {
    return &registry_->GetCounter(LabeledName(family, key, scope));
  };
  rounds_total_ = counter("avoc_rounds_total");
  for (size_t o = 0; o < kOutcomeLabels.size(); ++o) {
    outcome_[o] = &registry_->GetCounter(
        LabeledName("avoc_round_outcome_total", key, scope, "outcome",
                    kOutcomeLabels[o]));
  }
  excluded_modules_ = counter("avoc_excluded_modules_total");
  eliminated_modules_ = counter("avoc_eliminated_modules_total");
  clustered_rounds_ = counter("avoc_clustered_rounds_total");
  history_collapse_ = counter("avoc_history_collapse_total");
  quorum_failures_ = counter("avoc_quorum_failures_total");
  majority_failures_ = counter("avoc_majority_failures_total");
  no_majority_rounds_ = counter("avoc_no_majority_rounds_total");
  round_latency_ =
      &registry_->GetHistogram(LabeledName("avoc_round_latency_ns", key,
                                           scope));
  for (size_t s = 0; s < core::kStageNames.size(); ++s) {
    stage_latency_[s] = &registry_->GetHistogram(
        LabeledName("avoc_stage_latency_ns", key, scope, "stage",
                    core::kStageNames[s]));
  }
}

MetricsObserver::~MetricsObserver() { Flush(); }

void MetricsObserver::Flush() {
  if (pending_.rounds == 0) return;
  rounds_total_->Add(pending_.rounds);
  for (size_t o = 0; o < outcome_.size(); ++o) {
    if (pending_.outcome[o] != 0) outcome_[o]->Add(pending_.outcome[o]);
  }
  if (pending_.excluded_modules != 0) {
    excluded_modules_->Add(pending_.excluded_modules);
  }
  if (pending_.eliminated_modules != 0) {
    eliminated_modules_->Add(pending_.eliminated_modules);
  }
  if (pending_.clustered_rounds != 0) {
    clustered_rounds_->Add(pending_.clustered_rounds);
  }
  if (pending_.history_collapse != 0) {
    history_collapse_->Add(pending_.history_collapse);
  }
  if (pending_.quorum_failures != 0) {
    quorum_failures_->Add(pending_.quorum_failures);
  }
  if (pending_.majority_failures != 0) {
    majority_failures_->Add(pending_.majority_failures);
  }
  if (pending_.no_majority_rounds != 0) {
    no_majority_rounds_->Add(pending_.no_majority_rounds);
  }
  pending_ = Pending{};
  rounds_since_flush_ = 0;
}

void MetricsObserver::OnRoundBegin(size_t round_index,
                                   const core::VoteContext& context) {
  // Dispatched only on sampled rounds: OnRoundCommitted raises the
  // stage_hooks_enabled_ gate for the rounds it wants timed (plus the
  // very first round, whose gate is the constructor default), and the
  // engine skips both this hook and the nine OnStageDone calls when the
  // gate is down — an untimed round costs one virtual call total.
  (void)round_index;
  if (!quorum_required_known_) {
    // Mirrors QuorumStage's threshold; constant for the engine's lifetime.
    quorum_required_known_ = true;
    const core::QuorumParams& quorum = context.config->quorum;
    quorum_required_ = std::max<size_t>(
        quorum.min_count,
        static_cast<size_t>(std::ceil(
            quorum.fraction * static_cast<double>(context.module_count) -
            1e-9)));
  }
  sampling_round_ = options_.sample_every != 0;
  if (sampling_round_) {
    stage_cursor_ = 0;
    round_start_ = Clock::now();
    stage_mark_ = round_start_;
  }
}

void MetricsObserver::OnStageDone(std::string_view stage,
                                  const core::VoteContext& context) {
  (void)context;
  if (!sampling_round_) return;  // engine gate off, or foreign dispatch
  // Stages fire in pipeline order; the cursor makes the histogram lookup
  // O(1) with a name check, falling back to a scan for custom pipelines.
  size_t index = stage_cursor_;
  if (index >= core::kStageNames.size() ||
      core::kStageNames[index] != stage) {
    const auto* it =
        std::find(core::kStageNames.begin(), core::kStageNames.end(), stage);
    if (it == core::kStageNames.end()) return;  // unknown stage: skip
    index = static_cast<size_t>(it - core::kStageNames.begin());
  }
  stage_cursor_ = index + 1;

  const Clock::time_point now = Clock::now();
  stage_latency_[index]->Record(
      static_cast<uint64_t>(std::chrono::duration_cast<
                                std::chrono::nanoseconds>(now - stage_mark_)
                                .count()));
  stage_mark_ = now;

  // Sampled rounds drop one flight-recorder breadcrumb per stage when the
  // round runs under a traced request (the engine span is current on this
  // thread); timestamps come from the tracer's clock so DST dumps stay
  // deterministic.
  if (options_.tracer != nullptr &&
      CurrentTraceSpan().tracer == options_.tracer) {
    options_.tracer->Event("engine.stage", stage);
  }
}

void MetricsObserver::OnRoundCommitted(size_t round_index,
                                       const core::RoundColumns& columns,
                                       const core::RoundScalars& scalars) {
  ++pending_.rounds;
  const size_t outcome = static_cast<size_t>(scalars.outcome);
  if (outcome < pending_.outcome.size()) ++pending_.outcome[outcome];
  pending_.clustered_rounds += static_cast<uint64_t>(scalars.used_clustering);
  pending_.no_majority_rounds += static_cast<uint64_t>(!scalars.had_majority);
  if (scalars.outcome != core::RoundOutcome::kVoted) {
    // Only the quorum and majority stages carry fault policies; which one
    // fired follows from how the round entered.
    if (scalars.present_count < quorum_required_) {
      ++pending_.quorum_failures;
    } else {
      ++pending_.majority_failures;
    }
  }

  pending_.excluded_modules += scalars.excluded_count;
  pending_.eliminated_modules += scalars.eliminated_count;

  // History collapse (§5: every record driven to zero forces a bootstrap
  // re-cluster).  columns.history is the committed ledger state; records
  // start at 1.0 and decay towards 0, so the first-record test rejects
  // the overwhelming majority of rounds with a single compare.
  if (!columns.history.empty() &&
      std::fabs(columns.history.front()) <= 1e-12) {
    bool collapsed = true;
    for (size_t m = 1; m < columns.history.size(); ++m) {
      if (std::fabs(columns.history[m]) > 1e-12) {
        collapsed = false;
        break;
      }
    }
    if (collapsed) {
      ++pending_.history_collapse;
      if (options_.log_events) {
        Event("history_collapse")
            .Str(options_.scope_label, options_.scope)
            .Num("round", round_index)
            .LogAt(LogLevel::kWarn);
      }
    }
  }

  if (options_.exclusion_streak_alert != 0) {
    if (exclusion_streaks_.size() != columns.excluded.size()) {
      exclusion_streaks_.assign(columns.excluded.size(), 0);  // warm-up
    }
    for (size_t m = 0; m < columns.excluded.size(); ++m) {
      if (columns.excluded[m] != 0) {
        if (++exclusion_streaks_[m] == options_.exclusion_streak_alert &&
            options_.log_events) {
          Event("sensor_excluded_streak")
              .Str(options_.scope_label, options_.scope)
              .Num("module", m)
              .Num("rounds", uint64_t{options_.exclusion_streak_alert})
              .Num("round", round_index)
              .LogAt(LogLevel::kWarn);
        }
      } else {
        exclusion_streaks_[m] = 0;
      }
    }
  }

  if (sampling_round_) {
    round_latency_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             round_start_)
            .count()));
    sampling_round_ = false;
  }
  // Schedule the next sampled round: raise the engine-side gate exactly
  // when the next round should be timed (OnRoundBegin takes it from
  // there).  In between, the engine dispatches only this hook.
  stage_hooks_enabled_ = options_.sample_every != 0 &&
                         ++rounds_since_sample_ >= options_.sample_every;
  if (stage_hooks_enabled_) rounds_since_sample_ = 0;
  if (++rounds_since_flush_ >= options_.flush_every) Flush();
}

}  // namespace avoc::obs
