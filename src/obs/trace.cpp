#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>

namespace avoc::obs {
namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t RoundUpPow2(size_t v) {
  size_t p = 2;
  while (p < v) p <<= 1;
  return p;
}

uint64_t SplitMix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Ring selection mirrors the metrics registry's sharding: a cheap
/// thread-local round-robin assignment, so per-core server threads land
/// on distinct rings without coordination.
size_t ThreadRing(size_t ring_count) {
  static std::atomic<size_t> next{0};
  thread_local const size_t assigned =
      next.fetch_add(1, std::memory_order_relaxed);
  return assigned % ring_count;
}

struct SpanStackEntry {
  Tracer* tracer = nullptr;
  SpanContext context;
};

/// Fixed-depth per-thread span stack.  Depth 16 covers the deepest real
/// nesting (client submit -> attempt -> server -> engine -> storage is
/// five); overflow simply leaves deeper spans un-parented.
struct SpanStack {
  SpanStackEntry entries[16];
  size_t depth = 0;
};

SpanStack& ThreadSpanStack() {
  thread_local SpanStack stack;
  return stack;
}

thread_local uint64_t g_last_trace_id = 0;

}  // namespace

std::string_view SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kClient: return "client";
    case SpanKind::kServer: return "server";
    case SpanKind::kEngine: return "engine";
    case SpanKind::kStorage: return "storage";
    case SpanKind::kEvent: return "event";
    case SpanKind::kInvalid: break;
  }
  return "invalid";
}

void CopyToken(char* dst, size_t capacity, std::string_view s) {
  const size_t n = std::min(capacity - 1, s.size());
  std::memcpy(dst, s.data(), n);
  std::memset(dst + n, 0, capacity - n);
  // The dump format is line-oriented: a newline smuggled in via an error
  // message must not be able to forge or corrupt records.
  for (size_t i = 0; i < n; ++i) {
    if (dst[i] == '\n' || dst[i] == '\r') dst[i] = ' ';
  }
}

TraceRing::TraceRing(size_t capacity)
    : mask_(RoundUpPow2(std::max<size_t>(capacity, 2)) - 1),
      slots_(new Slot[mask_ + 1]) {}

bool TraceRing::Record(const SpanRecord& record) {
  uint64_t words[kSpanRecordWords];
  std::memcpy(words, &record, sizeof(record));

  const size_t index =
      head_.fetch_add(1, std::memory_order_relaxed) & mask_;
  Slot& slot = slots_[index];
  uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  if ((seq & 1) != 0 ||
      !slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    // Another writer owns this slot (wrap-around under heavy load).
    // Dropping beats blocking: the recorder must never stall a shard.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  for (size_t w = 0; w < kSpanRecordWords; ++w) {
    slot.words[w].store(words[w], std::memory_order_relaxed);
  }
  slot.seq.store(seq + 2, std::memory_order_release);
  return true;
}

void TraceRing::Snapshot(std::vector<SpanRecord>* out) const {
  uint64_t words[kSpanRecordWords];
  for (size_t i = 0; i <= mask_; ++i) {
    const Slot& slot = slots_[i];
    const uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    for (size_t w = 0; w < kSpanRecordWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;  // torn
    SpanRecord record;
    std::memcpy(&record, words, sizeof(record));
    out->push_back(record);
  }
}

Tracer::Tracer(TracerOptions options)
    : now_ns_(options.now_ns ? std::move(options.now_ns) : SteadyNowNs) {
  const size_t rings = std::max<size_t>(options.ring_count, 1);
  rings_.reserve(rings);
  for (size_t i = 0; i < rings; ++i) {
    rings_.push_back(std::make_unique<TraceRing>(options.ring_capacity));
  }
}

uint64_t Tracer::DeriveTraceId(std::string_view client_id, uint64_t seq) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a over the identity
  for (const char c : client_id) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  }
  const uint64_t id = SplitMix64(h ^ SplitMix64(seq));
  return id != 0 ? id : 1;
}

void Tracer::Record(const SpanRecord& record) {
  if (!enabled()) return;
  rings_[ThreadRing(rings_.size())]->Record(record);
}

void Tracer::Event(std::string_view name, std::string_view detail) {
  if (!enabled()) return;
  SpanRecord record;
  const CurrentSpan current = CurrentTraceSpan();
  if (current.tracer == this && current.context.valid()) {
    record.trace_id = current.context.trace_id;
    record.parent_id = current.context.span_id;
  }
  record.span_id = NextSpanId();
  record.start_ns = now_ns_();
  record.end_ns = record.start_ns;
  record.kind = static_cast<uint8_t>(SpanKind::kEvent);
  CopyToken(record.name, sizeof(record.name), name);
  CopyToken(record.detail, sizeof(record.detail), detail);
  Record(record);
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> records;
  for (const auto& ring : rings_) ring->Snapshot(&records);
  return records;
}

std::string FormatSpanLine(const SpanRecord& record) {
  char buffer[320];
  const int n = std::snprintf(
      buffer, sizeof(buffer),
      "trace=%016llx span=%016llx parent=%016llx kind=%s start=%llu "
      "end=%llu name=%s detail=%s",
      static_cast<unsigned long long>(record.trace_id),
      static_cast<unsigned long long>(record.span_id),
      static_cast<unsigned long long>(record.parent_id),
      SpanKindName(static_cast<SpanKind>(record.kind)).data(),
      static_cast<unsigned long long>(record.start_ns),
      static_cast<unsigned long long>(record.end_ns), record.name,
      record.detail);
  return std::string(buffer, n > 0 ? static_cast<size_t>(n) : 0);
}

std::string Tracer::DumpText() const {
  std::vector<SpanRecord> records = Snapshot();
  // Ring index and snapshot order are scheduling accidents; (start, span
  // id) is total because span ids are unique, so equal histories dump as
  // equal bytes — the determinism the chaos sweeps assert on.
  std::sort(records.begin(), records.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.span_id < b.span_id;
            });
  std::string out = "AVOC-TRACE v1\n";
  for (const SpanRecord& record : records) {
    out += FormatSpanLine(record);
    out.push_back('\n');
  }
  return out;
}

uint64_t Tracer::dropped() const {
  uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

CurrentSpan CurrentTraceSpan() {
  const SpanStack& stack = ThreadSpanStack();
  if (stack.depth == 0) return {};
  const SpanStackEntry& top = stack.entries[stack.depth - 1];
  return {top.tracer, top.context};
}

uint64_t ConsumeLastTraceId() {
  const uint64_t id = g_last_trace_id;
  g_last_trace_id = 0;
  return id;
}

ScopedSpan::ScopedSpan(Tracer* tracer, SpanKind kind, std::string_view name,
                       const SpanContext& parent, std::string_view detail)
    : tracer_(tracer) {
  // A muted tracer nulls out the span entirely so the destructor and
  // SetDetail stay no-ops too.
  if (tracer_ == nullptr || !tracer_->enabled()) {
    tracer_ = nullptr;
    return;
  }
  record_.span_id = tracer_->NextSpanId();
  if (parent.valid()) {
    record_.trace_id = parent.trace_id;
    record_.parent_id = parent.span_id;
  } else {
    // Locally rooted: the flight recorder covers every request, context
    // or not.  The span id doubles as the trace id (both unique).
    record_.trace_id = record_.span_id;
    record_.parent_id = 0;
  }
  record_.kind = static_cast<uint8_t>(kind);
  CopyToken(record_.name, sizeof(record_.name), name);
  CopyToken(record_.detail, sizeof(record_.detail), detail);
  record_.start_ns = tracer_->now_ns();

  SpanStack& stack = ThreadSpanStack();
  if (stack.depth < std::size(stack.entries)) {
    stack.entries[stack.depth++] = {tracer_, context()};
  }
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  record_.end_ns = tracer_->now_ns();
  tracer_->Record(record_);
  SpanStack& stack = ThreadSpanStack();
  if (stack.depth > 0 &&
      stack.entries[stack.depth - 1].context.span_id == record_.span_id) {
    --stack.depth;
  }
  g_last_trace_id = record_.trace_id;
}

SpanContext ScopedSpan::context() const {
  if (tracer_ == nullptr) return {};
  SpanContext context;
  context.trace_id = record_.trace_id;
  context.span_id = record_.span_id;
  context.flags = 1;  // propagated spans are by definition sampled
  return context;
}

void ScopedSpan::SetDetail(std::string_view detail) {
  if (tracer_ == nullptr) return;
  CopyToken(record_.detail, sizeof(record_.detail), detail);
}

void ScopedSpan::SetDetailF(const char* format, ...) {
  if (tracer_ == nullptr) return;
  va_list args;
  va_start(args, format);
  const int n =
      std::vsnprintf(record_.detail, sizeof(record_.detail), format, args);
  va_end(args);
  const size_t len =
      n < 0 ? 0
            : std::min(static_cast<size_t>(n), sizeof(record_.detail) - 1);
  // Same line-discipline as CopyToken: the dump format is line-oriented,
  // so newlines from formatted arguments must not forge records.
  for (size_t i = 0; i < len; ++i) {
    if (record_.detail[i] == '\n' || record_.detail[i] == '\r') {
      record_.detail[i] = ' ';
    }
  }
  // NUL-pad the tail so a shorter detail never leaks bytes from a longer
  // one written earlier through the raw ring words.
  std::memset(record_.detail + len, 0, sizeof(record_.detail) - len);
}

}  // namespace avoc::obs
