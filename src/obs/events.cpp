#include "obs/events.h"

#include "util/strings.h"

namespace avoc::obs {

Event::Event(std::string_view name) {
  json_ = "{\"event\":\"";
  json_ += name;
  json_ += '"';
}

Event& Event::Key(std::string_view key) {
  json_ += ",\"";
  json_ += key;
  json_ += "\":";
  return *this;
}

Event& Event::Str(std::string_view key, std::string_view value) {
  Key(key);
  json_ += '"';
  for (const char c : value) {
    if (c == '"' || c == '\\') json_ += '\\';
    json_ += c;
  }
  json_ += '"';
  return *this;
}

Event& Event::Num(std::string_view key, double value) {
  Key(key);
  json_ += StrFormat("%.17g", value);
  return *this;
}

Event& Event::Num(std::string_view key, uint64_t value) {
  Key(key);
  json_ += StrFormat("%llu", static_cast<unsigned long long>(value));
  return *this;
}

std::string Event::Build() {
  json_ += '}';
  return std::move(json_);
}

void Event::LogAt(LogLevel level) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  LogMessage(level, Build());
}

}  // namespace avoc::obs
