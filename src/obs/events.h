// Structured JSON event logging for rare voter events.
//
// Counters answer "how often"; these answer "what exactly happened" for
// the events an operator must be able to grep out of a long-running
// service: a history collapse forcing a re-cluster, a sensor excluded for
// N consecutive rounds, a quorum outage.  Events flow through util::log
// (so deployments keep one sink) as single-line JSON objects:
//
//   {"event":"sensor_excluded_streak","group":"shelf-3","module":2,"rounds":8}
//
// This is a cold path: events are rare by construction, so the builder
// may allocate freely.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/log.h"

namespace avoc::obs {

/// Incremental one-line JSON event.  Keys are code-chosen identifiers
/// (no escaping applied); string values are escaped for quotes/backslash.
class Event {
 public:
  explicit Event(std::string_view name);

  Event& Str(std::string_view key, std::string_view value);
  Event& Num(std::string_view key, double value);
  Event& Num(std::string_view key, uint64_t value);

  /// The JSON object, closed.  Consumes the builder.
  std::string Build();

  /// Closes the object and emits it through util::log at `level`.
  /// Consumes the builder.
  void LogAt(LogLevel level);

 private:
  Event& Key(std::string_view key);

  std::string json_;
};

}  // namespace avoc::obs
