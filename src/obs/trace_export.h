// Converts canonical AVOC-TRACE dumps to Chrome trace_event JSON.
//
// Tracer::DumpText() (and the TRACE_DUMP wire verb that exposes it) emit
// a stable line-oriented text format; this header turns that text into
// the JSON Array Format understood by chrome://tracing and Perfetto, so
// a flight-recorder snapshot from a production shard drops straight into
// a timeline viewer.  Spans become complete ("X") events with
// microsecond timestamps; point events become instant ("i") events; the
// span kind selects the tid so each layer (client/server/engine/storage)
// renders as its own track.
#pragma once

#include <string>
#include <string_view>

#include "util/status.h"

namespace avoc::obs {

/// Parses a Tracer::DumpText() payload and returns the Chrome
/// trace_event JSON document.  ParseError on a malformed dump (wrong
/// header or an unparseable record line).
Result<std::string> TraceDumpToChromeJson(std::string_view dump);

}  // namespace avoc::obs
