#include "obs/trace_export.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/trace.h"
#include "util/strings.h"

namespace avoc::obs {
namespace {

/// Minimal JSON string escaping (quote, backslash, control bytes).
void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Consumes "key=" then the value up to the next space (or end of line).
bool ReadField(std::string_view& line, std::string_view key,
               std::string_view* value) {
  if (line.size() < key.size() + 1 ||
      line.substr(0, key.size()) != key || line[key.size()] != '=') {
    return false;
  }
  line.remove_prefix(key.size() + 1);
  const size_t space = line.find(' ');
  *value = line.substr(0, space);
  line.remove_prefix(space == std::string_view::npos ? line.size()
                                                     : space + 1);
  return true;
}

bool ParseU64(std::string_view s, int base, uint64_t* value) {
  if (s.empty() || s.size() >= 32) return false;
  char buffer[32];
  std::memcpy(buffer, s.data(), s.size());
  buffer[s.size()] = '\0';
  char* end = nullptr;
  *value = std::strtoull(buffer, &end, base);
  return end == buffer + s.size();
}

}  // namespace

Result<std::string> TraceDumpToChromeJson(std::string_view dump) {
  constexpr std::string_view kHeader = "AVOC-TRACE v1";
  size_t cursor = dump.find('\n');
  if (cursor == std::string_view::npos ||
      dump.substr(0, cursor) != kHeader) {
    return ParseError("trace dump missing AVOC-TRACE v1 header");
  }
  ++cursor;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  size_t line_no = 1;
  while (cursor < dump.size()) {
    ++line_no;
    const size_t eol = dump.find('\n', cursor);
    std::string_view line =
        dump.substr(cursor, eol == std::string_view::npos ? std::string_view::npos
                                                          : eol - cursor);
    cursor = eol == std::string_view::npos ? dump.size() : eol + 1;
    if (line.empty()) continue;

    std::string_view trace, span, parent, kind, start, end, name;
    uint64_t trace_id = 0, span_id = 0, parent_id = 0, start_ns = 0,
             end_ns = 0;
    // `detail` is last and may contain spaces: it is the line remainder.
    if (!ReadField(line, "trace", &trace) || !ReadField(line, "span", &span) ||
        !ReadField(line, "parent", &parent) ||
        !ReadField(line, "kind", &kind) || !ReadField(line, "start", &start) ||
        !ReadField(line, "end", &end) || !ReadField(line, "name", &name) ||
        line.substr(0, 7) != "detail=" || !ParseU64(trace, 16, &trace_id) ||
        !ParseU64(span, 16, &span_id) || !ParseU64(parent, 16, &parent_id) ||
        !ParseU64(start, 10, &start_ns) || !ParseU64(end, 10, &end_ns)) {
      return ParseError(
          StrFormat("malformed trace dump record at line %zu", line_no));
    }
    const std::string_view detail = line.substr(7);

    if (!first) out.push_back(',');
    first = false;
    const bool instant = kind == "event";
    // Lane per layer: the tid orders tracks in the viewer.
    int tid = 0;
    if (kind == "client") tid = 1;
    else if (kind == "server") tid = 2;
    else if (kind == "engine") tid = 3;
    else if (kind == "storage") tid = 4;
    else if (kind == "event") tid = 5;

    out += "{\"name\":";
    AppendJsonString(out, name);
    out += ",\"cat\":\"avoc\",\"ph\":";
    out += instant ? "\"i\",\"s\":\"t\"" : "\"X\"";
    out += StrFormat(",\"ts\":%llu.%03llu",
                     static_cast<unsigned long long>(start_ns / 1000),
                     static_cast<unsigned long long>(start_ns % 1000));
    if (!instant) {
      const uint64_t dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
      out += StrFormat(",\"dur\":%llu.%03llu",
                       static_cast<unsigned long long>(dur_ns / 1000),
                       static_cast<unsigned long long>(dur_ns % 1000));
    }
    out += StrFormat(",\"pid\":1,\"tid\":%d,\"args\":{\"trace\":\"%016llx\","
                     "\"span\":\"%016llx\",\"parent\":\"%016llx\",\"detail\":",
                     tid, static_cast<unsigned long long>(trace_id),
                     static_cast<unsigned long long>(span_id),
                     static_cast<unsigned long long>(parent_id));
    AppendJsonString(out, detail);
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace avoc::obs
