// Lock-free runtime metrics: the voter telemetry substrate.
//
// The batch result path (core/vote_sink.h) made the hot loop
// allocation-free; this layer keeps it *observation*-free too.  Every
// primitive here is wait-free on the write side once created:
//
//   * Counter          — monotonic count, sharded across cache-line-padded
//                        per-thread slots so concurrent writers never
//                        contend on one line; Value() sums the shards.
//   * Gauge            — one relaxed atomic double (queue depth, lag).
//   * LatencyHistogram — fixed log-linear buckets of atomic bins; distinct
//                        from the offline stats::Histogram (which is
//                        float-range, single-threaded, and render-oriented).
//                        Snapshots are plain structs that merge, so
//                        per-shard histograms aggregate into one p50/p95/p99.
//   * Registry         — names -> metric objects.  Creation takes a mutex
//                        (cold path, done at wiring time); the returned
//                        references are stable for the registry's lifetime
//                        and writing through them never locks.
//
// Everything is off by default: nothing in core/ or runtime/ touches a
// registry unless one is handed in through the layer's options.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace avoc::obs {

/// Shards per Counter.  Threads hash onto slots; 16 covers the worker
/// pools in use while keeping an idle Counter at one KiB.
inline constexpr size_t kCounterShards = 16;

/// Stable per-thread shard index in [0, kCounterShards).
size_t ThreadShard();

/// Monotonic counter, sharded per thread slot.  Add is wait-free and
/// allocation-free; Value sums the slots (readers may observe a value
/// mid-round, which is fine for monitoring).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) {
    cells_[ThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Cell& cell : cells_) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  std::array<Cell, kCounterShards> cells_;
};

/// Last-writer-wins instantaneous value (queue depth, lag, flags).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A mergeable, point-in-time copy of a LatencyHistogram.  Plain data:
/// merge per-shard snapshots, then read quantiles off the union.
struct LatencySnapshot {
  std::vector<uint64_t> counts;  ///< one entry per histogram bucket
  uint64_t count = 0;            ///< total recorded values
  uint64_t sum = 0;              ///< sum of recorded nanoseconds
  uint64_t exemplar_trace_id = 0;  ///< last exemplar (0 = none)
  uint64_t exemplar_nanos = 0;     ///< latency of that exemplar

  /// Adds `other` bucket-wise.  An empty snapshot adopts other's shape.
  void Merge(const LatencySnapshot& other);

  /// Approximate q-quantile in nanoseconds (bucket midpoint); 0 when
  /// empty.  q is clamped to [0, 1].
  double Quantile(double q) const;

  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Fixed-bucket concurrent latency histogram over nanoseconds.
///
/// Buckets are log-linear: values below 8 ns get exact buckets, then four
/// sub-buckets per power of two up to ~9 minutes (larger values clamp into
/// the last bucket).  Relative quantile error is therefore bounded by
/// 12.5%.  Record is wait-free (two relaxed adds and one bin add).
class LatencyHistogram {
 public:
  static constexpr size_t kLinearBuckets = 8;  ///< exact 0..7 ns
  static constexpr size_t kSubBuckets = 4;     ///< per octave above that
  static constexpr size_t kOctaves = 37;       ///< octaves 3..39 (~9.2 min)
  static constexpr size_t kBucketCount = kLinearBuckets + kOctaves * kSubBuckets;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Bucket index of a nanosecond value (total order, clamped at the top).
  static size_t BucketIndex(uint64_t nanos);

  /// Inclusive lower bound of bucket `index`;
  /// BucketLowerBound(kBucketCount) is the clamp threshold.
  static uint64_t BucketLowerBound(size_t index);

  void Record(uint64_t nanos) {
    bins_[BucketIndex(nanos)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(nanos, std::memory_order_relaxed);
  }

  /// Record plus a histogram exemplar: the trace id of the request that
  /// produced this sample, linking aggregate latency back to a concrete
  /// flight-recorder trace (obs/trace.h).  Last writer wins; id 0 means
  /// "untraced" and leaves the previous exemplar in place.
  void RecordWithExemplar(uint64_t nanos, uint64_t trace_id) {
    Record(nanos);
    if (trace_id != 0) {
      exemplar_trace_id_.store(trace_id, std::memory_order_relaxed);
      exemplar_nanos_.store(nanos, std::memory_order_relaxed);
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t exemplar_trace_id() const {
    return exemplar_trace_id_.load(std::memory_order_relaxed);
  }

  /// Copies the bins.  Concurrent Records may straddle the copy; the
  /// snapshot is still a valid histogram of a subset/superset boundary at
  /// most one in-flight Record wide per writer.
  LatencySnapshot Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kBucketCount> bins_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> exemplar_trace_id_{0};
  std::atomic<uint64_t> exemplar_nanos_{0};
};

/// Escapes a label value for the Prometheus text format: `\` -> `\\`,
/// `"` -> `\"`, newline -> `\n`.  Group names come off the wire, so they
/// are attacker-shaped, not code-chosen.
std::string EscapeLabelValue(std::string_view value);

/// `family{key="value"}` — the Prometheus-style name under which labeled
/// metrics register.  Keys are code-chosen tokens; values are escaped
/// with EscapeLabelValue, so hostile group ids render as valid text.
std::string LabeledName(std::string_view family, std::string_view label_key,
                        std::string_view label_value);

/// Two-label variant, keys in the given order.
std::string LabeledName(std::string_view family, std::string_view key1,
                        std::string_view value1, std::string_view key2,
                        std::string_view value2);

/// Named metric store.  GetX returns the existing metric when the name is
/// already registered (same kind), so independent wiring sites share one
/// object per name.  References stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  LatencyHistogram& GetHistogram(const std::string& name);

  size_t metric_count() const;

  /// Sum of every counter whose name is `family` exactly or
  /// `family{...}` — the aggregated view across labeled instances.
  uint64_t SumCounters(std::string_view family) const;

  /// Bucket-wise merge of every histogram in the family (same matching
  /// rule as SumCounters) — aggregated percentiles across shards.
  LatencySnapshot MergeHistograms(std::string_view family) const;

  /// Prometheus-style text exposition: counters and gauges as plain
  /// samples, histograms as quantile/_count/_sum summaries.  Lines end in
  /// '\n'; metric families are emitted in name order.
  std::string RenderPrometheus() const;

  /// Process-wide default instance for code without explicit wiring.
  static Registry& Default();

 private:
  template <typename T>
  static T& GetOrCreate(std::mutex& mutex,
                        std::map<std::string, std::unique_ptr<T>>& metrics,
                        const std::string& name);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace avoc::obs
