#include "data/round_table.h"

#include "util/strings.h"

namespace avoc::data {

RoundTable::RoundTable(std::vector<std::string> module_names)
    : module_names_(std::move(module_names)) {}

RoundTable RoundTable::WithModuleCount(size_t modules) {
  std::vector<std::string> names;
  names.reserve(modules);
  for (size_t i = 0; i < modules; ++i) names.push_back(StrFormat("m%zu", i));
  return RoundTable(std::move(names));
}

Result<size_t> RoundTable::ModuleIndex(std::string_view name) const {
  for (size_t i = 0; i < module_names_.size(); ++i) {
    if (module_names_[i] == name) return i;
  }
  return NotFoundError("no module named '" + std::string(name) + "'");
}

Status RoundTable::AppendRound(std::vector<Reading> readings) {
  if (readings.size() != module_count()) {
    return InvalidArgumentError(
        StrFormat("round has %zu readings, table has %zu modules",
                  readings.size(), module_count()));
  }
  rows_.push_back(std::move(readings));
  return Status::Ok();
}

Status RoundTable::AppendRound(std::span<const double> readings) {
  std::vector<Reading> row;
  row.reserve(readings.size());
  for (const double v : readings) row.emplace_back(v);
  return AppendRound(std::move(row));
}

Reading& RoundTable::At(size_t round, size_t module) {
  return rows_.at(round).at(module);
}

const Reading& RoundTable::At(size_t round, size_t module) const {
  return rows_.at(round).at(module);
}

std::vector<Reading> RoundTable::ModuleSeries(size_t module) const {
  std::vector<Reading> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) out.push_back(row.at(module));
  return out;
}

std::vector<double> RoundTable::ModuleValues(size_t module) const {
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) {
    if (row.at(module).has_value()) out.push_back(*row.at(module));
  }
  return out;
}

size_t RoundTable::missing_count() const {
  size_t missing = 0;
  for (const auto& row : rows_) {
    for (const auto& reading : row) {
      if (!reading.has_value()) ++missing;
    }
  }
  return missing;
}

Result<RoundTable> RoundTable::Slice(size_t begin, size_t end) const {
  if (begin > end || end > rows_.size()) {
    return OutOfRangeError(StrFormat("slice [%zu, %zu) of %zu rounds", begin,
                                     end, rows_.size()));
  }
  RoundTable out(module_names_);
  for (size_t r = begin; r < end; ++r) {
    AVOC_RETURN_IF_ERROR(out.AppendRound(rows_[r]));
  }
  return out;
}

Result<RoundTable> RoundTable::SelectModules(
    std::span<const size_t> modules) const {
  std::vector<std::string> names;
  for (const size_t m : modules) {
    if (m >= module_count()) {
      return OutOfRangeError(StrFormat("module %zu of %zu", m, module_count()));
    }
    names.push_back(module_names_[m]);
  }
  RoundTable out(std::move(names));
  for (const auto& row : rows_) {
    std::vector<Reading> selected;
    selected.reserve(modules.size());
    for (const size_t m : modules) selected.push_back(row[m]);
    AVOC_RETURN_IF_ERROR(out.AppendRound(std::move(selected)));
  }
  return out;
}

CategoricalRoundTable::CategoricalRoundTable(
    std::vector<std::string> module_names)
    : module_names_(std::move(module_names)) {}

Status CategoricalRoundTable::AppendRound(std::vector<Label> labels) {
  if (labels.size() != module_count()) {
    return InvalidArgumentError(
        StrFormat("round has %zu labels, table has %zu modules", labels.size(),
                  module_count()));
  }
  rows_.push_back(std::move(labels));
  return Status::Ok();
}

}  // namespace avoc::data
