#include "data/round_table.h"

#include <stdexcept>

#include "util/strings.h"

namespace avoc::data {

RoundTable::RoundTable(std::vector<std::string> module_names)
    : module_names_(std::move(module_names)) {}

RoundTable RoundTable::WithModuleCount(size_t modules) {
  std::vector<std::string> names;
  names.reserve(modules);
  for (size_t i = 0; i < modules; ++i) names.push_back(StrFormat("m%zu", i));
  return RoundTable(std::move(names));
}

Result<size_t> RoundTable::ModuleIndex(std::string_view name) const {
  for (size_t i = 0; i < module_names_.size(); ++i) {
    if (module_names_[i] == name) return i;
  }
  return NotFoundError("no module named '" + std::string(name) + "'");
}

Status RoundTable::AppendRound(std::vector<Reading> readings) {
  if (readings.size() != module_count()) {
    return InvalidArgumentError(
        StrFormat("round has %zu readings, table has %zu modules",
                  readings.size(), module_count()));
  }
  for (const Reading& reading : readings) {
    values_.push_back(reading.value_or(0.0));
    presents_.push_back(reading.has_value() ? 1 : 0);
  }
  ++rounds_;
  return Status::Ok();
}

Status RoundTable::AppendRound(std::span<const double> readings) {
  if (readings.size() != module_count()) {
    return InvalidArgumentError(
        StrFormat("round has %zu readings, table has %zu modules",
                  readings.size(), module_count()));
  }
  values_.insert(values_.end(), readings.begin(), readings.end());
  presents_.insert(presents_.end(), readings.size(), 1);
  ++rounds_;
  return Status::Ok();
}

RoundView RoundTable::View(size_t r) const {
  if (r >= rounds_) {
    throw std::out_of_range(
        StrFormat("round %zu of %zu", r, rounds_));
  }
  const size_t offset = r * module_count();
  return RoundView{
      std::span<const double>(values_).subspan(offset, module_count()),
      std::span<const uint8_t>(presents_).subspan(offset, module_count())};
}

std::vector<Reading> RoundTable::MaterializeRound(size_t r) const {
  const RoundView view = View(r);
  std::vector<Reading> out;
  out.reserve(module_count());
  for (size_t m = 0; m < module_count(); ++m) out.push_back(view.at(m));
  return out;
}

void RoundTable::CheckCell(size_t round, size_t module) const {
  if (round >= rounds_ || module >= module_count()) {
    throw std::out_of_range(StrFormat("cell (%zu, %zu) of %zu x %zu", round,
                                      module, rounds_, module_count()));
  }
}

RoundTable::CellRef RoundTable::At(size_t round, size_t module) {
  CheckCell(round, module);
  const size_t i = round * module_count() + module;
  return CellRef(&values_[i], &presents_[i]);
}

Reading RoundTable::At(size_t round, size_t module) const {
  CheckCell(round, module);
  const size_t i = round * module_count() + module;
  return presents_[i] != 0 ? Reading(values_[i]) : std::nullopt;
}

std::vector<Reading> RoundTable::ModuleSeries(size_t module) const {
  std::vector<Reading> out;
  out.reserve(rounds_);
  for (size_t r = 0; r < rounds_; ++r) out.push_back(At(r, module));
  return out;
}

std::vector<double> RoundTable::ModuleValues(size_t module) const {
  std::vector<double> out;
  out.reserve(rounds_);
  for (size_t r = 0; r < rounds_; ++r) {
    const size_t i = r * module_count() + module;
    if (presents_.at(i) != 0) out.push_back(values_[i]);
  }
  return out;
}

size_t RoundTable::missing_count() const {
  size_t missing = 0;
  for (const uint8_t present : presents_) {
    if (present == 0) ++missing;
  }
  return missing;
}

Result<RoundTable> RoundTable::Slice(size_t begin, size_t end) const {
  if (begin > end || end > rounds_) {
    return OutOfRangeError(StrFormat("slice [%zu, %zu) of %zu rounds", begin,
                                     end, rounds_));
  }
  RoundTable out(module_names_);
  const size_t modules = module_count();
  out.values_.assign(values_.begin() + static_cast<ptrdiff_t>(begin * modules),
                     values_.begin() + static_cast<ptrdiff_t>(end * modules));
  out.presents_.assign(
      presents_.begin() + static_cast<ptrdiff_t>(begin * modules),
      presents_.begin() + static_cast<ptrdiff_t>(end * modules));
  out.rounds_ = end - begin;
  return out;
}

Result<RoundTable> RoundTable::SelectModules(
    std::span<const size_t> modules) const {
  std::vector<std::string> names;
  for (const size_t m : modules) {
    if (m >= module_count()) {
      return OutOfRangeError(StrFormat("module %zu of %zu", m, module_count()));
    }
    names.push_back(module_names_[m]);
  }
  RoundTable out(std::move(names));
  out.values_.reserve(rounds_ * modules.size());
  out.presents_.reserve(rounds_ * modules.size());
  for (size_t r = 0; r < rounds_; ++r) {
    const size_t offset = r * module_count();
    for (const size_t m : modules) {
      out.values_.push_back(values_[offset + m]);
      out.presents_.push_back(presents_[offset + m]);
    }
  }
  out.rounds_ = rounds_;
  return out;
}

CategoricalRoundTable::CategoricalRoundTable(
    std::vector<std::string> module_names)
    : module_names_(std::move(module_names)) {}

Status CategoricalRoundTable::AppendRound(std::vector<Label> labels) {
  if (labels.size() != module_count()) {
    return InvalidArgumentError(
        StrFormat("round has %zu labels, table has %zu modules", labels.size(),
                  module_count()));
  }
  rows_.push_back(std::move(labels));
  return Status::Ok();
}

}  // namespace avoc::data
