// Minimal RFC-4180-style CSV reader/writer.
//
// Datasets move between the simulator, the voting harness and external
// plotting tools as CSV — the same interchange the paper used for its
// pre-recorded reference datasets.  Quoted fields (with embedded commas,
// quotes and newlines) are supported; empty cells encode missing readings.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace avoc::data {

struct CsvTable {
  std::vector<std::string> header;        // empty when has_header=false
  std::vector<std::vector<std::string>> rows;

  size_t column_count() const {
    if (!header.empty()) return header.size();
    return rows.empty() ? 0 : rows.front().size();
  }
};

struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Reject rows whose arity differs from the header/first row.
  bool strict_row_arity = true;
};

/// Parses CSV text.
Result<CsvTable> ParseCsv(std::string_view text, const CsvOptions& options = {});

/// Serialises a table; fields containing the delimiter, quotes or newlines
/// are quoted.
std::string WriteCsv(const CsvTable& table, const CsvOptions& options = {});

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

/// Writes a CSV file (atomically via rename where the filesystem allows).
Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    const CsvOptions& options = {});

}  // namespace avoc::data
