// Asynchronous sample streams and round resampling.
//
// Real sensors do not deliver neat synchronous rounds: BLE beacons
// advertise on their own schedules, WiFi hubs batch, clocks drift.  The
// paper's hub "record[s] rounds of concurrent measurements" — this module
// is the substrate that turns per-module timestamped streams into the
// RoundTable the voting engine consumes, with explicit staleness
// semantics (an old sample must not masquerade as a fresh reading: it
// becomes a missing value, feeding the §7 missing-value scenario).
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "data/round_table.h"
#include "util/status.h"

namespace avoc::data {

/// One timestamped measurement.
struct Sample {
  double timestamp = 0.0;  ///< seconds, any epoch (shared across streams)
  double value = 0.0;
};

/// One module's asynchronous measurement stream.
class SampleStream {
 public:
  SampleStream() = default;
  explicit SampleStream(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Appends a sample; timestamps may arrive out of order (network
  /// reordering) — they are kept sorted by insertion position search.
  void Push(double timestamp, double value);

  const std::vector<Sample>& samples() const { return samples_; }

  /// Earliest/latest timestamps; 0 when empty.
  double first_timestamp() const;
  double last_timestamp() const;

 private:
  std::string name_;
  std::vector<Sample> samples_;  // sorted by timestamp
};

enum class ResampleMethod {
  /// The sample nearest to the round instant (within max_age).
  kNearest,
  /// The latest sample at or before the round instant (within max_age).
  kSampleAndHold,
  /// Mean of all samples inside (t - period, t].
  kWindowMean,
};

struct ResampleOptions {
  /// Round period in seconds (> 0).
  double period = 1.0;
  /// Time of round 0; defaults (NaN) to the earliest sample across streams.
  double start = std::numeric_limits<double>::quiet_NaN();
  /// Number of rounds; 0 = derive from the latest sample across streams.
  size_t rounds = 0;
  /// A sample older than this (relative to the round instant) is stale and
  /// yields a missing value.  Defaults (NaN) to one period.
  double max_age = std::numeric_limits<double>::quiet_NaN();
  ResampleMethod method = ResampleMethod::kNearest;
};

/// Aligns the streams onto a synchronous round grid.  Module names come
/// from the streams (falling back to "m<i>").  Errors when `streams` is
/// empty, every stream is empty, or options are out of range.
Result<RoundTable> ResampleToRounds(const std::vector<SampleStream>& streams,
                                    const ResampleOptions& options = {});

}  // namespace avoc::data
