// Round tables: the tabular form every experiment consumes.
//
// A RoundTable holds R rounds x M modules of optional numeric readings —
// exactly the "reference dataset" structure of the paper's UC-1 (10,000
// rounds x 5 light sensors) and UC-2 (297 rounds x 9 beacons per stack).
// `nullopt` encodes a missing value (unreachable BLE beacon), which is a
// first-class fault scenario in §7.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace avoc::data {

using Reading = std::optional<double>;

class RoundTable {
 public:
  RoundTable() = default;

  /// Named modules (e.g. {"E1",...,"E5"}); rounds start empty.
  explicit RoundTable(std::vector<std::string> module_names);

  /// M anonymous modules named "m0".."m{M-1}".
  static RoundTable WithModuleCount(size_t modules);

  size_t module_count() const { return module_names_.size(); }
  size_t round_count() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const std::vector<std::string>& module_names() const { return module_names_; }

  /// Index of the named module, or error.
  Result<size_t> ModuleIndex(std::string_view name) const;

  /// Appends a round; must have exactly module_count() entries.
  Status AppendRound(std::vector<Reading> readings);

  /// Appends a fully populated round.
  Status AppendRound(std::span<const double> readings);

  /// Readings of round r (span valid until the table is modified).
  std::span<const Reading> Round(size_t r) const { return rows_.at(r); }

  /// Mutable access for fault injection.
  Reading& At(size_t round, size_t module);
  const Reading& At(size_t round, size_t module) const;

  /// Column extraction: all rounds of one module.
  std::vector<Reading> ModuleSeries(size_t module) const;

  /// Column extraction skipping missing values.
  std::vector<double> ModuleValues(size_t module) const;

  /// Total number of missing readings.
  size_t missing_count() const;

  /// Sub-table containing rounds [begin, end).
  Result<RoundTable> Slice(size_t begin, size_t end) const;

  /// Sub-table containing only the given module columns (by index).
  Result<RoundTable> SelectModules(std::span<const size_t> modules) const;

 private:
  std::vector<std::string> module_names_;
  std::vector<std::vector<Reading>> rows_;
};

/// Categorical analogue: rounds of optional strings, for the VDX
/// categorical-voting extension (§6: "character strings and JSON blobs").
class CategoricalRoundTable {
 public:
  using Label = std::optional<std::string>;

  CategoricalRoundTable() = default;
  explicit CategoricalRoundTable(std::vector<std::string> module_names);

  size_t module_count() const { return module_names_.size(); }
  size_t round_count() const { return rows_.size(); }
  const std::vector<std::string>& module_names() const { return module_names_; }

  Status AppendRound(std::vector<Label> labels);
  std::span<const Label> Round(size_t r) const { return rows_.at(r); }

 private:
  std::vector<std::string> module_names_;
  std::vector<std::vector<Label>> rows_;
};

}  // namespace avoc::data
