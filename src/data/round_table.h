// Round tables: the tabular form every experiment consumes.
//
// A RoundTable holds R rounds x M modules of optional numeric readings —
// exactly the "reference dataset" structure of the paper's UC-1 (10,000
// rounds x 5 light sensors) and UC-2 (297 rounds x 9 beacons per stack).
// `nullopt` encodes a missing value (unreachable BLE beacon), which is a
// first-class fault scenario in §7.
//
// Storage is columnar-friendly structure-of-arrays: one flat row-major
// value block plus a present-bitmask, so View(r) hands a batch run the
// round as two contiguous spans (core::RoundSpan-shaped) with zero copies
// and zero per-round materialization.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace avoc::data {

using Reading = std::optional<double>;

/// Zero-copy view of one round: per-module contiguous values plus a
/// present-bitmask.  values[m] is meaningful only where present[m] != 0.
/// Valid until the table is modified.
struct RoundView {
  std::span<const double> values;
  std::span<const uint8_t> present;

  size_t module_count() const { return values.size(); }
  Reading at(size_t m) const {
    return present[m] != 0 ? Reading(values[m]) : std::nullopt;
  }
};

class RoundTable {
 public:
  RoundTable() = default;

  /// Named modules (e.g. {"E1",...,"E5"}); rounds start empty.
  explicit RoundTable(std::vector<std::string> module_names);

  /// M anonymous modules named "m0".."m{M-1}".
  static RoundTable WithModuleCount(size_t modules);

  size_t module_count() const { return module_names_.size(); }
  size_t round_count() const { return rounds_; }
  bool empty() const { return rounds_ == 0; }

  const std::vector<std::string>& module_names() const { return module_names_; }

  /// Index of the named module, or error.
  Result<size_t> ModuleIndex(std::string_view name) const;

  /// Appends a round; must have exactly module_count() entries.
  Status AppendRound(std::vector<Reading> readings);

  /// Appends a fully populated round.
  Status AppendRound(std::span<const double> readings);

  /// Zero-copy view of round r (spans valid until the table is modified).
  RoundView View(size_t r) const;

  /// The whole table as two flat row-major blocks (rounds × modules) —
  /// the zero-copy input of the engine's many-rounds batch entry point.
  /// Valid until the table is modified.
  std::span<const double> value_block() const { return values_; }
  std::span<const uint8_t> present_block() const { return presents_; }

  /// Readings of round r, materialized (prefer View on hot paths).
  std::vector<Reading> MaterializeRound(size_t r) const;

  /// Mutable cell proxy for fault injection; mimics optional<double>.
  class CellRef {
   public:
    bool has_value() const { return *present_ != 0; }
    /// Value slot; meaningful (and assignable) only when present.
    double& operator*() { return *value_; }
    double operator*() const { return *value_; }
    void reset() { *present_ = 0; }
    CellRef& operator=(double v) {
      *value_ = v;
      *present_ = 1;
      return *this;
    }
    CellRef& operator=(const Reading& reading) {
      if (reading.has_value()) {
        *this = *reading;
      } else {
        reset();
      }
      return *this;
    }
    operator Reading() const {
      return has_value() ? Reading(*value_) : std::nullopt;
    }

   private:
    friend class RoundTable;
    CellRef(double* value, uint8_t* present)
        : value_(value), present_(present) {}
    double* value_;
    uint8_t* present_;
  };

  /// Mutable access for fault injection; throws std::out_of_range on bad
  /// indices (matching the historical .at semantics).
  CellRef At(size_t round, size_t module);
  Reading At(size_t round, size_t module) const;

  /// Column extraction: all rounds of one module.
  std::vector<Reading> ModuleSeries(size_t module) const;

  /// Column extraction skipping missing values.
  std::vector<double> ModuleValues(size_t module) const;

  /// Total number of missing readings.
  size_t missing_count() const;

  /// Sub-table containing rounds [begin, end).
  Result<RoundTable> Slice(size_t begin, size_t end) const;

  /// Sub-table containing only the given module columns (by index).
  Result<RoundTable> SelectModules(std::span<const size_t> modules) const;

 private:
  void CheckCell(size_t round, size_t module) const;

  std::vector<std::string> module_names_;
  size_t rounds_ = 0;
  /// Row-major value block (rounds x modules); slots of missing readings
  /// hold 0 and are masked off by presents_.
  std::vector<double> values_;
  std::vector<uint8_t> presents_;
};

/// Categorical analogue: rounds of optional strings, for the VDX
/// categorical-voting extension (§6: "character strings and JSON blobs").
class CategoricalRoundTable {
 public:
  using Label = std::optional<std::string>;

  CategoricalRoundTable() = default;
  explicit CategoricalRoundTable(std::vector<std::string> module_names);

  size_t module_count() const { return module_names_.size(); }
  size_t round_count() const { return rows_.size(); }
  const std::vector<std::string>& module_names() const { return module_names_; }

  Status AppendRound(std::vector<Label> labels);
  std::span<const Label> Round(size_t r) const { return rows_.at(r); }

 private:
  std::vector<std::string> module_names_;
  std::vector<std::vector<Label>> rows_;
};

}  // namespace avoc::data
