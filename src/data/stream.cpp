#include "data/stream.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/strings.h"

namespace avoc::data {

void SampleStream::Push(double timestamp, double value) {
  const Sample sample{timestamp, value};
  // Common case: in-order arrival appends at the end.
  if (samples_.empty() || samples_.back().timestamp <= timestamp) {
    samples_.push_back(sample);
    return;
  }
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), sample,
      [](const Sample& a, const Sample& b) { return a.timestamp < b.timestamp; });
  samples_.insert(it, sample);
}

double SampleStream::first_timestamp() const {
  return samples_.empty() ? 0.0 : samples_.front().timestamp;
}

double SampleStream::last_timestamp() const {
  return samples_.empty() ? 0.0 : samples_.back().timestamp;
}

namespace {

/// Latest sample with timestamp <= t, or nullptr.
const Sample* LatestAtOrBefore(const std::vector<Sample>& samples, double t) {
  auto it = std::upper_bound(
      samples.begin(), samples.end(), t,
      [](double value, const Sample& s) { return value < s.timestamp; });
  if (it == samples.begin()) return nullptr;
  return &*(it - 1);
}

Reading ResampleOne(const SampleStream& stream, double t, double period,
                    double max_age, ResampleMethod method) {
  const auto& samples = stream.samples();
  if (samples.empty()) return std::nullopt;
  switch (method) {
    case ResampleMethod::kSampleAndHold: {
      const Sample* sample = LatestAtOrBefore(samples, t);
      if (sample == nullptr || t - sample->timestamp > max_age) {
        return std::nullopt;
      }
      return sample->value;
    }
    case ResampleMethod::kNearest: {
      const Sample* before = LatestAtOrBefore(samples, t);
      // First sample strictly after t:
      auto after_it = std::upper_bound(
          samples.begin(), samples.end(), t,
          [](double value, const Sample& s) { return value < s.timestamp; });
      const Sample* after = after_it == samples.end() ? nullptr : &*after_it;
      const Sample* best = nullptr;
      if (before != nullptr && after != nullptr) {
        best = (t - before->timestamp) <= (after->timestamp - t) ? before
                                                                 : after;
      } else {
        best = before != nullptr ? before : after;
      }
      if (best == nullptr || std::abs(best->timestamp - t) > max_age) {
        return std::nullopt;
      }
      return best->value;
    }
    case ResampleMethod::kWindowMean: {
      double sum = 0.0;
      size_t count = 0;
      // Samples in (t - period, t].
      auto begin = std::upper_bound(
          samples.begin(), samples.end(), t - period,
          [](double value, const Sample& s) { return value < s.timestamp; });
      for (auto it = begin; it != samples.end() && it->timestamp <= t; ++it) {
        sum += it->value;
        ++count;
      }
      if (count == 0) return std::nullopt;
      return sum / static_cast<double>(count);
    }
  }
  return std::nullopt;
}

}  // namespace

Result<RoundTable> ResampleToRounds(const std::vector<SampleStream>& streams,
                                    const ResampleOptions& options) {
  if (streams.empty()) {
    return InvalidArgumentError("resampling needs at least one stream");
  }
  if (!(options.period > 0.0)) {
    return InvalidArgumentError("round period must be > 0");
  }
  double earliest = std::numeric_limits<double>::infinity();
  double latest = -std::numeric_limits<double>::infinity();
  bool any_samples = false;
  for (const SampleStream& stream : streams) {
    if (stream.empty()) continue;
    any_samples = true;
    earliest = std::min(earliest, stream.first_timestamp());
    latest = std::max(latest, stream.last_timestamp());
  }
  if (!any_samples) {
    return InvalidArgumentError("all streams are empty");
  }
  const double start =
      std::isnan(options.start) ? earliest : options.start;
  const double max_age =
      std::isnan(options.max_age) ? options.period : options.max_age;
  if (!(max_age > 0.0)) {
    return InvalidArgumentError("max age must be > 0");
  }
  size_t rounds = options.rounds;
  if (rounds == 0) {
    if (latest < start) {
      return InvalidArgumentError("no samples at or after the start time");
    }
    rounds = static_cast<size_t>((latest - start) / options.period) + 1;
  }

  std::vector<std::string> names;
  names.reserve(streams.size());
  for (size_t i = 0; i < streams.size(); ++i) {
    names.push_back(streams[i].name().empty() ? StrFormat("m%zu", i)
                                              : streams[i].name());
  }
  RoundTable table(std::move(names));
  for (size_t r = 0; r < rounds; ++r) {
    const double t = start + static_cast<double>(r) * options.period;
    std::vector<Reading> row;
    row.reserve(streams.size());
    for (const SampleStream& stream : streams) {
      row.push_back(
          ResampleOne(stream, t, options.period, max_age, options.method));
    }
    AVOC_RETURN_IF_ERROR(table.AppendRound(std::move(row)));
  }
  return table;
}

}  // namespace avoc::data
