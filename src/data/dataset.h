// Dataset persistence: RoundTable <-> CSV (+ JSON metadata sidecar).
//
// The paper evaluates on *pre-recorded* datasets "for the purpose of
// reproducibility"; this module is the recording half.  A dataset on disk
// is `<name>.csv` with a `round` column followed by one column per module
// (empty cell = missing reading), and an optional `<name>.meta.json`
// describing provenance (scenario, seed, units, sample rate).
#pragma once

#include <string>

#include "data/csv.h"
#include "data/round_table.h"
#include "json/value.h"
#include "util/status.h"

namespace avoc::data {

struct DatasetMetadata {
  std::string scenario;      ///< e.g. "uc1-light" / "uc2-ble"
  uint64_t seed = 0;         ///< generator seed, 0 when captured live
  std::string units;         ///< e.g. "lux", "dBm"
  double sample_rate_hz = 0; ///< rounds per second

  json::Value ToJson() const;
  static Result<DatasetMetadata> FromJson(const json::Value& value);
};

/// Converts a round table to a CSV table ("round", module names...).
CsvTable RoundTableToCsv(const RoundTable& table);

/// Parses a CSV table back (first column must be "round").
Result<RoundTable> RoundTableFromCsv(const CsvTable& csv);

/// Writes `<path>` (CSV) and, when metadata is non-null, `<path minus
/// .csv>.meta.json`.
Status SaveDataset(const std::string& path, const RoundTable& table,
                   const DatasetMetadata* metadata = nullptr);

/// Reads a dataset written by SaveDataset.
Result<RoundTable> LoadDataset(const std::string& path);

/// Reads the metadata sidecar of `path` if present.
Result<DatasetMetadata> LoadDatasetMetadata(const std::string& path);

}  // namespace avoc::data
