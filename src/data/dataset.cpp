#include "data/dataset.h"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "data/csv.h"
#include "json/parse.h"
#include "json/write.h"
#include "util/strings.h"

namespace avoc::data {
namespace {

std::string FormatReading(double v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, ptr);
}

std::string MetadataPathFor(const std::string& csv_path) {
  std::string base = csv_path;
  if (EndsWith(base, ".csv")) base.resize(base.size() - 4);
  return base + ".meta.json";
}

}  // namespace

json::Value DatasetMetadata::ToJson() const {
  return json::Value(json::MakeObject({
      {"scenario", scenario},
      {"seed", static_cast<double>(seed)},
      {"units", units},
      {"sample_rate_hz", sample_rate_hz},
  }));
}

Result<DatasetMetadata> DatasetMetadata::FromJson(const json::Value& value) {
  if (!value.is_object()) return ParseError("metadata must be a JSON object");
  DatasetMetadata meta;
  if (const json::Value* v = value.Find("scenario")) {
    meta.scenario = v->StringOr("");
  }
  if (const json::Value* v = value.Find("seed")) {
    meta.seed = static_cast<uint64_t>(v->DoubleOr(0));
  }
  if (const json::Value* v = value.Find("units")) {
    meta.units = v->StringOr("");
  }
  if (const json::Value* v = value.Find("sample_rate_hz")) {
    meta.sample_rate_hz = v->DoubleOr(0);
  }
  return meta;
}

CsvTable RoundTableToCsv(const RoundTable& table) {
  CsvTable csv;
  csv.header.push_back("round");
  for (const std::string& name : table.module_names()) {
    csv.header.push_back(name);
  }
  for (size_t r = 0; r < table.round_count(); ++r) {
    std::vector<std::string> row;
    row.reserve(table.module_count() + 1);
    row.push_back(std::to_string(r));
    const RoundView view = table.View(r);
    for (size_t m = 0; m < view.module_count(); ++m) {
      const Reading reading = view.at(m);
      row.push_back(reading.has_value() ? FormatReading(*reading) : "");
    }
    csv.rows.push_back(std::move(row));
  }
  return csv;
}

Result<RoundTable> RoundTableFromCsv(const CsvTable& csv) {
  if (csv.header.empty() || csv.header.front() != "round") {
    return ParseError("dataset CSV must start with a 'round' column");
  }
  std::vector<std::string> names(csv.header.begin() + 1, csv.header.end());
  RoundTable table(std::move(names));
  for (size_t r = 0; r < csv.rows.size(); ++r) {
    const auto& row = csv.rows[r];
    if (row.size() != csv.header.size()) {
      return ParseError(StrFormat("row %zu arity mismatch", r));
    }
    std::vector<Reading> readings;
    readings.reserve(row.size() - 1);
    for (size_t c = 1; c < row.size(); ++c) {
      const std::string_view cell = TrimWhitespace(row[c]);
      if (cell.empty()) {
        readings.push_back(std::nullopt);
      } else {
        AVOC_ASSIGN_OR_RETURN(const double v, ParseDouble(cell));
        readings.emplace_back(v);
      }
    }
    AVOC_RETURN_IF_ERROR(table.AppendRound(std::move(readings)));
  }
  return table;
}

Status SaveDataset(const std::string& path, const RoundTable& table,
                   const DatasetMetadata* metadata) {
  AVOC_RETURN_IF_ERROR(WriteCsvFile(path, RoundTableToCsv(table)));
  if (metadata != nullptr) {
    std::ofstream out(MetadataPathFor(path), std::ios::trunc);
    if (!out) return IoError("cannot write metadata for '" + path + "'");
    out << json::WritePretty(metadata->ToJson()) << "\n";
    if (!out.good()) return IoError("metadata write failure");
  }
  return Status::Ok();
}

Result<RoundTable> LoadDataset(const std::string& path) {
  AVOC_ASSIGN_OR_RETURN(const CsvTable csv, ReadCsvFile(path));
  return RoundTableFromCsv(csv);
}

Result<DatasetMetadata> LoadDatasetMetadata(const std::string& path) {
  const std::string meta_path = MetadataPathFor(path);
  std::ifstream in(meta_path);
  if (!in) return NotFoundError("no metadata sidecar '" + meta_path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  AVOC_ASSIGN_OR_RETURN(const json::Value value, json::Parse(buffer.str()));
  return DatasetMetadata::FromJson(value);
}

}  // namespace avoc::data
