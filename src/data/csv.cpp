#include "data/csv.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace avoc::data {
namespace {

bool NeedsQuoting(std::string_view field, char delimiter) {
  for (const char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(std::string_view field, char delimiter, std::string& out) {
  if (!NeedsQuoting(field, delimiter)) {
    out += field;
    return;
  }
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

Result<CsvTable> ParseCsv(std::string_view text, const CsvOptions& options) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool record_started = false;
  size_t line = 1;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
    record_started = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return ParseError(StrFormat("line %zu: quote inside unquoted field",
                                      line));
        }
        in_quotes = true;
        record_started = true;
        break;
      case '\r':
        // Swallow; \r\n handled by the \n branch, lone \r treated as EOL.
        if (i + 1 >= text.size() || text[i + 1] != '\n') {
          ++line;
          end_record();
        }
        break;
      case '\n':
        ++line;
        end_record();
        break;
      default:
        if (c == options.delimiter) {
          end_field();
          record_started = true;
        } else {
          field.push_back(c);
          record_started = true;
        }
    }
  }
  if (in_quotes) return ParseError("unterminated quoted field");
  if (record_started || !field.empty() || !record.empty()) end_record();

  CsvTable table;
  size_t first_data_row = 0;
  if (options.has_header) {
    if (records.empty()) return ParseError("missing header row");
    table.header = std::move(records.front());
    first_data_row = 1;
  }
  const size_t expected_arity =
      options.has_header
          ? table.header.size()
          : (records.empty() ? 0 : records.front().size());
  for (size_t r = first_data_row; r < records.size(); ++r) {
    if (options.strict_row_arity && records[r].size() != expected_arity) {
      return ParseError(StrFormat("row %zu has %zu fields, expected %zu", r,
                                  records[r].size(), expected_arity));
    }
    table.rows.push_back(std::move(records[r]));
  }
  return table;
}

std::string WriteCsv(const CsvTable& table, const CsvOptions& options) {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      AppendField(row[i], options.delimiter, out);
    }
    out.push_back('\n');
  };
  if (options.has_header && !table.header.empty()) append_row(table.header);
  for (const auto& row : table.rows) append_row(row);
  return out;
}

Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return IoError("read failure on '" + path + "'");
  return ParseCsv(buffer.str(), options);
}

Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    const CsvOptions& options) {
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return IoError("cannot open '" + tmp_path + "' for writing");
    out << WriteCsv(table, options);
    if (!out.good()) return IoError("write failure on '" + tmp_path + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    return IoError("rename to '" + path + "' failed: " + ec.message());
  }
  return Status::Ok();
}

}  // namespace avoc::data
