// Exact quantiles over finite samples, plus the median helpers the voting
// algorithms use for tie-breaking and the benches use for latency
// percentiles.
#pragma once

#include <span>
#include <vector>

#include "util/status.h"

namespace avoc::stats {

/// Exact quantile with linear interpolation (type-7, same as numpy's
/// default).  q must lie in [0, 1]; data must be non-empty.
Result<double> Quantile(std::span<const double> data, double q);

/// Median (Quantile 0.5); errors on empty input.
Result<double> Median(std::span<const double> data);

/// Convenience multi-quantile over one shared sort.
Result<std::vector<double>> Quantiles(std::span<const double> data,
                                      std::span<const double> qs);

/// Median absolute deviation (robust spread), scaled by 1 (no consistency
/// constant applied).  Errors on empty input.
Result<double> MedianAbsoluteDeviation(std::span<const double> data);

}  // namespace avoc::stats
