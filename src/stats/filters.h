// Post-fusion series filters.
//
// The paper's UC-2 deliberately feeds *raw* RSSI into the voter, noting
// that the positioning state of the art adds filtering afterwards ("before
// applying other techniques to improve positioning performance", §7).
// These are those other techniques: causal, O(1)-per-sample filters a sink
// node can stack on the fused output stream.  bench_filters quantifies how
// much each one sharpens the Fig. 7 proximity decision.
//
// All filters share a tiny protocol: `double Step(double x)` consumes one
// sample and returns the filtered value; `Reset()` clears state.  Missing
// rounds are the caller's concern (skip or hold — see ApplyWithGaps).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "util/status.h"

namespace avoc::stats {

/// Exponentially weighted moving average: y += alpha * (x - y).
class EwmaFilter {
 public:
  /// alpha in (0, 1]; 1 = no smoothing.
  static Result<EwmaFilter> Create(double alpha);

  double Step(double x);
  void Reset();

 private:
  explicit EwmaFilter(double alpha) : alpha_(alpha) {}
  double alpha_;
  std::optional<double> state_;
};

/// Simple moving average over the last `window` samples.
class MovingAverageFilter {
 public:
  static Result<MovingAverageFilter> Create(size_t window);

  double Step(double x);
  void Reset();

 private:
  explicit MovingAverageFilter(size_t window) : window_(window) {}
  size_t window_;
  std::deque<double> buffer_;
  double sum_ = 0.0;
};

/// Moving median over the last `window` samples (robust to spikes).
class MovingMedianFilter {
 public:
  static Result<MovingMedianFilter> Create(size_t window);

  double Step(double x);
  void Reset();

 private:
  explicit MovingMedianFilter(size_t window) : window_(window) {}
  size_t window_;
  std::deque<double> buffer_;
};

/// Slew limiter: the output moves towards the input by at most `max_step`
/// per sample — a crude but effective spike clamp.
class SlewLimitFilter {
 public:
  static Result<SlewLimitFilter> Create(double max_step);

  double Step(double x);
  void Reset();

 private:
  explicit SlewLimitFilter(double max_step) : max_step_(max_step) {}
  double max_step_;
  std::optional<double> state_;
};

/// Scalar Kalman filter with a constant-position process model: state x,
/// process variance q (per step), measurement variance r.
class KalmanFilter {
 public:
  static Result<KalmanFilter> Create(double process_variance,
                                     double measurement_variance);

  double Step(double x);
  void Reset();

  /// Current error variance (grows between resets, shrinks with samples).
  double variance() const { return p_; }

 private:
  KalmanFilter(double q, double r) : q_(q), r_(r) {}
  double q_;
  double r_;
  double p_ = 1e9;  // uninformative prior
  std::optional<double> state_;
};

/// Applies a filter over a dense series.
template <typename Filter>
std::vector<double> Apply(Filter& filter, std::span<const double> series) {
  std::vector<double> out;
  out.reserve(series.size());
  for (const double x : series) out.push_back(filter.Step(x));
  return out;
}

/// Applies a filter over a gappy series: missing samples pass through as
/// missing and do not advance the filter (sample-and-hold semantics).
template <typename Filter>
std::vector<std::optional<double>> ApplyWithGaps(
    Filter& filter, std::span<const std::optional<double>> series) {
  std::vector<std::optional<double>> out;
  out.reserve(series.size());
  for (const auto& x : series) {
    if (x.has_value()) {
      out.emplace_back(filter.Step(*x));
    } else {
      out.emplace_back(std::nullopt);
    }
  }
  return out;
}

}  // namespace avoc::stats
