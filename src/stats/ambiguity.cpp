#include "stats/ambiguity.h"

#include <algorithm>
#include <cmath>

namespace avoc::stats {

AmbiguityReport MeasureAmbiguity(
    std::span<const std::optional<double>> stack_a,
    std::span<const std::optional<double>> stack_b,
    const AmbiguityOptions& options) {
  AmbiguityReport report;
  report.rounds = std::min(stack_a.size(), stack_b.size());
  size_t run = 0;
  int previous_sign = 0;  // 0: no unambiguous decision yet
  for (size_t i = 0; i < report.rounds; ++i) {
    const bool missing = !stack_a[i].has_value() || !stack_b[i].has_value();
    const double diff = missing ? 0.0 : (*stack_a[i] - *stack_b[i]);
    const bool ambiguous = missing || std::abs(diff) < options.margin;
    if (ambiguous) {
      ++report.ambiguous_rounds;
      ++run;
      report.longest_ambiguous_run =
          std::max(report.longest_ambiguous_run, run);
    } else {
      run = 0;
      const int sign = diff > 0 ? 1 : -1;
      if (previous_sign != 0 && sign != previous_sign) {
        ++report.decision_flips;
      }
      previous_sign = sign;
    }
  }
  return report;
}

AmbiguityReport MeasureAmbiguity(std::span<const double> stack_a,
                                 std::span<const double> stack_b,
                                 const AmbiguityOptions& options) {
  std::vector<std::optional<double>> a(stack_a.begin(), stack_a.end());
  std::vector<std::optional<double>> b(stack_b.begin(), stack_b.end());
  return MeasureAmbiguity(a, b, options);
}

}  // namespace avoc::stats
