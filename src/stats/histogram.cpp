#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace avoc::stats {

Result<Histogram> Histogram::Create(double lo, double hi, size_t bins) {
  if (bins == 0) return InvalidArgumentError("histogram needs >= 1 bin");
  if (!(lo < hi)) return InvalidArgumentError("histogram needs lo < hi");
  return Histogram(lo, hi, bins);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  size_t bin = static_cast<size_t>((x - lo_) / width);
  bin = std::min(bin, counts_.size() - 1);  // guard FP edge at hi_
  ++counts_[bin];
}

double Histogram::BinCenter(size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

double Histogram::BinEdge(size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + static_cast<double>(i) * width;
}

std::string Histogram::Render(size_t width) const {
  size_t peak = 1;
  for (const size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bar = counts_[i] * width / peak;
    out += StrFormat("%12.4g | %-*s %zu\n", BinCenter(i),
                     static_cast<int>(width),
                     std::string(bar, '#').c_str(), counts_[i]);
  }
  return out;
}

}  // namespace avoc::stats
