#include "stats/convergence.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace avoc::stats {
namespace {

ConvergenceReport Measure(std::span<const double> series,
                          const std::vector<double>& reference,
                          const ConvergenceOptions& options) {
  ConvergenceReport report;
  report.converged_at = std::nullopt;
  report.residual_bias = std::numeric_limits<double>::quiet_NaN();
  report.peak_error = 0.0;

  const size_t n = std::min(series.size(), reference.size());
  std::vector<double> error(n);
  for (size_t i = 0; i < n; ++i) {
    error[i] = std::abs(series[i] - reference[i]);
    report.peak_error = std::max(report.peak_error, error[i]);
  }
  if (n == 0) return report;

  const size_t window = std::max<size_t>(1, options.window);
  // Scan for the first index where `window` consecutive rounds are within
  // tolerance; a shorter in-tolerance tail at the very end does not count
  // unless the series ends converged for at least one round window-capped
  // by the series length.
  size_t run = 0;
  for (size_t i = 0; i < n; ++i) {
    if (error[i] <= options.tolerance) {
      ++run;
      const size_t start = i + 1 - run;
      const bool full_window = run >= window;
      // A series shorter than the window can still converge when it is
      // in-tolerance throughout; a short in-tolerance tail of a longer
      // series is NOT accepted (insufficient evidence of stability).
      const bool tail_window = (i + 1 == n) && n < window && run == n;
      if (full_window || tail_window) {
        if (options.require_permanent) {
          // Strict notion: no excursion after the window either.
          bool permanent = true;
          for (size_t j = start; j < n; ++j) {
            if (error[j] > options.tolerance) {
              permanent = false;
              break;
            }
          }
          if (!permanent) {
            run = 0;
            continue;
          }
        }
        report.converged_at = start;
        double sum = 0.0;
        for (size_t j = start; j < n; ++j) sum += error[j];
        report.residual_bias = sum / static_cast<double>(n - start);
        return report;
      }
    } else {
      run = 0;
    }
  }
  return report;
}

// Continuation of a masked value column (TraceView::ContinuousOutputs
// semantics): carry the last engaged value forward, seed leading gaps
// with the first engaged value, empty when nothing ever engaged.
std::vector<double> ContinueColumn(std::span<const double> values,
                                   std::span<const uint8_t> engaged) {
  const size_t n = std::min(values.size(), engaged.size());
  std::vector<double> out;
  double current = 0.0;
  bool seeded = false;
  for (size_t r = 0; r < n; ++r) {
    if (engaged[r] != 0) {
      current = values[r];
      seeded = true;
      break;
    }
  }
  if (!seeded) return out;
  out.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    if (engaged[r] != 0) current = values[r];
    out.push_back(current);
  }
  return out;
}

}  // namespace

ConvergenceReport MeasureConvergence(std::span<const double> series,
                                     std::span<const double> reference,
                                     const ConvergenceOptions& options) {
  return Measure(series, std::vector<double>(reference.begin(), reference.end()),
                 options);
}

ConvergenceReport MeasureConvergence(std::span<const double> series,
                                     double reference,
                                     const ConvergenceOptions& options) {
  return Measure(series, std::vector<double>(series.size(), reference),
                 options);
}

ConvergenceReport MeasureConvergence(std::span<const double> values,
                                     std::span<const uint8_t> engaged,
                                     std::span<const double> reference,
                                     const ConvergenceOptions& options) {
  return MeasureConvergence(ContinueColumn(values, engaged), reference,
                            options);
}

ConvergenceReport MeasureConvergence(std::span<const double> values,
                                     std::span<const uint8_t> engaged,
                                     double reference,
                                     const ConvergenceOptions& options) {
  return MeasureConvergence(ContinueColumn(values, engaged), reference,
                            options);
}

std::optional<double> ConvergenceBoost(const ConvergenceReport& fast,
                                       const ConvergenceReport& slow) {
  if (!fast.converged_at.has_value() || !slow.converged_at.has_value()) {
    return std::nullopt;
  }
  const double fast_rounds = static_cast<double>(*fast.converged_at + 1);
  const double slow_rounds = static_cast<double>(*slow.converged_at + 1);
  return slow_rounds / fast_rounds;
}

}  // namespace avoc::stats
