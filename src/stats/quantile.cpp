#include "stats/quantile.h"

#include <algorithm>
#include <cmath>

namespace avoc::stats {
namespace {

double QuantileOfSorted(const std::vector<double>& sorted, double q) {
  // Type-7 interpolation: h = (n-1)q.
  const double h = static_cast<double>(sorted.size() - 1) * q;
  const size_t lo = static_cast<size_t>(std::floor(h));
  const size_t hi = static_cast<size_t>(std::ceil(h));
  if (lo == hi) return sorted[lo];
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Result<double> Quantile(std::span<const double> data, double q) {
  if (data.empty()) return InvalidArgumentError("quantile of empty data");
  if (q < 0.0 || q > 1.0) return InvalidArgumentError("q outside [0,1]");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  return QuantileOfSorted(sorted, q);
}

Result<double> Median(std::span<const double> data) {
  return Quantile(data, 0.5);
}

Result<std::vector<double>> Quantiles(std::span<const double> data,
                                      std::span<const double> qs) {
  if (data.empty()) return InvalidArgumentError("quantile of empty data");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) {
    if (q < 0.0 || q > 1.0) return InvalidArgumentError("q outside [0,1]");
    out.push_back(QuantileOfSorted(sorted, q));
  }
  return out;
}

Result<double> MedianAbsoluteDeviation(std::span<const double> data) {
  AVOC_ASSIGN_OR_RETURN(const double med, Median(data));
  std::vector<double> deviations;
  deviations.reserve(data.size());
  for (const double x : data) deviations.push_back(std::abs(x - med));
  return Median(deviations);
}

}  // namespace avoc::stats
