// Convergence measurement for voting-output series.
//
// The paper's UC-1 evaluation compares algorithms on (a) "voting rounds
// required to converge back to the baseline" after a fault is injected and
// (b) "how far the new stable value is from the original".  This module
// provides those two metrics plus the 4x-boost ratio computation used in
// the abstract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

namespace avoc::stats {

struct ConvergenceOptions {
  /// The series counts as converged at round r when |series[i] - ref[i]|
  /// <= tolerance for every i in [r, r + window).
  double tolerance = 0.1;
  /// Number of consecutive in-tolerance rounds required.
  size_t window = 5;
  /// When true, the series must additionally *stay* within tolerance for
  /// every round after r (no later excursions).  Off by default: result-
  /// selection algorithms legitimately produce isolated spike rounds
  /// ("minus few spikes", §7) long after settling.
  bool require_permanent = false;
};

struct ConvergenceReport {
  /// First round index from which the series stays within tolerance of the
  /// reference for `window` rounds; nullopt when it never converges.
  std::optional<size_t> converged_at;
  /// Mean |series - ref| over the stable tail (rounds >= converged_at);
  /// NaN when never converged.
  double residual_bias;
  /// Max |series - ref| over the whole series (the initial spike height).
  double peak_error;
};

/// Compares `series` against a same-length per-round reference.
ConvergenceReport MeasureConvergence(std::span<const double> series,
                                     std::span<const double> reference,
                                     const ConvergenceOptions& options = {});

/// Compares `series` against one constant reference value.
ConvergenceReport MeasureConvergence(std::span<const double> series,
                                     double reference,
                                     const ConvergenceOptions& options = {});

// Columnar forms: `values` and `engaged` are a batch trace's raw output
// columns (values[r] is meaningful where engaged[r] != 0).  Suppressed
// rounds carry the previous value forward, with leading gaps seeded by
// the first engaged value — the same continuation as the materialized
// ContinuousOutputs series — so these measure identically to the
// span-of-double forms without building that series at every call site.
// An all-suppressed column never converges.

ConvergenceReport MeasureConvergence(std::span<const double> values,
                                     std::span<const uint8_t> engaged,
                                     std::span<const double> reference,
                                     const ConvergenceOptions& options = {});

ConvergenceReport MeasureConvergence(std::span<const double> values,
                                     std::span<const uint8_t> engaged,
                                     double reference,
                                     const ConvergenceOptions& options = {});

/// Convergence speedup of `fast` relative to `slow` (e.g. AVOC vs Hybrid):
/// rounds(slow)/rounds(fast), treating round counts as 1-based durations so
/// converging at round 0 counts as 1 round.  Returns nullopt when either
/// series never converges.
std::optional<double> ConvergenceBoost(const ConvergenceReport& fast,
                                       const ConvergenceReport& slow);

}  // namespace avoc::stats
