#include "stats/filters.h"

#include <algorithm>
#include <cmath>

namespace avoc::stats {

Result<EwmaFilter> EwmaFilter::Create(double alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    return InvalidArgumentError("EWMA alpha must lie in (0, 1]");
  }
  return EwmaFilter(alpha);
}

double EwmaFilter::Step(double x) {
  if (!state_.has_value()) {
    state_ = x;
  } else {
    *state_ += alpha_ * (x - *state_);
  }
  return *state_;
}

void EwmaFilter::Reset() { state_.reset(); }

Result<MovingAverageFilter> MovingAverageFilter::Create(size_t window) {
  if (window == 0) return InvalidArgumentError("window must be >= 1");
  return MovingAverageFilter(window);
}

double MovingAverageFilter::Step(double x) {
  buffer_.push_back(x);
  sum_ += x;
  if (buffer_.size() > window_) {
    sum_ -= buffer_.front();
    buffer_.pop_front();
  }
  return sum_ / static_cast<double>(buffer_.size());
}

void MovingAverageFilter::Reset() {
  buffer_.clear();
  sum_ = 0.0;
}

Result<MovingMedianFilter> MovingMedianFilter::Create(size_t window) {
  if (window == 0) return InvalidArgumentError("window must be >= 1");
  return MovingMedianFilter(window);
}

double MovingMedianFilter::Step(double x) {
  buffer_.push_back(x);
  if (buffer_.size() > window_) buffer_.pop_front();
  std::vector<double> sorted(buffer_.begin(), buffer_.end());
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

void MovingMedianFilter::Reset() { buffer_.clear(); }

Result<SlewLimitFilter> SlewLimitFilter::Create(double max_step) {
  if (max_step <= 0.0) return InvalidArgumentError("max step must be > 0");
  return SlewLimitFilter(max_step);
}

double SlewLimitFilter::Step(double x) {
  if (!state_.has_value()) {
    state_ = x;
  } else {
    const double delta = std::clamp(x - *state_, -max_step_, max_step_);
    *state_ += delta;
  }
  return *state_;
}

void SlewLimitFilter::Reset() { state_.reset(); }

Result<KalmanFilter> KalmanFilter::Create(double process_variance,
                                          double measurement_variance) {
  if (process_variance < 0.0) {
    return InvalidArgumentError("process variance must be >= 0");
  }
  if (measurement_variance <= 0.0) {
    return InvalidArgumentError("measurement variance must be > 0");
  }
  return KalmanFilter(process_variance, measurement_variance);
}

double KalmanFilter::Step(double x) {
  if (!state_.has_value()) {
    state_ = x;
    p_ = r_;
    return *state_;
  }
  // Predict (constant-position model): state unchanged, variance grows.
  p_ += q_;
  // Update.
  const double gain = p_ / (p_ + r_);
  *state_ += gain * (x - *state_);
  p_ *= (1.0 - gain);
  return *state_;
}

void KalmanFilter::Reset() {
  state_.reset();
  p_ = 1e9;
}

}  // namespace avoc::stats
