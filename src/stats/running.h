// Streaming descriptive statistics (Welford's online algorithm).
//
// Used throughout the evaluation harness: per-sensor calibration summaries,
// per-algorithm error summaries, latency aggregation.  Numerically stable
// for long streams (the UC-1 dataset is 10,000 rounds).
#pragma once

#include <cstddef>

namespace avoc::stats {

class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator (parallel reduction identity holds).
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Mean of the observations; 0 when empty.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;

  /// Population variance (n denominator); 0 when empty.
  double population_variance() const;

  /// sqrt(variance()).
  double stddev() const;

  double min() const { return min_; }
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return count_ == 0 ? 0.0 : mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace avoc::stats
