// Fixed-bin histogram used by the comparison example (ASCII plots of the
// Fig. 6 / Fig. 7 series) and the benches' distribution summaries.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace avoc::stats {

class Histogram {
 public:
  /// `bins` uniform-width bins covering [lo, hi); values outside are
  /// counted in underflow/overflow.  Requires bins >= 1 and lo < hi.
  static Result<Histogram> Create(double lo, double hi, size_t bins);

  void Add(double x);

  size_t bin_count() const { return counts_.size(); }
  size_t count(size_t bin) const { return counts_.at(bin); }
  size_t underflow() const { return underflow_; }
  size_t overflow() const { return overflow_; }
  size_t total() const { return total_; }

  /// Center of bin `i`.
  double BinCenter(size_t i) const;

  /// Lower edge of bin `i` (BinEdge(bin_count()) is the upper bound).
  double BinEdge(size_t i) const;

  /// Multi-line ASCII rendering, one row per bin, bars scaled to `width`.
  std::string Render(size_t width = 50) const;

 private:
  Histogram(double lo, double hi, size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t underflow_ = 0;
  size_t overflow_ = 0;
  size_t total_ = 0;
};

}  // namespace avoc::stats
