#include "stats/running.h"

#include <algorithm>
#include <cmath>

namespace avoc::stats {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                          static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::population_variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace avoc::stats
