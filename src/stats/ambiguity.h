// Ambiguity metric for the BLE positioning use-case (UC-2).
//
// The paper judges fusion quality in UC-2 by "the number of rounds while it
// is ambiguous which stack of sensors is closest to the robot": given two
// fused RSSI series (stack A, stack B), a round is ambiguous when the two
// values are within `margin` dB of each other (neither stack is clearly
// stronger), or when either value is missing.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace avoc::stats {

struct AmbiguityOptions {
  /// |a - b| < margin counts as ambiguous.
  double margin = 3.0;
};

struct AmbiguityReport {
  /// Rounds compared.
  size_t rounds = 0;
  /// Rounds where neither stack was clearly closer.
  size_t ambiguous_rounds = 0;
  /// Longest consecutive ambiguous streak.
  size_t longest_ambiguous_run = 0;
  /// Rounds where the sign of (a-b) flipped versus the previous
  /// unambiguous round — flapping decisions are as bad as ambiguity.
  size_t decision_flips = 0;

  double ambiguous_fraction() const {
    return rounds == 0 ? 0.0
                       : static_cast<double>(ambiguous_rounds) /
                             static_cast<double>(rounds);
  }
};

/// Missing values are encoded as std::nullopt and count as ambiguous.
AmbiguityReport MeasureAmbiguity(
    std::span<const std::optional<double>> stack_a,
    std::span<const std::optional<double>> stack_b,
    const AmbiguityOptions& options = {});

/// Overload for complete series.
AmbiguityReport MeasureAmbiguity(std::span<const double> stack_a,
                                 std::span<const double> stack_b,
                                 const AmbiguityOptions& options = {});

}  // namespace avoc::stats
