# Empty compiler generated dependencies file for edge_service.
# This may be replaced when dependencies are built.
