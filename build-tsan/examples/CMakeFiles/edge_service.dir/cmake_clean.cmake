file(REMOVE_RECURSE
  "CMakeFiles/edge_service.dir/edge_service.cpp.o"
  "CMakeFiles/edge_service.dir/edge_service.cpp.o.d"
  "edge_service"
  "edge_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
