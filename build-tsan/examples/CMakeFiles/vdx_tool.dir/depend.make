# Empty dependencies file for vdx_tool.
# This may be replaced when dependencies are built.
