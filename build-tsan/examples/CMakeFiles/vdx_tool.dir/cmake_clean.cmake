file(REMOVE_RECURSE
  "CMakeFiles/vdx_tool.dir/vdx_tool.cpp.o"
  "CMakeFiles/vdx_tool.dir/vdx_tool.cpp.o.d"
  "vdx_tool"
  "vdx_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdx_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
