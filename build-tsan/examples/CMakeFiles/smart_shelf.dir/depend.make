# Empty dependencies file for smart_shelf.
# This may be replaced when dependencies are built.
