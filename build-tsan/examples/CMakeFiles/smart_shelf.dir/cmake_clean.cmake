file(REMOVE_RECURSE
  "CMakeFiles/smart_shelf.dir/smart_shelf.cpp.o"
  "CMakeFiles/smart_shelf.dir/smart_shelf.cpp.o.d"
  "smart_shelf"
  "smart_shelf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_shelf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
