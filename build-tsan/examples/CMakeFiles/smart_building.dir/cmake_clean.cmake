file(REMOVE_RECURSE
  "CMakeFiles/smart_building.dir/smart_building.cpp.o"
  "CMakeFiles/smart_building.dir/smart_building.cpp.o.d"
  "smart_building"
  "smart_building.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_building.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
