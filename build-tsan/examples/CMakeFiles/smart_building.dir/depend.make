# Empty dependencies file for smart_building.
# This may be replaced when dependencies are built.
