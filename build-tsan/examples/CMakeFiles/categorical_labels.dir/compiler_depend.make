# Empty compiler generated dependencies file for categorical_labels.
# This may be replaced when dependencies are built.
