file(REMOVE_RECURSE
  "CMakeFiles/categorical_labels.dir/categorical_labels.cpp.o"
  "CMakeFiles/categorical_labels.dir/categorical_labels.cpp.o.d"
  "categorical_labels"
  "categorical_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/categorical_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
