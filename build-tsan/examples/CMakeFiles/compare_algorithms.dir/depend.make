# Empty dependencies file for compare_algorithms.
# This may be replaced when dependencies are built.
