file(REMOVE_RECURSE
  "CMakeFiles/compare_algorithms.dir/compare_algorithms.cpp.o"
  "CMakeFiles/compare_algorithms.dir/compare_algorithms.cpp.o.d"
  "compare_algorithms"
  "compare_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
