file(REMOVE_RECURSE
  "CMakeFiles/voter_service.dir/voter_service.cpp.o"
  "CMakeFiles/voter_service.dir/voter_service.cpp.o.d"
  "voter_service"
  "voter_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voter_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
