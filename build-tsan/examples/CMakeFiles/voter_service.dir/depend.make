# Empty dependencies file for voter_service.
# This may be replaced when dependencies are built.
