# Empty dependencies file for tunnel_positioning.
# This may be replaced when dependencies are built.
