file(REMOVE_RECURSE
  "CMakeFiles/tunnel_positioning.dir/tunnel_positioning.cpp.o"
  "CMakeFiles/tunnel_positioning.dir/tunnel_positioning.cpp.o.d"
  "tunnel_positioning"
  "tunnel_positioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunnel_positioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
