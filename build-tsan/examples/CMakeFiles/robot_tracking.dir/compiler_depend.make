# Empty compiler generated dependencies file for robot_tracking.
# This may be replaced when dependencies are built.
