file(REMOVE_RECURSE
  "CMakeFiles/robot_tracking.dir/robot_tracking.cpp.o"
  "CMakeFiles/robot_tracking.dir/robot_tracking.cpp.o.d"
  "robot_tracking"
  "robot_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robot_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
