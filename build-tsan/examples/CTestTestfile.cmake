# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-tsan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-tsan/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smart_building "/root/repo/build-tsan/examples/smart_building" "--rounds" "300")
set_tests_properties(example_smart_building PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tunnel_positioning "/root/repo/build-tsan/examples/tunnel_positioning")
set_tests_properties(example_tunnel_positioning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_algorithms "/root/repo/build-tsan/examples/compare_algorithms" "--scenario" "uc1" "--rounds" "200")
set_tests_properties(example_compare_algorithms PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_voter_service "/root/repo/build-tsan/examples/voter_service" "--seconds" "1")
set_tests_properties(example_voter_service PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_categorical_labels "/root/repo/build-tsan/examples/categorical_labels")
set_tests_properties(example_categorical_labels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_robot_tracking "/root/repo/build-tsan/examples/robot_tracking" "--rounds" "15")
set_tests_properties(example_robot_tracking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smart_shelf "/root/repo/build-tsan/examples/smart_shelf" "--rounds" "30")
set_tests_properties(example_smart_shelf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_edge_service "/root/repo/build-tsan/examples/edge_service" "--rounds" "3")
set_tests_properties(example_edge_service PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vdx_tool "/root/repo/build-tsan/examples/vdx_tool" "list")
set_tests_properties(example_vdx_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
