# Empty dependencies file for cluster_dbscan_test.
# This may be replaced when dependencies are built.
