file(REMOVE_RECURSE
  "CMakeFiles/cluster_dbscan_test.dir/cluster_dbscan_test.cpp.o"
  "CMakeFiles/cluster_dbscan_test.dir/cluster_dbscan_test.cpp.o.d"
  "cluster_dbscan_test"
  "cluster_dbscan_test.pdb"
  "cluster_dbscan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_dbscan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
