file(REMOVE_RECURSE
  "CMakeFiles/failure_injection_test.dir/failure_injection_test.cpp.o"
  "CMakeFiles/failure_injection_test.dir/failure_injection_test.cpp.o.d"
  "failure_injection_test"
  "failure_injection_test.pdb"
  "failure_injection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
