# Empty dependencies file for failure_injection_test.
# This may be replaced when dependencies are built.
