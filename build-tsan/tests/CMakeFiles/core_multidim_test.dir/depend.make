# Empty dependencies file for core_multidim_test.
# This may be replaced when dependencies are built.
