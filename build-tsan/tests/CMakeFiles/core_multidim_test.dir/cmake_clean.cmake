file(REMOVE_RECURSE
  "CMakeFiles/core_multidim_test.dir/core_multidim_test.cpp.o"
  "CMakeFiles/core_multidim_test.dir/core_multidim_test.cpp.o.d"
  "core_multidim_test"
  "core_multidim_test.pdb"
  "core_multidim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_multidim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
