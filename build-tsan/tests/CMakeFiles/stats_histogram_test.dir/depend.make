# Empty dependencies file for stats_histogram_test.
# This may be replaced when dependencies are built.
