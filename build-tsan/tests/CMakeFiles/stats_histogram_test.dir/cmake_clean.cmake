file(REMOVE_RECURSE
  "CMakeFiles/stats_histogram_test.dir/stats_histogram_test.cpp.o"
  "CMakeFiles/stats_histogram_test.dir/stats_histogram_test.cpp.o.d"
  "stats_histogram_test"
  "stats_histogram_test.pdb"
  "stats_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
