file(REMOVE_RECURSE
  "CMakeFiles/data_csv_test.dir/data_csv_test.cpp.o"
  "CMakeFiles/data_csv_test.dir/data_csv_test.cpp.o.d"
  "data_csv_test"
  "data_csv_test.pdb"
  "data_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
