# Empty dependencies file for data_csv_test.
# This may be replaced when dependencies are built.
