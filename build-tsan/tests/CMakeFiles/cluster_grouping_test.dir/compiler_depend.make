# Empty compiler generated dependencies file for cluster_grouping_test.
# This may be replaced when dependencies are built.
