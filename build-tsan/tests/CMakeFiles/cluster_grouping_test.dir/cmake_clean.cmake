file(REMOVE_RECURSE
  "CMakeFiles/cluster_grouping_test.dir/cluster_grouping_test.cpp.o"
  "CMakeFiles/cluster_grouping_test.dir/cluster_grouping_test.cpp.o.d"
  "cluster_grouping_test"
  "cluster_grouping_test.pdb"
  "cluster_grouping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_grouping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
