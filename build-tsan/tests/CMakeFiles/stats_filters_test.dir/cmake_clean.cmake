file(REMOVE_RECURSE
  "CMakeFiles/stats_filters_test.dir/stats_filters_test.cpp.o"
  "CMakeFiles/stats_filters_test.dir/stats_filters_test.cpp.o.d"
  "stats_filters_test"
  "stats_filters_test.pdb"
  "stats_filters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_filters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
