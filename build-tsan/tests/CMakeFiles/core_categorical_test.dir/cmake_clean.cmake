file(REMOVE_RECURSE
  "CMakeFiles/core_categorical_test.dir/core_categorical_test.cpp.o"
  "CMakeFiles/core_categorical_test.dir/core_categorical_test.cpp.o.d"
  "core_categorical_test"
  "core_categorical_test.pdb"
  "core_categorical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_categorical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
