# Empty dependencies file for core_categorical_test.
# This may be replaced when dependencies are built.
