# Empty compiler generated dependencies file for json_schema_test.
# This may be replaced when dependencies are built.
