file(REMOVE_RECURSE
  "CMakeFiles/json_schema_test.dir/json_schema_test.cpp.o"
  "CMakeFiles/json_schema_test.dir/json_schema_test.cpp.o.d"
  "json_schema_test"
  "json_schema_test.pdb"
  "json_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
