# Empty dependencies file for integration_groups_test.
# This may be replaced when dependencies are built.
