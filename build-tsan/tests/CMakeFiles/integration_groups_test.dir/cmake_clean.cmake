file(REMOVE_RECURSE
  "CMakeFiles/integration_groups_test.dir/integration_groups_test.cpp.o"
  "CMakeFiles/integration_groups_test.dir/integration_groups_test.cpp.o.d"
  "integration_groups_test"
  "integration_groups_test.pdb"
  "integration_groups_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_groups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
