file(REMOVE_RECURSE
  "CMakeFiles/sim_light_test.dir/sim_light_test.cpp.o"
  "CMakeFiles/sim_light_test.dir/sim_light_test.cpp.o.d"
  "sim_light_test"
  "sim_light_test.pdb"
  "sim_light_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_light_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
