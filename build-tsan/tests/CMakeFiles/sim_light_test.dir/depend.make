# Empty dependencies file for sim_light_test.
# This may be replaced when dependencies are built.
