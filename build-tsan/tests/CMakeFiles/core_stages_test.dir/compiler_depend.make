# Empty compiler generated dependencies file for core_stages_test.
# This may be replaced when dependencies are built.
