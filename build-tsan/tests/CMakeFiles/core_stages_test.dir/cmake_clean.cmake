file(REMOVE_RECURSE
  "CMakeFiles/core_stages_test.dir/core_stages_test.cpp.o"
  "CMakeFiles/core_stages_test.dir/core_stages_test.cpp.o.d"
  "core_stages_test"
  "core_stages_test.pdb"
  "core_stages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_stages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
