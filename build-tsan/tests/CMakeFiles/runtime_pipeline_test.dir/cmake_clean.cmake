file(REMOVE_RECURSE
  "CMakeFiles/runtime_pipeline_test.dir/runtime_pipeline_test.cpp.o"
  "CMakeFiles/runtime_pipeline_test.dir/runtime_pipeline_test.cpp.o.d"
  "runtime_pipeline_test"
  "runtime_pipeline_test.pdb"
  "runtime_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
