# Empty dependencies file for runtime_pipeline_test.
# This may be replaced when dependencies are built.
