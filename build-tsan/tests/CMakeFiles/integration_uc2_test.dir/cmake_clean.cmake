file(REMOVE_RECURSE
  "CMakeFiles/integration_uc2_test.dir/integration_uc2_test.cpp.o"
  "CMakeFiles/integration_uc2_test.dir/integration_uc2_test.cpp.o.d"
  "integration_uc2_test"
  "integration_uc2_test.pdb"
  "integration_uc2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_uc2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
