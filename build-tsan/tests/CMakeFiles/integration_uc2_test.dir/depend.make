# Empty dependencies file for integration_uc2_test.
# This may be replaced when dependencies are built.
