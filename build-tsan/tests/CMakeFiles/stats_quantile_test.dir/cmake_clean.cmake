file(REMOVE_RECURSE
  "CMakeFiles/stats_quantile_test.dir/stats_quantile_test.cpp.o"
  "CMakeFiles/stats_quantile_test.dir/stats_quantile_test.cpp.o.d"
  "stats_quantile_test"
  "stats_quantile_test.pdb"
  "stats_quantile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_quantile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
