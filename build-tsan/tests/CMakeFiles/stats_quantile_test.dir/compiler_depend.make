# Empty compiler generated dependencies file for stats_quantile_test.
# This may be replaced when dependencies are built.
