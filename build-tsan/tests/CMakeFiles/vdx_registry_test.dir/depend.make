# Empty dependencies file for vdx_registry_test.
# This may be replaced when dependencies are built.
