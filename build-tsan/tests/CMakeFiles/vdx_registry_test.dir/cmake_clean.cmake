file(REMOVE_RECURSE
  "CMakeFiles/vdx_registry_test.dir/vdx_registry_test.cpp.o"
  "CMakeFiles/vdx_registry_test.dir/vdx_registry_test.cpp.o.d"
  "vdx_registry_test"
  "vdx_registry_test.pdb"
  "vdx_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdx_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
