# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for vdx_schema_test.
