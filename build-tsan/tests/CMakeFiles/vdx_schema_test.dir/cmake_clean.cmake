file(REMOVE_RECURSE
  "CMakeFiles/vdx_schema_test.dir/vdx_schema_test.cpp.o"
  "CMakeFiles/vdx_schema_test.dir/vdx_schema_test.cpp.o.d"
  "vdx_schema_test"
  "vdx_schema_test.pdb"
  "vdx_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdx_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
