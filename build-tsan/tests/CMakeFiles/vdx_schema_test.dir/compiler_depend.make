# Empty compiler generated dependencies file for vdx_schema_test.
# This may be replaced when dependencies are built.
