file(REMOVE_RECURSE
  "CMakeFiles/golden_regression_test.dir/golden_regression_test.cpp.o"
  "CMakeFiles/golden_regression_test.dir/golden_regression_test.cpp.o.d"
  "golden_regression_test"
  "golden_regression_test.pdb"
  "golden_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
