# Empty dependencies file for golden_regression_test.
# This may be replaced when dependencies are built.
