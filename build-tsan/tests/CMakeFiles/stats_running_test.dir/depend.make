# Empty dependencies file for stats_running_test.
# This may be replaced when dependencies are built.
