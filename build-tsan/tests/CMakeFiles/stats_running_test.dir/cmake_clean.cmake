file(REMOVE_RECURSE
  "CMakeFiles/stats_running_test.dir/stats_running_test.cpp.o"
  "CMakeFiles/stats_running_test.dir/stats_running_test.cpp.o.d"
  "stats_running_test"
  "stats_running_test.pdb"
  "stats_running_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_running_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
