# Empty compiler generated dependencies file for integration_vdx_e2e_test.
# This may be replaced when dependencies are built.
