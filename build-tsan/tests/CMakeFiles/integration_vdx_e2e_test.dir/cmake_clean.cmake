file(REMOVE_RECURSE
  "CMakeFiles/integration_vdx_e2e_test.dir/integration_vdx_e2e_test.cpp.o"
  "CMakeFiles/integration_vdx_e2e_test.dir/integration_vdx_e2e_test.cpp.o.d"
  "integration_vdx_e2e_test"
  "integration_vdx_e2e_test.pdb"
  "integration_vdx_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_vdx_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
