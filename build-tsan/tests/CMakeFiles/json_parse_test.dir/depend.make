# Empty dependencies file for json_parse_test.
# This may be replaced when dependencies are built.
