file(REMOVE_RECURSE
  "CMakeFiles/json_parse_test.dir/json_parse_test.cpp.o"
  "CMakeFiles/json_parse_test.dir/json_parse_test.cpp.o.d"
  "json_parse_test"
  "json_parse_test.pdb"
  "json_parse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_parse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
