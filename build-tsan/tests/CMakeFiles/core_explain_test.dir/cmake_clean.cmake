file(REMOVE_RECURSE
  "CMakeFiles/core_explain_test.dir/core_explain_test.cpp.o"
  "CMakeFiles/core_explain_test.dir/core_explain_test.cpp.o.d"
  "core_explain_test"
  "core_explain_test.pdb"
  "core_explain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
