# Empty compiler generated dependencies file for core_explain_test.
# This may be replaced when dependencies are built.
