file(REMOVE_RECURSE
  "CMakeFiles/sim_fault_test.dir/sim_fault_test.cpp.o"
  "CMakeFiles/sim_fault_test.dir/sim_fault_test.cpp.o.d"
  "sim_fault_test"
  "sim_fault_test.pdb"
  "sim_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
