# Empty dependencies file for sim_fault_test.
# This may be replaced when dependencies are built.
