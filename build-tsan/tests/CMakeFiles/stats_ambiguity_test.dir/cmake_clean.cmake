file(REMOVE_RECURSE
  "CMakeFiles/stats_ambiguity_test.dir/stats_ambiguity_test.cpp.o"
  "CMakeFiles/stats_ambiguity_test.dir/stats_ambiguity_test.cpp.o.d"
  "stats_ambiguity_test"
  "stats_ambiguity_test.pdb"
  "stats_ambiguity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_ambiguity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
