# Empty compiler generated dependencies file for stats_ambiguity_test.
# This may be replaced when dependencies are built.
