file(REMOVE_RECURSE
  "CMakeFiles/runtime_remote_test.dir/runtime_remote_test.cpp.o"
  "CMakeFiles/runtime_remote_test.dir/runtime_remote_test.cpp.o.d"
  "runtime_remote_test"
  "runtime_remote_test.pdb"
  "runtime_remote_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_remote_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
