# Empty dependencies file for runtime_remote_test.
# This may be replaced when dependencies are built.
