file(REMOVE_RECURSE
  "CMakeFiles/umbrella_test.dir/umbrella_test.cpp.o"
  "CMakeFiles/umbrella_test.dir/umbrella_test.cpp.o.d"
  "umbrella_test"
  "umbrella_test.pdb"
  "umbrella_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umbrella_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
