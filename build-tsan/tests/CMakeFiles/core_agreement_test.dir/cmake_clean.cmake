file(REMOVE_RECURSE
  "CMakeFiles/core_agreement_test.dir/core_agreement_test.cpp.o"
  "CMakeFiles/core_agreement_test.dir/core_agreement_test.cpp.o.d"
  "core_agreement_test"
  "core_agreement_test.pdb"
  "core_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
