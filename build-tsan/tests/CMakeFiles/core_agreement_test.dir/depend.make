# Empty dependencies file for core_agreement_test.
# This may be replaced when dependencies are built.
