file(REMOVE_RECURSE
  "CMakeFiles/data_stream_test.dir/data_stream_test.cpp.o"
  "CMakeFiles/data_stream_test.dir/data_stream_test.cpp.o.d"
  "data_stream_test"
  "data_stream_test.pdb"
  "data_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
