file(REMOVE_RECURSE
  "CMakeFiles/core_algorithms_test.dir/core_algorithms_test.cpp.o"
  "CMakeFiles/core_algorithms_test.dir/core_algorithms_test.cpp.o.d"
  "core_algorithms_test"
  "core_algorithms_test.pdb"
  "core_algorithms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
