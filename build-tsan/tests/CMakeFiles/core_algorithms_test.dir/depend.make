# Empty dependencies file for core_algorithms_test.
# This may be replaced when dependencies are built.
