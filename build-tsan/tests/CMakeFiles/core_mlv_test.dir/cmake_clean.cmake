file(REMOVE_RECURSE
  "CMakeFiles/core_mlv_test.dir/core_mlv_test.cpp.o"
  "CMakeFiles/core_mlv_test.dir/core_mlv_test.cpp.o.d"
  "core_mlv_test"
  "core_mlv_test.pdb"
  "core_mlv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mlv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
