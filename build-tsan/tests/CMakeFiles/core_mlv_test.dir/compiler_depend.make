# Empty compiler generated dependencies file for core_mlv_test.
# This may be replaced when dependencies are built.
