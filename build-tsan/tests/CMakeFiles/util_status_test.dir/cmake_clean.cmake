file(REMOVE_RECURSE
  "CMakeFiles/util_status_test.dir/util_status_test.cpp.o"
  "CMakeFiles/util_status_test.dir/util_status_test.cpp.o.d"
  "util_status_test"
  "util_status_test.pdb"
  "util_status_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_status_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
