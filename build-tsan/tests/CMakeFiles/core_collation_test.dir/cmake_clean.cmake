file(REMOVE_RECURSE
  "CMakeFiles/core_collation_test.dir/core_collation_test.cpp.o"
  "CMakeFiles/core_collation_test.dir/core_collation_test.cpp.o.d"
  "core_collation_test"
  "core_collation_test.pdb"
  "core_collation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_collation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
