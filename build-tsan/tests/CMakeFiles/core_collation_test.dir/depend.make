# Empty dependencies file for core_collation_test.
# This may be replaced when dependencies are built.
