file(REMOVE_RECURSE
  "CMakeFiles/core_properties_test.dir/core_properties_test.cpp.o"
  "CMakeFiles/core_properties_test.dir/core_properties_test.cpp.o.d"
  "core_properties_test"
  "core_properties_test.pdb"
  "core_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
