file(REMOVE_RECURSE
  "CMakeFiles/json_write_test.dir/json_write_test.cpp.o"
  "CMakeFiles/json_write_test.dir/json_write_test.cpp.o.d"
  "json_write_test"
  "json_write_test.pdb"
  "json_write_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_write_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
