# Empty compiler generated dependencies file for json_write_test.
# This may be replaced when dependencies are built.
