
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data_dataset_test.cpp" "tests/CMakeFiles/data_dataset_test.dir/data_dataset_test.cpp.o" "gcc" "tests/CMakeFiles/data_dataset_test.dir/data_dataset_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/avoc_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/json/CMakeFiles/avoc_json.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/avoc_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/avoc_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cluster/CMakeFiles/avoc_cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/avoc_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/vdx/CMakeFiles/avoc_vdx.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/avoc_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/runtime/CMakeFiles/avoc_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
