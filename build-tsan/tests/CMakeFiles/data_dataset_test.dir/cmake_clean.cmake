file(REMOVE_RECURSE
  "CMakeFiles/data_dataset_test.dir/data_dataset_test.cpp.o"
  "CMakeFiles/data_dataset_test.dir/data_dataset_test.cpp.o.d"
  "data_dataset_test"
  "data_dataset_test.pdb"
  "data_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
