# Empty dependencies file for runtime_group_manager_test.
# This may be replaced when dependencies are built.
