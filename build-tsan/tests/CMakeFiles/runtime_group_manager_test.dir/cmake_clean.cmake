file(REMOVE_RECURSE
  "CMakeFiles/runtime_group_manager_test.dir/runtime_group_manager_test.cpp.o"
  "CMakeFiles/runtime_group_manager_test.dir/runtime_group_manager_test.cpp.o.d"
  "runtime_group_manager_test"
  "runtime_group_manager_test.pdb"
  "runtime_group_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_group_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
