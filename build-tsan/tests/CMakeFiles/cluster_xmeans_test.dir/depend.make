# Empty dependencies file for cluster_xmeans_test.
# This may be replaced when dependencies are built.
