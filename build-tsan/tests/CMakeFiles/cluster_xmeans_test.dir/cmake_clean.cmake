file(REMOVE_RECURSE
  "CMakeFiles/cluster_xmeans_test.dir/cluster_xmeans_test.cpp.o"
  "CMakeFiles/cluster_xmeans_test.dir/cluster_xmeans_test.cpp.o.d"
  "cluster_xmeans_test"
  "cluster_xmeans_test.pdb"
  "cluster_xmeans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_xmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
