file(REMOVE_RECURSE
  "CMakeFiles/vdx_spec_test.dir/vdx_spec_test.cpp.o"
  "CMakeFiles/vdx_spec_test.dir/vdx_spec_test.cpp.o.d"
  "vdx_spec_test"
  "vdx_spec_test.pdb"
  "vdx_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdx_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
