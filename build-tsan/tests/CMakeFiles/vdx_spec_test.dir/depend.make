# Empty dependencies file for vdx_spec_test.
# This may be replaced when dependencies are built.
