file(REMOVE_RECURSE
  "CMakeFiles/json_value_test.dir/json_value_test.cpp.o"
  "CMakeFiles/json_value_test.dir/json_value_test.cpp.o.d"
  "json_value_test"
  "json_value_test.pdb"
  "json_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
