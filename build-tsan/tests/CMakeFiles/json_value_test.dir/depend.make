# Empty dependencies file for json_value_test.
# This may be replaced when dependencies are built.
