# Empty compiler generated dependencies file for vdx_factory_test.
# This may be replaced when dependencies are built.
