file(REMOVE_RECURSE
  "CMakeFiles/vdx_factory_test.dir/vdx_factory_test.cpp.o"
  "CMakeFiles/vdx_factory_test.dir/vdx_factory_test.cpp.o.d"
  "vdx_factory_test"
  "vdx_factory_test.pdb"
  "vdx_factory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdx_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
