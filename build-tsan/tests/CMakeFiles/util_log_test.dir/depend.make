# Empty dependencies file for util_log_test.
# This may be replaced when dependencies are built.
