file(REMOVE_RECURSE
  "CMakeFiles/util_log_test.dir/util_log_test.cpp.o"
  "CMakeFiles/util_log_test.dir/util_log_test.cpp.o.d"
  "util_log_test"
  "util_log_test.pdb"
  "util_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
