file(REMOVE_RECURSE
  "CMakeFiles/sim_sensor_test.dir/sim_sensor_test.cpp.o"
  "CMakeFiles/sim_sensor_test.dir/sim_sensor_test.cpp.o.d"
  "sim_sensor_test"
  "sim_sensor_test.pdb"
  "sim_sensor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_sensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
