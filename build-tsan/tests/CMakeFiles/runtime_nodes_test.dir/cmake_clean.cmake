file(REMOVE_RECURSE
  "CMakeFiles/runtime_nodes_test.dir/runtime_nodes_test.cpp.o"
  "CMakeFiles/runtime_nodes_test.dir/runtime_nodes_test.cpp.o.d"
  "runtime_nodes_test"
  "runtime_nodes_test.pdb"
  "runtime_nodes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_nodes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
