# Empty dependencies file for runtime_nodes_test.
# This may be replaced when dependencies are built.
