file(REMOVE_RECURSE
  "CMakeFiles/core_exclusion_test.dir/core_exclusion_test.cpp.o"
  "CMakeFiles/core_exclusion_test.dir/core_exclusion_test.cpp.o.d"
  "core_exclusion_test"
  "core_exclusion_test.pdb"
  "core_exclusion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_exclusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
