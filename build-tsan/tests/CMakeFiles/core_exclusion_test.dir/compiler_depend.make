# Empty compiler generated dependencies file for core_exclusion_test.
# This may be replaced when dependencies are built.
