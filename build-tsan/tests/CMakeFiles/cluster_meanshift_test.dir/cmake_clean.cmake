file(REMOVE_RECURSE
  "CMakeFiles/cluster_meanshift_test.dir/cluster_meanshift_test.cpp.o"
  "CMakeFiles/cluster_meanshift_test.dir/cluster_meanshift_test.cpp.o.d"
  "cluster_meanshift_test"
  "cluster_meanshift_test.pdb"
  "cluster_meanshift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_meanshift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
