# Empty dependencies file for cluster_meanshift_test.
# This may be replaced when dependencies are built.
