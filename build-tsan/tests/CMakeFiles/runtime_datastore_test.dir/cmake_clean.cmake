file(REMOVE_RECURSE
  "CMakeFiles/runtime_datastore_test.dir/runtime_datastore_test.cpp.o"
  "CMakeFiles/runtime_datastore_test.dir/runtime_datastore_test.cpp.o.d"
  "runtime_datastore_test"
  "runtime_datastore_test.pdb"
  "runtime_datastore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_datastore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
