# Empty dependencies file for runtime_datastore_test.
# This may be replaced when dependencies are built.
