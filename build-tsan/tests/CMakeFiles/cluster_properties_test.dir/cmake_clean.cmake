file(REMOVE_RECURSE
  "CMakeFiles/cluster_properties_test.dir/cluster_properties_test.cpp.o"
  "CMakeFiles/cluster_properties_test.dir/cluster_properties_test.cpp.o.d"
  "cluster_properties_test"
  "cluster_properties_test.pdb"
  "cluster_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
