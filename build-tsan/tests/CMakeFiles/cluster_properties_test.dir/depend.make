# Empty dependencies file for cluster_properties_test.
# This may be replaced when dependencies are built.
