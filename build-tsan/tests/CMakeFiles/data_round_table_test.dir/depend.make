# Empty dependencies file for data_round_table_test.
# This may be replaced when dependencies are built.
