file(REMOVE_RECURSE
  "CMakeFiles/data_round_table_test.dir/data_round_table_test.cpp.o"
  "CMakeFiles/data_round_table_test.dir/data_round_table_test.cpp.o.d"
  "data_round_table_test"
  "data_round_table_test.pdb"
  "data_round_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_round_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
