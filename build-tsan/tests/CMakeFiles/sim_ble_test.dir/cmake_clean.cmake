file(REMOVE_RECURSE
  "CMakeFiles/sim_ble_test.dir/sim_ble_test.cpp.o"
  "CMakeFiles/sim_ble_test.dir/sim_ble_test.cpp.o.d"
  "sim_ble_test"
  "sim_ble_test.pdb"
  "sim_ble_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_ble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
