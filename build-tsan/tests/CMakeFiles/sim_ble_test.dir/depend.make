# Empty dependencies file for sim_ble_test.
# This may be replaced when dependencies are built.
