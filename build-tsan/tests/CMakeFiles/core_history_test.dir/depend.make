# Empty dependencies file for core_history_test.
# This may be replaced when dependencies are built.
