file(REMOVE_RECURSE
  "CMakeFiles/core_history_test.dir/core_history_test.cpp.o"
  "CMakeFiles/core_history_test.dir/core_history_test.cpp.o.d"
  "core_history_test"
  "core_history_test.pdb"
  "core_history_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
