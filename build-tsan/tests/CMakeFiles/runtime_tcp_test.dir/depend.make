# Empty dependencies file for runtime_tcp_test.
# This may be replaced when dependencies are built.
