file(REMOVE_RECURSE
  "CMakeFiles/runtime_tcp_test.dir/runtime_tcp_test.cpp.o"
  "CMakeFiles/runtime_tcp_test.dir/runtime_tcp_test.cpp.o.d"
  "runtime_tcp_test"
  "runtime_tcp_test.pdb"
  "runtime_tcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_tcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
