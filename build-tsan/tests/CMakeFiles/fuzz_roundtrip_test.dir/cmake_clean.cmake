file(REMOVE_RECURSE
  "CMakeFiles/fuzz_roundtrip_test.dir/fuzz_roundtrip_test.cpp.o"
  "CMakeFiles/fuzz_roundtrip_test.dir/fuzz_roundtrip_test.cpp.o.d"
  "fuzz_roundtrip_test"
  "fuzz_roundtrip_test.pdb"
  "fuzz_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
