# Empty compiler generated dependencies file for fuzz_roundtrip_test.
# This may be replaced when dependencies are built.
