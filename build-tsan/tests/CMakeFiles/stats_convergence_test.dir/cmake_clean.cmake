file(REMOVE_RECURSE
  "CMakeFiles/stats_convergence_test.dir/stats_convergence_test.cpp.o"
  "CMakeFiles/stats_convergence_test.dir/stats_convergence_test.cpp.o.d"
  "stats_convergence_test"
  "stats_convergence_test.pdb"
  "stats_convergence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_convergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
