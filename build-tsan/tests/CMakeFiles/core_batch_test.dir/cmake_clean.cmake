file(REMOVE_RECURSE
  "CMakeFiles/core_batch_test.dir/core_batch_test.cpp.o"
  "CMakeFiles/core_batch_test.dir/core_batch_test.cpp.o.d"
  "core_batch_test"
  "core_batch_test.pdb"
  "core_batch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
