# Empty compiler generated dependencies file for core_batch_test.
# This may be replaced when dependencies are built.
