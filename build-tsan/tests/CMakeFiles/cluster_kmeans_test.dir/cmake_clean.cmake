file(REMOVE_RECURSE
  "CMakeFiles/cluster_kmeans_test.dir/cluster_kmeans_test.cpp.o"
  "CMakeFiles/cluster_kmeans_test.dir/cluster_kmeans_test.cpp.o.d"
  "cluster_kmeans_test"
  "cluster_kmeans_test.pdb"
  "cluster_kmeans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_kmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
