# Empty dependencies file for cluster_kmeans_test.
# This may be replaced when dependencies are built.
