# Empty dependencies file for runtime_service_test.
# This may be replaced when dependencies are built.
