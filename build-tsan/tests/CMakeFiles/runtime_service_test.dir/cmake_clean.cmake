file(REMOVE_RECURSE
  "CMakeFiles/runtime_service_test.dir/runtime_service_test.cpp.o"
  "CMakeFiles/runtime_service_test.dir/runtime_service_test.cpp.o.d"
  "runtime_service_test"
  "runtime_service_test.pdb"
  "runtime_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
