file(REMOVE_RECURSE
  "CMakeFiles/runtime_multi_group_test.dir/runtime_multi_group_test.cpp.o"
  "CMakeFiles/runtime_multi_group_test.dir/runtime_multi_group_test.cpp.o.d"
  "runtime_multi_group_test"
  "runtime_multi_group_test.pdb"
  "runtime_multi_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_multi_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
