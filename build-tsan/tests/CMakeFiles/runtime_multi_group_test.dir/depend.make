# Empty dependencies file for runtime_multi_group_test.
# This may be replaced when dependencies are built.
