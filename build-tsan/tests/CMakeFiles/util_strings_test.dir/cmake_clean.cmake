file(REMOVE_RECURSE
  "CMakeFiles/util_strings_test.dir/util_strings_test.cpp.o"
  "CMakeFiles/util_strings_test.dir/util_strings_test.cpp.o.d"
  "util_strings_test"
  "util_strings_test.pdb"
  "util_strings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_strings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
