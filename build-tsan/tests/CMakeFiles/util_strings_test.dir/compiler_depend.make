# Empty compiler generated dependencies file for util_strings_test.
# This may be replaced when dependencies are built.
