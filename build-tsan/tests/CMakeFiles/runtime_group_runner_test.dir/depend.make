# Empty dependencies file for runtime_group_runner_test.
# This may be replaced when dependencies are built.
