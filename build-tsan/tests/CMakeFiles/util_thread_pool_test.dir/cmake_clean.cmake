file(REMOVE_RECURSE
  "CMakeFiles/util_thread_pool_test.dir/util_thread_pool_test.cpp.o"
  "CMakeFiles/util_thread_pool_test.dir/util_thread_pool_test.cpp.o.d"
  "util_thread_pool_test"
  "util_thread_pool_test.pdb"
  "util_thread_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_thread_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
