# Empty dependencies file for util_thread_pool_test.
# This may be replaced when dependencies are built.
