# Empty dependencies file for runtime_bus_test.
# This may be replaced when dependencies are built.
