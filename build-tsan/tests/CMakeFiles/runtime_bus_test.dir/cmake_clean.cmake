file(REMOVE_RECURSE
  "CMakeFiles/runtime_bus_test.dir/runtime_bus_test.cpp.o"
  "CMakeFiles/runtime_bus_test.dir/runtime_bus_test.cpp.o.d"
  "runtime_bus_test"
  "runtime_bus_test.pdb"
  "runtime_bus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_bus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
