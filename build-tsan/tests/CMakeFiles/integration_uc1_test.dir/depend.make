# Empty dependencies file for integration_uc1_test.
# This may be replaced when dependencies are built.
