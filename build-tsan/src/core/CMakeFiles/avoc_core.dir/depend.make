# Empty dependencies file for avoc_core.
# This may be replaced when dependencies are built.
