file(REMOVE_RECURSE
  "CMakeFiles/avoc_core.dir/agreement.cpp.o"
  "CMakeFiles/avoc_core.dir/agreement.cpp.o.d"
  "CMakeFiles/avoc_core.dir/algorithms.cpp.o"
  "CMakeFiles/avoc_core.dir/algorithms.cpp.o.d"
  "CMakeFiles/avoc_core.dir/batch.cpp.o"
  "CMakeFiles/avoc_core.dir/batch.cpp.o.d"
  "CMakeFiles/avoc_core.dir/categorical.cpp.o"
  "CMakeFiles/avoc_core.dir/categorical.cpp.o.d"
  "CMakeFiles/avoc_core.dir/collation.cpp.o"
  "CMakeFiles/avoc_core.dir/collation.cpp.o.d"
  "CMakeFiles/avoc_core.dir/config.cpp.o"
  "CMakeFiles/avoc_core.dir/config.cpp.o.d"
  "CMakeFiles/avoc_core.dir/engine.cpp.o"
  "CMakeFiles/avoc_core.dir/engine.cpp.o.d"
  "CMakeFiles/avoc_core.dir/exclusion.cpp.o"
  "CMakeFiles/avoc_core.dir/exclusion.cpp.o.d"
  "CMakeFiles/avoc_core.dir/explain.cpp.o"
  "CMakeFiles/avoc_core.dir/explain.cpp.o.d"
  "CMakeFiles/avoc_core.dir/history.cpp.o"
  "CMakeFiles/avoc_core.dir/history.cpp.o.d"
  "CMakeFiles/avoc_core.dir/mlv.cpp.o"
  "CMakeFiles/avoc_core.dir/mlv.cpp.o.d"
  "CMakeFiles/avoc_core.dir/multidim.cpp.o"
  "CMakeFiles/avoc_core.dir/multidim.cpp.o.d"
  "CMakeFiles/avoc_core.dir/stages.cpp.o"
  "CMakeFiles/avoc_core.dir/stages.cpp.o.d"
  "CMakeFiles/avoc_core.dir/types.cpp.o"
  "CMakeFiles/avoc_core.dir/types.cpp.o.d"
  "libavoc_core.a"
  "libavoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avoc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
