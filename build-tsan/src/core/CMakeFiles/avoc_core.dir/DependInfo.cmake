
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agreement.cpp" "src/core/CMakeFiles/avoc_core.dir/agreement.cpp.o" "gcc" "src/core/CMakeFiles/avoc_core.dir/agreement.cpp.o.d"
  "/root/repo/src/core/algorithms.cpp" "src/core/CMakeFiles/avoc_core.dir/algorithms.cpp.o" "gcc" "src/core/CMakeFiles/avoc_core.dir/algorithms.cpp.o.d"
  "/root/repo/src/core/batch.cpp" "src/core/CMakeFiles/avoc_core.dir/batch.cpp.o" "gcc" "src/core/CMakeFiles/avoc_core.dir/batch.cpp.o.d"
  "/root/repo/src/core/categorical.cpp" "src/core/CMakeFiles/avoc_core.dir/categorical.cpp.o" "gcc" "src/core/CMakeFiles/avoc_core.dir/categorical.cpp.o.d"
  "/root/repo/src/core/collation.cpp" "src/core/CMakeFiles/avoc_core.dir/collation.cpp.o" "gcc" "src/core/CMakeFiles/avoc_core.dir/collation.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/avoc_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/avoc_core.dir/config.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/avoc_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/avoc_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/exclusion.cpp" "src/core/CMakeFiles/avoc_core.dir/exclusion.cpp.o" "gcc" "src/core/CMakeFiles/avoc_core.dir/exclusion.cpp.o.d"
  "/root/repo/src/core/explain.cpp" "src/core/CMakeFiles/avoc_core.dir/explain.cpp.o" "gcc" "src/core/CMakeFiles/avoc_core.dir/explain.cpp.o.d"
  "/root/repo/src/core/history.cpp" "src/core/CMakeFiles/avoc_core.dir/history.cpp.o" "gcc" "src/core/CMakeFiles/avoc_core.dir/history.cpp.o.d"
  "/root/repo/src/core/mlv.cpp" "src/core/CMakeFiles/avoc_core.dir/mlv.cpp.o" "gcc" "src/core/CMakeFiles/avoc_core.dir/mlv.cpp.o.d"
  "/root/repo/src/core/multidim.cpp" "src/core/CMakeFiles/avoc_core.dir/multidim.cpp.o" "gcc" "src/core/CMakeFiles/avoc_core.dir/multidim.cpp.o.d"
  "/root/repo/src/core/stages.cpp" "src/core/CMakeFiles/avoc_core.dir/stages.cpp.o" "gcc" "src/core/CMakeFiles/avoc_core.dir/stages.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/avoc_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/avoc_core.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/avoc_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cluster/CMakeFiles/avoc_cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/avoc_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/avoc_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/json/CMakeFiles/avoc_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
