file(REMOVE_RECURSE
  "libavoc_core.a"
)
