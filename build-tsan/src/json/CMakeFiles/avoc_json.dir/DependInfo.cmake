
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/json/parse.cpp" "src/json/CMakeFiles/avoc_json.dir/parse.cpp.o" "gcc" "src/json/CMakeFiles/avoc_json.dir/parse.cpp.o.d"
  "/root/repo/src/json/schema.cpp" "src/json/CMakeFiles/avoc_json.dir/schema.cpp.o" "gcc" "src/json/CMakeFiles/avoc_json.dir/schema.cpp.o.d"
  "/root/repo/src/json/value.cpp" "src/json/CMakeFiles/avoc_json.dir/value.cpp.o" "gcc" "src/json/CMakeFiles/avoc_json.dir/value.cpp.o.d"
  "/root/repo/src/json/write.cpp" "src/json/CMakeFiles/avoc_json.dir/write.cpp.o" "gcc" "src/json/CMakeFiles/avoc_json.dir/write.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/avoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
