file(REMOVE_RECURSE
  "libavoc_json.a"
)
