file(REMOVE_RECURSE
  "CMakeFiles/avoc_json.dir/parse.cpp.o"
  "CMakeFiles/avoc_json.dir/parse.cpp.o.d"
  "CMakeFiles/avoc_json.dir/schema.cpp.o"
  "CMakeFiles/avoc_json.dir/schema.cpp.o.d"
  "CMakeFiles/avoc_json.dir/value.cpp.o"
  "CMakeFiles/avoc_json.dir/value.cpp.o.d"
  "CMakeFiles/avoc_json.dir/write.cpp.o"
  "CMakeFiles/avoc_json.dir/write.cpp.o.d"
  "libavoc_json.a"
  "libavoc_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avoc_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
