# Empty dependencies file for avoc_json.
# This may be replaced when dependencies are built.
