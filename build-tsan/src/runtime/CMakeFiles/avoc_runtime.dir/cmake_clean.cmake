file(REMOVE_RECURSE
  "CMakeFiles/avoc_runtime.dir/datastore.cpp.o"
  "CMakeFiles/avoc_runtime.dir/datastore.cpp.o.d"
  "CMakeFiles/avoc_runtime.dir/group_manager.cpp.o"
  "CMakeFiles/avoc_runtime.dir/group_manager.cpp.o.d"
  "CMakeFiles/avoc_runtime.dir/group_runner.cpp.o"
  "CMakeFiles/avoc_runtime.dir/group_runner.cpp.o.d"
  "CMakeFiles/avoc_runtime.dir/multi_group.cpp.o"
  "CMakeFiles/avoc_runtime.dir/multi_group.cpp.o.d"
  "CMakeFiles/avoc_runtime.dir/nodes.cpp.o"
  "CMakeFiles/avoc_runtime.dir/nodes.cpp.o.d"
  "CMakeFiles/avoc_runtime.dir/pipeline.cpp.o"
  "CMakeFiles/avoc_runtime.dir/pipeline.cpp.o.d"
  "CMakeFiles/avoc_runtime.dir/remote.cpp.o"
  "CMakeFiles/avoc_runtime.dir/remote.cpp.o.d"
  "CMakeFiles/avoc_runtime.dir/service.cpp.o"
  "CMakeFiles/avoc_runtime.dir/service.cpp.o.d"
  "CMakeFiles/avoc_runtime.dir/tcp.cpp.o"
  "CMakeFiles/avoc_runtime.dir/tcp.cpp.o.d"
  "libavoc_runtime.a"
  "libavoc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avoc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
