file(REMOVE_RECURSE
  "libavoc_runtime.a"
)
