# Empty dependencies file for avoc_runtime.
# This may be replaced when dependencies are built.
