
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/ambiguity.cpp" "src/stats/CMakeFiles/avoc_stats.dir/ambiguity.cpp.o" "gcc" "src/stats/CMakeFiles/avoc_stats.dir/ambiguity.cpp.o.d"
  "/root/repo/src/stats/convergence.cpp" "src/stats/CMakeFiles/avoc_stats.dir/convergence.cpp.o" "gcc" "src/stats/CMakeFiles/avoc_stats.dir/convergence.cpp.o.d"
  "/root/repo/src/stats/filters.cpp" "src/stats/CMakeFiles/avoc_stats.dir/filters.cpp.o" "gcc" "src/stats/CMakeFiles/avoc_stats.dir/filters.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/avoc_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/avoc_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/quantile.cpp" "src/stats/CMakeFiles/avoc_stats.dir/quantile.cpp.o" "gcc" "src/stats/CMakeFiles/avoc_stats.dir/quantile.cpp.o.d"
  "/root/repo/src/stats/running.cpp" "src/stats/CMakeFiles/avoc_stats.dir/running.cpp.o" "gcc" "src/stats/CMakeFiles/avoc_stats.dir/running.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/avoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
