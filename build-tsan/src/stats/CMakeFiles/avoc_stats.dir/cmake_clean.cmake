file(REMOVE_RECURSE
  "CMakeFiles/avoc_stats.dir/ambiguity.cpp.o"
  "CMakeFiles/avoc_stats.dir/ambiguity.cpp.o.d"
  "CMakeFiles/avoc_stats.dir/convergence.cpp.o"
  "CMakeFiles/avoc_stats.dir/convergence.cpp.o.d"
  "CMakeFiles/avoc_stats.dir/filters.cpp.o"
  "CMakeFiles/avoc_stats.dir/filters.cpp.o.d"
  "CMakeFiles/avoc_stats.dir/histogram.cpp.o"
  "CMakeFiles/avoc_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/avoc_stats.dir/quantile.cpp.o"
  "CMakeFiles/avoc_stats.dir/quantile.cpp.o.d"
  "CMakeFiles/avoc_stats.dir/running.cpp.o"
  "CMakeFiles/avoc_stats.dir/running.cpp.o.d"
  "libavoc_stats.a"
  "libavoc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avoc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
