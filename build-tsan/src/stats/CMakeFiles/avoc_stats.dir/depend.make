# Empty dependencies file for avoc_stats.
# This may be replaced when dependencies are built.
