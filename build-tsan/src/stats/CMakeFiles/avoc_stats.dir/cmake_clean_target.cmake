file(REMOVE_RECURSE
  "libavoc_stats.a"
)
