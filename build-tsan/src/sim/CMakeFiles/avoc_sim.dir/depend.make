# Empty dependencies file for avoc_sim.
# This may be replaced when dependencies are built.
