file(REMOVE_RECURSE
  "libavoc_sim.a"
)
