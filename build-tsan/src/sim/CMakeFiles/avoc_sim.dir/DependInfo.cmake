
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ble.cpp" "src/sim/CMakeFiles/avoc_sim.dir/ble.cpp.o" "gcc" "src/sim/CMakeFiles/avoc_sim.dir/ble.cpp.o.d"
  "/root/repo/src/sim/fault.cpp" "src/sim/CMakeFiles/avoc_sim.dir/fault.cpp.o" "gcc" "src/sim/CMakeFiles/avoc_sim.dir/fault.cpp.o.d"
  "/root/repo/src/sim/light.cpp" "src/sim/CMakeFiles/avoc_sim.dir/light.cpp.o" "gcc" "src/sim/CMakeFiles/avoc_sim.dir/light.cpp.o.d"
  "/root/repo/src/sim/sensor.cpp" "src/sim/CMakeFiles/avoc_sim.dir/sensor.cpp.o" "gcc" "src/sim/CMakeFiles/avoc_sim.dir/sensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/avoc_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/avoc_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/json/CMakeFiles/avoc_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
