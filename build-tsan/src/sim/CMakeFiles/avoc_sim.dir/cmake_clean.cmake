file(REMOVE_RECURSE
  "CMakeFiles/avoc_sim.dir/ble.cpp.o"
  "CMakeFiles/avoc_sim.dir/ble.cpp.o.d"
  "CMakeFiles/avoc_sim.dir/fault.cpp.o"
  "CMakeFiles/avoc_sim.dir/fault.cpp.o.d"
  "CMakeFiles/avoc_sim.dir/light.cpp.o"
  "CMakeFiles/avoc_sim.dir/light.cpp.o.d"
  "CMakeFiles/avoc_sim.dir/sensor.cpp.o"
  "CMakeFiles/avoc_sim.dir/sensor.cpp.o.d"
  "libavoc_sim.a"
  "libavoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
