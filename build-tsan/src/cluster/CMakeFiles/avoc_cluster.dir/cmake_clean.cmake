file(REMOVE_RECURSE
  "CMakeFiles/avoc_cluster.dir/dbscan.cpp.o"
  "CMakeFiles/avoc_cluster.dir/dbscan.cpp.o.d"
  "CMakeFiles/avoc_cluster.dir/grouping.cpp.o"
  "CMakeFiles/avoc_cluster.dir/grouping.cpp.o.d"
  "CMakeFiles/avoc_cluster.dir/kmeans.cpp.o"
  "CMakeFiles/avoc_cluster.dir/kmeans.cpp.o.d"
  "CMakeFiles/avoc_cluster.dir/meanshift.cpp.o"
  "CMakeFiles/avoc_cluster.dir/meanshift.cpp.o.d"
  "CMakeFiles/avoc_cluster.dir/xmeans.cpp.o"
  "CMakeFiles/avoc_cluster.dir/xmeans.cpp.o.d"
  "libavoc_cluster.a"
  "libavoc_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avoc_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
