file(REMOVE_RECURSE
  "libavoc_cluster.a"
)
