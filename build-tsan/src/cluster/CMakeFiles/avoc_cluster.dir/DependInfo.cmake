
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/dbscan.cpp" "src/cluster/CMakeFiles/avoc_cluster.dir/dbscan.cpp.o" "gcc" "src/cluster/CMakeFiles/avoc_cluster.dir/dbscan.cpp.o.d"
  "/root/repo/src/cluster/grouping.cpp" "src/cluster/CMakeFiles/avoc_cluster.dir/grouping.cpp.o" "gcc" "src/cluster/CMakeFiles/avoc_cluster.dir/grouping.cpp.o.d"
  "/root/repo/src/cluster/kmeans.cpp" "src/cluster/CMakeFiles/avoc_cluster.dir/kmeans.cpp.o" "gcc" "src/cluster/CMakeFiles/avoc_cluster.dir/kmeans.cpp.o.d"
  "/root/repo/src/cluster/meanshift.cpp" "src/cluster/CMakeFiles/avoc_cluster.dir/meanshift.cpp.o" "gcc" "src/cluster/CMakeFiles/avoc_cluster.dir/meanshift.cpp.o.d"
  "/root/repo/src/cluster/xmeans.cpp" "src/cluster/CMakeFiles/avoc_cluster.dir/xmeans.cpp.o" "gcc" "src/cluster/CMakeFiles/avoc_cluster.dir/xmeans.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/avoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
