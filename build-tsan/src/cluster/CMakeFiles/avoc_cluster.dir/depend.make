# Empty dependencies file for avoc_cluster.
# This may be replaced when dependencies are built.
