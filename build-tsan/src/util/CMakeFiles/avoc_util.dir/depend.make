# Empty dependencies file for avoc_util.
# This may be replaced when dependencies are built.
