file(REMOVE_RECURSE
  "libavoc_util.a"
)
