file(REMOVE_RECURSE
  "CMakeFiles/avoc_util.dir/cli.cpp.o"
  "CMakeFiles/avoc_util.dir/cli.cpp.o.d"
  "CMakeFiles/avoc_util.dir/log.cpp.o"
  "CMakeFiles/avoc_util.dir/log.cpp.o.d"
  "CMakeFiles/avoc_util.dir/rng.cpp.o"
  "CMakeFiles/avoc_util.dir/rng.cpp.o.d"
  "CMakeFiles/avoc_util.dir/status.cpp.o"
  "CMakeFiles/avoc_util.dir/status.cpp.o.d"
  "CMakeFiles/avoc_util.dir/strings.cpp.o"
  "CMakeFiles/avoc_util.dir/strings.cpp.o.d"
  "CMakeFiles/avoc_util.dir/thread_pool.cpp.o"
  "CMakeFiles/avoc_util.dir/thread_pool.cpp.o.d"
  "libavoc_util.a"
  "libavoc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avoc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
