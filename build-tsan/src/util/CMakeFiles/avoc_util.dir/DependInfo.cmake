
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/cli.cpp" "src/util/CMakeFiles/avoc_util.dir/cli.cpp.o" "gcc" "src/util/CMakeFiles/avoc_util.dir/cli.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/util/CMakeFiles/avoc_util.dir/log.cpp.o" "gcc" "src/util/CMakeFiles/avoc_util.dir/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/avoc_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/avoc_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/util/CMakeFiles/avoc_util.dir/status.cpp.o" "gcc" "src/util/CMakeFiles/avoc_util.dir/status.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/util/CMakeFiles/avoc_util.dir/strings.cpp.o" "gcc" "src/util/CMakeFiles/avoc_util.dir/strings.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/util/CMakeFiles/avoc_util.dir/thread_pool.cpp.o" "gcc" "src/util/CMakeFiles/avoc_util.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
