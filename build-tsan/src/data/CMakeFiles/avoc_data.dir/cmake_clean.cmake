file(REMOVE_RECURSE
  "CMakeFiles/avoc_data.dir/csv.cpp.o"
  "CMakeFiles/avoc_data.dir/csv.cpp.o.d"
  "CMakeFiles/avoc_data.dir/dataset.cpp.o"
  "CMakeFiles/avoc_data.dir/dataset.cpp.o.d"
  "CMakeFiles/avoc_data.dir/round_table.cpp.o"
  "CMakeFiles/avoc_data.dir/round_table.cpp.o.d"
  "CMakeFiles/avoc_data.dir/stream.cpp.o"
  "CMakeFiles/avoc_data.dir/stream.cpp.o.d"
  "libavoc_data.a"
  "libavoc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avoc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
