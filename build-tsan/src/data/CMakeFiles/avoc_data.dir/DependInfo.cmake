
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cpp" "src/data/CMakeFiles/avoc_data.dir/csv.cpp.o" "gcc" "src/data/CMakeFiles/avoc_data.dir/csv.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/avoc_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/avoc_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/round_table.cpp" "src/data/CMakeFiles/avoc_data.dir/round_table.cpp.o" "gcc" "src/data/CMakeFiles/avoc_data.dir/round_table.cpp.o.d"
  "/root/repo/src/data/stream.cpp" "src/data/CMakeFiles/avoc_data.dir/stream.cpp.o" "gcc" "src/data/CMakeFiles/avoc_data.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/avoc_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/json/CMakeFiles/avoc_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
