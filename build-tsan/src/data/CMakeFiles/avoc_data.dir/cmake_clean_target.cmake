file(REMOVE_RECURSE
  "libavoc_data.a"
)
