# Empty dependencies file for avoc_data.
# This may be replaced when dependencies are built.
