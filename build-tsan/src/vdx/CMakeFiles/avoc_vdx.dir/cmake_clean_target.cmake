file(REMOVE_RECURSE
  "libavoc_vdx.a"
)
