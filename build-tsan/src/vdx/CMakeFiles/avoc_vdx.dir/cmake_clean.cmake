file(REMOVE_RECURSE
  "CMakeFiles/avoc_vdx.dir/factory.cpp.o"
  "CMakeFiles/avoc_vdx.dir/factory.cpp.o.d"
  "CMakeFiles/avoc_vdx.dir/registry.cpp.o"
  "CMakeFiles/avoc_vdx.dir/registry.cpp.o.d"
  "CMakeFiles/avoc_vdx.dir/schema.cpp.o"
  "CMakeFiles/avoc_vdx.dir/schema.cpp.o.d"
  "CMakeFiles/avoc_vdx.dir/spec.cpp.o"
  "CMakeFiles/avoc_vdx.dir/spec.cpp.o.d"
  "libavoc_vdx.a"
  "libavoc_vdx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avoc_vdx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
