# Empty dependencies file for avoc_vdx.
# This may be replaced when dependencies are built.
