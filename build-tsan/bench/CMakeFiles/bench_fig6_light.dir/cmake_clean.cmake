file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_light.dir/bench_fig6_light.cpp.o"
  "CMakeFiles/bench_fig6_light.dir/bench_fig6_light.cpp.o.d"
  "bench_fig6_light"
  "bench_fig6_light.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_light.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
