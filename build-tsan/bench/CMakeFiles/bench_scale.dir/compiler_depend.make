# Empty compiler generated dependencies file for bench_scale.
# This may be replaced when dependencies are built.
