file(REMOVE_RECURSE
  "CMakeFiles/bench_scale.dir/bench_scale.cpp.o"
  "CMakeFiles/bench_scale.dir/bench_scale.cpp.o.d"
  "bench_scale"
  "bench_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
