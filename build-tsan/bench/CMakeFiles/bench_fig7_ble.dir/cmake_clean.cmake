file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ble.dir/bench_fig7_ble.cpp.o"
  "CMakeFiles/bench_fig7_ble.dir/bench_fig7_ble.cpp.o.d"
  "bench_fig7_ble"
  "bench_fig7_ble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
