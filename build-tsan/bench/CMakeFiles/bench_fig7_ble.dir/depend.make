# Empty dependencies file for bench_fig7_ble.
# This may be replaced when dependencies are built.
