# Empty dependencies file for bench_multi_group.
# This may be replaced when dependencies are built.
