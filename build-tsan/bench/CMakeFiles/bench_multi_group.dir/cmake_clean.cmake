file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_group.dir/bench_multi_group.cpp.o"
  "CMakeFiles/bench_multi_group.dir/bench_multi_group.cpp.o.d"
  "bench_multi_group"
  "bench_multi_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
