file(REMOVE_RECURSE
  "CMakeFiles/bench_mlv.dir/bench_mlv.cpp.o"
  "CMakeFiles/bench_mlv.dir/bench_mlv.cpp.o.d"
  "bench_mlv"
  "bench_mlv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mlv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
