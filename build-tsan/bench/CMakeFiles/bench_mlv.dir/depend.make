# Empty dependencies file for bench_mlv.
# This may be replaced when dependencies are built.
