# Empty compiler generated dependencies file for bench_fault_policies.
# This may be replaced when dependencies are built.
