file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_policies.dir/bench_fault_policies.cpp.o"
  "CMakeFiles/bench_fault_policies.dir/bench_fault_policies.cpp.o.d"
  "bench_fault_policies"
  "bench_fault_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
