file(REMOVE_RECURSE
  "CMakeFiles/bench_convergence.dir/bench_convergence.cpp.o"
  "CMakeFiles/bench_convergence.dir/bench_convergence.cpp.o.d"
  "bench_convergence"
  "bench_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
