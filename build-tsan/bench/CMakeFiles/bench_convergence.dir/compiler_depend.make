# Empty compiler generated dependencies file for bench_convergence.
# This may be replaced when dependencies are built.
