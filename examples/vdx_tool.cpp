// VDX command-line utility: validate, describe, format and export voting
// definitions — the developer-tooling side of §6's "shielding software
// engineers from the voting implementation".
//
// Usage:
//   vdx_tool validate FILE.json...        check syntax + capability matrix
//   vdx_tool describe FILE.json           human-readable breakdown
//   vdx_tool format FILE.json             canonical pretty-print to stdout
//   vdx_tool export ALGORITHM [FILE]      emit a builtin preset's VDX
//   vdx_tool list                         list builtin algorithm presets
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/algorithms.h"
#include "vdx/factory.h"
#include "vdx/registry.h"
#include "vdx/schema.h"
#include "vdx/spec.h"

namespace {

int Validate(const std::vector<std::string>& files) {
  int failures = 0;
  for (const std::string& file : files) {
    // Structural check against the published JSON schema first: it gives
    // precise paths for typos and unknown members.
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad() || (!in && buffer.str().empty())) {
      std::printf("%-40s INVALID: cannot read file\n", file.c_str());
      ++failures;
      continue;
    }
    auto structural = avoc::vdx::ValidateTextAgainstSchema(buffer.str());
    if (!structural.ok()) {
      std::printf("%-40s INVALID: %s\n", file.c_str(),
                  structural.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (!structural->ok()) {
      std::printf("%-40s SCHEMA VIOLATIONS:\n%s", file.c_str(),
                  structural->ToString().c_str());
      ++failures;
      continue;
    }
    // Then the semantic rules (ranges, capability matrix).
    auto spec = avoc::vdx::ReadSpecFile(file);
    if (!spec.ok()) {
      std::printf("%-40s INVALID: %s\n", file.c_str(),
                  spec.status().ToString().c_str());
      ++failures;
      continue;
    }
    const avoc::Status status = spec->Validate();
    if (!status.ok()) {
      std::printf("%-40s INVALID: %s\n", file.c_str(),
                  status.ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("%-40s OK (%s, %s)\n", file.c_str(),
                spec->algorithm_name.c_str(),
                std::string(avoc::vdx::ToToken(spec->value_type)).c_str());
  }
  return failures == 0 ? 0 : 1;
}

int Describe(const std::string& file) {
  auto spec = avoc::vdx::ReadSpecFile(file);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("algorithm:   %s\n", spec->algorithm_name.c_str());
  std::printf("value type:  %s\n",
              std::string(avoc::vdx::ToToken(spec->value_type)).c_str());
  std::printf("quorum:      %s %.0f%s\n",
              std::string(avoc::vdx::ToToken(spec->quorum)).c_str(),
              spec->quorum_amount,
              spec->quorum == avoc::vdx::QuorumMode::kCount ? " candidates"
                                                            : "%");
  std::printf("exclusion:   %s (threshold %g)\n",
              std::string(avoc::vdx::ToToken(spec->exclusion)).c_str(),
              spec->exclusion_threshold);
  std::printf("history:     %s\n",
              std::string(avoc::vdx::ToToken(spec->history)).c_str());
  std::printf("collation:   %s\n",
              std::string(avoc::vdx::ToToken(spec->collation)).c_str());
  std::printf("clustering:  %s\n",
              spec->clustering_always
                  ? "every round (COV)"
                  : spec->bootstrapping ? "bootstrap/fallback (AVOC)" : "off");
  std::printf("faults:      no-quorum=%s, no-majority=%s\n",
              std::string(avoc::vdx::ToToken(spec->fault_policy.on_no_quorum))
                  .c_str(),
              std::string(
                  avoc::vdx::ToToken(spec->fault_policy.on_no_majority))
                  .c_str());
  for (const auto& [key, value] : spec->params) {
    std::printf("param:       %s = %g\n", key.c_str(), value);
  }
  for (const auto& [key, value] : spec->string_params) {
    std::printf("param:       %s = %s\n", key.c_str(), value.c_str());
  }
  const avoc::Status status = spec->Validate();
  std::printf("validation:  %s\n", status.ok() ? "OK" : status.ToString().c_str());
  if (spec->value_type == avoc::vdx::ValueKind::kNumeric) {
    auto config = avoc::vdx::ToEngineConfig(*spec);
    std::printf("lowering:    %s\n",
                config.ok() ? "engine config OK"
                            : config.status().ToString().c_str());
  }
  return 0;
}

int Format(const std::string& file) {
  auto spec = avoc::vdx::ReadSpecFile(file);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", spec->Serialize().c_str());
  return 0;
}

int Export(const std::string& name, const std::string& out_file) {
  auto id = avoc::core::ParseAlgorithmName(name);
  if (!id.ok()) {
    std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
    return 1;
  }
  const avoc::vdx::Spec spec = avoc::vdx::ExportSpec(*id);
  if (out_file.empty()) {
    std::printf("%s\n", spec.Serialize().c_str());
    return 0;
  }
  const avoc::Status status = avoc::vdx::WriteSpecFile(out_file, spec);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_file.c_str());
  return 0;
}

int List() {
  const auto registry = avoc::vdx::SpecRegistry::WithBuiltins();
  for (const std::string& name : registry.Names()) {
    auto spec = registry.Get(name);
    std::printf("%-10s history=%-18s collation=%s\n", name.c_str(),
                std::string(avoc::vdx::ToToken(spec->history)).c_str(),
                std::string(avoc::vdx::ToToken(spec->collation)).c_str());
  }
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: vdx_tool validate FILE...\n"
               "       vdx_tool describe FILE\n"
               "       vdx_tool format FILE\n"
               "       vdx_tool export ALGORITHM [FILE]\n"
               "       vdx_tool list\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "validate" && !args.empty()) return Validate(args);
  if (command == "describe" && args.size() == 1) return Describe(args[0]);
  if (command == "format" && args.size() == 1) return Format(args[0]);
  if (command == "export" && !args.empty()) {
    return Export(args[0], args.size() > 1 ? args[1] : "");
  }
  if (command == "list") return List();
  Usage();
  return 2;
}
