// Smart-shelf example — the paper's §1 motivation: "In smart shopping
// scenarios with networked shelf labels, the degree of redundancy rises
// significantly to dozens of proximity sensors."
//
// A shelf carries 24 proximity sensors measuring the distance to the
// nearest shopper (cm).  Several sensors are unreliable (dirty lenses:
// noisy; mis-mounted: biased; flaky wiring: dropouts).  The
// VoterGroupManager runs one AVOC voter per shelf; the fused distance
// drives the "shopper nearby" decision for the shelf's e-ink label.
//
// Usage: smart_shelf [--rounds N] [--seed S] [--sensors N]
#include <cmath>
#include <cstdio>

#include "core/algorithms.h"
#include "runtime/group_manager.h"
#include "stats/running.h"
#include "util/cli.h"
#include "util/rng.h"
#include "vdx/factory.h"

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) {
    std::fprintf(stderr, "%s\n", cli.status().ToString().c_str());
    return 1;
  }
  const size_t rounds = static_cast<size_t>(cli->GetInt("rounds", 120));
  const size_t sensors = static_cast<size_t>(cli->GetInt("sensors", 24));
  avoc::Rng rng(static_cast<uint64_t>(cli->GetInt("seed", 99)));

  // One AVOC voter per shelf, defined by VDX like any application would.
  avoc::core::PresetParams preset;
  preset.scale = avoc::core::ThresholdScale::kAbsolute;
  preset.error = 15.0;  // agree within 15 cm
  preset.quorum_fraction = 0.5;
  const avoc::vdx::Spec spec =
      avoc::vdx::ExportSpec(avoc::core::AlgorithmId::kAvoc, preset);

  avoc::runtime::VoterGroupManager shelves;
  for (const char* shelf : {"shelf-dairy", "shelf-snacks"}) {
    auto st = shelves.AddGroupFromSpec(shelf, spec, sensors);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Sensor pathology assignment: indices 0-2 biased, 3-5 extra noisy,
  // 6-7 flaky (drop 40% of readings).  The rest are healthy.
  auto sample = [&](size_t m, double truth) -> std::optional<double> {
    double value = truth;
    double noise = 4.0;
    if (m < 3) value += 60.0;          // mis-mounted: reads 60 cm far
    if (m >= 3 && m < 6) noise = 25.0; // dirty lens
    if (m >= 6 && m < 8 && rng.Bernoulli(0.4)) return std::nullopt;
    return value + rng.Gaussian(0.0, noise);
  };

  // A shopper approaches the dairy shelf, lingers, and leaves; nobody
  // visits the snacks shelf (distance stays at the aisle width).
  auto dairy_truth = [&](size_t r) {
    const double t = static_cast<double>(r);
    if (t < 40) return 300.0 - 6.0 * t;           // approach
    if (t < 80) return 60.0;                      // browsing
    return 60.0 + 6.0 * (t - 80.0);               // leaving
  };

  size_t nearby_rounds_fused = 0;
  size_t nearby_rounds_truth = 0;
  avoc::stats::RunningStats error;
  for (size_t r = 0; r < rounds; ++r) {
    const double truth_dairy = dairy_truth(r);
    for (size_t m = 0; m < sensors; ++m) {
      if (const auto v = sample(m, truth_dairy)) {
        (void)shelves.Submit("shelf-dairy", m, r, *v);
      }
      if (const auto v = sample(m, 350.0)) {
        (void)shelves.Submit("shelf-snacks", m, r, *v);
      }
    }
    shelves.CloseRoundAll(r);

    const auto outputs = (*shelves.sink("shelf-dairy"))->outputs();
    if (!outputs.empty() && outputs.back().result.value.has_value()) {
      const double fused = *outputs.back().result.value;
      error.Add(std::abs(fused - truth_dairy));
      if (fused < 100.0) ++nearby_rounds_fused;
    }
    if (truth_dairy < 100.0) ++nearby_rounds_truth;
  }

  std::printf("smart shelf: %zu sensors x %zu rounds per shelf\n", sensors,
              rounds);
  std::printf("dairy shelf: fused-distance mean error %.1f cm\n",
              error.mean());
  std::printf("'shopper nearby' rounds: truth %zu, fused decision %zu\n",
              nearby_rounds_truth, nearby_rounds_fused);

  const auto snack_outputs = (*shelves.sink("shelf-snacks"))->outputs();
  size_t false_alarms = 0;
  for (const auto& output : snack_outputs) {
    if (output.result.value.has_value() && *output.result.value < 100.0) {
      ++false_alarms;
    }
  }
  std::printf("snacks shelf: %zu false 'nearby' alarms in %zu rounds\n",
              false_alarms, snack_outputs.size());

  // Show the learned reliability map of the dairy shelf.
  const auto dairy_outputs = (*shelves.sink("shelf-dairy"))->outputs();
  if (!dairy_outputs.empty()) {
    std::printf("\nlearned sensor records (dairy):");
    const auto& history = dairy_outputs.back().result.history;
    for (size_t m = 0; m < history.size(); ++m) {
      if (m % 8 == 0) std::printf("\n  ");
      std::printf("s%02zu=%.2f ", m, history[m]);
    }
    std::printf("\n(mis-mounted sensors 0-2 end with the lowest records)\n");
  }
  return 0;
}
