// UC-1 walkthrough: the smart-building light-sensor experiment of §7.
//
// Regenerates the 10,000-round reference dataset, injects the +6 klx fault
// into sensor E4, runs every algorithm of the paper over both tables, and
// prints (a) the per-algorithm output summary, (b) the error-injection
// diff summary, and (c) the convergence comparison behind the paper's
// "boosts the convergence of the measurements by 4x" headline.
//
// Usage:
//   smart_building [--rounds N] [--seed S] [--fault-offset LUX]
//                  [--tolerance LUX] [--save-datasets DIR]
#include <cstdio>
#include <string>
#include <vector>

#include "core/batch.h"
#include "data/dataset.h"
#include "sim/light.h"
#include "stats/convergence.h"
#include "stats/running.h"
#include "util/cli.h"
#include "util/strings.h"

namespace {

using avoc::core::AlgorithmId;
using avoc::core::BatchResult;

struct AlgorithmRun {
  AlgorithmId id;
  BatchResult clean;
  BatchResult faulty;
};

void PrintSeriesSummary(const char* label, const std::vector<double>& series) {
  avoc::stats::RunningStats stats;
  for (const double v : series) stats.Add(v);
  std::printf("  %-10s mean=%9.1f  min=%9.1f  max=%9.1f  stddev=%7.1f\n",
              label, stats.mean(), stats.min(), stats.max(), stats.stddev());
}

}  // namespace

int main(int argc, char** argv) {
  auto cli_result = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli_result.ok()) {
    std::fprintf(stderr, "%s\n", cli_result.status().ToString().c_str());
    return 1;
  }
  const avoc::CommandLine& cli = *cli_result;

  avoc::sim::LightScenarioParams params;
  params.rounds = static_cast<size_t>(cli.GetInt("rounds", 10000));
  params.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  params.fault_offset = cli.GetDouble("fault-offset", 6000.0);
  const double tolerance = cli.GetDouble("tolerance", 100.0);
  const std::string save_dir = cli.GetString("save-datasets", "");

  avoc::sim::LightScenario scenario(params);
  const avoc::data::RoundTable clean_table = scenario.MakeReferenceTable();
  const avoc::data::RoundTable faulty_table = scenario.MakeFaultyTable();

  if (!save_dir.empty()) {
    const auto meta = scenario.Metadata();
    auto st = avoc::data::SaveDataset(save_dir + "/uc1_reference.csv",
                                      clean_table, &meta);
    if (st.ok()) {
      st = avoc::data::SaveDataset(save_dir + "/uc1_faulty.csv", faulty_table,
                                   &meta);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "dataset save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("datasets saved under %s\n\n", save_dir.c_str());
  }

  std::printf("UC-1 smart building: %zu rounds x %zu sensors, fault: E%zu %+g lux\n\n",
              clean_table.round_count(), clean_table.module_count(),
              params.faulty_module + 1, params.fault_offset);

  std::printf("raw sensor summary (clean):\n");
  for (size_t m = 0; m < clean_table.module_count(); ++m) {
    PrintSeriesSummary(clean_table.module_names()[m].c_str(),
                       clean_table.ModuleValues(m));
  }
  std::printf("\n");

  std::vector<AlgorithmRun> runs;
  for (const AlgorithmId id : avoc::core::AllAlgorithms()) {
    auto clean = avoc::core::RunAlgorithm(id, clean_table);
    auto faulty = avoc::core::RunAlgorithm(id, faulty_table);
    if (!clean.ok() || !faulty.ok()) {
      std::fprintf(stderr, "%s failed: %s%s\n",
                   std::string(avoc::core::AlgorithmName(id)).c_str(),
                   clean.ok() ? "" : clean.status().ToString().c_str(),
                   faulty.ok() ? "" : faulty.status().ToString().c_str());
      return 1;
    }
    runs.push_back(AlgorithmRun{id, std::move(*clean), std::move(*faulty)});
  }

  std::printf("voting output summary (clean data, Fig. 6-b):\n");
  for (const AlgorithmRun& run : runs) {
    PrintSeriesSummary(std::string(avoc::core::AlgorithmName(run.id)).c_str(),
                       run.clean.ContinuousOutputs());
  }

  std::printf("\nerror-injection diff vs clean output (Fig. 6-e):\n");
  std::printf("  %-10s %10s %10s %12s %12s %s\n", "algorithm", "peak",
              "residual", "converge@", "boost", "clustered-rounds");
  avoc::stats::ConvergenceOptions conv_options;
  conv_options.tolerance = tolerance;
  conv_options.window = 5;

  avoc::stats::ConvergenceReport hybrid_report;
  avoc::stats::ConvergenceReport avoc_report;
  for (const AlgorithmRun& run : runs) {
    const std::vector<double> clean_out = run.clean.ContinuousOutputs();
    const std::vector<double> faulty_out = run.faulty.ContinuousOutputs();
    const auto report = avoc::stats::MeasureConvergence(faulty_out, clean_out,
                                                        conv_options);
    if (run.id == AlgorithmId::kHybrid) hybrid_report = report;
    if (run.id == AlgorithmId::kAvoc) avoc_report = report;
    std::printf("  %-10s %10.1f %10.3f %12s %12s %zu\n",
                std::string(avoc::core::AlgorithmName(run.id)).c_str(),
                report.peak_error, report.residual_bias,
                report.converged_at.has_value()
                    ? std::to_string(*report.converged_at).c_str()
                    : "never",
                "-", run.faulty.clustered_rounds());
  }

  const auto boost = avoc::stats::ConvergenceBoost(avoc_report, hybrid_report);
  std::printf("\nAVOC bootstrap effect (Fig. 6-f): first 10 rounds of diff:\n");
  for (const AlgorithmRun& run : runs) {
    if (run.id != AlgorithmId::kHybrid && run.id != AlgorithmId::kAvoc &&
        run.id != AlgorithmId::kClusteringOnly) {
      continue;
    }
    std::printf("  %-8s:", std::string(avoc::core::AlgorithmName(run.id)).c_str());
    const auto clean_out = run.clean.ContinuousOutputs();
    const auto faulty_out = run.faulty.ContinuousOutputs();
    for (size_t r = 0; r < 10 && r < clean_out.size(); ++r) {
      std::printf(" %7.1f", faulty_out[r] - clean_out[r]);
    }
    std::printf("\n");
  }

  if (boost.has_value()) {
    std::printf("\nconvergence boost (hybrid rounds / AVOC rounds): %.1fx\n",
                *boost);
  } else {
    std::printf("\nconvergence boost: n/a (one of the series never converged)\n");
  }
  return 0;
}
