// UC-2 walkthrough: the BLE-beacon tunnel-positioning experiment of §7.
//
// Generates the two 9-beacon stack datasets, fuses each stack per round
// with (a) a single beacon, (b) the plain 9-beacon average and (c) AVOC,
// and prints the ambiguity comparison of Fig. 7: how many rounds leave it
// unclear which stack is closer to the robot.
//
// Usage:
//   tunnel_positioning [--seed S] [--rounds N] [--margin DB]
//                      [--save-datasets DIR] [--series]
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/batch.h"
#include "data/dataset.h"
#include "sim/ble.h"
#include "stats/ambiguity.h"
#include "util/cli.h"

namespace {

using avoc::core::AlgorithmId;

std::vector<std::optional<double>> SingleBeacon(
    const avoc::data::RoundTable& table, size_t beacon) {
  std::vector<std::optional<double>> series;
  series.reserve(table.round_count());
  for (size_t r = 0; r < table.round_count(); ++r) {
    series.push_back(table.At(r, beacon));
  }
  return series;
}

avoc::Result<std::vector<std::optional<double>>> Fused(
    AlgorithmId id, const avoc::data::RoundTable& table,
    const avoc::core::PresetParams& params) {
  AVOC_ASSIGN_OR_RETURN(const avoc::core::BatchResult batch,
                        avoc::core::RunAlgorithm(id, table, params));
  return batch.Outputs();
}

void PrintAmbiguity(const char* label,
                    const std::vector<std::optional<double>>& a,
                    const std::vector<std::optional<double>>& b,
                    double margin) {
  avoc::stats::AmbiguityOptions options;
  options.margin = margin;
  const auto report = avoc::stats::MeasureAmbiguity(a, b, options);
  std::printf(
      "  %-18s ambiguous %3zu/%3zu rounds (%5.1f%%)  longest-run %3zu  "
      "decision-flips %zu\n",
      label, report.ambiguous_rounds, report.rounds,
      100.0 * report.ambiguous_fraction(), report.longest_ambiguous_run,
      report.decision_flips);
}

}  // namespace

int main(int argc, char** argv) {
  auto cli_result = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli_result.ok()) {
    std::fprintf(stderr, "%s\n", cli_result.status().ToString().c_str());
    return 1;
  }
  const avoc::CommandLine& cli = *cli_result;

  avoc::sim::BleScenarioParams params;
  params.seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  params.rounds = static_cast<size_t>(cli.GetInt("rounds", 297));
  const double margin = cli.GetDouble("margin", 3.0);
  const std::string save_dir = cli.GetString("save-datasets", "");
  const bool print_series = cli.GetBool("series", false);

  avoc::sim::BleScenario scenario(params);
  const avoc::sim::BleDataset dataset = scenario.Generate();

  if (!save_dir.empty()) {
    const auto meta = scenario.Metadata();
    auto st = avoc::data::SaveDataset(save_dir + "/uc2_stack_a.csv",
                                      dataset.stack_a, &meta);
    if (st.ok()) {
      st = avoc::data::SaveDataset(save_dir + "/uc2_stack_b.csv",
                                   dataset.stack_b, &meta);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "dataset save failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  std::printf(
      "UC-2 tunnel positioning: %zu rounds, 2 stacks x %zu beacons, "
      "%zu missing readings total\n\n",
      dataset.stack_a.round_count(), dataset.stack_a.module_count(),
      dataset.stack_a.missing_count() + dataset.stack_b.missing_count());

  // RSSI voting: relative thresholds are meaningless for negative dBm
  // magnitudes near zero crossing; use an absolute margin (6 dB) instead.
  avoc::core::PresetParams preset;
  preset.scale = avoc::core::ThresholdScale::kAbsolute;
  preset.error = 6.0;
  preset.soft_multiple = 2.0;
  // BLE beacons drop out constantly; vote with whatever arrived.
  preset.quorum_fraction = 0.2;

  const auto single_a = SingleBeacon(dataset.stack_a, 0);
  const auto single_b = SingleBeacon(dataset.stack_b, 0);

  auto avg_a = Fused(AlgorithmId::kAverage, dataset.stack_a, preset);
  auto avg_b = Fused(AlgorithmId::kAverage, dataset.stack_b, preset);
  auto avoc_a = Fused(AlgorithmId::kAvoc, dataset.stack_a, preset);
  auto avoc_b = Fused(AlgorithmId::kAvoc, dataset.stack_b, preset);

  // The paper's observation: with averaging collation AVOC joins the
  // "averaging group"; run it both ways to show the collation effect.
  avoc::core::PresetParams avg_collation = preset;
  avg_collation.collation = avoc::core::Collation::kWeightedAverage;
  auto avoc_avg_a = Fused(AlgorithmId::kAvoc, dataset.stack_a, avg_collation);
  auto avoc_avg_b = Fused(AlgorithmId::kAvoc, dataset.stack_b, avg_collation);

  if (!avg_a.ok() || !avg_b.ok() || !avoc_a.ok() || !avoc_b.ok() ||
      !avoc_avg_a.ok() || !avoc_avg_b.ok()) {
    std::fprintf(stderr, "fusion failed\n");
    return 1;
  }

  std::printf("ambiguity: rounds where |stackA - stackB| < %.1f dB (Fig. 7):\n",
              margin);
  PrintAmbiguity("single beacon", single_a, single_b, margin);
  PrintAmbiguity("9-beacon average", *avg_a, *avg_b, margin);
  PrintAmbiguity("9-beacon AVOC/MNN", *avoc_a, *avoc_b, margin);
  PrintAmbiguity("9-beacon AVOC/avg", *avoc_avg_a, *avoc_avg_b, margin);

  if (print_series) {
    std::printf("\nround, singleA, singleB, avgA, avgB, avocA, avocB\n");
    for (size_t r = 0; r < params.rounds; ++r) {
      auto cell = [](const std::optional<double>& v) {
        return v.has_value() ? *v : -999.0;
      };
      std::printf("%zu, %.0f, %.0f, %.1f, %.1f, %.1f, %.1f\n", r,
                  cell(single_a[r]), cell(single_b[r]), cell((*avg_a)[r]),
                  cell((*avg_b)[r]), cell((*avoc_a)[r]), cell((*avoc_b)[r]));
    }
  }
  return 0;
}
