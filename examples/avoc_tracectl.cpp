// Trace control tool: snapshot a running server's flight recorder over
// the TRACE_DUMP verb and convert the canonical AVOC-TRACE text into
// Chrome trace_event JSON for chrome://tracing or Perfetto — the
// operational companion of the tracing section in docs/OBSERVABILITY.md.
//
// Usage:
//   avoc_tracectl dump HOST PORT [OUT]      fetch TRACE_DUMP (raw text)
//   avoc_tracectl convert [IN [OUT]]        AVOC-TRACE text -> Chrome JSON
//   avoc_tracectl selftest                  record -> dump -> convert -> check
//
// `dump` writes the raw dump (stdout by default), so a round trip is
//   avoc_tracectl dump voter1 7000 | avoc_tracectl convert > trace.json
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "obs/trace_export.h"
#include "runtime/remote.h"

namespace {

using avoc::obs::ScopedSpan;
using avoc::obs::SpanContext;
using avoc::obs::SpanKind;
using avoc::obs::TraceDumpToChromeJson;
using avoc::obs::Tracer;
using avoc::obs::TracerOptions;
using avoc::runtime::RemoteVoterClient;

bool WriteOut(const std::string& path, const std::string& text) {
  if (path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  if (!out) {
    std::fprintf(stderr, "write %s failed\n", path.c_str());
    return false;
  }
  return true;
}

int Dump(const std::string& host, int port, const std::string& out_path) {
  auto client = RemoteVoterClient::ConnectBinary(
      host, static_cast<uint16_t>(port));
  if (!client.ok()) {
    std::fprintf(stderr, "connect %s:%d: %s\n", host.c_str(), port,
                 client.status().ToString().c_str());
    return 1;
  }
  if (!client->SetRequestTimeoutMs(5000).ok()) {
    std::fprintf(stderr, "set timeout failed\n");
    return 1;
  }
  auto dump = client->TraceDump();
  if (!dump.ok()) {
    std::fprintf(stderr, "TRACE_DUMP: %s\n", dump.status().ToString().c_str());
    return 1;
  }
  return WriteOut(out_path, *dump) ? 0 : 1;
}

int Convert(const std::string& in_path, const std::string& out_path) {
  std::string text;
  if (in_path.empty()) {
    char chunk[4096];
    size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), stdin)) > 0) {
      text.append(chunk, n);
    }
  } else {
    std::ifstream in(in_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "open %s: no such file\n", in_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  auto json = TraceDumpToChromeJson(text);
  if (!json.ok()) {
    std::fprintf(stderr, "convert: %s\n", json.status().ToString().c_str());
    return 1;
  }
  return WriteOut(out_path, *json) ? 0 : 1;
}

// CI smoke: record a miniature request tree into an in-process tracer,
// round it through the canonical dump and the Chrome converter, and
// check the pieces that operators depend on.
int SelfTest() {
  uint64_t tick = 0;
  TracerOptions options;
  options.ring_count = 1;
  options.ring_capacity = 64;
  options.now_ns = [&tick] { return tick += 1000; };
  Tracer tracer(options);

  SpanContext wire;
  wire.trace_id = Tracer::DeriveTraceId("tracectl-selftest", 1);
  wire.flags = 1;
  {
    ScopedSpan root(&tracer, SpanKind::kClient, "client.submit_batch", wire,
                    "group=demo seq=1");
    ScopedSpan attempt(&tracer, SpanKind::kClient, "client.attempt",
                       root.context());
    ScopedSpan server(&tracer, SpanKind::kServer, "server.submit_batch_seq",
                      attempt.context(), "group=demo route=local dedup=miss");
    ScopedSpan engine(&tracer, SpanKind::kEngine, "engine.batch",
                      server.context());
    ScopedSpan wal(&tracer, SpanKind::kStorage, "wal.append",
                   engine.context());
    tracer.Event("wal.fsync", "bytes=64");
  }

  const std::string dump = tracer.DumpText();
  if (dump.rfind("AVOC-TRACE v1\n", 0) != 0) {
    std::fprintf(stderr, "selftest: dump missing header\n");
    return 1;
  }
  if (tracer.DumpText() != dump) {
    std::fprintf(stderr, "selftest: dump is not stable\n");
    return 1;
  }
  auto json = TraceDumpToChromeJson(dump);
  if (!json.ok()) {
    std::fprintf(stderr, "selftest: convert failed: %s\n",
                 json.status().ToString().c_str());
    return 1;
  }
  for (const char* needle :
       {"\"traceEvents\"", "client.submit_batch", "server.submit_batch_seq",
        "engine.batch", "wal.append", "\"ph\":\"X\"", "\"ph\":\"i\""}) {
    if (json->find(needle) == std::string::npos) {
      std::fprintf(stderr, "selftest: JSON missing %s\n", needle);
      return 1;
    }
  }
  if (TraceDumpToChromeJson("not a trace\n").ok()) {
    std::fprintf(stderr, "selftest: converter accepted garbage\n");
    return 1;
  }
  std::printf("selftest OK (%zu dump bytes, %zu json bytes)\n", dump.size(),
              json->size());
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: avoc_tracectl dump HOST PORT [OUT]\n"
               "       avoc_tracectl convert [IN [OUT]]\n"
               "       avoc_tracectl selftest\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "dump" && (args.size() == 2 || args.size() == 3)) {
    return Dump(args[0], std::atoi(args[1].c_str()),
                args.size() == 3 ? args[2] : "");
  }
  if (command == "convert" && args.size() <= 2) {
    return Convert(args.empty() ? "" : args[0],
                   args.size() == 2 ? args[1] : "");
  }
  if (command == "selftest") return SelfTest();
  Usage();
  return 2;
}
