// Observability smoke probe: starts an instrumented voter service,
// submits a few rounds over TCP, scrapes METRICS and HEALTH, and exits
// non-zero unless the scrape contains live per-group telemetry.  CI runs
// this as the end-to-end check that the metrics pipeline (engine observer
// -> registry -> introspection endpoint) is wired.
#include <cstdio>
#include <string>
#include <thread>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "runtime/remote.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) return 1;
  const size_t rounds = static_cast<size_t>(cli->GetInt("rounds", 5));
  const size_t modules = static_cast<size_t>(cli->GetInt("modules", 3));

  avoc::obs::Registry registry;
  avoc::runtime::VoterGroupManager manager(nullptr, &registry);
  auto engine = avoc::core::MakeEngine(avoc::core::AlgorithmId::kAvoc,
                                       modules);
  if (!engine.ok() || !manager.AddGroup("probe", std::move(*engine)).ok()) {
    std::fprintf(stderr, "obs_probe: failed to set up the group\n");
    return 1;
  }
  auto server = avoc::runtime::RemoteVoterServer::Start(&manager, 0);
  if (!server.ok()) {
    std::fprintf(stderr, "obs_probe: server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  auto client = avoc::runtime::RemoteVoterClient::Connect(
      "127.0.0.1", (*server)->port());
  if (!client.ok()) {
    std::fprintf(stderr, "obs_probe: connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  for (size_t r = 0; r < rounds; ++r) {
    for (size_t m = 0; m < modules; ++m) {
      const double value = 20.0 + 0.1 * static_cast<double>(m);
      if (!client->Submit("probe", m, r, value).ok()) {
        std::fprintf(stderr, "obs_probe: submit failed\n");
        return 1;
      }
    }
  }
  // Rounds fuse asynchronously on the group's pipeline thread.
  auto sink = manager.sink("probe");
  if (!sink.ok()) return 1;
  for (int i = 0; i < 400 && (*sink)->output_count() < rounds; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if ((*sink)->output_count() < rounds) {
    std::fprintf(stderr, "obs_probe: only %zu/%zu rounds fused\n",
                 (*sink)->output_count(), rounds);
    return 1;
  }

  auto metrics = client->Metrics();
  if (!metrics.ok() || metrics->empty()) {
    std::fprintf(stderr, "obs_probe: metrics scrape failed\n");
    return 1;
  }
  const std::string expected =
      "avoc_rounds_total{group=\"probe\"} " + std::to_string(rounds);
  if (metrics->find(expected) == std::string::npos) {
    std::fprintf(stderr, "obs_probe: scrape missing '%s':\n%s",
                 expected.c_str(), metrics->c_str());
    return 1;
  }
  auto health = client->Health();
  if (!health.ok() || health->empty() ||
      (*health)[0].find("status=ok") == std::string::npos) {
    std::fprintf(stderr, "obs_probe: health check failed\n");
    return 1;
  }

  std::printf("obs_probe: OK — %zu rounds fused, %zu metrics exposed\n",
              rounds, registry.metric_count());
  std::printf("%s", metrics->c_str());
  (*server)->Stop();
  return 0;
}
