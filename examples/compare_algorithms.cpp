// Algorithm comparison tool — the CLI analogue of the paper's Fig. 5
// interactive application: pick a dataset (built-in scenario or CSV),
// pick algorithms, optionally inject a fault, and compare outputs.
//
// Usage:
//   compare_algorithms [--scenario uc1|uc2a|uc2b | --dataset FILE.csv]
//                      [--algorithms avg,standard,me,sdt,hybrid,cov,avoc]
//                      [--fault-module IDX --fault-offset V]
//                      [--error E] [--soft-threshold M] [--absolute]
//                      [--rounds N] [--seed S] [--print-rounds N]
//                      [--explain N]      (per-module table of round N)
//                      [--vdx FILE.json]  (adds a custom VDX-defined voter)
#include <cstdio>
#include <string>
#include <vector>

#include "core/batch.h"
#include "core/explain.h"
#include "data/dataset.h"
#include "sim/ble.h"
#include "sim/fault.h"
#include "sim/light.h"
#include "stats/running.h"
#include "util/cli.h"
#include "util/strings.h"
#include "vdx/factory.h"
#include "vdx/registry.h"

namespace {

using avoc::core::BatchResult;

struct NamedRun {
  std::string name;
  BatchResult batch;
};

avoc::Result<avoc::data::RoundTable> LoadInput(const avoc::CommandLine& cli) {
  const std::string dataset = cli.GetString("dataset", "");
  if (!dataset.empty()) return avoc::data::LoadDataset(dataset);

  const std::string scenario = cli.GetString("scenario", "uc1");
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  if (scenario == "uc1") {
    avoc::sim::LightScenarioParams params;
    params.seed = seed;
    params.rounds = static_cast<size_t>(cli.GetInt("rounds", 10000));
    return avoc::sim::LightScenario(params).MakeReferenceTable();
  }
  if (scenario == "uc2a" || scenario == "uc2b") {
    avoc::sim::BleScenarioParams params;
    params.seed = seed;
    params.rounds = static_cast<size_t>(cli.GetInt("rounds", 297));
    auto dataset_pair = avoc::sim::BleScenario(params).Generate();
    return scenario == "uc2a" ? dataset_pair.stack_a : dataset_pair.stack_b;
  }
  return avoc::InvalidArgumentError("unknown scenario '" + scenario + "'");
}

}  // namespace

int main(int argc, char** argv) {
  auto cli_result = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli_result.ok()) {
    std::fprintf(stderr, "%s\n", cli_result.status().ToString().c_str());
    return 1;
  }
  const avoc::CommandLine& cli = *cli_result;

  auto table_result = LoadInput(cli);
  if (!table_result.ok()) {
    std::fprintf(stderr, "%s\n", table_result.status().ToString().c_str());
    return 1;
  }
  avoc::data::RoundTable table = std::move(*table_result);

  if (cli.HasFlag("fault-module")) {
    const size_t module = static_cast<size_t>(cli.GetInt("fault-module", 0));
    const double offset = cli.GetDouble("fault-offset", 6000.0);
    const auto st = avoc::sim::InjectBias(table, module, offset);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("fault injected: module %zu %+g\n", module, offset);
  }

  avoc::core::PresetParams preset;
  preset.error = cli.GetDouble("error", 0.05);
  preset.soft_multiple = cli.GetDouble("soft-threshold", 2.0);
  if (cli.GetBool("absolute", false)) {
    preset.scale = avoc::core::ThresholdScale::kAbsolute;
  }
  preset.quorum_fraction = cli.GetDouble("quorum", 0.5);

  const std::string algorithms =
      cli.GetString("algorithms", "avg,standard,me,sdt,hybrid,cov,avoc");

  std::vector<NamedRun> runs;
  for (const std::string& token : avoc::SplitString(algorithms, ',')) {
    auto id = avoc::core::ParseAlgorithmName(token);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 1;
    }
    auto batch = avoc::core::RunAlgorithm(*id, table, preset);
    if (!batch.ok()) {
      std::fprintf(stderr, "%s: %s\n", token.c_str(),
                   batch.status().ToString().c_str());
      return 1;
    }
    runs.push_back(
        NamedRun{std::string(avoc::core::AlgorithmName(*id)),
                 std::move(*batch)});
  }

  // A custom VDX-defined voter can join the comparison (Q4 of §7).
  const std::string vdx_path = cli.GetString("vdx", "");
  if (!vdx_path.empty()) {
    auto spec = avoc::vdx::ReadSpecFile(vdx_path);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    auto voter = avoc::vdx::MakeVoter(*spec, table.module_count());
    if (!voter.ok()) {
      std::fprintf(stderr, "%s\n", voter.status().ToString().c_str());
      return 1;
    }
    auto batch = avoc::core::RunOverTable(*voter, table);
    if (!batch.ok()) {
      std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
      return 1;
    }
    runs.push_back(NamedRun{"vdx:" + spec->algorithm_name, std::move(*batch)});
  }

  std::printf("%zu rounds x %zu modules, %zu missing readings\n\n",
              table.round_count(), table.module_count(),
              table.missing_count());
  std::printf("%-16s %10s %10s %10s %10s %8s %8s\n", "algorithm", "mean",
              "min", "max", "stddev", "voted", "clustered");
  for (const NamedRun& run : runs) {
    avoc::stats::RunningStats stats;
    for (size_t r = 0; r < run.batch.round_count(); ++r) {
      const auto value = run.batch.output(r);
      if (value.has_value()) stats.Add(*value);
    }
    std::printf("%-16s %10.1f %10.1f %10.1f %10.1f %8zu %8zu\n",
                run.name.c_str(), stats.mean(), stats.min(), stats.max(),
                stats.stddev(), run.batch.voted_rounds(),
                run.batch.clustered_rounds());
  }

  if (cli.HasFlag("explain")) {
    const size_t round_index =
        static_cast<size_t>(cli.GetInt("explain", 0));
    if (round_index < table.round_count()) {
      const avoc::core::Round round = table.MaterializeRound(round_index);
      for (const NamedRun& run : runs) {
        std::printf("\n--- %s, round %zu ---\n", run.name.c_str(),
                    round_index);
        std::printf("%s", avoc::core::ExplainResult(
                              run.batch.MaterializeRound(round_index), round,
                              table.module_names())
                              .c_str());
      }
    }
  }

  const size_t print_rounds =
      static_cast<size_t>(cli.GetInt("print-rounds", 0));
  if (print_rounds > 0) {
    std::printf("\nround");
    for (const NamedRun& run : runs) std::printf(", %s", run.name.c_str());
    std::printf("\n");
    for (size_t r = 0; r < print_rounds && r < table.round_count(); ++r) {
      std::printf("%zu", r);
      for (const NamedRun& run : runs) {
        const auto value = run.batch.output(r);
        if (value.has_value()) {
          std::printf(", %.1f", *value);
        } else {
          std::printf(", -");
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
