// Quickstart: fuse redundant sensor readings with a VDX-defined voter.
//
// Demonstrates the intended integration path in ~40 lines: parse a VDX
// document (the paper's Listing 1), build a voter from it, feed rounds,
// read fused outputs and per-module reliability records.
#include <cstdio>

#include "core/engine.h"
#include "vdx/factory.h"
#include "vdx/spec.h"

int main() {
  // The AVOC definition of Listing 1 (trailing comma and all).
  static const char kListing1[] = R"({
    "algorithm_name": "AVOC",
    "quorum": "UNTIL",
    "quorum_percentage": 100,
    "exclusion": "NONE",
    "exclusion_threshold": 0,
    "history": "HYBRID",
    "params": {
      "error": 0.05,
      "soft_threshold": 2
    },
    "collation": "MEAN_NEAREST_NEIGHBOR",
    "bootstrapping": true,
  })";

  auto spec = avoc::vdx::Spec::Parse(kListing1);
  if (!spec.ok()) {
    std::fprintf(stderr, "VDX parse failed: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }
  auto voter = avoc::vdx::MakeVoter(*spec, /*modules=*/5);
  if (!voter.ok()) {
    std::fprintf(stderr, "voter build failed: %s\n",
                 voter.status().ToString().c_str());
    return 1;
  }

  // Five redundant light sensors; the last one is broken.
  const double rounds[][5] = {
      {18400, 18520, 18470, 18390, 24800},
      {18410, 18530, 18480, 18400, 24790},
      {18430, 18510, 18500, 18410, 24810},
  };

  for (const auto& round : rounds) {
    auto result = voter->CastVote(round);
    if (!result.ok()) {
      std::fprintf(stderr, "vote failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("output %.0f lux (clustering=%s)  records:", *result->value,
                result->used_clustering ? "yes" : "no");
    for (const double h : result->history) std::printf(" %.2f", h);
    std::printf("\n");
  }
  // The faulty sensor was excluded from the very first round by the
  // clustering bootstrap, and its reliability record is already sinking.
  return 0;
}
