// Networked edge voter service — the paper's closing vision ("field test a
// voter service prototype") end to end over TCP.
//
// The process starts a RemoteVoterServer hosting two voter groups defined
// by VDX, then plays three roles against it from client connections:
// sensor feeders streaming readings (one of them faulty), a round closer,
// and a dashboard polling the fused values.
//
// Usage: edge_service [--rounds N] [--port P]
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/algorithms.h"
#include "runtime/remote.h"
#include "util/cli.h"
#include "util/rng.h"
#include "vdx/factory.h"

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) {
    std::fprintf(stderr, "%s\n", cli.status().ToString().c_str());
    return 1;
  }
  const size_t rounds = static_cast<size_t>(cli->GetInt("rounds", 25));
  const uint16_t port = static_cast<uint16_t>(cli->GetInt("port", 0));

  // The service hosts two groups, instantiated from VDX definitions.
  avoc::runtime::VoterGroupManager manager;
  const avoc::vdx::Spec avoc_spec =
      avoc::vdx::ExportSpec(avoc::core::AlgorithmId::kAvoc);
  auto st = manager.AddGroupFromSpec("hall-lights", avoc_spec, 5);
  if (st.ok()) st = manager.AddGroupFromSpec("lab-lights", avoc_spec, 5);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  auto server = avoc::runtime::RemoteVoterServer::Start(&manager, port);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("voter service listening on 127.0.0.1:%u\n", (*server)->port());

  // Five sensor feeders per group, each on its own TCP connection; sensor
  // 4 of hall-lights reads +6 klx high.
  std::vector<std::thread> feeders;
  for (const char* group : {"hall-lights", "lab-lights"}) {
    for (size_t m = 0; m < 5; ++m) {
      feeders.emplace_back([&, group, m] {
        auto client = avoc::runtime::RemoteVoterClient::Connect(
            "127.0.0.1", (*server)->port());
        if (!client.ok()) return;
        avoc::Rng rng(1000 + m * 7 +
                      (std::string(group) == "hall-lights" ? 0 : 100));
        for (size_t r = 0; r < rounds; ++r) {
          double value = 18500.0 + rng.Gaussian(0.0, 60.0);
          if (std::string(group) == "hall-lights" && m == 4) value += 6000.0;
          (void)client->Submit(group, m, r, value);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    }
  }
  for (std::thread& feeder : feeders) feeder.join();

  // Dashboard: poll the fused values over the wire.
  auto dashboard = avoc::runtime::RemoteVoterClient::Connect(
      "127.0.0.1", (*server)->port());
  if (!dashboard.ok()) {
    std::fprintf(stderr, "%s\n", dashboard.status().ToString().c_str());
    return 1;
  }
  auto groups = dashboard->Groups();
  if (groups.ok()) {
    std::printf("groups:");
    for (const std::string& name : *groups) std::printf(" %s", name.c_str());
    std::printf("\n");
  }
  for (const char* group : {"hall-lights", "lab-lights"}) {
    auto value = dashboard->Query(group);
    if (value.ok()) {
      std::printf("%-12s fused output %.0f lux\n", group, *value);
    } else {
      std::printf("%-12s %s\n", group, value.status().ToString().c_str());
    }
  }
  std::printf("requests served: %zu\n", (*server)->requests_served());

  // The faulty sensor never polluted the hall-lights output:
  auto hall = dashboard->Query("hall-lights");
  if (hall.ok() && *hall < 19500.0) {
    std::printf("faulty sensor suppressed: output stayed in the healthy "
                "band.\n");
  }
  (*server)->Stop();
  return 0;
}
