// Live middleware demo — the "shoe-box demonstrator" (Fig. 2) analogue.
//
// Five synthetic light sensors sample on worker threads at 8 Hz; the hub
// closes rounds on a timer; the voter (AVOC, persisted to a JSON history
// datastore) fuses; the sink plays the LCD display, printing input,
// weights and results, exactly the fields the demonstrator shows.
//
// Usage:
//   voter_service [--seconds N] [--store PATH] [--faulty-sensor IDX]
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/algorithms.h"
#include "runtime/service.h"
#include "sim/sensor.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  auto cli_result = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli_result.ok()) {
    std::fprintf(stderr, "%s\n", cli_result.status().ToString().c_str());
    return 1;
  }
  const avoc::CommandLine& cli = *cli_result;
  const int seconds = static_cast<int>(cli.GetInt("seconds", 3));
  const std::string store_path = cli.GetString("store", "");
  const int64_t faulty = cli.GetInt("faulty-sensor", 4);

  constexpr size_t kSensors = 5;
  avoc::Rng master(2026);

  // Synthetic sensors around an 18.5 klx sunlight level; one optionally
  // reads +6 klx high, the §7 fault.
  std::vector<avoc::runtime::SensorNode::Generator> samplers;
  for (size_t m = 0; m < kSensors; ++m) {
    avoc::sim::SensorParams params;
    params.bias = -400.0 + 200.0 * static_cast<double>(m);
    if (static_cast<int64_t>(m) == faulty) params.bias += 6000.0;
    params.noise_stddev = 60.0;
    auto sensor = std::make_shared<avoc::sim::SensorModel>(params,
                                                           master.Fork());
    samplers.push_back([sensor](size_t round) {
      return sensor->Sample(round, 18500.0);
    });
  }

  auto engine =
      avoc::core::MakeEngine(avoc::core::AlgorithmId::kAvoc, kSensors);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  avoc::runtime::HistoryStore memory_store;
  avoc::runtime::HistoryStore* store = &memory_store;
  avoc::runtime::HistoryStore file_store;
  if (!store_path.empty()) {
    auto opened = avoc::runtime::HistoryStore::Open(store_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    file_store = std::move(*opened);
    store = &file_store;
  }

  avoc::runtime::ServiceOptions options;
  options.round_period = std::chrono::milliseconds(125);  // 8 samples/s
  options.round_timeout = std::chrono::milliseconds(60);
  options.store = store;
  options.group = "shoebox";

  auto service = avoc::runtime::VoterService::Create(std::move(samplers),
                                                     std::move(*engine),
                                                     std::move(options));
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }

  std::printf("voter service running for %d s (sensor %lld is faulty)...\n",
              seconds, static_cast<long long>(faulty));
  (*service)->Start();
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  (*service)->Stop();

  const auto outputs = (*service)->sink().outputs();
  std::printf("rounds completed: %zu\n", outputs.size());
  for (const auto& output : outputs) {
    if (!output.result.value.has_value()) continue;
    std::printf("round %3zu  output %.0f lux  weights:", output.round,
                *output.result.value);
    for (const double w : output.result.weights) std::printf(" %.2f", w);
    std::printf("%s\n", output.result.used_clustering ? "  [clustered]" : "");
  }
  if (!outputs.empty()) {
    const auto& last = outputs.back().result;
    std::printf("final records:");
    for (const double h : last.history) std::printf(" %.2f", h);
    std::printf("\n");
  }
  return 0;
}
