// Multi-dimensional fusion example (§5, "Generalisation").
//
// Five redundant positioning subsystems each estimate the robot's (x, y)
// position while it follows a curved path.  One subsystem is mis-calibrated
// in both axes.  Per-dimension AVOC voting (clustering disabled inside the
// dimensions, as §5 prescribes) fuses the five estimates; the mean-shift
// vector bootstrap catches the outlier on the very first round.
//
// Usage: robot_tracking [--rounds N] [--seed S]
#include <cmath>
#include <cstdio>
#include <numbers>

#include "core/algorithms.h"
#include "core/multidim.h"
#include "stats/running.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) {
    std::fprintf(stderr, "%s\n", cli.status().ToString().c_str());
    return 1;
  }
  const size_t rounds = static_cast<size_t>(cli->GetInt("rounds", 60));
  avoc::Rng rng(static_cast<uint64_t>(cli->GetInt("seed", 11)));

  constexpr size_t kTrackers = 5;
  avoc::core::MultiDimConfig config;
  config.scalar = avoc::core::MakeConfig(avoc::core::AlgorithmId::kAvoc);
  config.scalar.agreement.scale = avoc::core::ThresholdScale::kAbsolute;
  config.scalar.agreement.error = 0.5;  // half a metre agreement margin
  config.bootstrap = avoc::core::VectorBootstrap::kMeanShift;
  config.bandwidth_fraction = 0.1;

  auto engine = avoc::core::MultiDimEngine::Create(kTrackers, 2, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // Per-tracker calibration: small offsets, except tracker 4 which is
  // 4 m off in both axes.
  const double bias_x[kTrackers] = {0.05, -0.10, 0.15, -0.05, 4.0};
  const double bias_y[kTrackers] = {-0.08, 0.12, -0.04, 0.06, -4.0};

  avoc::stats::RunningStats fused_error;
  avoc::stats::RunningStats naive_error;
  std::printf("round,  truth_x, truth_y,  fused_x, fused_y,  naive_x, naive_y\n");
  for (size_t r = 0; r < rounds; ++r) {
    // Curved path: an arc through the warehouse.
    const double t = static_cast<double>(r) / 10.0;
    const double truth_x = 10.0 * std::cos(t * std::numbers::pi / 6.0);
    const double truth_y = 10.0 * std::sin(t * std::numbers::pi / 6.0);

    std::vector<avoc::core::VectorReading> round_readings;
    double naive_x = 0.0;
    double naive_y = 0.0;
    for (size_t m = 0; m < kTrackers; ++m) {
      const double x = truth_x + bias_x[m] + rng.Gaussian(0.0, 0.08);
      const double y = truth_y + bias_y[m] + rng.Gaussian(0.0, 0.08);
      round_readings.push_back(std::vector<double>{x, y});
      naive_x += x / kTrackers;
      naive_y += y / kTrackers;
    }
    auto result = engine->CastVote(round_readings);
    if (!result.ok() || !result->value.has_value()) {
      std::fprintf(stderr, "round %zu failed\n", r);
      return 1;
    }
    const double fx = (*result->value)[0];
    const double fy = (*result->value)[1];
    fused_error.Add(std::hypot(fx - truth_x, fy - truth_y));
    naive_error.Add(std::hypot(naive_x - truth_x, naive_y - truth_y));
    if (r < 5 || r % 10 == 0) {
      std::printf("%5zu, %8.2f,%8.2f, %8.2f,%8.2f, %8.2f,%8.2f%s\n", r,
                  truth_x, truth_y, fx, fy, naive_x, naive_y,
                  result->used_vector_clustering ? "  [vector-clustered]"
                                                 : "");
    }
  }
  std::printf("\nmean position error: fused %.3f m vs naive average %.3f m\n",
              fused_error.mean(), naive_error.mean());
  std::printf("the mis-calibrated tracker drags the naive average ~%.1f m;\n"
              "per-dimension voting with the vector bootstrap removes it.\n",
              naive_error.mean());
  return 0;
}
