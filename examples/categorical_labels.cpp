// Categorical voting example (§6's non-numeric extension).
//
// Three redundant door sensors report "open"/"closed"/"ajar"; one of them
// develops a stuck-at fault.  A VDX-defined categorical voter fuses the
// labels with history-weighted plurality; the faulty module's reliability
// record decays and its influence vanishes.  A second voter uses the
// custom-distance escape hatch (Levenshtein) to tolerate misspelled
// labels from a flaky firmware revision.
#include <cstdio>

#include "core/categorical.h"
#include "vdx/factory.h"
#include "vdx/spec.h"

namespace {

void PrintResult(size_t round, const avoc::core::CategoricalVoteResult& r) {
  std::printf("round %2zu: output=%-8s records:", round,
              r.value.has_value() ? r.value->c_str() : "(none)");
  for (const double h : r.history) std::printf(" %.2f", h);
  std::printf("%s\n", r.had_majority ? "" : "  [no absolute majority]");
}

}  // namespace

int main() {
  static const char kDoorSpec[] = R"({
    "algorithm_name": "door-state",
    "value_type": "CATEGORICAL",
    "quorum": "PERCENT",
    "quorum_percentage": 60,
    "history": "MODULE_ELIMINATION",
    "collation": "MAJORITY",
  })";

  auto spec = avoc::vdx::Spec::Parse(kDoorSpec);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto voter = avoc::vdx::MakeCategoricalVoter(*spec, 3);
  if (!voter.ok()) {
    std::fprintf(stderr, "%s\n", voter.status().ToString().c_str());
    return 1;
  }

  std::printf("--- door-state fusion: sensor 3 stuck at 'open' ---\n");
  using Label = avoc::core::CategoricalEngine::Label;
  const char* truth[] = {"open", "open", "closed", "closed", "closed",
                         "ajar", "closed", "closed", "open", "open"};
  for (size_t round = 0; round < 10; ++round) {
    std::vector<Label> readings = {std::string(truth[round]),
                                   std::string(truth[round]),
                                   std::string("open")};  // stuck sensor
    auto result = voter->CastVote(readings);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    PrintResult(round, *result);
  }

  // The custom-distance escape hatch: §6 says "implementers may
  // re-introduce some of these features by supplying a custom distance
  // metric for categorical values".
  std::printf("\n--- fuzzy labels: Levenshtein distance, error 0.25 ---\n");
  avoc::vdx::Spec fuzzy = *spec;
  fuzzy.algorithm_name = "door-state-fuzzy";
  fuzzy.history = avoc::vdx::HistoryKind::kHybrid;
  fuzzy.params["error"] = 0.25;
  auto fuzzy_voter = avoc::vdx::MakeCategoricalVoter(
      fuzzy, 3, avoc::core::LevenshteinDistance);
  if (!fuzzy_voter.ok()) {
    std::fprintf(stderr, "%s\n", fuzzy_voter.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::vector<Label>> fuzzy_rounds = {
      {std::string("closed"), std::string("clozed"), std::string("closed")},
      {std::string("open"), std::string("opem"), std::string("open")},
      {std::string("ajar"), std::string("ajar"), std::string("open")},
  };
  for (size_t round = 0; round < fuzzy_rounds.size(); ++round) {
    auto result = fuzzy_voter->CastVote(fuzzy_rounds[round]);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    PrintResult(round, *result);
  }
  std::printf("\nnote how 'clozed'/'opem' count as agreeing with the winner,\n"
              "so the flaky speller's record stays healthy.\n");
  return 0;
}
