// Storage control tool: migrate legacy JSON history stores into the WAL
// storage engine, verify a migration round-trips bit-exactly, and print
// engine statistics — the operational companion of docs/STORAGE.md.
//
// Usage:
//   avoc_storectl migrate LEGACY.json DIR    copy every group into DIR
//   avoc_storectl verify LEGACY.json DIR     compare both stores bit-exactly
//   avoc_storectl stats DIR                  print WAL/chunk/recovery stats
//   avoc_storectl compact DIR                force a snapshot + WAL rotation
//   avoc_storectl selftest                   temp JSON -> migrate -> verify
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "runtime/datastore.h"
#include "storage/engine.h"

namespace {

using avoc::runtime::HistoryStore;
using avoc::storage::HistorySnapshot;
using avoc::storage::StorageEngine;
using avoc::storage::StorageEngineOptions;

avoc::Result<std::unique_ptr<StorageEngine>> OpenEngine(
    const std::string& dir) {
  StorageEngineOptions options;
  options.dir = dir;
  return StorageEngine::Open(std::move(options));
}

int Migrate(const std::string& legacy_path, const std::string& dir) {
  // HistoryStore::Open treats a missing file as a new empty store; for a
  // migration a typo'd path must not "succeed" with zero groups.
  if (!std::filesystem::exists(legacy_path)) {
    std::fprintf(stderr, "open %s: no such file\n", legacy_path.c_str());
    return 1;
  }
  auto legacy = HistoryStore::Open(legacy_path);
  if (!legacy.ok()) {
    std::fprintf(stderr, "open %s: %s\n", legacy_path.c_str(),
                 legacy.status().ToString().c_str());
    return 1;
  }
  auto engine = OpenEngine(dir);
  if (!engine.ok()) {
    std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                 engine.status().ToString().c_str());
    return 1;
  }
  size_t migrated = 0;
  for (const std::string& group : legacy->Groups()) {
    auto snapshot = legacy->Get(group);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "read %s: %s\n", group.c_str(),
                   snapshot.status().ToString().c_str());
      return 1;
    }
    const avoc::Status put = (*engine)->Put(group, *snapshot);
    if (!put.ok()) {
      std::fprintf(stderr, "put %s: %s\n", group.c_str(),
                   put.ToString().c_str());
      return 1;
    }
    ++migrated;
  }
  // Seal the migration into a snapshot so the store opens without any
  // WAL replay and the legacy file can be retired immediately.
  const avoc::Status compact = (*engine)->Compact();
  if (!compact.ok()) {
    std::fprintf(stderr, "compact: %s\n", compact.ToString().c_str());
    return 1;
  }
  std::printf("migrated %zu groups from %s into %s\n", migrated,
              legacy_path.c_str(), dir.c_str());
  return 0;
}

int Verify(const std::string& legacy_path, const std::string& dir) {
  if (!std::filesystem::exists(legacy_path)) {
    std::fprintf(stderr, "open %s: no such file\n", legacy_path.c_str());
    return 1;
  }
  auto legacy = HistoryStore::Open(legacy_path);
  if (!legacy.ok()) {
    std::fprintf(stderr, "open %s: %s\n", legacy_path.c_str(),
                 legacy.status().ToString().c_str());
    return 1;
  }
  auto engine = OpenEngine(dir);
  if (!engine.ok()) {
    std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                 engine.status().ToString().c_str());
    return 1;
  }
  size_t mismatches = 0;
  const std::vector<std::string> groups = legacy->Groups();
  for (const std::string& group : groups) {
    auto want = legacy->Get(group);
    auto got = (*engine)->Get(group);
    if (!want.ok() || !got.ok()) {
      std::printf("%-24s MISSING (%s)\n", group.c_str(),
                  got.ok() ? "legacy read failed" : "not in engine");
      ++mismatches;
      continue;
    }
    // Bit-exact comparison: migrated doubles must survive unchanged,
    // including NaN payloads and signed zeros.
    bool same = want->rounds == got->rounds &&
                want->records.size() == got->records.size();
    for (size_t i = 0; same && i < want->records.size(); ++i) {
      same = std::memcmp(&want->records[i], &got->records[i],
                         sizeof(double)) == 0;
    }
    if (!same) {
      std::printf("%-24s MISMATCH (rounds %llu vs %llu, %zu vs %zu records)\n",
                  group.c_str(),
                  static_cast<unsigned long long>(want->rounds),
                  static_cast<unsigned long long>(got->rounds),
                  want->records.size(), got->records.size());
      ++mismatches;
    }
  }
  if ((*engine)->size() != groups.size()) {
    std::printf("group count differs: legacy %zu vs engine %zu\n",
                groups.size(), (*engine)->size());
    ++mismatches;
  }
  if (mismatches != 0) {
    std::printf("FAILED: %zu mismatches across %zu groups\n", mismatches,
                groups.size());
    return 1;
  }
  std::printf("OK: %zu groups identical\n", groups.size());
  return 0;
}

int Stats(const std::string& dir) {
  auto engine = OpenEngine(dir);
  if (!engine.ok()) {
    std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                 engine.status().ToString().c_str());
    return 1;
  }
  const avoc::storage::StorageStats stats = (*engine)->stats();
  std::printf("dir:                  %s\n", dir.c_str());
  std::printf("history groups:       %llu\n",
              static_cast<unsigned long long>(stats.history_groups));
  std::printf("trace points:         %llu\n",
              static_cast<unsigned long long>(stats.trace_points));
  std::printf("snapshot generation:  %llu\n",
              static_cast<unsigned long long>(stats.snapshot_seq));
  std::printf("wal records:          %llu\n",
              static_cast<unsigned long long>(stats.wal_records));
  std::printf("wal bytes:            %llu (synced %llu)\n",
              static_cast<unsigned long long>(stats.wal_bytes),
              static_cast<unsigned long long>(stats.wal_synced_bytes));
  std::printf("sealed chunks:        %llu\n",
              static_cast<unsigned long long>(stats.sealed_chunks));
  std::printf("compression:          %.2fx (%llu -> %llu bytes)\n",
              stats.compression_ratio(),
              static_cast<unsigned long long>(stats.chunk_raw_bytes),
              static_cast<unsigned long long>(stats.chunk_compressed_bytes));
  std::printf("last recovery:        %llu ms%s\n",
              static_cast<unsigned long long>(stats.recovery_ms),
              stats.recovered_truncated_tail ? " (truncated a torn tail)"
                                             : "");
  return 0;
}

int Compact(const std::string& dir) {
  auto engine = OpenEngine(dir);
  if (!engine.ok()) {
    std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                 engine.status().ToString().c_str());
    return 1;
  }
  const avoc::Status status = (*engine)->Compact();
  if (!status.ok()) {
    std::fprintf(stderr, "compact: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("compacted %s (snapshot generation %llu)\n", dir.c_str(),
              static_cast<unsigned long long>((*engine)->stats().snapshot_seq));
  return 0;
}

// End-to-end smoke used by CI: synthesize a legacy store, migrate it,
// then verify the round trip — all under a scratch directory.
int SelfTest() {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "avoc_storectl_selftest";
  fs::remove_all(root);
  fs::create_directories(root);
  const std::string legacy_path = (root / "legacy.json").string();
  const std::string dir = (root / "store").string();
  {
    auto legacy = HistoryStore::Open(legacy_path);
    if (!legacy.ok()) return 1;
    for (size_t g = 0; g < 32; ++g) {
      HistorySnapshot snapshot;
      snapshot.rounds = 10 * g + 1;
      for (size_t m = 0; m < 1 + g % 5; ++m) {
        snapshot.records.push_back(
            std::sin(0.1 * static_cast<double>(g * 7 + m)));
      }
      snapshot.records.push_back(-0.0);  // signed zero must round-trip
      if (!legacy->Put("group" + std::to_string(g), snapshot).ok()) return 1;
    }
  }
  if (Migrate(legacy_path, dir) != 0) return 1;
  if (Verify(legacy_path, dir) != 0) return 1;
  if (Stats(dir) != 0) return 1;
  fs::remove_all(root);
  std::printf("selftest OK\n");
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: avoc_storectl migrate LEGACY.json DIR\n"
               "       avoc_storectl verify LEGACY.json DIR\n"
               "       avoc_storectl stats DIR\n"
               "       avoc_storectl compact DIR\n"
               "       avoc_storectl selftest\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "migrate" && args.size() == 2) {
    return Migrate(args[0], args[1]);
  }
  if (command == "verify" && args.size() == 2) {
    return Verify(args[0], args[1]);
  }
  if (command == "stats" && args.size() == 1) return Stats(args[0]);
  if (command == "compact" && args.size() == 1) return Compact(args[0]);
  if (command == "selftest") return SelfTest();
  Usage();
  return 2;
}
