#!/usr/bin/env bash
# Regenerates the paper's figures from the bench binaries.
#
# Usage: scripts/regenerate_figures.sh [BUILD_DIR] [OUT_DIR]
#
# Writes the CSV series each figure plots into OUT_DIR, and renders PNGs
# with gnuplot when it is installed (the CSVs are useful on their own).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-figures}"
SCRIPT_DIR="$(cd "$(dirname "$0")" && pwd)"

mkdir -p "$OUT_DIR"

echo "== Fig 6 (UC-1 light sensors) =="
"$BUILD_DIR/bench/bench_fig6_light" --csv > "$OUT_DIR/fig6_full.txt"
echo "== Fig 7 (UC-2 BLE beacons) =="
"$BUILD_DIR/bench/bench_fig7_ble" --csv > "$OUT_DIR/fig7_full.txt"

# Split the embedded CSV blocks into separate files.
python3 - "$OUT_DIR" <<'EOF'
import re
import sys

out_dir = sys.argv[1]
for source in ("fig6_full.txt", "fig7_full.txt"):
    text = open(f"{out_dir}/{source}").read()
    for match in re.finditer(r"# CSV: (\S+)\n(.*?)(?=\n# CSV: |\Z)", text,
                             re.S):
        name, body = match.group(1), match.group(2).strip()
        with open(f"{out_dir}/{name}.csv", "w") as f:
            f.write(body + "\n")
        print(f"wrote {out_dir}/{name}.csv")
EOF

if command -v gnuplot > /dev/null 2>&1; then
  gnuplot -e "outdir='$OUT_DIR'" "$SCRIPT_DIR/plot_fig6.gp"
  gnuplot -e "outdir='$OUT_DIR'" "$SCRIPT_DIR/plot_fig7.gp"
  echo "PNGs rendered into $OUT_DIR/"
else
  echo "gnuplot not found: CSVs written, skipping PNG rendering"
fi
