# Renders the Fig. 6 panels from the CSVs bench_fig6_light --csv emits.
# Run through scripts/regenerate_figures.sh (expects outdir=... on the cli).
if (!exists("outdir")) outdir = "figures"

set datafile separator ","
set terminal pngcairo size 1200,800 font ",10"
set key outside top horizontal
set xlabel "#Rounds"

set output outdir . "/fig6a_raw.png"
set ylabel "Lumen"
set title "Fig 6-a: raw sensor data"
plot for [i=2:6] outdir."/fig6a_raw.csv" using 1:i with lines \
     title columnheader(i)

set output outdir . "/fig6b_clean_output.png"
set title "Fig 6-b: voting output (clean data)"
plot for [i=2:8] outdir."/fig6b_clean_output.csv" using 1:i with lines \
     title columnheader(i)

set output outdir . "/fig6d_faulty_output.png"
set title "Fig 6-d: voting output under the injected fault"
plot for [i=2:8] outdir."/fig6d_faulty_output.csv" using 1:i with lines \
     title columnheader(i)

set output outdir . "/fig6e_diff.png"
set ylabel "Voting output (diff)"
set title "Fig 6-e: error-injection effect on voting"
plot for [i=2:8] outdir."/fig6e_diff.csv" using 1:i with lines \
     title columnheader(i)
