# Renders the Fig. 7 panels from the CSV bench_fig7_ble --csv emits.
if (!exists("outdir")) outdir = "figures"

set datafile separator ","
set terminal pngcairo size 1500,420 font ",10"
set key outside top horizontal
set xlabel "#Rounds"
set ylabel "RSSI value"
set yrange [-100:-50]

set output outdir . "/fig7.png"
set multiplot layout 1,3
set title "(a) single beacon per stack"
plot outdir."/fig7_series.csv" using 1:2 with lines title "Stack A", \
     outdir."/fig7_series.csv" using 1:3 with lines title "Stack B"
set title "(b) 9-beacon average per stack"
plot outdir."/fig7_series.csv" using 1:4 with lines title "Stack A", \
     outdir."/fig7_series.csv" using 1:5 with lines title "Stack B"
set title "(c) 9-beacon AVOC voting per stack"
plot outdir."/fig7_series.csv" using 1:6 with lines title "Stack A", \
     outdir."/fig7_series.csv" using 1:7 with lines title "Stack B"
unset multiplot
