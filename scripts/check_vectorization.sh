#!/usr/bin/env bash
# Compiles the voting kernels with GCC's vectorization report and fails
# if any of the hot loops stopped autovectorizing.  The loops are the
# ones tagged `vec-hot(<name>)` in src/core/kernels/kernels.cpp; the tag
# comment sits directly above its loop, so the loop's line is found by
# scanning forward from the tag — the check survives unrelated edits
# moving the file around.
#
# Usage: scripts/check_vectorization.sh [compiler]
set -euo pipefail

cd "$(dirname "$0")/.."
CXX="${1:-g++}"
SRC=src/core/kernels/kernels.cpp

# The loops that must stay vectorized (see ISSUE 9 acceptance criteria:
# agreement scoring, outlier exclusion, weighted average).
REQUIRED_TAGS=(
  agreement-pair-row
  agreement-pivot
  exclusion-mask
  weighted-products
)

report=$("$CXX" -std=c++20 -O3 -fno-math-errno -fno-trapping-math -Isrc \
  -c "$SRC" -o /dev/null -fopt-info-vec 2>&1 || true)

status=0
for tag in "${REQUIRED_TAGS[@]}"; do
  # Line of the tag comment, then the first `for (` at or below it.
  tag_line=$(grep -n "vec-hot($tag)" "$SRC" | head -1 | cut -d: -f1)
  if [[ -z "$tag_line" ]]; then
    echo "FAIL: tag vec-hot($tag) not found in $SRC" >&2
    status=1
    continue
  fi
  loop_line=$(awk -v start="$tag_line" 'NR >= start && /for \(/ { print NR; exit }' "$SRC")
  if [[ -z "$loop_line" ]]; then
    echo "FAIL: no loop found below tag vec-hot($tag)" >&2
    status=1
    continue
  fi
  if grep -q "kernels.cpp:$loop_line:.*loop vectorized" <<<"$report"; then
    echo "ok: vec-hot($tag) vectorized (line $loop_line)"
  else
    echo "FAIL: vec-hot($tag) loop at $SRC:$loop_line did not vectorize" >&2
    echo "----- compiler report -----" >&2
    echo "$report" >&2
    status=1
  fi
done
exit $status
