// Tracing overhead gate: batch-interleaved bare-vs-traced ingest.
//
// The flight recorder is always on in production, so its cost on the
// hottest server path (SUBMIT_BATCH_SEQ -> GroupRunner::SubmitBatch ->
// columnar engine pass) must stay in the noise.  ONE long-lived
// externally-fed group consumes an alternating batch stream:
//
//   bare    tracer muted (Tracer::set_enabled(false)): spans bail on
//           one relaxed load — within a branch of the nullptr-tracer
//           fast path
//   traced  tracer live, sampling on: the batch runs under a sampled
//           server span, so SubmitBatch records an engine.batch child
//           into the lock-free ring
//
// Measuring one runner against itself is the point: two-runner designs
// (even batch-interleaved ones) carry a persistent per-runner speed
// identity from heap layout that read as several percent of structural
// bias in A/A calibration.  Here both sides share the runner, so only
// the tracer state differs; consecutive batches alternate sides, each
// side individually clocked, so clock drift, thermal throttling, and
// history growth cancel within microseconds.  The stream is split into
// `--pairs` windows; the gate is the MEDIAN of the per-window
// traced/bare ratios (< 3% overhead).  Writes BENCH_tracing.json.
// Flags: --pairs P --batches B --rounds R --modules M --gate-percent X
// --check --aa --json PATH
// (--aa true mutes the tracer on BOTH sides: harness self-calibration,
// expected ~0%.)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "obs/trace.h"
#include "runtime/group_runner.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using avoc::core::AlgorithmId;
using avoc::core::MakeEngine;
using avoc::obs::ScopedSpan;
using avoc::obs::SpanContext;
using avoc::obs::SpanKind;
using avoc::obs::Tracer;
using avoc::obs::TracerOptions;
using avoc::runtime::GroupRunner;
using avoc::runtime::GroupRunnerOptions;
using avoc::runtime::ReadingMessage;

using Clock = std::chrono::steady_clock;

// One window's worth of batches, rounds pre-offset so every window
// advances the hub instead of replaying closed rounds.
std::vector<std::vector<ReadingMessage>> BuildBatches(size_t batches,
                                                      size_t rounds,
                                                      size_t modules,
                                                      size_t base_round,
                                                      avoc::Rng& rng) {
  std::vector<std::vector<ReadingMessage>> out;
  out.reserve(batches);
  size_t round = base_round;
  for (size_t b = 0; b < batches; ++b) {
    std::vector<ReadingMessage> batch;
    batch.reserve(rounds * modules);
    for (size_t r = 0; r < rounds; ++r, ++round) {
      for (size_t m = 0; m < modules; ++m) {
        batch.push_back(
            ReadingMessage{m, round, 20.0 + rng.Gaussian(0.0, 0.05)});
      }
    }
    out.push_back(std::move(batch));
  }
  return out;
}

// One batch through the runner under a sampled server span — the live
// wire shape, where SUBMIT_BATCH_SEQ carries a trace context and
// SubmitBatch records an engine.batch child span.
inline void SubmitTraced(GroupRunner& runner, Tracer& tracer,
                         uint64_t trace_id,
                         const std::vector<ReadingMessage>& batch) {
  SpanContext wire;
  wire.trace_id = trace_id;
  wire.flags = 1;  // sampled
  ScopedSpan span(&tracer, SpanKind::kServer, "server.submit_batch_seq", wire,
                  "group=bench route=local dedup=miss");
  runner.SubmitBatch(batch);
}

struct WindowTimes {
  double bare_s = 0.0;    ///< median per-batch seconds, untraced side
  double traced_s = 0.0;  ///< median per-batch seconds, traced side
};

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

// 20%-trimmed mean: drops the top and bottom decile, averages the rest.
// Robust against reallocation spikes (the runner's history and sink
// vectors double as they grow, landing a whole-history copy on one
// unlucky batch) without a median's instability on bimodal samples.
double TrimmedMean(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t trim = values.size() / 10;
  double sum = 0.0;
  size_t n = 0;
  for (size_t i = trim; i < values.size() - trim; ++i, ++n) sum += values[i];
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

// Runs one window: consecutive batches form pairs, one batch per side,
// the order within each pair decided by a seeded coin flip, each batch
// individually clocked.  Randomizing the order matters: the engine does
// periodic per-round maintenance whose period aliases with batch index,
// so any FIXED side assignment hands all the heavy batches to one side
// (measured at 6-17% phantom "overhead" in A/A calibration).  The
// tracer is muted for bare batches and re-enabled for traced ones; in
// --aa mode it stays muted throughout, so both sides run the identical
// path.
WindowTimes RunWindow(GroupRunner& runner, Tracer& tracer, bool aa,
                      uint64_t trace_id, avoc::Rng& coin,
                      const std::vector<std::vector<ReadingMessage>>& batches) {
  std::vector<double> bare_batch_s;
  std::vector<double> traced_batch_s;
  bare_batch_s.reserve(batches.size() / 2 + 1);
  traced_batch_s.reserve(batches.size() / 2 + 1);
  auto run_bare = [&](const std::vector<ReadingMessage>& batch) {
    tracer.set_enabled(false);
    const auto t0 = Clock::now();
    runner.SubmitBatch(batch);
    bare_batch_s.push_back(
        std::chrono::duration<double>(Clock::now() - t0).count());
  };
  auto run_traced = [&](const std::vector<ReadingMessage>& batch) {
    tracer.set_enabled(!aa);
    const auto t0 = Clock::now();
    SubmitTraced(runner, tracer, trace_id, batch);
    traced_batch_s.push_back(
        std::chrono::duration<double>(Clock::now() - t0).count());
  };
  for (size_t i = 0; i + 1 < batches.size(); i += 2) {
    if (coin.UniformInt(2) == 0) {
      run_bare(batches[i]);
      run_traced(batches[i + 1]);
    } else {
      run_traced(batches[i]);
      run_bare(batches[i + 1]);
    }
  }
  tracer.set_enabled(true);
  return WindowTimes{TrimmedMean(std::move(bare_batch_s)),
                     TrimmedMean(std::move(traced_batch_s))};
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) return 1;
  const size_t pairs = static_cast<size_t>(cli->GetInt("pairs", 21));
  // Per-window ratios scatter ~±2% around the true overhead, so the gate
  // needs enough windows x batches for the median to settle well inside
  // the 3% bar; at ~35us a batch this still finishes in a few seconds.
  const size_t batches = static_cast<size_t>(cli->GetInt("batches", 2000));
  const size_t rounds = static_cast<size_t>(cli->GetInt("rounds", 16));
  const size_t modules = static_cast<size_t>(cli->GetInt("modules", 8));
  const double gate_percent = cli->GetDouble("gate-percent", 3.0);
  const bool check = cli->GetBool("check", false);
  const bool aa = cli->GetBool("aa", false);
  const bool verbose = cli->GetBool("verbose", false);
  const std::string json_path = cli->GetString("json", "BENCH_tracing.json");

  TracerOptions tracer_options;
  tracer_options.ring_count = 1;
  tracer_options.ring_capacity = 4096;
  Tracer tracer(tracer_options);

  GroupRunnerOptions runner_options;
  runner_options.group = "bench";
  runner_options.tracer = &tracer;
  auto runner = GroupRunner::Create(*MakeEngine(AlgorithmId::kAvoc, modules),
                                    runner_options);
  if (!runner.ok()) {
    std::fprintf(stderr, "runner setup failed\n");
    return 1;
  }

  std::printf("=== tracing overhead%s: %zu windows x %zu batches x %zu "
              "rounds x %zu modules ===\n",
              aa ? " (A/A calibration)" : "", pairs, batches, rounds, modules);

  avoc::Rng rng(20260808);
  avoc::Rng coin(0x5EED5EED);  // side-order coin, independent of the workload
  size_t next_round = 0;
  auto next_batches = [&] {
    auto built = BuildBatches(batches, rounds, modules, next_round, rng);
    next_round += batches * rounds;
    return built;
  };

  // Warm the path (allocator, engine caches, branch predictors).
  RunWindow(**runner, tracer, aa, Tracer::DeriveTraceId("bench", 0), coin,
            next_batches());

  std::vector<double> bare_seconds;
  std::vector<double> traced_seconds;
  std::vector<double> ratios;
  for (size_t p = 0; p < pairs; ++p) {
    const uint64_t trace_id = Tracer::DeriveTraceId("bench", p + 1);
    const WindowTimes times =
        RunWindow(**runner, tracer, aa, trace_id, coin, next_batches());
    bare_seconds.push_back(times.bare_s);
    traced_seconds.push_back(times.traced_s);
    ratios.push_back(times.traced_s / times.bare_s);
    if (verbose) {
      std::printf("window %2zu: bare=%.9f traced=%.9f ratio=%+.2f%%\n", p,
                  times.bare_s, times.traced_s,
                  (times.traced_s / times.bare_s - 1.0) * 100.0);
    }
  }

  const double bare_median = Median(bare_seconds);
  const double traced_median = Median(traced_seconds);
  const double median_ratio = Median(ratios);
  const double overhead_percent = (median_ratio - 1.0) * 100.0;
  const bool gate_pass = overhead_percent < gate_percent;
  const double readings_per_batch = static_cast<double>(rounds * modules);

  std::printf("%-8s, %14s, %14s\n", "path", "batch median s", "readings/s");
  std::printf("%-8s, %14.9f, %14.0f\n", "bare", bare_median,
              readings_per_batch / bare_median);
  std::printf("%-8s, %14.9f, %14.0f\n", "traced", traced_median,
              readings_per_batch / traced_median);
  std::printf("paired median overhead: %+.2f%% (gate < %.1f%%) -> %s\n",
              overhead_percent, gate_percent, gate_pass ? "PASS" : "FAIL");
  std::printf("spans recorded: %zu live, %llu dropped (ring cap %zu)\n",
              tracer.Snapshot().size(),
              static_cast<unsigned long long>(tracer.dropped()),
              static_cast<size_t>(tracer_options.ring_capacity));

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"tracing\",\n"
                 "  \"windows\": %zu,\n"
                 "  \"batches\": %zu,\n"
                 "  \"rounds_per_batch\": %zu,\n"
                 "  \"modules\": %zu,\n"
                 "  \"bare_median_batch_seconds\": %.9f,\n"
                 "  \"traced_median_batch_seconds\": %.9f,\n"
                 "  \"median_overhead_ratio\": %.5f,\n"
                 "  \"overhead_percent\": %.3f,\n"
                 "  \"gate_percent\": %.1f,\n"
                 "  \"gate_pass\": %s,\n"
                 "  \"spans_dropped\": %llu\n"
                 "}\n",
                 pairs, batches, rounds, modules, bare_median, traced_median,
                 median_ratio, overhead_percent, gate_percent,
                 gate_pass ? "true" : "false",
                 static_cast<unsigned long long>(tracer.dropped()));
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (check && !gate_pass) return 1;
  return 0;
}
