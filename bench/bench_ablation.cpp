// Ablations over the design choices DESIGN.md calls out:
//
//   1. accepted error threshold ε (relative) — UC-1 convergence and noise
//   2. SDT soft multiple m
//   3. reward/penalty of the aggressive history rule
//   4. round-weighting interpretation of the Hybrid (the documented
//      deviation: HISTORY vs AGREEMENT vs COMBINED weights)
//   5. AVOC's self-calibrating grouping vs DBSCAN's tuned eps (the §5
//      claim that grouping avoids "costly parameter tuning")
//
// Flags: --rounds N --seed S
#include <cmath>
#include <cstdio>
#include <optional>
#include <vector>

#include "cluster/dbscan.h"
#include "cluster/grouping.h"
#include "core/batch.h"
#include "sim/light.h"
#include "stats/convergence.h"
#include "stats/running.h"
#include "util/cli.h"

namespace {

using avoc::core::AlgorithmId;

struct Tables {
  avoc::data::RoundTable clean;
  avoc::data::RoundTable faulty;
};

std::optional<size_t> Converge(const avoc::core::BatchResult& clean,
                               const avoc::core::BatchResult& faulty) {
  avoc::stats::ConvergenceOptions options;
  options.tolerance = 100.0;
  options.window = 5;
  const auto report = avoc::stats::MeasureConvergence(
      faulty.values(), faulty.engaged(), clean.ContinuousOutputs(), options);
  if (!report.converged_at.has_value()) return std::nullopt;
  return *report.converged_at + 1;
}

void PrintRow(const char* label, double parameter,
              const avoc::core::BatchResult& clean,
              const avoc::core::BatchResult& faulty) {
  avoc::stats::RunningStats noise;
  const auto outputs = clean.ContinuousOutputs();
  for (size_t r = 1; r < outputs.size(); ++r) {
    noise.Add(std::abs(outputs[r] - outputs[r - 1]));
  }
  const auto rounds = Converge(clean, faulty);
  std::printf("%-10s, %8.3f, %10s, %12.1f, %10zu\n", label, parameter,
              rounds.has_value() ? std::to_string(*rounds).c_str() : "never",
              noise.mean(), faulty.clustered_rounds());
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) {
    std::fprintf(stderr, "%s\n", cli.status().ToString().c_str());
    return 1;
  }
  avoc::sim::LightScenarioParams params;
  params.rounds = static_cast<size_t>(cli->GetInt("rounds", 2000));
  params.seed = static_cast<uint64_t>(cli->GetInt("seed", 42));
  const avoc::sim::LightScenario scenario(params);
  const Tables tables{scenario.MakeReferenceTable(),
                      scenario.MakeFaultyTable()};

  auto run = [&](AlgorithmId id, const avoc::core::PresetParams& preset)
      -> std::pair<avoc::core::BatchResult, avoc::core::BatchResult> {
    auto clean = avoc::core::RunAlgorithm(id, tables.clean, preset);
    auto faulty = avoc::core::RunAlgorithm(id, tables.faulty, preset);
    if (!clean.ok() || !faulty.ok()) {
      std::fprintf(stderr, "run failed\n");
      std::exit(1);
    }
    return {std::move(*clean), std::move(*faulty)};
  };

  std::printf("=== ablation 1: accepted error threshold ε (AVOC) ===\n");
  std::printf("%-10s, %8s, %10s, %12s, %10s\n", "param", "value",
              "converge", "jitter(lux)", "clustered");
  for (const double error : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    avoc::core::PresetParams preset;
    preset.error = error;
    const auto [clean, faulty] = run(AlgorithmId::kAvoc, preset);
    PrintRow("error", error, clean, faulty);
  }

  std::printf("\n=== ablation 2: SDT soft multiple m (AVOC) ===\n");
  std::printf("%-10s, %8s, %10s, %12s, %10s\n", "param", "value",
              "converge", "jitter(lux)", "clustered");
  for (const double m : {1.0, 1.5, 2.0, 3.0, 5.0}) {
    avoc::core::PresetParams preset;
    preset.soft_multiple = m;
    const auto [clean, faulty] = run(AlgorithmId::kAvoc, preset);
    PrintRow("soft_m", m, clean, faulty);
  }

  std::printf("\n=== ablation 3: history penalty (AVOC, reward 0.05) ===\n");
  std::printf("%-10s, %8s, %10s, %12s, %10s\n", "param", "value",
              "converge", "jitter(lux)", "clustered");
  for (const double penalty : {0.05, 0.1, 0.3, 0.5, 1.0}) {
    avoc::core::PresetParams preset;
    preset.penalty = penalty;
    const auto [clean, faulty] = run(AlgorithmId::kAvoc, preset);
    PrintRow("penalty", penalty, clean, faulty);
  }

  std::printf("\n=== ablation 4: Hybrid round-weighting interpretation ===\n");
  std::printf("%-10s, %8s, %10s, %12s, %10s\n", "weights", "-",
              "converge", "jitter(lux)", "clustered");
  for (const auto weighting :
       {avoc::core::RoundWeighting::kHistory,
        avoc::core::RoundWeighting::kAgreement,
        avoc::core::RoundWeighting::kCombined}) {
    auto config = avoc::core::MakeConfig(AlgorithmId::kHybrid);
    config.weighting = weighting;
    auto engine_clean =
        avoc::core::VotingEngine::Create(tables.clean.module_count(), config);
    auto engine_faulty =
        avoc::core::VotingEngine::Create(tables.faulty.module_count(), config);
    if (!engine_clean.ok() || !engine_faulty.ok()) continue;
    auto clean = avoc::core::RunOverTable(*engine_clean, tables.clean);
    auto faulty = avoc::core::RunOverTable(*engine_faulty, tables.faulty);
    if (!clean.ok() || !faulty.ok()) continue;
    const char* name = weighting == avoc::core::RoundWeighting::kHistory
                           ? "history"
                           : weighting == avoc::core::RoundWeighting::kAgreement
                                 ? "agreement"
                                 : "combined";
    PrintRow(name, 0.0, *clean, *faulty);
  }

  // 5. Self-calibration: AVOC's relative-threshold grouping needs no
  // per-dataset tuning, DBSCAN's absolute eps does.  Cluster one faulty
  // round at two signal magnitudes with the *same* parameters and check
  // whether the outlier is isolated.
  std::printf("\n=== ablation 5: grouping self-calibration vs DBSCAN eps ===\n");
  std::printf("%-22s, %12s, %12s\n", "method", "lux-scale", "rssi-scale");
  const std::vector<double> lux_round = {17820.0, 18410.0, 19120.0, 24850.0,
                                         18100.0};
  const std::vector<double> rssi_round = {-62.0, -60.0, -58.0, -85.0, -61.0};
  auto grouping_isolates = [](const std::vector<double>& values) {
    avoc::cluster::GroupingOptions options;  // relative 0.05, self-scaling
    const auto result = avoc::cluster::GroupByThreshold(values, options);
    return result.largest().size() == values.size() - 1;
  };
  auto dbscan_isolates = [](const std::vector<double>& values, double eps) {
    avoc::cluster::DbscanOptions options;
    options.eps = eps;
    options.min_points = 2;
    const auto result = avoc::cluster::Dbscan1D(values, options);
    size_t clustered = 0;
    for (const int label : result.labels) {
      if (label != avoc::cluster::DbscanResult::kNoise) ++clustered;
    }
    return result.cluster_count == 1 && clustered == values.size() - 1;
  };
  std::printf("%-22s, %12s, %12s\n", "grouping (no tuning)",
              grouping_isolates(lux_round) ? "isolated" : "MISSED",
              grouping_isolates(rssi_round) ? "isolated" : "MISSED");
  std::printf("%-22s, %12s, %12s\n", "dbscan eps=900",
              dbscan_isolates(lux_round, 900.0) ? "isolated" : "MISSED",
              dbscan_isolates(rssi_round, 900.0) ? "isolated" : "MISSED");
  std::printf("%-22s, %12s, %12s\n", "dbscan eps=5",
              dbscan_isolates(lux_round, 5.0) ? "isolated" : "MISSED",
              dbscan_isolates(rssi_round, 5.0) ? "isolated" : "MISSED");
  std::printf("(DBSCAN needs a per-scale eps; the grouping step mirrors the\n"
              " vote's relative threshold and works at both scales, §5.)\n");
  return 0;
}
