// Storage engine vs legacy JSON store: history put throughput at fleet
// scale, read-back latency, crash-recovery time, and trace compression.
//
// The legacy HistoryStore rewrites its whole JSON document durably on
// every Put, so a 1000-group deployment pays O(groups) serialization per
// group update — the workload the WAL was built to replace with one
// appended record.  Modes over the identical workload (G groups x K
// update sweeps, M modules each):
//
//   json-store      runtime::HistoryStore::Open (durable JSON rewrite)
//   storage-engine  storage::StorageEngine (WAL append, fsync every
//                   commit — the same durability point)
//
// Then: Get() sweeps over both, a timed reopen (WAL replay + snapshot
// load) of the engine directory, and the Gorilla compression ratio on a
// 50k-point sine+noise vote trace.  Writes BENCH_storage.json.
// Flags: --groups G --sweeps K --modules M --trace-points N --json PATH
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "runtime/datastore.h"
#include "storage/engine.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;

using avoc::runtime::HistoryStore;
using avoc::storage::HistorySnapshot;
using avoc::storage::StorageEngine;
using avoc::storage::StorageEngineOptions;
using avoc::storage::TracePoint;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string GroupName(size_t g) { return "group" + std::to_string(g); }

HistorySnapshot SnapshotFor(size_t g, size_t sweep, size_t modules) {
  HistorySnapshot snapshot;
  snapshot.rounds = sweep + 1;
  snapshot.records.reserve(modules);
  for (size_t m = 0; m < modules; ++m) {
    snapshot.records.push_back(
        1.0 / (1.0 + 0.01 * static_cast<double>(g + m + sweep)));
  }
  return snapshot;
}

/// Puts every group `sweeps` times through `backend`; seconds, or -1.
double RunPuts(avoc::storage::HistoryBackend& backend, size_t groups,
               size_t sweeps, size_t modules) {
  const auto start = std::chrono::steady_clock::now();
  for (size_t sweep = 0; sweep < sweeps; ++sweep) {
    for (size_t g = 0; g < groups; ++g) {
      if (!backend.Put(GroupName(g), SnapshotFor(g, sweep, modules)).ok()) {
        return -1.0;
      }
    }
  }
  return SecondsSince(start);
}

double RunGets(const avoc::storage::HistoryBackend& backend, size_t groups,
               size_t repeats) {
  const auto start = std::chrono::steady_clock::now();
  for (size_t it = 0; it < repeats; ++it) {
    for (size_t g = 0; g < groups; ++g) {
      auto snapshot = backend.Get(GroupName(g));
      if (!snapshot.ok() || snapshot->records.empty()) return -1.0;
    }
  }
  return SecondsSince(start);
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) return 1;
  const size_t groups = static_cast<size_t>(cli->GetInt("groups", 1000));
  const size_t sweeps = static_cast<size_t>(cli->GetInt("sweeps", 3));
  const size_t modules = static_cast<size_t>(cli->GetInt("modules", 4));
  const size_t trace_points =
      static_cast<size_t>(cli->GetInt("trace-points", 50000));
  const std::string json_path = cli->GetString("json", "BENCH_storage.json");

  const fs::path root =
      fs::temp_directory_path() / "avoc_bench_storage";
  fs::remove_all(root);
  fs::create_directories(root);
  const std::string json_store_path = (root / "history.json").string();
  const std::string engine_dir = (root / "engine").string();

  std::printf("=== history persistence: %zu groups x %zu sweeps x %zu "
              "modules ===\n",
              groups, sweeps, modules);

  // --- legacy JSON store ------------------------------------------------------
  double json_put_seconds = -1.0;
  double json_get_seconds = -1.0;
  {
    auto store = HistoryStore::Open(json_store_path);
    if (!store.ok()) return 1;
    json_put_seconds = RunPuts(*store, groups, sweeps, modules);
    if (json_put_seconds < 0.0) {
      std::fprintf(stderr, "json puts failed\n");
      return 1;
    }
    json_get_seconds = RunGets(*store, groups, 10);
  }

  // --- storage engine ---------------------------------------------------------
  double engine_put_seconds = -1.0;
  double engine_get_seconds = -1.0;
  double recovery_seconds = 0.0;
  uint64_t engine_fsyncs = 0;
  {
    StorageEngineOptions options;
    options.dir = engine_dir;
    auto engine = StorageEngine::Open(options);
    if (!engine.ok()) return 1;
    engine_put_seconds = RunPuts(**engine, groups, sweeps, modules);
    if (engine_put_seconds < 0.0) {
      std::fprintf(stderr, "engine puts failed\n");
      return 1;
    }
    engine_get_seconds = RunGets(**engine, groups, 10);
    engine_fsyncs = (*engine)->stats().fsyncs;
  }
  {
    // Timed cold reopen: snapshot load + WAL replay over the full state.
    const auto start = std::chrono::steady_clock::now();
    StorageEngineOptions options;
    options.dir = engine_dir;
    auto engine = StorageEngine::Open(options);
    if (!engine.ok() || (*engine)->size() != groups) {
      std::fprintf(stderr, "engine reopen failed\n");
      return 1;
    }
    recovery_seconds = SecondsSince(start);
  }

  const double total_puts = static_cast<double>(groups * sweeps);
  const double put_speedup = json_put_seconds / engine_put_seconds;
  std::printf("%-16s, %10s, %12s\n", "store", "put s", "puts/s");
  std::printf("%-16s, %10.3f, %12.0f\n", "json-store", json_put_seconds,
              total_puts / json_put_seconds);
  std::printf("%-16s, %10.3f, %12.0f\n", "storage-engine", engine_put_seconds,
              total_puts / engine_put_seconds);
  std::printf("put speedup: %.1fx (target >= 10x); engine fsyncs: %llu; "
              "cold reopen: %.3fs\n",
              put_speedup, static_cast<unsigned long long>(engine_fsyncs),
              recovery_seconds);

  // --- trace compression ------------------------------------------------------
  double compression_ratio = 0.0;
  {
    StorageEngineOptions options;
    options.dir = (root / "trace").string();
    options.chunk_max_points = 512;
    auto engine = StorageEngine::Open(options);
    if (!engine.ok()) return 1;
    avoc::Rng rng(20260808);
    std::vector<TracePoint> points;
    points.reserve(trace_points);
    for (size_t i = 0; i < trace_points; ++i) {
      const double angle = 0.002 * static_cast<double>(i);
      const double value =
          20.0 + 5.0 * std::sin(angle) + rng.Gaussian(0.0, 0.02);
      points.push_back(TracePoint{i, value, i % 97 != 0});
    }
    // Append in server-sized slices so chunks seal as they would live.
    for (size_t at = 0; at < points.size(); at += 257) {
      const size_t n = std::min<size_t>(257, points.size() - at);
      if (!(*engine)
               ->AppendTrace("trace",
                             std::span(points).subspan(at, n))
               .ok()) {
        return 1;
      }
    }
    const auto stats = (*engine)->stats();
    compression_ratio = stats.compression_ratio();
    std::printf("trace: %zu points, %llu sealed chunks, %.2fx compression "
                "(%llu -> %llu bytes)\n",
                trace_points,
                static_cast<unsigned long long>(stats.sealed_chunks),
                compression_ratio,
                static_cast<unsigned long long>(stats.chunk_raw_bytes),
                static_cast<unsigned long long>(stats.chunk_compressed_bytes));
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"storage\",\n"
                 "  \"groups\": %zu,\n"
                 "  \"sweeps\": %zu,\n"
                 "  \"modules\": %zu,\n"
                 "  \"json_put_seconds\": %.6f,\n"
                 "  \"engine_put_seconds\": %.6f,\n"
                 "  \"put_speedup\": %.3f,\n"
                 "  \"json_get_seconds\": %.6f,\n"
                 "  \"engine_get_seconds\": %.6f,\n"
                 "  \"engine_fsyncs\": %llu,\n"
                 "  \"recovery_seconds\": %.6f,\n"
                 "  \"trace_points\": %zu,\n"
                 "  \"compression_ratio\": %.3f\n"
                 "}\n",
                 groups, sweeps, modules, json_put_seconds, engine_put_seconds,
                 put_speedup, json_get_seconds, engine_get_seconds,
                 static_cast<unsigned long long>(engine_fsyncs),
                 recovery_seconds, trace_points, compression_ratio);
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());
  }
  fs::remove_all(root);
  if (put_speedup < 10.0) {
    std::fprintf(stderr,
                 "WARNING: put speedup %.1fx below the 10x target\n",
                 put_speedup);
  }
  return 0;
}
