// Deterministic-simulation throughput: how fast the chaos harness burns
// through seeded fault schedules.
//
// The value of DST is iteration speed — a schedule that would take
// minutes of wall time against real sockets (backoffs, partitions,
// timeouts) runs in microseconds because time is virtual.  This bench
// quantifies that: it sweeps N seeds through the same workload the ctest
// chaos suite uses (real RemoteVoterServer on the simulated reactor,
// ResilientVoterClient dialing through FaultPlan::Chaos) and reports
//   schedules/s        full faulty runs per wall-clock second
//   virtual-x          simulated milliseconds per wall millisecond
//   submits/s          batches ingested per second across the sweep
// plus a fault-free baseline so the fault-machinery overhead is visible.
// A convergence cross-check fails the run if any faulty sink trace
// diverges from its fault-free twin.
// Flags: --seeds N --rounds R --modules M --repeat K --json PATH
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "runtime/remote.h"
#include "runtime/resilient.h"
#include "runtime/sim_net.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

using avoc::Rng;
using avoc::runtime::BatchReading;
using avoc::runtime::FaultPlan;
using avoc::runtime::RemoteServerOptions;
using avoc::runtime::RemoteVoterServer;
using avoc::runtime::ResilientVoterClient;
using avoc::runtime::RetryPolicy;
using avoc::runtime::SimWorld;
using avoc::runtime::VoterGroupManager;

constexpr uint16_t kPort = 7;
constexpr uint64_t kHorizonMs = 4000;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<std::vector<BatchReading>> WorkloadFor(uint64_t seed,
                                                   size_t rounds,
                                                   size_t modules) {
  Rng values(seed ^ 0xDA7A5EEDull);
  std::vector<std::vector<BatchReading>> batches;
  for (size_t r = 0; r < rounds; ++r) {
    std::vector<BatchReading> batch;
    for (uint64_t m = 0; m < modules; ++m) {
      batch.push_back(BatchReading{m, r, 20.0 + values.Gaussian(0.0, 2.0)});
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

std::string SinkTrace(const VoterGroupManager& manager) {
  auto sink = manager.sink("bench");
  if (!sink.ok()) return "<no sink>";
  std::string trace;
  for (const auto& out : (*sink)->outputs()) {
    trace += avoc::StrFormat("%zu %d %a\n", out.round,
                             static_cast<int>(out.result.outcome),
                             out.result.value.value_or(-0.0));
  }
  return trace;
}

struct SimRun {
  bool ok = false;
  uint64_t virtual_ms = 0;
  std::string sink_trace;
};

SimRun RunOne(uint64_t seed, bool with_faults, size_t rounds,
              size_t modules) {
  SimWorld::Options options;
  options.record_trace = false;  // measure the engine, not the logger
  if (with_faults) options.fault_plan = FaultPlan::Chaos(seed, kHorizonMs);
  SimWorld world(seed, options);
  VoterGroupManager manager(nullptr, nullptr);
  auto engine = avoc::core::MakeEngine(avoc::core::AlgorithmId::kAvoc, modules);
  if (!engine.ok() || !manager.AddGroup("bench", *std::move(engine)).ok()) {
    return {};
  }
  auto listener = world.Listen(kPort);
  if (!listener.ok()) return {};
  auto server = RemoteVoterServer::StartOnReactor(
      &manager, RemoteServerOptions{}, std::move(*listener), world.reactor(),
      /*spawn_loop_thread=*/false);
  if (!server.ok()) return {};

  RetryPolicy policy;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 200;
  policy.request_timeout_ms = 150;
  policy.deadline_ms = 10 * kHorizonMs;
  ResilientVoterClient client([&world] { return world.Connect(kPort); },
                              &world, "bench-client", policy,
                              seed ^ 0xBACC0FFull, nullptr);
  SimRun run;
  for (const auto& batch : WorkloadFor(seed, rounds, modules)) {
    auto accepted = client.SubmitBatch("bench", batch);
    if (!accepted.ok() || *accepted != batch.size()) {
      (*server)->Stop();
      return {};
    }
  }
  run.ok = true;
  run.virtual_ms = world.NowMs();
  run.sink_trace = SinkTrace(manager);
  (*server)->Stop();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) return 1;
  const size_t seeds = static_cast<size_t>(cli->GetInt("seeds", 200));
  const size_t rounds = static_cast<size_t>(cli->GetInt("rounds", 8));
  const size_t modules = static_cast<size_t>(cli->GetInt("modules", 3));
  const size_t repeat =
      std::max<size_t>(1, static_cast<size_t>(cli->GetInt("repeat", 3)));
  const std::string json_path = cli->GetString("json", "BENCH_chaos.json");

  std::printf("=== DST chaos sweep: %zu seeds x %zu rounds x %zu modules, "
              "best of %zu ===\n",
              seeds, rounds, modules, repeat);

  struct Mode {
    const char* name;
    bool with_faults;
    double seconds = 0.0;
    uint64_t virtual_ms = 0;
  };
  Mode faulty{"chaos", true};
  Mode clean{"fault-free", false};
  for (Mode* mode : {&faulty, &clean}) {
    for (size_t it = 0; it < repeat; ++it) {
      uint64_t virtual_ms = 0;
      const auto start = std::chrono::steady_clock::now();
      for (uint64_t seed = 1000; seed < 1000 + seeds; ++seed) {
        const SimRun run = RunOne(seed, mode->with_faults, rounds, modules);
        if (!run.ok) {
          std::fprintf(stderr, "%s seed %llu failed\n", mode->name,
                       static_cast<unsigned long long>(seed));
          return 1;
        }
        virtual_ms += run.virtual_ms;
      }
      const double seconds = SecondsSince(start);
      if (it == 0 || seconds < mode->seconds) {
        mode->seconds = seconds;
        mode->virtual_ms = virtual_ms;
      }
    }
  }

  // Convergence cross-check on a handful of seeds (the full check is the
  // ctest suite's job; here it guards against benching a broken build).
  for (uint64_t seed = 1000; seed < 1008; ++seed) {
    const SimRun with = RunOne(seed, true, rounds, modules);
    const SimRun without = RunOne(seed, false, rounds, modules);
    if (!with.ok || with.sink_trace != without.sink_trace) {
      std::fprintf(stderr, "seed %llu did not converge\n",
                   static_cast<unsigned long long>(seed));
      return 1;
    }
  }

  std::printf("%-12s, %10s, %12s, %10s, %12s\n", "mode", "seconds",
              "schedules/s", "virtual-x", "submits/s");
  for (const Mode* mode : {&faulty, &clean}) {
    const double schedules_per_sec = static_cast<double>(seeds) / mode->seconds;
    const double virtual_x =
        static_cast<double>(mode->virtual_ms) / (mode->seconds * 1000.0);
    const double submits_per_sec =
        static_cast<double>(seeds * rounds) / mode->seconds;
    std::printf("%-12s, %10.3f, %12.0f, %10.0f, %12.0f\n", mode->name,
                mode->seconds, schedules_per_sec, virtual_x, submits_per_sec);
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"seeds\": %zu,\n  \"rounds\": %zu,\n"
                 "  \"modules\": %zu,\n  \"chaos_seconds\": %.6f,\n"
                 "  \"chaos_virtual_ms\": %llu,\n"
                 "  \"fault_free_seconds\": %.6f,\n"
                 "  \"fault_free_virtual_ms\": %llu\n}\n",
                 seeds, rounds, modules, faulty.seconds,
                 static_cast<unsigned long long>(faulty.virtual_ms),
                 clean.seconds,
                 static_cast<unsigned long long>(clean.virtual_ms));
    std::fclose(json);
  }
  return 0;
}
