// Sharded multi-group throughput (the smart-shopping motivation: one
// voter group per shelf, hundreds of shelves per store).
//
// Runs the same per-group batch workload through MultiGroupEngine twice —
// sequentially on one thread and sharded across the worker pool — and
// reports rounds/s plus the parallel speedup.  Groups are independent, so
// the speedup should track the worker count until memory bandwidth wins.
// Flags: --groups N --modules M --rounds R --threads T --seed S
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/algorithms.h"
#include "runtime/multi_group.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

std::vector<avoc::data::RoundTable> MakeTables(size_t groups, size_t modules,
                                               size_t rounds, uint64_t seed) {
  std::vector<avoc::data::RoundTable> tables;
  tables.reserve(groups);
  for (size_t g = 0; g < groups; ++g) {
    avoc::Rng rng(seed + g);
    avoc::data::RoundTable table =
        avoc::data::RoundTable::WithModuleCount(modules);
    for (size_t r = 0; r < rounds; ++r) {
      std::vector<double> row(modules);
      for (size_t m = 0; m < modules; ++m) {
        // One drifting module per group keeps the history machinery busy.
        const double bias = (m == 0) ? 2.0 : 0.0;
        row[m] = 20.0 + bias + rng.Gaussian(0.0, 0.2);
      }
      (void)table.AppendRound(row);
    }
    tables.push_back(std::move(table));
  }
  return tables;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) return 1;
  const size_t groups = static_cast<size_t>(cli->GetInt("groups", 64));
  const size_t modules = static_cast<size_t>(cli->GetInt("modules", 5));
  const size_t rounds = static_cast<size_t>(cli->GetInt("rounds", 2000));
  const size_t threads = static_cast<size_t>(cli->GetInt("threads", 0));
  const uint64_t seed = static_cast<uint64_t>(cli->GetInt("seed", 7));

  auto config_engine = avoc::core::MakeEngine(avoc::core::AlgorithmId::kAvoc,
                                              modules);
  if (!config_engine.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 config_engine.status().ToString().c_str());
    return 1;
  }
  const auto tables = MakeTables(groups, modules, rounds, seed);
  const double total_rounds = static_cast<double>(groups * rounds);

  avoc::runtime::MultiGroupOptions options;
  options.threads = threads;
  auto sequential = avoc::runtime::MultiGroupEngine::Create(
      groups, modules, config_engine->config());
  auto parallel = avoc::runtime::MultiGroupEngine::Create(
      groups, modules, config_engine->config(), options);
  if (!sequential.ok() || !parallel.ok()) {
    const auto& status =
        sequential.ok() ? parallel.status() : sequential.status();
    std::fprintf(stderr, "multi-group setup failed: %s\n",
                 status.message().c_str());
    return 1;
  }

  std::printf("=== sharded multi-group batch: %zu groups x %zu modules x "
              "%zu rounds (AVOC) ===\n",
              groups, modules, rounds);

  auto start = std::chrono::steady_clock::now();
  auto seq_results = sequential->RunBatchSequential(tables);
  const double seq_seconds = SecondsSince(start);
  if (!seq_results.ok()) {
    std::fprintf(stderr, "sequential: %s\n",
                 seq_results.status().ToString().c_str());
    return 1;
  }

  start = std::chrono::steady_clock::now();
  auto par_results = parallel->RunBatch(tables);
  const double par_seconds = SecondsSince(start);
  if (!par_results.ok()) {
    std::fprintf(stderr, "parallel: %s\n",
                 par_results.status().ToString().c_str());
    return 1;
  }

  // Cross-check: sharding must not change a single fused value.
  size_t mismatches = 0;
  for (size_t g = 0; g < groups; ++g) {
    for (size_t r = 0; r < rounds; ++r) {
      if ((*seq_results)[g].rounds[r].value !=
          (*par_results)[g].rounds[r].value) {
        ++mismatches;
      }
    }
  }

  const size_t workers = avoc::util::ThreadPool(threads).thread_count();
  std::printf("%-12s, %10s, %14s\n", "mode", "seconds", "rounds/s");
  std::printf("%-12s, %10.3f, %14.0f\n", "sequential", seq_seconds,
              total_rounds / seq_seconds);
  std::printf("%-12s, %10.3f, %14.0f\n", "parallel", par_seconds,
              total_rounds / par_seconds);
  std::printf("\nspeedup: %.2fx on %zu workers; output mismatches: %zu\n",
              seq_seconds / par_seconds, workers, mismatches);
  if (mismatches != 0) return 1;
  std::printf(
      "(each worker owns whole groups, so there is no cross-group\n"
      " synchronisation on the round hot path; the contiguous history\n"
      " block is re-synced once per batch.)\n");
  return 0;
}
