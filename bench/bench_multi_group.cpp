// Sharded multi-group throughput (the smart-shopping motivation: one
// voter group per shelf, hundreds of shelves per store).
//
// Four modes over the identical per-group workload:
//   legacy               one-VoteResult-per-round allocation path
//                        (core::RunOverTableLegacy), single thread
//   columnar             group-major SoA block (MultiGroupTrace), single
//                        thread, trace reused across repeats
//   columnar-instrumented columnar with a live obs::Registry and
//                        per-group MetricsObservers attached — the
//                        telemetry-overhead probe (<3% target)
//   columnar-parallel    same block sharded across the worker pool
// Cross-checks that all four produce bit-identical fused outputs, then
// writes machine-readable BENCH_multi_group.json next to the stdout
// report.  Flags: --groups N --modules M --rounds R --threads T
// --repeat K --seed S --json PATH
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "core/batch.h"
#include "obs/metrics.h"
#include "runtime/multi_group.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

std::vector<avoc::data::RoundTable> MakeTables(size_t groups, size_t modules,
                                               size_t rounds, uint64_t seed) {
  std::vector<avoc::data::RoundTable> tables;
  tables.reserve(groups);
  for (size_t g = 0; g < groups; ++g) {
    avoc::Rng rng(seed + g);
    avoc::data::RoundTable table =
        avoc::data::RoundTable::WithModuleCount(modules);
    for (size_t r = 0; r < rounds; ++r) {
      std::vector<double> row(modules);
      for (size_t m = 0; m < modules; ++m) {
        // One drifting module per group keeps the history machinery busy.
        const double bias = (m == 0) ? 2.0 : 0.0;
        row[m] = 20.0 + bias + rng.Gaussian(0.0, 0.2);
      }
      (void)table.AppendRound(row);
    }
    tables.push_back(std::move(table));
  }
  return tables;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct ModeResult {
  const char* mode;
  const char* allocation;
  size_t threads = 1;
  double seconds = 0.0;  ///< best of the repeats
  double rounds_per_sec = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) return 1;
  const size_t groups = static_cast<size_t>(cli->GetInt("groups", 64));
  const size_t modules = static_cast<size_t>(cli->GetInt("modules", 5));
  const size_t rounds = static_cast<size_t>(cli->GetInt("rounds", 2000));
  const size_t threads = static_cast<size_t>(cli->GetInt("threads", 0));
  const size_t repeat =
      std::max<size_t>(1, static_cast<size_t>(cli->GetInt("repeat", 3)));
  const uint64_t seed = static_cast<uint64_t>(cli->GetInt("seed", 7));
  const size_t sample_every =
      static_cast<size_t>(cli->GetInt("sample", 256));
  const std::string json_path =
      cli->GetString("json", "BENCH_multi_group.json");

  auto config_engine = avoc::core::MakeEngine(avoc::core::AlgorithmId::kAvoc,
                                              modules);
  if (!config_engine.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 config_engine.status().ToString().c_str());
    return 1;
  }
  const auto config = config_engine->config();
  const auto tables = MakeTables(groups, modules, rounds, seed);
  const double total_rounds = static_cast<double>(groups * rounds);

  std::printf("=== sharded multi-group batch: %zu groups x %zu modules x "
              "%zu rounds (AVOC), best of %zu ===\n",
              groups, modules, rounds, repeat);

  // --- legacy: per-round VoteResult allocations, fresh engines ------------
  ModeResult legacy{"legacy", "per-round", 1};
  std::vector<avoc::core::LegacyBatchResult> legacy_results;
  for (size_t it = 0; it < repeat; ++it) {
    std::vector<avoc::core::LegacyBatchResult> results;
    results.reserve(groups);
    const auto start = std::chrono::steady_clock::now();
    for (size_t g = 0; g < groups; ++g) {
      auto engine = avoc::core::VotingEngine::Create(modules, config);
      if (!engine.ok()) return 1;
      auto batch = avoc::core::RunOverTableLegacy(*engine, tables[g]);
      if (!batch.ok()) {
        std::fprintf(stderr, "legacy: %s\n",
                     batch.status().ToString().c_str());
        return 1;
      }
      results.push_back(std::move(batch).value());
    }
    const double seconds = SecondsSince(start);
    if (it == 0 || seconds < legacy.seconds) legacy.seconds = seconds;
    if (it == 0) legacy_results = std::move(results);
  }

  // --- columnar: group-major trace, reused across repeats -----------------
  avoc::runtime::MultiGroupOptions options;
  options.threads = threads;
  auto sequential =
      avoc::runtime::MultiGroupEngine::Create(groups, modules, config);
  auto parallel = avoc::runtime::MultiGroupEngine::Create(groups, modules,
                                                          config, options);
  if (!sequential.ok() || !parallel.ok()) {
    const auto& status =
        sequential.ok() ? parallel.status() : sequential.status();
    std::fprintf(stderr, "multi-group setup failed: %s\n",
                 status.message().c_str());
    return 1;
  }

  // --- columnar bare vs columnar + telemetry, interleaved -----------------
  // The two modes alternate inside one loop so the <3%-overhead comparison
  // sees the same machine conditions; best-of per mode then cancels the
  // shared noise floor instead of measuring drift between two blocks.
  avoc::obs::Registry registry;
  avoc::runtime::MultiGroupOptions instr_options;
  instr_options.registry = &registry;
  instr_options.metrics_sample_every = sample_every;
  auto instrumented = avoc::runtime::MultiGroupEngine::Create(
      groups, modules, config, instr_options);
  if (!instrumented.ok()) {
    std::fprintf(stderr, "instrumented setup failed: %s\n",
                 instrumented.status().message().c_str());
    return 1;
  }
  ModeResult columnar{"columnar", "columnar", 1};
  ModeResult instr{"columnar-instrumented", "columnar", 1};
  avoc::runtime::MultiGroupTrace seq_trace;
  avoc::runtime::MultiGroupTrace instr_trace;
  std::vector<double> pair_ratio;  ///< instrumented/bare per iteration
  pair_ratio.reserve(repeat);
  for (size_t it = 0; it < repeat; ++it) {
    sequential->ResetAll();
    auto start = std::chrono::steady_clock::now();
    auto status = sequential->RunBatchSequential(tables, seq_trace);
    const double bare_seconds = SecondsSince(start);
    if (!status.ok()) {
      std::fprintf(stderr, "sequential: %s\n", status.ToString().c_str());
      return 1;
    }
    if (it == 0 || bare_seconds < columnar.seconds) {
      columnar.seconds = bare_seconds;
    }

    instrumented->ResetAll();
    start = std::chrono::steady_clock::now();
    status = instrumented->RunBatchSequential(tables, instr_trace);
    const double instr_seconds = SecondsSince(start);
    if (!status.ok()) {
      std::fprintf(stderr, "instrumented: %s\n", status.ToString().c_str());
      return 1;
    }
    if (it == 0 || instr_seconds < instr.seconds) {
      instr.seconds = instr_seconds;
    }
    pair_ratio.push_back(instr_seconds / bare_seconds);
  }
  // The overhead statistic is the median of the per-iteration ratios:
  // each back-to-back pair shares its machine conditions, and the median
  // discards iterations where a noise spike hit one side of a pair.
  std::nth_element(pair_ratio.begin(),
                   pair_ratio.begin() + pair_ratio.size() / 2,
                   pair_ratio.end());
  const double median_ratio = pair_ratio[pair_ratio.size() / 2];
  const avoc::runtime::MultiGroupStats stats = instrumented->Stats();

  const size_t workers = avoc::util::ThreadPool(threads).thread_count();
  ModeResult par{"columnar-parallel", "columnar", workers};
  avoc::runtime::MultiGroupTrace par_trace;
  for (size_t it = 0; it < repeat; ++it) {
    parallel->ResetAll();
    const auto start = std::chrono::steady_clock::now();
    const auto status = parallel->RunBatch(tables, par_trace);
    const double seconds = SecondsSince(start);
    if (!status.ok()) {
      std::fprintf(stderr, "parallel: %s\n", status.ToString().c_str());
      return 1;
    }
    if (it == 0 || seconds < par.seconds) par.seconds = seconds;
  }

  // Cross-check: neither the columnar layout nor sharding may change a
  // single fused value relative to the legacy path.
  size_t mismatches = 0;
  for (size_t g = 0; g < groups; ++g) {
    const avoc::core::TraceView seq_view = seq_trace.group(g);
    const avoc::core::TraceView par_view = par_trace.group(g);
    const avoc::core::TraceView instr_view = instr_trace.group(g);
    for (size_t r = 0; r < rounds; ++r) {
      const auto& legacy_output = legacy_results[g].outputs[r];
      if (seq_view.output(r) != legacy_output ||
          par_view.output(r) != legacy_output ||
          instr_view.output(r) != legacy_output) {
        ++mismatches;
      }
    }
  }
  // Telemetry sanity: the registry must have seen every round of every
  // repeat, or the "overhead" number measured a broken observer.
  const uint64_t expected_rounds =
      static_cast<uint64_t>(groups) * rounds * repeat;
  if (stats.rounds != expected_rounds) {
    std::fprintf(stderr, "telemetry: %llu rounds counted, expected %llu\n",
                 static_cast<unsigned long long>(stats.rounds),
                 static_cast<unsigned long long>(expected_rounds));
    return 1;
  }

  std::vector<ModeResult*> modes = {&legacy, &columnar, &instr, &par};
  std::printf("%-18s, %12s, %8s, %10s, %14s\n", "mode", "allocation",
              "threads", "seconds", "rounds/s");
  for (ModeResult* m : modes) {
    m->rounds_per_sec = total_rounds / m->seconds;
    std::printf("%-18s, %12s, %8zu, %10.3f, %14.0f\n", m->mode, m->allocation,
                m->threads, m->seconds, m->rounds_per_sec);
  }
  const double overhead_pct = (median_ratio - 1.0) * 100.0;
  std::printf(
      "\ncolumnar vs legacy: %.2fx; parallel vs columnar: %.2fx on %zu "
      "workers; output mismatches: %zu\n",
      legacy.seconds / columnar.seconds, columnar.seconds / par.seconds,
      workers, mismatches);
  std::printf(
      "telemetry overhead: %.2f%% (median of %zu paired runs; best bare "
      "%.3fs, best instrumented %.3fs); "
      "round p50/p95/p99: %.0f/%.0f/%.0f ns over %llu samples\n",
      overhead_pct, pair_ratio.size(), columnar.seconds, instr.seconds,
      stats.round_latency.p50(),
      stats.round_latency.p95(), stats.round_latency.p99(),
      static_cast<unsigned long long>(stats.round_latency.count));

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"multi_group\",\n"
                 "  \"groups\": %zu,\n"
                 "  \"modules\": %zu,\n"
                 "  \"rounds_per_group\": %zu,\n"
                 "  \"repeat\": %zu,\n"
                 "  \"workers\": %zu,\n"
                 "  \"mismatches\": %zu,\n"
                 "  \"speedup_columnar_vs_legacy\": %.3f,\n"
                 "  \"speedup_parallel_vs_columnar\": %.3f,\n"
                 "  \"instrumented_overhead_pct\": %.3f,\n"
                 "  \"instrumented_round_p50_ns\": %.1f,\n"
                 "  \"instrumented_round_p99_ns\": %.1f,\n"
                 "  \"results\": [\n",
                 groups, modules, rounds, repeat, workers, mismatches,
                 legacy.seconds / columnar.seconds,
                 columnar.seconds / par.seconds, overhead_pct,
                 stats.round_latency.p50(), stats.round_latency.p99());
    for (size_t i = 0; i < modes.size(); ++i) {
      std::fprintf(json,
                   "    {\"mode\": \"%s\", \"allocation\": \"%s\", "
                   "\"threads\": %zu, \"seconds\": %.6f, "
                   "\"rounds_per_sec\": %.1f}%s\n",
                   modes[i]->mode, modes[i]->allocation, modes[i]->threads,
                   modes[i]->seconds, modes[i]->rounds_per_sec,
                   i + 1 < modes.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (mismatches != 0) return 1;
  return 0;
}
