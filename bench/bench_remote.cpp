// Remote SUBMIT throughput: legacy line protocol vs binary frames.
//
// The line protocol costs one request/response round trip — and one text
// parse — per reading; the binary protocol ships hundreds of readings per
// SUBMIT_BATCH frame and the server votes completed rounds in one
// columnar engine pass.  Three modes over the identical loopback
// workload (R rounds x M modules into one AVOC group):
//   legacy-line       one SUBMIT line + OK line per reading
//   binary-batched    SUBMIT_BATCH frames of --batch readings, one
//                     round trip per frame
//   binary-pipelined  same frames, --depth of them in flight
// Each mode runs against a fresh server so history and round numbers
// match exactly; a sink cross-check fails the run if any mode lost
// rounds.  Writes BENCH_remote.json next to the stdout report.
// Flags: --rounds R --modules M --batch B --depth D --repeat K --json PATH
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "runtime/framing.h"
#include "runtime/remote.h"
#include "util/cli.h"

namespace {

using avoc::runtime::BatchReading;
using avoc::runtime::RemoteVoterClient;
using avoc::runtime::RemoteVoterServer;
using avoc::runtime::VoterGroupManager;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct ModeResult {
  const char* mode;
  double seconds = 0.0;  ///< best of the repeats
  double readings_per_sec = 0.0;
};

/// One server + one AVOC group, torn down per run so every mode sees the
/// same virgin history.
struct Fixture {
  VoterGroupManager manager;
  std::unique_ptr<RemoteVoterServer> server;

  static std::unique_ptr<Fixture> Create(size_t modules) {
    auto fixture = std::make_unique<Fixture>();
    auto engine =
        avoc::core::MakeEngine(avoc::core::AlgorithmId::kAvoc, modules);
    if (!engine.ok()) return nullptr;
    if (!fixture->manager.AddGroup("bench", *std::move(engine)).ok()) {
      return nullptr;
    }
    auto server = RemoteVoterServer::Start(&fixture->manager, 0);
    if (!server.ok()) {
      std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
      return nullptr;
    }
    fixture->server = std::move(*server);
    return fixture;
  }

  bool SinkSawEveryRound(size_t rounds) const {
    auto sink = manager.sink("bench");
    if (!sink.ok()) return false;
    if ((*sink)->output_count() != rounds) {
      std::fprintf(stderr, "sink saw %zu rounds, expected %zu\n",
                   (*sink)->output_count(), rounds);
      return false;
    }
    return true;
  }
};

std::vector<BatchReading> MakeReadings(size_t rounds, size_t modules) {
  std::vector<BatchReading> readings;
  readings.reserve(rounds * modules);
  for (size_t r = 0; r < rounds; ++r) {
    for (size_t m = 0; m < modules; ++m) {
      readings.push_back(BatchReading{
          m, r, 20.0 + static_cast<double>(m) + 0.01 * static_cast<double>(r % 7)});
    }
  }
  return readings;
}

/// -1.0 on failure; otherwise elapsed seconds for the submit phase.
double RunLegacy(uint16_t port, std::span<const BatchReading> readings) {
  auto client = RemoteVoterClient::Connect("127.0.0.1", port);
  if (!client.ok()) return -1.0;
  const auto start = std::chrono::steady_clock::now();
  for (const BatchReading& reading : readings) {
    if (!client
             ->Submit("bench", reading.module, reading.round, reading.value)
             .ok()) {
      return -1.0;
    }
  }
  return SecondsSince(start);
}

double RunBatched(uint16_t port, std::span<const BatchReading> readings,
                  size_t batch, size_t depth) {
  auto client = RemoteVoterClient::ConnectBinary("127.0.0.1", port);
  if (!client.ok()) return -1.0;
  const auto start = std::chrono::steady_clock::now();
  size_t offset = 0;
  while (offset < readings.size()) {
    const size_t n = std::min(batch, readings.size() - offset);
    if (!client->PipelineSubmitBatch("bench", readings.subspan(offset, n))
             .ok()) {
      return -1.0;
    }
    offset += n;
    while (client->pending_replies() >= depth) {
      if (!client->AwaitSubmitBatch().ok()) return -1.0;
    }
  }
  while (client->pending_replies() > 0) {
    if (!client->AwaitSubmitBatch().ok()) return -1.0;
  }
  return SecondsSince(start);
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) return 1;
  const size_t rounds = static_cast<size_t>(cli->GetInt("rounds", 2000));
  const size_t modules = static_cast<size_t>(cli->GetInt("modules", 3));
  const size_t batch = std::max<size_t>(
      1, static_cast<size_t>(cli->GetInt("batch", 512)));
  const size_t depth =
      std::max<size_t>(1, static_cast<size_t>(cli->GetInt("depth", 8)));
  const size_t repeat =
      std::max<size_t>(1, static_cast<size_t>(cli->GetInt("repeat", 3)));
  const std::string json_path = cli->GetString("json", "BENCH_remote.json");

  const std::vector<BatchReading> readings = MakeReadings(rounds, modules);
  const double total = static_cast<double>(readings.size());

  std::printf("=== remote SUBMIT throughput: %zu rounds x %zu modules over "
              "loopback, best of %zu ===\n",
              rounds, modules, repeat);

  ModeResult legacy{"legacy-line"};
  ModeResult batched{"binary-batched"};
  ModeResult pipelined{"binary-pipelined"};
  struct Job {
    ModeResult* result;
    size_t batch;
    size_t depth;  ///< 0 = legacy line protocol
  };
  const Job jobs[] = {{&legacy, 0, 0},
                      {&batched, batch, 1},
                      {&pipelined, batch, depth}};
  for (const Job& job : jobs) {
    for (size_t it = 0; it < repeat; ++it) {
      auto fixture = Fixture::Create(modules);
      if (fixture == nullptr) return 1;
      const uint16_t port = fixture->server->port();
      const double seconds =
          job.depth == 0 ? RunLegacy(port, readings)
                         : RunBatched(port, readings, job.batch, job.depth);
      if (seconds < 0.0) {
        std::fprintf(stderr, "%s run failed\n", job.result->mode);
        return 1;
      }
      // Replies are synchronous with dispatch, so the sink total is exact
      // by the time the last one arrived.
      if (!fixture->SinkSawEveryRound(rounds)) return 1;
      fixture->server->Stop();
      if (it == 0 || seconds < job.result->seconds) {
        job.result->seconds = seconds;
      }
    }
  }

  ModeResult* modes[] = {&legacy, &batched, &pipelined};
  std::printf("%-18s, %10s, %14s\n", "mode", "seconds", "readings/s");
  for (ModeResult* m : modes) {
    m->readings_per_sec = total / m->seconds;
    std::printf("%-18s, %10.3f, %14.0f\n", m->mode, m->seconds,
                m->readings_per_sec);
  }
  const double speedup_batched = legacy.seconds / batched.seconds;
  const double speedup_pipelined = legacy.seconds / pipelined.seconds;
  std::printf(
      "\nbatched vs legacy: %.1fx; pipelined (depth %zu) vs legacy: %.1fx\n",
      speedup_batched, depth, speedup_pipelined);

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"remote\",\n"
                 "  \"rounds\": %zu,\n"
                 "  \"modules\": %zu,\n"
                 "  \"readings\": %zu,\n"
                 "  \"batch\": %zu,\n"
                 "  \"depth\": %zu,\n"
                 "  \"repeat\": %zu,\n"
                 "  \"speedup_batched_vs_legacy\": %.3f,\n"
                 "  \"speedup_pipelined_vs_legacy\": %.3f,\n"
                 "  \"results\": [\n",
                 rounds, modules, readings.size(), batch, depth, repeat,
                 speedup_batched, speedup_pipelined);
    for (size_t i = 0; i < 3; ++i) {
      std::fprintf(json,
                   "    {\"mode\": \"%s\", \"seconds\": %.6f, "
                   "\"readings_per_sec\": %.1f}%s\n",
                   modes[i]->mode, modes[i]->seconds,
                   modes[i]->readings_per_sec, i + 1 < 3 ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
