// Sharded remote runtime throughput: thread-per-core scaling.
//
// The workload is G groups x R rounds x M modules, driven by one binary
// client connection per group (the common IoT shape: one device feeds
// one group).  Against a ShardedVoterServer every connection migrates to
// the shard owning its group on the first SUBMIT_BATCH and is strictly
// shard-local afterwards, so shards add up instead of contending.
//
// Modes over the identical workload:
//   single-reactor    the unsharded RemoteVoterServer (baseline: one
//                     epoll loop multiplexing every connection)
//   sharded-N         ShardedVoterServer at N ∈ {1, 2, 4, all-cores}
//
// Every sharded run's per-group sink traces must be BIT-IDENTICAL to the
// single-shard run's (and the sink must have fused every round) or the
// bench exits non-zero — throughput numbers from a wrong answer are
// worthless.  Writes BENCH_sharded_remote.json; the JSON carries the
// machine's core count because the >5x all-cores target only means
// anything with >5 usable cores.
// Flags: --groups G --rounds R --modules M --batch B --depth D
//        --repeat K --json PATH
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "runtime/remote.h"
#include "runtime/sharded_remote.h"
#include "util/cli.h"
#include "util/strings.h"

namespace {

using avoc::runtime::BatchReading;
using avoc::runtime::RemoteVoterClient;
using avoc::runtime::RemoteVoterServer;
using avoc::runtime::ShardedServerOptions;
using avoc::runtime::ShardedVoterServer;
using avoc::runtime::SinkNode;
using avoc::runtime::VoterGroupManager;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string GroupName(size_t i) { return "device-" + std::to_string(i); }

std::vector<BatchReading> MakeReadings(size_t rounds, size_t modules,
                                       size_t group) {
  std::vector<BatchReading> readings;
  readings.reserve(rounds * modules);
  for (size_t r = 0; r < rounds; ++r) {
    for (size_t m = 0; m < modules; ++m) {
      readings.push_back(BatchReading{
          m, r,
          20.0 + static_cast<double>(m) +
              0.01 * static_cast<double>((r + group) % 7)});
    }
  }
  return readings;
}

/// Bit-exact rendering of one sink's fused outputs (hex floats).
std::string SinkTrace(const SinkNode& sink) {
  std::string trace;
  for (const avoc::runtime::OutputMessage& out : sink.outputs()) {
    trace += avoc::StrFormat("%zu %d %a\n", out.round,
                             static_cast<int>(out.result.outcome),
                             out.result.value.value_or(-0.0));
  }
  return trace;
}

/// One client thread: pipelined SUBMIT_BATCH of this group's readings.
bool DriveGroup(uint16_t port, const std::string& group,
                std::span<const BatchReading> readings, size_t batch,
                size_t depth) {
  auto client = RemoteVoterClient::ConnectBinary("127.0.0.1", port);
  if (!client.ok()) return false;
  size_t offset = 0;
  while (offset < readings.size()) {
    const size_t n = std::min(batch, readings.size() - offset);
    if (!client->PipelineSubmitBatch(group, readings.subspan(offset, n))
             .ok()) {
      return false;
    }
    offset += n;
    while (client->pending_replies() >= depth) {
      if (!client->AwaitSubmitBatch().ok()) return false;
    }
  }
  while (client->pending_replies() > 0) {
    if (!client->AwaitSubmitBatch().ok()) return false;
  }
  return true;
}

struct RunOutcome {
  bool ok = false;
  double seconds = 0.0;
  std::vector<std::string> traces;  ///< per group, bit-exact
};

/// Drives all groups concurrently against `port`, one thread per group.
double DriveAll(uint16_t port,
                const std::vector<std::vector<BatchReading>>& workloads,
                size_t batch, size_t depth) {
  std::atomic<bool> failed{false};
  std::vector<std::thread> drivers;
  const auto start = std::chrono::steady_clock::now();
  for (size_t g = 0; g < workloads.size(); ++g) {
    drivers.emplace_back([&, g] {
      if (!DriveGroup(port, GroupName(g), workloads[g], batch, depth)) {
        failed.store(true);
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  const double seconds = SecondsSince(start);
  return failed.load() ? -1.0 : seconds;
}

RunOutcome RunSharded(size_t shards,
                      const std::vector<std::vector<BatchReading>>& workloads,
                      size_t rounds, size_t modules, size_t batch,
                      size_t depth) {
  RunOutcome outcome;
  ShardedServerOptions options;
  options.shards = shards;
  avoc::obs::Registry registry;
  auto server = ShardedVoterServer::Start(options, nullptr, &registry);
  if (!server.ok()) {
    std::fprintf(stderr, "sharded server: %s\n",
                 server.status().ToString().c_str());
    return outcome;
  }
  for (size_t g = 0; g < workloads.size(); ++g) {
    auto engine = avoc::core::MakeEngine(avoc::core::AlgorithmId::kAvoc,
                                         modules);
    if (!engine.ok() ||
        !(*server)->AddGroup(GroupName(g), *std::move(engine)).ok()) {
      return outcome;
    }
  }
  if (!(*server)->Serve().ok()) return outcome;

  outcome.seconds = DriveAll((*server)->port(), workloads, batch, depth);
  if (outcome.seconds < 0.0) return outcome;
  for (size_t g = 0; g < workloads.size(); ++g) {
    auto sink = (*server)->sink(GroupName(g));
    if (!sink.ok() || (*sink)->output_count() != rounds) {
      std::fprintf(stderr, "shards=%zu: group %zu fused %zu/%zu rounds\n",
                   shards, g, sink.ok() ? (*sink)->output_count() : 0, rounds);
      return outcome;
    }
    outcome.traces.push_back(SinkTrace(**sink));
  }
  (*server)->Stop();
  outcome.ok = true;
  return outcome;
}

RunOutcome RunSingleReactor(
    const std::vector<std::vector<BatchReading>>& workloads, size_t rounds,
    size_t modules, size_t batch, size_t depth) {
  RunOutcome outcome;
  VoterGroupManager manager;
  for (size_t g = 0; g < workloads.size(); ++g) {
    auto engine = avoc::core::MakeEngine(avoc::core::AlgorithmId::kAvoc,
                                         modules);
    if (!engine.ok() ||
        !manager.AddGroup(GroupName(g), *std::move(engine)).ok()) {
      return outcome;
    }
  }
  auto server = RemoteVoterServer::Start(&manager, 0);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return outcome;
  }
  outcome.seconds = DriveAll((*server)->port(), workloads, batch, depth);
  if (outcome.seconds < 0.0) return outcome;
  for (size_t g = 0; g < workloads.size(); ++g) {
    auto sink = manager.sink(GroupName(g));
    if (!sink.ok() || (*sink)->output_count() != rounds) {
      std::fprintf(stderr, "single-reactor: group %zu fused %zu/%zu rounds\n",
                   g, sink.ok() ? (*sink)->output_count() : 0, rounds);
      return outcome;
    }
    outcome.traces.push_back(SinkTrace(**sink));
  }
  (*server)->Stop();
  outcome.ok = true;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) return 1;
  const size_t groups =
      std::max<size_t>(1, static_cast<size_t>(cli->GetInt("groups", 8)));
  const size_t rounds = static_cast<size_t>(cli->GetInt("rounds", 1500));
  const size_t modules = static_cast<size_t>(cli->GetInt("modules", 3));
  const size_t batch =
      std::max<size_t>(1, static_cast<size_t>(cli->GetInt("batch", 512)));
  const size_t depth =
      std::max<size_t>(1, static_cast<size_t>(cli->GetInt("depth", 8)));
  const size_t repeat =
      std::max<size_t>(1, static_cast<size_t>(cli->GetInt("repeat", 3)));
  const std::string json_path =
      cli->GetString("json", "BENCH_sharded_remote.json");

  const size_t cores = std::max<size_t>(1, std::thread::hardware_concurrency());
  std::vector<size_t> shard_counts = {1, 2, 4, cores};
  std::sort(shard_counts.begin(), shard_counts.end());
  shard_counts.erase(std::unique(shard_counts.begin(), shard_counts.end()),
                     shard_counts.end());

  std::vector<std::vector<BatchReading>> workloads;
  for (size_t g = 0; g < groups; ++g) {
    workloads.push_back(MakeReadings(rounds, modules, g));
  }
  const double total_readings =
      static_cast<double>(groups * rounds * modules);
  const double total_rounds = static_cast<double>(groups * rounds);

  std::printf("=== sharded remote throughput: %zu groups x %zu rounds x %zu "
              "modules, %zu cores, best of %zu ===\n",
              groups, rounds, modules, cores, repeat);

  // Baseline: the unsharded single-reactor server.
  double baseline_seconds = 0.0;
  std::vector<std::string> reference_traces;
  for (size_t it = 0; it < repeat; ++it) {
    const RunOutcome run =
        RunSingleReactor(workloads, rounds, modules, batch, depth);
    if (!run.ok) return 1;
    if (it == 0 || run.seconds < baseline_seconds) {
      baseline_seconds = run.seconds;
    }
    reference_traces = run.traces;
  }
  std::printf("%-16s, %10.3f s, %12.0f readings/s, %10.0f rounds/s\n",
              "single-reactor", baseline_seconds,
              total_readings / baseline_seconds,
              total_rounds / baseline_seconds);

  struct ShardResult {
    size_t shards = 0;
    double seconds = 0.0;
    bool traces_match = true;
  };
  std::vector<ShardResult> results;
  for (size_t shards : shard_counts) {
    ShardResult result;
    result.shards = shards;
    for (size_t it = 0; it < repeat; ++it) {
      const RunOutcome run =
          RunSharded(shards, workloads, rounds, modules, batch, depth);
      if (!run.ok) return 1;
      if (run.traces != reference_traces) {
        std::fprintf(stderr,
                     "FATAL: shards=%zu sink traces differ from the "
                     "single-reactor run\n",
                     shards);
        return 1;
      }
      if (it == 0 || run.seconds < result.seconds) {
        result.seconds = run.seconds;
      }
    }
    std::printf("%-16s, %10.3f s, %12.0f readings/s, %10.0f rounds/s, "
                "%.2fx vs single-reactor\n",
                ("sharded-" + std::to_string(shards)).c_str(), result.seconds,
                total_readings / result.seconds, total_rounds / result.seconds,
                baseline_seconds / result.seconds);
    results.push_back(result);
  }

  const double all_cores_speedup =
      baseline_seconds / results.back().seconds;
  std::printf("\nall-cores (%zu shards) vs single-reactor: %.2fx "
              "(target >5x needs >5 cores; this machine has %zu)\n",
              results.back().shards, all_cores_speedup, cores);

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"sharded_remote\",\n"
                 "  \"cores\": %zu,\n"
                 "  \"groups\": %zu,\n"
                 "  \"rounds_per_group\": %zu,\n"
                 "  \"modules\": %zu,\n"
                 "  \"batch\": %zu,\n"
                 "  \"depth\": %zu,\n"
                 "  \"repeat\": %zu,\n"
                 "  \"target_speedup_all_cores\": 5.0,\n"
                 "  \"speedup_all_cores_vs_single_reactor\": %.3f,\n"
                 "  \"baseline\": {\"mode\": \"single-reactor\", "
                 "\"seconds\": %.6f, \"readings_per_sec\": %.1f, "
                 "\"rounds_per_sec\": %.1f},\n"
                 "  \"results\": [\n",
                 cores, groups, rounds, modules, batch, depth, repeat,
                 all_cores_speedup, baseline_seconds,
                 total_readings / baseline_seconds,
                 total_rounds / baseline_seconds);
    for (size_t i = 0; i < results.size(); ++i) {
      const ShardResult& r = results[i];
      std::fprintf(json,
                   "    {\"shards\": %zu, \"seconds\": %.6f, "
                   "\"readings_per_sec\": %.1f, \"rounds_per_sec\": %.1f, "
                   "\"speedup_vs_single_reactor\": %.3f, "
                   "\"sink_traces_match_single_shard\": true}%s\n",
                   r.shards, r.seconds, total_readings / r.seconds,
                   total_rounds / r.seconds, baseline_seconds / r.seconds,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
