// Live group-migration handoff latency on the real-TCP cluster.
//
// A 2-node VoterCluster serves one voter group while a driver thread
// submits reading rounds through a ResilientVoterClient in cluster mode
// (node directory + MOVED following + SUBMIT_BATCH_SEQ exactly-once).
// The main thread bounces the group between the nodes K times under
// that live load and measures each handoff end to end: from the
// operator's Migrate() call to the commit callback — quiesce, history
// snapshot export, transfer, import, placement flip.
//
// Correctness gates (the bench exits non-zero on violation):
//   * rounds lost must be 0: every submitted round fuses exactly once,
//     so the final sink output count equals the submitted round count;
//   * every migration must commit (typed failures fail the bench);
//   * the client must actually have chased MOVED redirects.
//
// Writes BENCH_migration.json with handoff p50/p99 and the gates.
// Flags: --migrations K --rounds-per-phase R --modules M --json PATH
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithms.h"
#include "obs/metrics.h"
#include "runtime/cluster.h"
#include "runtime/resilient.h"
#include "runtime/transport.h"
#include "util/cli.h"

namespace {

using avoc::IoError;
using avoc::Result;
using avoc::Status;
using avoc::runtime::BatchReading;
using avoc::runtime::ResilientVoterClient;
using avoc::runtime::RetryPolicy;
using avoc::runtime::SystemClock;
using avoc::runtime::Transport;
using avoc::runtime::VoterCluster;

constexpr const char* kGroup = "device-0";

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) return 1;
  const size_t migrations =
      std::max<size_t>(1, static_cast<size_t>(cli->GetInt("migrations", 40)));
  const size_t rounds_per_phase = std::max<size_t>(
      1, static_cast<size_t>(cli->GetInt("rounds-per-phase", 40)));
  const size_t modules =
      std::max<size_t>(1, static_cast<size_t>(cli->GetInt("modules", 3)));
  const std::string json_path = cli->GetString("json", "BENCH_migration.json");

  avoc::obs::Registry registry;
  VoterCluster::Options options;
  options.nodes = 2;
  auto cluster = VoterCluster::Start(options, &registry);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }
  const Status added = (*cluster)->AddGroup(kGroup, [modules] {
    return avoc::core::MakeEngine(avoc::core::AlgorithmId::kAvoc, modules);
  });
  if (!added.ok()) {
    std::fprintf(stderr, "add group: %s\n", added.ToString().c_str());
    return 1;
  }

  // Driver: one resilient cluster-mode client submitting rounds for the
  // whole run.  Each migration phase carries live traffic on both sides
  // of the handoff.
  const size_t total_rounds = (migrations + 1) * rounds_per_phase;
  std::atomic<size_t> submitted{0};
  std::atomic<bool> driver_failed{false};
  VoterCluster* nodes = cluster->get();
  std::thread driver([&] {
    RetryPolicy policy;
    policy.initial_backoff_ms = 1;
    policy.max_backoff_ms = 50;
    policy.request_timeout_ms = 2000;
    policy.deadline_ms = 60 * 1000;
    ResilientVoterClient client(
        []() -> Result<std::unique_ptr<Transport>> {
          return IoError("node directory only");
        },
        SystemClock::Instance(), "bench-migration", policy, /*seed=*/1,
        &registry);
    client.UseNodeDirectory(
        [nodes](size_t node) { return nodes->DialNode(node); },
        /*node_count=*/2);
    for (size_t r = 0; r < total_rounds; ++r) {
      std::vector<BatchReading> batch;
      for (size_t m = 0; m < modules; ++m) {
        batch.push_back(BatchReading{
            m, r, 20.0 + static_cast<double>(m) + 0.01 * (r % 7)});
      }
      auto accepted = client.SubmitBatch(kGroup, batch);
      if (!accepted.ok() || *accepted != batch.size()) {
        std::fprintf(stderr, "round %zu: %s\n", r,
                     accepted.ok() ? "short accept"
                                   : accepted.status().ToString().c_str());
        driver_failed.store(true);
        return;
      }
      submitted.fetch_add(1);
    }
    std::printf("driver: %zu rounds, %zu reconnects, %zu MOVED followed\n",
                total_rounds, client.reconnects(),
                client.redirects_followed());
    if (client.redirects_followed() == 0) {
      std::fprintf(stderr, "FATAL: no MOVED redirect was ever followed\n");
      driver_failed.store(true);
    }
  });

  // Operator: bounce the group after every phase of live rounds.
  std::vector<double> handoff_ms;
  size_t failed_migrations = 0;
  for (size_t k = 0; k < migrations && !driver_failed.load(); ++k) {
    const size_t phase_target = (k + 1) * rounds_per_phase;
    while (submitted.load() < phase_target && !driver_failed.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const size_t owner = (*cluster)->OwnerOf(kGroup);
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Status outcome = Status::Ok();
    const auto start = std::chrono::steady_clock::now();
    (*cluster)->Migrate(kGroup, 1 - owner, [&](Status status) {
      std::lock_guard<std::mutex> lock(mutex);
      outcome = std::move(status);
      done = true;
      cv.notify_one();
    });
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return done; });
    }
    const double ms = MillisSince(start);
    if (!outcome.ok()) {
      std::fprintf(stderr, "migration %zu: %s\n", k,
                   outcome.ToString().c_str());
      ++failed_migrations;
      continue;
    }
    handoff_ms.push_back(ms);
  }

  driver.join();
  const size_t fused = [&]() -> size_t {
    auto sink = (*cluster)->sink(kGroup);
    return sink.ok() ? (*sink)->outputs().size() : 0;
  }();
  (*cluster)->Stop();

  const size_t rounds_lost = total_rounds > fused ? total_rounds - fused : 0;
  const size_t rounds_doubled = fused > total_rounds ? fused - total_rounds : 0;
  const double p50 = Quantile(handoff_ms, 0.50);
  const double p99 = Quantile(handoff_ms, 0.99);
  std::printf(
      "=== migration handoff under live load: %zu migrations, %zu rounds ===\n"
      "handoff p50 %.3f ms, p99 %.3f ms, committed %zu/%zu\n"
      "rounds fused %zu/%zu (lost %zu, doubled %zu)\n",
      migrations, total_rounds, p50, p99, handoff_ms.size(), migrations,
      fused, total_rounds, rounds_lost, rounds_doubled);

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"migration\",\n"
                 "  \"nodes\": 2,\n"
                 "  \"migrations\": %zu,\n"
                 "  \"migrations_committed\": %zu,\n"
                 "  \"rounds_submitted\": %zu,\n"
                 "  \"rounds_fused\": %zu,\n"
                 "  \"rounds_lost\": %zu,\n"
                 "  \"rounds_doubled\": %zu,\n"
                 "  \"handoff_ms_p50\": %.3f,\n"
                 "  \"handoff_ms_p99\": %.3f\n"
                 "}\n",
                 migrations, handoff_ms.size(), total_rounds, fused,
                 rounds_lost, rounds_doubled, p50, p99);
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (driver_failed.load() || failed_migrations != 0 || rounds_lost != 0 ||
      rounds_doubled != 0) {
    std::fprintf(stderr, "FATAL: migration bench violated a gate\n");
    return 1;
  }
  return 0;
}
