// Latency micro-benchmarks (google-benchmark) for §7's implementation
// notes: "the system can execute a history-aware voting round in 1
// millisecond and a stateless vote in 50 microseconds (datastore reads and
// writes being the bottleneck)".
//
// The absolute numbers here are far smaller (C++ on a workstation vs
// Python 3.9 on constrained hardware); what must reproduce is the *shape*:
// stateless << history-aware << history-aware + datastore persistence.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <vector>

#include "core/algorithms.h"
#include "core/engine.h"
#include "runtime/datastore.h"
#include "util/rng.h"

namespace {

using avoc::core::AlgorithmId;

std::vector<double> MakeRound(size_t modules, avoc::Rng& rng) {
  std::vector<double> round;
  round.reserve(modules);
  for (size_t m = 0; m < modules; ++m) {
    round.push_back(18500.0 + rng.Gaussian(0.0, 60.0));
  }
  // One outlier keeps the agreement/elimination paths busy.
  round.back() += 6000.0;
  return round;
}

void BM_StatelessVote(benchmark::State& state) {
  const size_t modules = static_cast<size_t>(state.range(0));
  avoc::Rng rng(1);
  const std::vector<double> round = MakeRound(modules, rng);
  for (auto _ : state) {
    auto result = avoc::core::StatelessVote(round);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StatelessVote)->Arg(5)->Arg(9)->Arg(32);

void BM_HistoryAwareRound(benchmark::State& state) {
  const size_t modules = static_cast<size_t>(state.range(0));
  const AlgorithmId id = static_cast<AlgorithmId>(state.range(1));
  auto engine = avoc::core::MakeEngine(id, modules);
  if (!engine.ok()) {
    state.SkipWithError("engine creation failed");
    return;
  }
  avoc::Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    const std::vector<double> round = MakeRound(modules, rng);
    state.ResumeTiming();
    auto result = engine->CastVote(round);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HistoryAwareRound)
    ->ArgsProduct({{5, 9, 32},
                   {static_cast<long>(AlgorithmId::kStandard),
                    static_cast<long>(AlgorithmId::kModuleElimination),
                    static_cast<long>(AlgorithmId::kSoftDynamicThreshold),
                    static_cast<long>(AlgorithmId::kHybrid),
                    static_cast<long>(AlgorithmId::kAvoc)}});

void BM_ClusteringOnlyRound(benchmark::State& state) {
  const size_t modules = static_cast<size_t>(state.range(0));
  auto engine =
      avoc::core::MakeEngine(AlgorithmId::kClusteringOnly, modules);
  if (!engine.ok()) {
    state.SkipWithError("engine creation failed");
    return;
  }
  avoc::Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    const std::vector<double> round = MakeRound(modules, rng);
    state.ResumeTiming();
    auto result = engine->CastVote(round);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ClusteringOnlyRound)->Arg(5)->Arg(9)->Arg(32);

// History-aware round including the in-memory datastore round-trip the
// paper identifies as the bottleneck.
void BM_HistoryAwareRoundWithMemoryStore(benchmark::State& state) {
  const size_t modules = static_cast<size_t>(state.range(0));
  auto engine = avoc::core::MakeEngine(AlgorithmId::kAvoc, modules);
  if (!engine.ok()) {
    state.SkipWithError("engine creation failed");
    return;
  }
  avoc::runtime::HistoryStore store;
  avoc::Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    const std::vector<double> round = MakeRound(modules, rng);
    state.ResumeTiming();
    // Read-modify-write against the store, as the voter service does.
    auto snapshot = store.Get("group");
    if (snapshot.ok()) {
      (void)engine->RestoreHistory(snapshot->records, snapshot->rounds);
    }
    auto result = engine->CastVote(round);
    benchmark::DoNotOptimize(result);
    avoc::runtime::HistorySnapshot out;
    const auto records = engine->history().records();
    out.records.assign(records.begin(), records.end());
    out.rounds = engine->history().round_count();
    (void)store.Put("group", out);
  }
}
BENCHMARK(BM_HistoryAwareRoundWithMemoryStore)->Arg(5)->Arg(9);

// ... and with the JSON file-backed store: this is the configuration that
// mirrors the paper's "datastore reads and writes being the bottleneck".
void BM_HistoryAwareRoundWithFileStore(benchmark::State& state) {
  const size_t modules = static_cast<size_t>(state.range(0));
  auto engine = avoc::core::MakeEngine(AlgorithmId::kAvoc, modules);
  if (!engine.ok()) {
    state.SkipWithError("engine creation failed");
    return;
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "avoc_bench_store.json")
          .string();
  std::filesystem::remove(path);
  auto store = avoc::runtime::HistoryStore::Open(path);
  if (!store.ok()) {
    state.SkipWithError("store open failed");
    return;
  }
  avoc::Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    const std::vector<double> round = MakeRound(modules, rng);
    state.ResumeTiming();
    auto snapshot = store->Get("group");
    if (snapshot.ok()) {
      (void)engine->RestoreHistory(snapshot->records, snapshot->rounds);
    }
    auto result = engine->CastVote(round);
    benchmark::DoNotOptimize(result);
    avoc::runtime::HistorySnapshot out;
    const auto records = engine->history().records();
    out.records.assign(records.begin(), records.end());
    out.rounds = engine->history().round_count();
    (void)store->Put("group", out);
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_HistoryAwareRoundWithFileStore)->Arg(5)->Arg(9);

}  // namespace

BENCHMARK_MAIN();
