// Latency micro-benchmarks (google-benchmark) for §7's implementation
// notes: "the system can execute a history-aware voting round in 1
// millisecond and a stateless vote in 50 microseconds (datastore reads and
// writes being the bottleneck)".
//
// The absolute numbers here are far smaller (C++ on a workstation vs
// Python 3.9 on constrained hardware); what must reproduce is the *shape*:
// stateless << history-aware << history-aware + datastore persistence.
// Besides the google-benchmark suite, main() first runs a percentile pass:
// per algorithm/width it times individual CastVote rounds with the
// telemetry clock path (obs::LatencyHistogram) and writes the p50/p95/p99
// tail to BENCH_latency.json — mean-only numbers hide exactly the tail a
// soft real-time voter cares about.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "core/algorithms.h"
#include "core/engine.h"
#include "obs/metrics.h"
#include "runtime/datastore.h"
#include "util/rng.h"

namespace {

using avoc::core::AlgorithmId;

std::vector<double> MakeRound(size_t modules, avoc::Rng& rng) {
  std::vector<double> round;
  round.reserve(modules);
  for (size_t m = 0; m < modules; ++m) {
    round.push_back(18500.0 + rng.Gaussian(0.0, 60.0));
  }
  // One outlier keeps the agreement/elimination paths busy.
  round.back() += 6000.0;
  return round;
}

void BM_StatelessVote(benchmark::State& state) {
  const size_t modules = static_cast<size_t>(state.range(0));
  avoc::Rng rng(1);
  const std::vector<double> round = MakeRound(modules, rng);
  for (auto _ : state) {
    auto result = avoc::core::StatelessVote(round);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StatelessVote)->Arg(5)->Arg(9)->Arg(32);

void BM_HistoryAwareRound(benchmark::State& state) {
  const size_t modules = static_cast<size_t>(state.range(0));
  const AlgorithmId id = static_cast<AlgorithmId>(state.range(1));
  auto engine = avoc::core::MakeEngine(id, modules);
  if (!engine.ok()) {
    state.SkipWithError("engine creation failed");
    return;
  }
  avoc::Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    const std::vector<double> round = MakeRound(modules, rng);
    state.ResumeTiming();
    auto result = engine->CastVote(round);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HistoryAwareRound)
    ->ArgsProduct({{5, 9, 32},
                   {static_cast<long>(AlgorithmId::kStandard),
                    static_cast<long>(AlgorithmId::kModuleElimination),
                    static_cast<long>(AlgorithmId::kSoftDynamicThreshold),
                    static_cast<long>(AlgorithmId::kHybrid),
                    static_cast<long>(AlgorithmId::kAvoc)}});

void BM_ClusteringOnlyRound(benchmark::State& state) {
  const size_t modules = static_cast<size_t>(state.range(0));
  auto engine =
      avoc::core::MakeEngine(AlgorithmId::kClusteringOnly, modules);
  if (!engine.ok()) {
    state.SkipWithError("engine creation failed");
    return;
  }
  avoc::Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    const std::vector<double> round = MakeRound(modules, rng);
    state.ResumeTiming();
    auto result = engine->CastVote(round);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ClusteringOnlyRound)->Arg(5)->Arg(9)->Arg(32);

// History-aware round including the in-memory datastore round-trip the
// paper identifies as the bottleneck.
void BM_HistoryAwareRoundWithMemoryStore(benchmark::State& state) {
  const size_t modules = static_cast<size_t>(state.range(0));
  auto engine = avoc::core::MakeEngine(AlgorithmId::kAvoc, modules);
  if (!engine.ok()) {
    state.SkipWithError("engine creation failed");
    return;
  }
  avoc::runtime::HistoryStore store;
  avoc::Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    const std::vector<double> round = MakeRound(modules, rng);
    state.ResumeTiming();
    // Read-modify-write against the store, as the voter service does.
    auto snapshot = store.Get("group");
    if (snapshot.ok()) {
      (void)engine->RestoreHistory(snapshot->records, snapshot->rounds);
    }
    auto result = engine->CastVote(round);
    benchmark::DoNotOptimize(result);
    avoc::runtime::HistorySnapshot out;
    const auto records = engine->history().records();
    out.records.assign(records.begin(), records.end());
    out.rounds = engine->history().round_count();
    (void)store.Put("group", out);
  }
}
BENCHMARK(BM_HistoryAwareRoundWithMemoryStore)->Arg(5)->Arg(9);

// ... and with the JSON file-backed store: this is the configuration that
// mirrors the paper's "datastore reads and writes being the bottleneck".
void BM_HistoryAwareRoundWithFileStore(benchmark::State& state) {
  const size_t modules = static_cast<size_t>(state.range(0));
  auto engine = avoc::core::MakeEngine(AlgorithmId::kAvoc, modules);
  if (!engine.ok()) {
    state.SkipWithError("engine creation failed");
    return;
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "avoc_bench_store.json")
          .string();
  std::filesystem::remove(path);
  auto store = avoc::runtime::HistoryStore::Open(path);
  if (!store.ok()) {
    state.SkipWithError("store open failed");
    return;
  }
  avoc::Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    const std::vector<double> round = MakeRound(modules, rng);
    state.ResumeTiming();
    auto snapshot = store->Get("group");
    if (snapshot.ok()) {
      (void)engine->RestoreHistory(snapshot->records, snapshot->rounds);
    }
    auto result = engine->CastVote(round);
    benchmark::DoNotOptimize(result);
    avoc::runtime::HistorySnapshot out;
    const auto records = engine->history().records();
    out.records.assign(records.begin(), records.end());
    out.rounds = engine->history().round_count();
    (void)store->Put("group", out);
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_HistoryAwareRoundWithFileStore)->Arg(5)->Arg(9);

// One percentile-pass config: an algorithm preset at a round width.
struct PercentileConfig {
  const char* name;
  AlgorithmId id;
  size_t modules;
};

constexpr size_t kPercentileWarmup = 2000;
constexpr size_t kPercentileRounds = 20000;

/// Times kPercentileRounds individual rounds per config and writes their
/// p50/p95/p99/mean to `path`; returns false on setup failure.
bool RunPercentilePass(const std::string& path) {
  const PercentileConfig configs[] = {
      {"standard", AlgorithmId::kStandard, 5},
      {"standard", AlgorithmId::kStandard, 9},
      {"me", AlgorithmId::kModuleElimination, 5},
      {"me", AlgorithmId::kModuleElimination, 9},
      {"avoc", AlgorithmId::kAvoc, 5},
      {"avoc", AlgorithmId::kAvoc, 9},
  };
  std::FILE* json = std::fopen(path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"latency\",\n"
               "  \"rounds_per_config\": %zu,\n"
               "  \"results\": [\n",
               kPercentileRounds);
  std::printf("%-10s %8s %12s %12s %12s %12s\n", "algorithm", "modules",
              "p50_ns", "p95_ns", "p99_ns", "mean_ns");
  const size_t config_count = sizeof(configs) / sizeof(configs[0]);
  for (size_t c = 0; c < config_count; ++c) {
    const PercentileConfig& config = configs[c];
    auto engine = avoc::core::MakeEngine(config.id, config.modules);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine %s/%zu: %s\n", config.name, config.modules,
                   engine.status().ToString().c_str());
      std::fclose(json);
      return false;
    }
    avoc::Rng rng(11 + c);
    avoc::obs::LatencyHistogram histogram;
    for (size_t r = 0; r < kPercentileWarmup + kPercentileRounds; ++r) {
      const std::vector<double> round = MakeRound(config.modules, rng);
      const auto start = std::chrono::steady_clock::now();
      auto result = engine->CastVote(round);
      const auto stop = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(result);
      if (r >= kPercentileWarmup) {
        histogram.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()));
      }
    }
    const avoc::obs::LatencySnapshot snapshot = histogram.Snapshot();
    std::printf("%-10s %8zu %12.0f %12.0f %12.0f %12.1f\n", config.name,
                config.modules, snapshot.p50(), snapshot.p95(), snapshot.p99(),
                snapshot.Mean());
    std::fprintf(json,
                 "    {\"algorithm\": \"%s\", \"modules\": %zu, "
                 "\"p50_ns\": %.1f, \"p95_ns\": %.1f, \"p99_ns\": %.1f, "
                 "\"mean_ns\": %.1f}%s\n",
                 config.name, config.modules, snapshot.p50(), snapshot.p95(),
                 snapshot.p99(), snapshot.Mean(),
                 c + 1 < config_count ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote %s\n\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!RunPercentilePass("BENCH_latency.json")) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
