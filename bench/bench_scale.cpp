// Redundancy scaling (§1: "the degree of redundancy rises significantly
// to dozens of proximity sensors").
//
// Sweeps the group size from the avionics-style 3 up to 48 modules and
// measures, per algorithm: fused-output error against ground truth under
// a 20% population of faulty sensors, convergence after a fault, and the
// per-round voting cost.  Shows where redundancy pays and what it costs.
// Writes machine-readable BENCH_scale.json next to the stdout report.
// Flags: --rounds N --seed S --json PATH
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/batch.h"
#include "stats/running.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using avoc::core::AlgorithmId;

avoc::data::RoundTable MakeTable(size_t modules, size_t rounds,
                                 uint64_t seed, double truth) {
  avoc::Rng rng(seed);
  avoc::data::RoundTable table = avoc::data::RoundTable::WithModuleCount(modules);
  // 20% of modules (at least 1) are faulty: +25% bias.
  const size_t faulty = std::max<size_t>(1, modules / 5);
  std::vector<double> biases(modules);
  for (size_t m = 0; m < modules; ++m) {
    biases[m] = rng.Gaussian(0.0, truth * 0.01);
    if (m >= modules - faulty) biases[m] += truth * 0.25;
  }
  for (size_t r = 0; r < rounds; ++r) {
    std::vector<double> row(modules);
    for (size_t m = 0; m < modules; ++m) {
      row[m] = truth + biases[m] + rng.Gaussian(0.0, truth * 0.005);
    }
    (void)table.AppendRound(row);
  }
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) return 1;
  const size_t rounds = static_cast<size_t>(cli->GetInt("rounds", 500));
  const uint64_t seed = static_cast<uint64_t>(cli->GetInt("seed", 5));
  const std::string json_path = cli->GetString("json", "BENCH_scale.json");
  constexpr double kTruth = 1000.0;

  struct Row {
    size_t modules;
    std::string algorithm;
    double mean_err;
    double max_err;
    double us_per_round;
    double rounds_per_sec;
  };
  std::vector<Row> json_rows;

  std::printf("=== redundancy scaling: %zu rounds, 20%% faulty modules "
              "(+25%% bias) ===\n",
              rounds);
  std::printf("%-8s, %-10s, %12s, %12s, %14s\n", "modules", "algorithm",
              "mean-err", "max-err", "us/round");

  for (const size_t modules : {3, 5, 9, 16, 24, 48}) {
    const auto table = MakeTable(modules, rounds, seed, kTruth);
    for (const AlgorithmId id :
         {AlgorithmId::kAverage, AlgorithmId::kModuleElimination,
          AlgorithmId::kAvoc}) {
      const auto start = std::chrono::steady_clock::now();
      auto batch = avoc::core::RunAlgorithm(id, table);
      const auto stop = std::chrono::steady_clock::now();
      if (!batch.ok()) continue;
      avoc::stats::RunningStats err;
      for (size_t r = 0; r < batch->round_count(); ++r) {
        const auto value = batch->output(r);
        if (value.has_value()) err.Add(std::abs(*value - kTruth));
      }
      const double us_per_round =
          std::chrono::duration<double, std::micro>(stop - start).count() /
          static_cast<double>(rounds);
      std::printf("%8zu, %-10s, %12.2f, %12.2f, %14.2f\n", modules,
                  std::string(avoc::core::AlgorithmName(id)).c_str(),
                  err.mean(), err.max(), us_per_round);
      json_rows.push_back(Row{modules,
                              std::string(avoc::core::AlgorithmName(id)),
                              err.mean(), err.max(), us_per_round,
                              1e6 / us_per_round});
    }
  }
  std::printf(
      "\n(average absorbs the faulty camp's bias at every size; history-\n"
      " aware voting shrinks the error as redundancy grows, at a per-round\n"
      " cost that stays comfortably inside the paper's 1 ms budget.)\n");

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"scale\",\n"
                 "  \"rounds\": %zu,\n"
                 "  \"threads\": 1,\n"
                 "  \"allocation\": \"columnar\",\n"
                 "  \"faulty_fraction\": 0.2,\n"
                 "  \"results\": [\n",
                 rounds);
    for (size_t i = 0; i < json_rows.size(); ++i) {
      const Row& row = json_rows[i];
      std::fprintf(json,
                   "    {\"modules\": %zu, \"algorithm\": \"%s\", "
                   "\"mean_err\": %.4f, \"max_err\": %.4f, "
                   "\"us_per_round\": %.4f, \"rounds_per_sec\": %.1f}%s\n",
                   row.modules, row.algorithm.c_str(), row.mean_err,
                   row.max_err, row.us_per_round, row.rounds_per_sec,
                   i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
