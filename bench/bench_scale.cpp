// Redundancy scaling (§1: "the degree of redundancy rises significantly
// to dozens of proximity sensors").
//
// Sweeps the group size from the avionics-style 3 up to 48 modules and
// measures, per algorithm: fused-output error against ground truth under
// a 20% population of faulty sensors, and the per-round voting cost.
// Each configuration is run twice over the identical table: once bare
// for the throughput numbers, once with a stage-timing observer attached
// for the per-stage ns/round breakdown (agreement / exclusion / average
// / other) — the observed pass pays the hook overhead, so the totals
// come from the bare pass and the breakdown shows *where* rounds spend.
//
// The "standard-abs" rows run binary agreement over an absolute margin,
// the mode where the kernel layer dispatches the O(N log N) sorted-
// window agreement path; its per-stage agreement cost should grow
// near-linearly from 9 → 48 modules while the pairwise presets grow
// quadratically.  A bitwise sorted-vs-pairwise cross-check over every
// standard-abs round is reported in the JSON (must be 0 mismatches).
// Writes machine-readable BENCH_scale.json next to the stdout report.
// Flags: --rounds N --seed S --json PATH
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/batch.h"
#include "core/kernels/kernels.h"
#include "stats/running.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using avoc::core::AlgorithmId;
using avoc::core::PresetParams;

avoc::data::RoundTable MakeTable(size_t modules, size_t rounds,
                                 uint64_t seed, double truth) {
  avoc::Rng rng(seed);
  avoc::data::RoundTable table = avoc::data::RoundTable::WithModuleCount(modules);
  // 20% of modules (at least 1) are faulty: +25% bias.
  const size_t faulty = std::max<size_t>(1, modules / 5);
  std::vector<double> biases(modules);
  for (size_t m = 0; m < modules; ++m) {
    biases[m] = rng.Gaussian(0.0, truth * 0.01);
    if (m >= modules - faulty) biases[m] += truth * 0.25;
  }
  for (size_t r = 0; r < rounds; ++r) {
    std::vector<double> row(modules);
    for (size_t m = 0; m < modules; ++m) {
      row[m] = truth + biases[m] + rng.Gaussian(0.0, truth * 0.005);
    }
    (void)table.AppendRound(row);
  }
  return table;
}

/// Buckets per-stage wall time: the three kernel-backed stages the
/// breakdown names, everything else (quorum, clustering, elimination,
/// weighting, majority, history) under "other".
class StageTimer final : public avoc::core::StageObserver {
 public:
  void OnRoundBegin(size_t /*round*/,
                    const avoc::core::VoteContext& /*context*/) override {
    prev_ = Clock::now();
  }
  void OnStageDone(std::string_view stage,
                   const avoc::core::VoteContext& /*context*/) override {
    const auto now = Clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(now - prev_).count();
    prev_ = now;
    if (stage == "agreement") {
      agreement_ns += ns;
    } else if (stage == "exclusion") {
      exclusion_ns += ns;
    } else if (stage == "collation") {
      average_ns += ns;
    } else {
      other_ns += ns;
    }
  }
  bool wants_vote_result() const override { return false; }

  double agreement_ns = 0.0;
  double exclusion_ns = 0.0;
  double average_ns = 0.0;
  double other_ns = 0.0;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point prev_{};
};

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) return 1;
  const size_t rounds = static_cast<size_t>(cli->GetInt("rounds", 500));
  const size_t repeat =
      std::max<size_t>(1, static_cast<size_t>(cli->GetInt("repeat", 3)));
  const uint64_t seed = static_cast<uint64_t>(cli->GetInt("seed", 5));
  const std::string json_path = cli->GetString("json", "BENCH_scale.json");
  constexpr double kTruth = 1000.0;

  struct Config {
    const char* label;
    AlgorithmId id;
    PresetParams params;
  };
  // standard-abs: binary agreement over an absolute ±50 margin (5% of
  // the 1000.0 truth, matching the presets' relative ε=0.05) — the
  // configuration the sorted-window agreement kernel serves.
  PresetParams absolute;
  absolute.error = kTruth * 0.05;
  absolute.scale = avoc::core::ThresholdScale::kAbsolute;
  const std::vector<Config> configs = {
      {"average", AlgorithmId::kAverage, {}},
      {"me", AlgorithmId::kModuleElimination, {}},
      {"avoc", AlgorithmId::kAvoc, {}},
      {"standard-abs", AlgorithmId::kStandard, absolute},
  };

  struct Row {
    size_t modules;
    std::string algorithm;
    double mean_err;
    double max_err;
    double us_per_round;
    double rounds_per_sec;
    double ns_agreement;
    double ns_exclusion;
    double ns_average;
    double ns_other;
  };
  std::vector<Row> json_rows;
  size_t cross_rounds = 0;
  size_t cross_mismatches = 0;

  std::printf("=== redundancy scaling: %zu rounds, 20%% faulty modules "
              "(+25%% bias) ===\n",
              rounds);
  std::printf("%-8s, %-12s, %10s, %10s, %10s, %8s, %8s, %8s, %8s\n",
              "modules", "algorithm", "mean-err", "max-err", "us/round",
              "agr-ns", "exc-ns", "avg-ns", "oth-ns");

  for (const size_t modules : {3, 5, 9, 16, 24, 48}) {
    const auto table = MakeTable(modules, rounds, seed, kTruth);
    for (const Config& config : configs) {
      // Bare timed passes: fastest of `repeat` (each over a fresh engine
      // and trace, so every pass is the identical from-bootstrap run —
      // the minimum is the steady-state cost, the spread is scheduler
      // noise).  This is the throughput number.
      double best_us = 0.0;
      avoc::Result<avoc::core::BatchTrace> batch =
          avoc::InternalError("bench: no pass ran");
      for (size_t pass = 0; pass < repeat; ++pass) {
        auto engine =
            avoc::core::MakeEngine(config.id, modules, config.params);
        if (!engine.ok()) break;
        const auto start = std::chrono::steady_clock::now();
        auto result = avoc::core::RunOverTable(*engine, table);
        const auto stop = std::chrono::steady_clock::now();
        if (!result.ok()) break;
        const double us =
            std::chrono::duration<double, std::micro>(stop - start).count();
        if (pass == 0 || us < best_us) best_us = us;
        batch = std::move(result);
      }
      if (!batch.ok()) continue;

      // Instrumented pass (fresh engine, same table): per-stage split.
      StageTimer timer;
      auto observed =
          avoc::core::MakeEngine(config.id, modules, config.params);
      if (!observed.ok()) continue;
      observed->set_observer(&timer);
      if (!avoc::core::RunOverTable(*observed, table).ok()) continue;

      avoc::stats::RunningStats err;
      for (size_t r = 0; r < batch->round_count(); ++r) {
        const auto value = batch->output(r);
        if (value.has_value()) err.Add(std::abs(*value - kTruth));
      }
      const double us_per_round = best_us / static_cast<double>(rounds);
      const double per_round = 1.0 / static_cast<double>(rounds);
      const Row row{modules,
                    config.label,
                    err.mean(),
                    err.max(),
                    us_per_round,
                    1e6 / us_per_round,
                    timer.agreement_ns * per_round,
                    timer.exclusion_ns * per_round,
                    timer.average_ns * per_round,
                    timer.other_ns * per_round};
      std::printf("%8zu, %-12s, %10.2f, %10.2f, %10.2f, %8.0f, %8.0f, "
                  "%8.0f, %8.0f\n",
                  row.modules, row.algorithm.c_str(), row.mean_err,
                  row.max_err, row.us_per_round, row.ns_agreement,
                  row.ns_exclusion, row.ns_average, row.ns_other);
      json_rows.push_back(row);
    }

    // Sorted-vs-pairwise cross-check: every standard-abs round's
    // agreement scores computed by the dispatching kernel (sorted path
    // at n >= 8) must be bit-identical to the pairwise fallback.
    const avoc::core::AgreementParams abs_params =
        avoc::core::MakeConfig(AlgorithmId::kStandard, configs.back().params)
            .agreement;
    avoc::core::kernels::AgreementScratch scratch;
    std::vector<double> dispatched(modules);
    std::vector<double> pairwise(modules);
    for (size_t r = 0; r < table.round_count(); ++r) {
      const auto view = table.View(r);
      avoc::core::kernels::AgreementScoresKernel(
          view.values.data(), modules, abs_params, dispatched.data(),
          scratch);
      avoc::core::kernels::AgreementPairwiseKernel(
          view.values.data(), modules, abs_params, pairwise.data(), scratch);
      ++cross_rounds;
      for (size_t m = 0; m < modules; ++m) {
        if (std::memcmp(&dispatched[m], &pairwise[m], sizeof(double)) != 0) {
          ++cross_mismatches;
        }
      }
    }
  }
  std::printf(
      "\nsorted-vs-pairwise cross-check: %zu rounds, %zu mismatches\n",
      cross_rounds, cross_mismatches);
  std::printf(
      "(average absorbs the faulty camp's bias at every size; history-\n"
      " aware voting shrinks the error as redundancy grows, at a per-round\n"
      " cost that stays comfortably inside the paper's 1 ms budget.  The\n"
      " ns columns come from the instrumented pass: agreement dominates\n"
      " growth for the pairwise presets, while standard-abs rides the\n"
      " sorted O(N log N) kernel.)\n");

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"scale\",\n"
                 "  \"rounds\": %zu,\n"
                 "  \"repeat\": %zu,\n"
                 "  \"timing\": \"fastest-of-repeat\",\n"
                 "  \"threads\": 1,\n"
                 "  \"allocation\": \"columnar\",\n"
                 "  \"faulty_fraction\": 0.2,\n"
                 "  \"breakdown_source\": \"instrumented-pass\",\n"
                 "  \"sorted_cross_check\": {\"rounds\": %zu, "
                 "\"mismatches\": %zu},\n"
                 "  \"results\": [\n",
                 rounds, repeat, cross_rounds, cross_mismatches);
    for (size_t i = 0; i < json_rows.size(); ++i) {
      const Row& row = json_rows[i];
      std::fprintf(
          json,
          "    {\"modules\": %zu, \"algorithm\": \"%s\", "
          "\"mean_err\": %.4f, \"max_err\": %.4f, "
          "\"us_per_round\": %.4f, \"rounds_per_sec\": %.1f, "
          "\"ns_per_round\": {\"agreement\": %.1f, \"exclusion\": %.1f, "
          "\"average\": %.1f, \"other\": %.1f}}%s\n",
          row.modules, row.algorithm.c_str(), row.mean_err, row.max_err,
          row.us_per_round, row.rounds_per_sec, row.ns_agreement,
          row.ns_exclusion, row.ns_average, row.ns_other,
          i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return cross_mismatches == 0 ? 0 : 1;
}
