// Regenerates every panel of Fig. 6 (UC-1, light sensors).
//
//   (a) raw reference data        -> per-sensor series summary + samples
//   (b) voting output, clean      -> per-algorithm series summary
//   (c) raw data with faulty E4   -> per-sensor summary (E4 shifted +6 klx)
//   (d) voting output under fault -> per-algorithm series summary
//   (e) diff (faulty - clean)     -> per-algorithm peak/residual/convergence
//   (f) bootstrap zoom            -> first 10 rounds of the diff series
//
// Emits the series as CSV blocks so external plotting reproduces the
// figure directly.  Flags: --rounds N --seed S --csv (full series dumps)
#include <cstdio>
#include <string>
#include <vector>

#include "core/batch.h"
#include "sim/light.h"
#include "stats/convergence.h"
#include "stats/running.h"
#include "util/cli.h"

namespace {

using avoc::core::AlgorithmId;
using avoc::core::BatchResult;

void SummarizeSeries(const char* label, const std::vector<double>& series) {
  avoc::stats::RunningStats rs;
  for (const double v : series) rs.Add(v);
  std::printf("%-10s, %9.1f, %9.1f, %9.1f, %8.1f\n", label, rs.mean(),
              rs.min(), rs.max(), rs.stddev());
}

void DumpCsv(const char* title, const std::vector<std::string>& names,
             const std::vector<std::vector<double>>& columns, size_t stride) {
  std::printf("\n# CSV: %s\nround", title);
  for (const auto& name : names) std::printf(",%s", name.c_str());
  std::printf("\n");
  if (columns.empty()) return;
  for (size_t r = 0; r < columns.front().size(); r += stride) {
    std::printf("%zu", r);
    for (const auto& column : columns) std::printf(",%.1f", column[r]);
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) {
    std::fprintf(stderr, "%s\n", cli.status().ToString().c_str());
    return 1;
  }
  avoc::sim::LightScenarioParams params;
  params.rounds = static_cast<size_t>(cli->GetInt("rounds", 10000));
  params.seed = static_cast<uint64_t>(cli->GetInt("seed", 42));
  const bool csv = cli->GetBool("csv", false);
  const size_t stride = params.rounds > 500 ? params.rounds / 500 : 1;

  const avoc::sim::LightScenario scenario(params);
  const auto clean = scenario.MakeReferenceTable();
  const auto faulty = scenario.MakeFaultyTable();

  std::printf("=== Fig 6 / UC-1 light sensors (%zu rounds, seed %llu) ===\n",
              params.rounds,
              static_cast<unsigned long long>(params.seed));

  std::printf("\n--- (a) raw reference data ---\n");
  std::printf("%-10s, %9s, %9s, %9s, %8s\n", "sensor", "mean", "min", "max",
              "stddev");
  for (size_t m = 0; m < clean.module_count(); ++m) {
    SummarizeSeries(clean.module_names()[m].c_str(), clean.ModuleValues(m));
  }

  std::printf("\n--- (c) raw data with faulty E4 (+6 klx) ---\n");
  std::printf("%-10s, %9s, %9s, %9s, %8s\n", "sensor", "mean", "min", "max",
              "stddev");
  for (size_t m = 0; m < faulty.module_count(); ++m) {
    SummarizeSeries(faulty.module_names()[m].c_str(), faulty.ModuleValues(m));
  }

  struct Run {
    AlgorithmId id;
    std::vector<double> clean_out;
    std::vector<double> faulty_out;
  };
  std::vector<Run> runs;
  for (const AlgorithmId id : avoc::core::AllAlgorithms()) {
    auto clean_batch = avoc::core::RunAlgorithm(id, clean);
    auto faulty_batch = avoc::core::RunAlgorithm(id, faulty);
    if (!clean_batch.ok() || !faulty_batch.ok()) {
      std::fprintf(stderr, "algorithm %s failed\n",
                   std::string(avoc::core::AlgorithmName(id)).c_str());
      return 1;
    }
    runs.push_back(Run{id, clean_batch->ContinuousOutputs(),
                       faulty_batch->ContinuousOutputs()});
  }

  std::printf("\n--- (b) voting output on clean data ---\n");
  std::printf("%-10s, %9s, %9s, %9s, %8s\n", "algorithm", "mean", "min",
              "max", "stddev");
  for (const Run& run : runs) {
    SummarizeSeries(std::string(avoc::core::AlgorithmName(run.id)).c_str(),
                    run.clean_out);
  }

  std::printf("\n--- (d) voting output under the injected fault ---\n");
  std::printf("%-10s, %9s, %9s, %9s, %8s\n", "algorithm", "mean", "min",
              "max", "stddev");
  for (const Run& run : runs) {
    SummarizeSeries(std::string(avoc::core::AlgorithmName(run.id)).c_str(),
                    run.faulty_out);
  }

  std::printf("\n--- (e) error-injection effect: diff vs clean output ---\n");
  std::printf("%-10s, %9s, %9s, %12s\n", "algorithm", "peak", "residual",
              "converge@");
  avoc::stats::ConvergenceOptions conv;
  conv.tolerance = 100.0;
  conv.window = 5;
  for (const Run& run : runs) {
    const auto report =
        avoc::stats::MeasureConvergence(run.faulty_out, run.clean_out, conv);
    std::printf("%-10s, %9.1f, %9.3f, %12s\n",
                std::string(avoc::core::AlgorithmName(run.id)).c_str(),
                report.peak_error, report.residual_bias,
                report.converged_at.has_value()
                    ? std::to_string(*report.converged_at).c_str()
                    : "never");
  }

  std::printf("\n--- (f) clustering effect at bootstrap: diff, rounds 0-9 ---\n");
  std::printf("%-10s", "algorithm");
  for (int r = 0; r < 10; ++r) std::printf(", r%d", r);
  std::printf("\n");
  for (const Run& run : runs) {
    std::printf("%-10s", std::string(avoc::core::AlgorithmName(run.id)).c_str());
    for (size_t r = 0; r < 10 && r < run.clean_out.size(); ++r) {
      std::printf(", %7.1f", run.faulty_out[r] - run.clean_out[r]);
    }
    std::printf("\n");
  }

  if (csv) {
    std::vector<std::vector<double>> raw_columns;
    for (size_t m = 0; m < clean.module_count(); ++m) {
      raw_columns.push_back(clean.ModuleValues(m));
    }
    DumpCsv("fig6a_raw", clean.module_names(), raw_columns, stride);

    std::vector<std::string> names;
    std::vector<std::vector<double>> clean_columns;
    std::vector<std::vector<double>> faulty_columns;
    std::vector<std::vector<double>> diff_columns;
    for (const Run& run : runs) {
      names.emplace_back(avoc::core::AlgorithmName(run.id));
      clean_columns.push_back(run.clean_out);
      faulty_columns.push_back(run.faulty_out);
      std::vector<double> diff(run.clean_out.size());
      for (size_t r = 0; r < diff.size(); ++r) {
        diff[r] = run.faulty_out[r] - run.clean_out[r];
      }
      diff_columns.push_back(std::move(diff));
    }
    DumpCsv("fig6b_clean_output", names, clean_columns, stride);
    DumpCsv("fig6d_faulty_output", names, faulty_columns, stride);
    DumpCsv("fig6e_diff", names, diff_columns, stride);
  }
  return 0;
}
