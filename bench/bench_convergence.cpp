// The headline result: AVOC's clustering bootstrap "boosts the convergence
// of the measurements by 4x" (abstract).
//
// For every algorithm we measure rounds-to-converge back to its own clean
// output after the E4 fault, across several dataset seeds, and report the
// boost (baseline rounds / AVOC rounds).  The factor depends on which
// baseline is compared — the table shows all of them.
// Flags: --seeds N --rounds N --tolerance LUX
#include <cstdio>
#include <optional>
#include <vector>

#include "core/batch.h"
#include "sim/light.h"
#include "stats/convergence.h"
#include "stats/running.h"
#include "util/cli.h"

namespace {

using avoc::core::AlgorithmId;

std::optional<size_t> RoundsToConverge(AlgorithmId id,
                                       const avoc::data::RoundTable& clean,
                                       const avoc::data::RoundTable& faulty,
                                       double tolerance) {
  auto clean_batch = avoc::core::RunAlgorithm(id, clean);
  auto faulty_batch = avoc::core::RunAlgorithm(id, faulty);
  if (!clean_batch.ok() || !faulty_batch.ok()) return std::nullopt;
  avoc::stats::ConvergenceOptions options;
  options.tolerance = tolerance;
  options.window = 5;
  const auto report = avoc::stats::MeasureConvergence(
      faulty_batch->ContinuousOutputs(), clean_batch->ContinuousOutputs(),
      options);
  if (!report.converged_at.has_value()) return std::nullopt;
  return *report.converged_at + 1;  // 1-based duration
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) {
    std::fprintf(stderr, "%s\n", cli.status().ToString().c_str());
    return 1;
  }
  const size_t seeds = static_cast<size_t>(cli->GetInt("seeds", 10));
  const size_t rounds = static_cast<size_t>(cli->GetInt("rounds", 3000));
  const double tolerance = cli->GetDouble("tolerance", 100.0);

  std::printf(
      "=== convergence boost after the E4 fault (%zu seeds, %zu rounds, "
      "tolerance %.0f lux) ===\n",
      seeds, rounds, tolerance);
  std::printf("%-10s, %12s, %12s, %12s, %10s\n", "algorithm",
              "mean-rounds", "min-rounds", "max-rounds", "conv-rate");

  std::vector<avoc::stats::RunningStats> rounds_stats(
      avoc::core::AllAlgorithms().size());
  std::vector<size_t> converged_count(rounds_stats.size(), 0);

  for (size_t s = 0; s < seeds; ++s) {
    avoc::sim::LightScenarioParams params;
    params.rounds = rounds;
    params.seed = 42 + s;
    const avoc::sim::LightScenario scenario(params);
    const auto clean = scenario.MakeReferenceTable();
    const auto faulty = scenario.MakeFaultyTable();
    size_t index = 0;
    for (const AlgorithmId id : avoc::core::AllAlgorithms()) {
      const auto result = RoundsToConverge(id, clean, faulty, tolerance);
      if (result.has_value()) {
        rounds_stats[index].Add(static_cast<double>(*result));
        ++converged_count[index];
      }
      ++index;
    }
  }

  size_t index = 0;
  double avoc_mean = 1.0;
  for (const AlgorithmId id : avoc::core::AllAlgorithms()) {
    const auto& rs = rounds_stats[index];
    if (id == AlgorithmId::kAvoc && !rs.empty()) avoc_mean = rs.mean();
    if (rs.empty()) {
      std::printf("%-10s, %12s, %12s, %12s, %9.0f%%\n",
                  std::string(avoc::core::AlgorithmName(id)).c_str(), "never",
                  "-", "-", 0.0);
    } else {
      std::printf("%-10s, %12.1f, %12.0f, %12.0f, %9.0f%%\n",
                  std::string(avoc::core::AlgorithmName(id)).c_str(),
                  rs.mean(), rs.min(), rs.max(),
                  100.0 * static_cast<double>(converged_count[index]) /
                      static_cast<double>(seeds));
    }
    ++index;
  }

  std::printf("\n--- boost relative to AVOC (baseline mean rounds / AVOC mean "
              "rounds) ---\n");
  std::printf("%-10s, %8s\n", "baseline", "boost");
  index = 0;
  for (const AlgorithmId id : avoc::core::AllAlgorithms()) {
    if (id != AlgorithmId::kAvoc && !rounds_stats[index].empty()) {
      std::printf("%-10s, %7.1fx\n",
                  std::string(avoc::core::AlgorithmName(id)).c_str(),
                  rounds_stats[index].mean() / avoc_mean);
    }
    ++index;
  }
  std::printf("\npaper claim: clustering bootstrap boosts convergence by 4x;\n"
              "the measured factor depends on the baseline (see table).\n");
  return 0;
}
