// Post-fusion filtering on UC-2 (the state-of-the-art step the paper
// deliberately leaves for after voting: "before applying other techniques
// to improve positioning performance", §7).
//
// Stacks each filter on top of the fused per-stack RSSI series and reports
// the proximity-decision quality (ambiguous rounds + decision flips), for
// both the averaging fusion and AVOC's MNN selection.
// Flags: --seed S --rounds N --margin DB
#include <cstdio>
#include <optional>
#include <vector>

#include "core/batch.h"
#include "sim/ble.h"
#include "stats/ambiguity.h"
#include "stats/filters.h"
#include "util/cli.h"

namespace {

using avoc::core::AlgorithmId;
using Series = std::vector<std::optional<double>>;

avoc::core::PresetParams BlePreset() {
  avoc::core::PresetParams params;
  params.scale = avoc::core::ThresholdScale::kAbsolute;
  params.error = 6.0;
  params.quorum_fraction = 0.2;
  return params;
}

Series Fuse(AlgorithmId id, const avoc::data::RoundTable& table) {
  auto batch = avoc::core::RunAlgorithm(id, table, BlePreset());
  if (!batch.ok()) std::exit(1);
  return batch->Outputs();
}

void Report(const char* label, const Series& a, const Series& b,
            double margin) {
  avoc::stats::AmbiguityOptions options;
  options.margin = margin;
  const auto report = avoc::stats::MeasureAmbiguity(a, b, options);
  std::printf("%-26s, %4zu, %5.1f%%, %4zu, %4zu, %5zu\n", label,
              report.ambiguous_rounds, 100.0 * report.ambiguous_fraction(),
              report.longest_ambiguous_run, report.decision_flips,
              report.ambiguous_rounds + report.decision_flips);
}

template <typename MakeFilter>
std::pair<Series, Series> Filtered(const Series& a, const Series& b,
                                   MakeFilter make) {
  auto fa = make();
  auto fb = make();
  return {avoc::stats::ApplyWithGaps(*fa, a),
          avoc::stats::ApplyWithGaps(*fb, b)};
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) return 1;
  avoc::sim::BleScenarioParams params;
  params.seed = static_cast<uint64_t>(cli->GetInt("seed", 7));
  params.rounds = static_cast<size_t>(cli->GetInt("rounds", 297));
  const double margin = cli->GetDouble("margin", 3.0);

  const auto dataset = avoc::sim::BleScenario(params).Generate();

  std::printf("=== post-fusion filtering on UC-2 (margin %.1f dB) ===\n",
              margin);
  std::printf("%-26s, %4s, %6s, %4s, %4s, %5s\n", "pipeline", "amb", "amb%",
              "run", "flip", "bad");

  for (const auto& [name, id] :
       {std::pair<const char*, AlgorithmId>{"average", AlgorithmId::kAverage},
        std::pair<const char*, AlgorithmId>{"avoc", AlgorithmId::kAvoc}}) {
    const Series a = Fuse(id, dataset.stack_a);
    const Series b = Fuse(id, dataset.stack_b);
    char label[64];

    std::snprintf(label, sizeof(label), "%s (no filter)", name);
    Report(label, a, b, margin);

    {
      auto [fa, fb] = Filtered(a, b, [] {
        auto f = avoc::stats::EwmaFilter::Create(0.25);
        return std::make_unique<avoc::stats::EwmaFilter>(*f);
      });
      std::snprintf(label, sizeof(label), "%s + EWMA(0.25)", name);
      Report(label, fa, fb, margin);
    }
    {
      auto [fa, fb] = Filtered(a, b, [] {
        auto f = avoc::stats::MovingMedianFilter::Create(7);
        return std::make_unique<avoc::stats::MovingMedianFilter>(*f);
      });
      std::snprintf(label, sizeof(label), "%s + median(7)", name);
      Report(label, fa, fb, margin);
    }
    {
      auto [fa, fb] = Filtered(a, b, [] {
        auto f = avoc::stats::KalmanFilter::Create(0.05, 25.0);
        return std::make_unique<avoc::stats::KalmanFilter>(*f);
      });
      std::snprintf(label, sizeof(label), "%s + kalman", name);
      Report(label, fa, fb, margin);
    }
    {
      auto [fa, fb] = Filtered(a, b, [] {
        auto f = avoc::stats::SlewLimitFilter::Create(2.0);
        return std::make_unique<avoc::stats::SlewLimitFilter>(*f);
      });
      std::snprintf(label, sizeof(label), "%s + slew(2dB)", name);
      Report(label, fa, fb, margin);
    }
  }
  std::printf("\n('bad' = ambiguous rounds + decision flips; lower is a\n"
              " cleaner Fig. 7 proximity decision.)\n");
  return 0;
}
