// Regenerates Fig. 7 (UC-2, BLE beacon positioning).
//
//   (a) single beacon per stack      -> raw series + ambiguity
//   (b) 9-beacon average per stack   -> fused series + ambiguity
//   (c) 9-beacon AVOC per stack      -> fused series + ambiguity
//
// Plus the §7 analysis tables: the two collation groups (averaging vs
// mean-nearest-neighbour) and the history-method overlap check.
// Flags: --seed S --rounds N --margin DB --csv
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/batch.h"
#include "sim/ble.h"
#include "stats/ambiguity.h"
#include "util/cli.h"

namespace {

using avoc::core::AlgorithmId;
using Series = std::vector<std::optional<double>>;

Series SingleBeacon(const avoc::data::RoundTable& table) {
  Series series;
  for (size_t r = 0; r < table.round_count(); ++r) {
    series.push_back(table.At(r, 0));
  }
  return series;
}

avoc::core::PresetParams BlePreset() {
  avoc::core::PresetParams params;
  params.scale = avoc::core::ThresholdScale::kAbsolute;
  params.error = 6.0;
  params.quorum_fraction = 0.2;
  return params;
}

Series Fuse(AlgorithmId id, const avoc::data::RoundTable& table,
            const avoc::core::PresetParams& params) {
  auto batch = avoc::core::RunAlgorithm(id, table, params);
  if (!batch.ok()) {
    std::fprintf(stderr, "fusion failed: %s\n",
                 batch.status().ToString().c_str());
    std::exit(1);
  }
  return batch->Outputs();
}

void PrintAmbiguityRow(const char* label, const Series& a, const Series& b,
                       double margin) {
  avoc::stats::AmbiguityOptions options;
  options.margin = margin;
  const auto report = avoc::stats::MeasureAmbiguity(a, b, options);
  std::printf("%-22s, %4zu, %5.1f%%, %4zu, %4zu\n", label,
              report.ambiguous_rounds, 100.0 * report.ambiguous_fraction(),
              report.longest_ambiguous_run, report.decision_flips);
}

double MeanAbsDelta(const Series& a, const Series& b) {
  double sum = 0.0;
  size_t n = 0;
  for (size_t r = 0; r < a.size() && r < b.size(); ++r) {
    if (a[r].has_value() && b[r].has_value()) {
      sum += std::abs(*a[r] - *b[r]);
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) {
    std::fprintf(stderr, "%s\n", cli.status().ToString().c_str());
    return 1;
  }
  avoc::sim::BleScenarioParams params;
  params.seed = static_cast<uint64_t>(cli->GetInt("seed", 7));
  params.rounds = static_cast<size_t>(cli->GetInt("rounds", 297));
  const double margin = cli->GetDouble("margin", 3.0);
  const bool csv = cli->GetBool("csv", false);

  const avoc::sim::BleScenario scenario(params);
  const auto dataset = scenario.Generate();

  std::printf("=== Fig 7 / UC-2 BLE beacons (%zu rounds, %zu+%zu missing) ===\n",
              params.rounds, dataset.stack_a.missing_count(),
              dataset.stack_b.missing_count());

  const auto preset = BlePreset();
  const Series single_a = SingleBeacon(dataset.stack_a);
  const Series single_b = SingleBeacon(dataset.stack_b);
  const Series avg_a = Fuse(AlgorithmId::kAverage, dataset.stack_a, preset);
  const Series avg_b = Fuse(AlgorithmId::kAverage, dataset.stack_b, preset);
  const Series avoc_a = Fuse(AlgorithmId::kAvoc, dataset.stack_a, preset);
  const Series avoc_b = Fuse(AlgorithmId::kAvoc, dataset.stack_b, preset);

  std::printf(
      "\n--- ambiguity (|A-B| < %.1f dB): rounds where the closest stack is "
      "unclear ---\n",
      margin);
  std::printf("%-22s, %4s, %6s, %4s, %4s\n", "method", "amb", "amb%", "run",
              "flip");
  PrintAmbiguityRow("(a) single beacon", single_a, single_b, margin);
  PrintAmbiguityRow("(b) 9-beacon average", avg_a, avg_b, margin);
  PrintAmbiguityRow("(c) 9-beacon AVOC", avoc_a, avoc_b, margin);

  // §7: "The output of all history-based algorithms overlaps completely"
  // within a collation group; the groups themselves differ.
  std::printf("\n--- algorithm groups: mean |delta| to the group anchor (dB) ---\n");
  std::printf("%-22s, %8s\n", "pair", "delta");
  const Series standard_a =
      Fuse(AlgorithmId::kStandard, dataset.stack_a, preset);
  const Series sdt_a = Fuse(AlgorithmId::kSoftDynamicThreshold,
                            dataset.stack_a, preset);
  const Series me_a =
      Fuse(AlgorithmId::kModuleElimination, dataset.stack_a, preset);
  const Series hybrid_a = Fuse(AlgorithmId::kHybrid, dataset.stack_a, preset);
  std::printf("%-22s, %8.3f\n", "standard vs average",
              MeanAbsDelta(standard_a, avg_a));
  std::printf("%-22s, %8.3f\n", "sdt vs average",
              MeanAbsDelta(sdt_a, avg_a));
  std::printf("%-22s, %8.3f\n", "me vs average", MeanAbsDelta(me_a, avg_a));
  std::printf("%-22s, %8.3f\n", "avoc vs hybrid",
              MeanAbsDelta(avoc_a, hybrid_a));
  std::printf("%-22s, %8.3f   <- the collation split\n",
              "avoc(MNN) vs average", MeanAbsDelta(avoc_a, avg_a));

  // Collation ablation on the same data: AVOC with averaging collation
  // joins the averaging group ("averaging being the better option").
  avoc::core::PresetParams averaging = preset;
  averaging.collation = avoc::core::Collation::kWeightedAverage;
  const Series avoc_avg_a =
      Fuse(AlgorithmId::kAvoc, dataset.stack_a, averaging);
  const Series avoc_avg_b =
      Fuse(AlgorithmId::kAvoc, dataset.stack_b, averaging);
  std::printf("\n--- collation choice (the dominant factor in UC-2) ---\n");
  std::printf("%-22s, %4s, %6s, %4s, %4s\n", "method", "amb", "amb%", "run",
              "flip");
  PrintAmbiguityRow("AVOC w/ MNN", avoc_a, avoc_b, margin);
  PrintAmbiguityRow("AVOC w/ averaging", avoc_avg_a, avoc_avg_b, margin);

  if (csv) {
    std::printf("\n# CSV: fig7_series\nround,singleA,singleB,avgA,avgB,avocA,avocB\n");
    auto cell = [](const std::optional<double>& v) {
      return v.has_value() ? *v : std::nan("");
    };
    for (size_t r = 0; r < params.rounds; ++r) {
      std::printf("%zu,%.0f,%.0f,%.2f,%.2f,%.2f,%.2f\n", r,
                  cell(single_a[r]), cell(single_b[r]), cell(avg_a[r]),
                  cell(avg_b[r]), cell(avoc_a[r]), cell(avoc_b[r]));
    }
  }
  return 0;
}
