// §7 fault scenarios: missing values and conflicting results.
//
// Sweeps the dropout probability from 0% to 90% on a UC-2-like stack and
// reports, per fault policy, how rounds resolve (voted / reverted /
// suppressed / raised) and how accurate the surviving outputs stay.  Also
// runs the conflicting-results scenario (two camps, no absolute majority)
// against every no-majority policy.
// Flags: --rounds N --seed S
#include <cmath>
#include <cstdio>
#include <string>

#include "core/batch.h"
#include "sim/ble.h"
#include "sim/fault.h"
#include "stats/running.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using avoc::core::AlgorithmId;
using avoc::core::RoundOutcome;

struct OutcomeCounts {
  size_t voted = 0;
  size_t reverted = 0;
  size_t suppressed = 0;
  size_t raised = 0;
  double mean_abs_error = 0.0;
};

OutcomeCounts RunWithPolicy(const avoc::data::RoundTable& table,
                            const std::vector<double>& truth,
                            avoc::core::NoQuorumPolicy policy) {
  auto config = avoc::core::MakeConfig(AlgorithmId::kAvoc);
  config.agreement.scale = avoc::core::ThresholdScale::kAbsolute;
  config.agreement.error = 6.0;
  config.quorum.fraction = 0.5;
  config.on_no_quorum = policy;
  auto engine = avoc::core::VotingEngine::Create(table.module_count(), config);
  OutcomeCounts counts;
  if (!engine.ok()) return counts;
  auto batch = avoc::core::RunOverTable(*engine, table);
  if (!batch.ok()) return counts;

  avoc::stats::RunningStats error;
  for (size_t r = 0; r < batch->round_count(); ++r) {
    switch (batch->outcome(r)) {
      case RoundOutcome::kVoted: ++counts.voted; break;
      case RoundOutcome::kRevertedLast: ++counts.reverted; break;
      case RoundOutcome::kNoOutput: ++counts.suppressed; break;
      case RoundOutcome::kError: ++counts.raised; break;
    }
    const auto output = batch->output(r);
    if (output.has_value()) {
      error.Add(std::abs(*output - truth[r]));
    }
  }
  counts.mean_abs_error = error.mean();
  return counts;
}

const char* PolicyName(avoc::core::NoQuorumPolicy policy) {
  switch (policy) {
    case avoc::core::NoQuorumPolicy::kEmitNothing: return "emit_nothing";
    case avoc::core::NoQuorumPolicy::kRevertLast: return "revert_last";
    case avoc::core::NoQuorumPolicy::kRaise: return "raise";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) {
    std::fprintf(stderr, "%s\n", cli.status().ToString().c_str());
    return 1;
  }
  const size_t rounds = static_cast<size_t>(cli->GetInt("rounds", 297));
  const uint64_t seed = static_cast<uint64_t>(cli->GetInt("seed", 7));

  // Baseline stack without simulated dropouts; we inject our own sweep.
  avoc::sim::BleScenarioParams params;
  params.seed = seed;
  params.rounds = rounds;
  params.dropout_base = 0.0;
  params.dropout_slope = 0.0;
  const avoc::sim::BleScenario scenario(params);
  const auto base = scenario.Generate().stack_a;
  std::vector<double> truth;
  truth.reserve(rounds);
  for (size_t r = 0; r < rounds; ++r) {
    truth.push_back(scenario.ExpectedRssi(scenario.RobotPosition(r)));
  }

  std::printf("=== fault scenario: missing values (dropout sweep) ===\n");
  std::printf("%-8s, %-13s, %6s, %6s, %6s, %6s, %10s\n", "dropout", "policy",
              "voted", "revert", "skip", "raise", "mae(dB)");
  for (const double dropout : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9}) {
    avoc::data::RoundTable table = base;
    avoc::Rng rng(seed * 1000 + static_cast<uint64_t>(dropout * 100));
    for (size_t m = 0; m < table.module_count(); ++m) {
      (void)avoc::sim::InjectDropout(table, m, dropout, rng);
    }
    for (const auto policy : {avoc::core::NoQuorumPolicy::kEmitNothing,
                              avoc::core::NoQuorumPolicy::kRevertLast,
                              avoc::core::NoQuorumPolicy::kRaise}) {
      const OutcomeCounts counts = RunWithPolicy(table, truth, policy);
      std::printf("%7.0f%%, %-13s, %6zu, %6zu, %6zu, %6zu, %10.2f\n",
                  dropout * 100.0, PolicyName(policy), counts.voted,
                  counts.reverted, counts.suppressed, counts.raised,
                  counts.mean_abs_error);
    }
  }

  // Conflicting results: split the stack into two camps 20 dB apart from
  // round 100 on; no absolute majority can form across camps.
  std::printf("\n=== fault scenario: conflicting results (no absolute "
              "majority) ===\n");
  std::printf("%-13s, %6s, %6s, %6s, %6s, %12s\n", "policy", "voted",
              "revert", "skip", "raise", "no-majority");
  avoc::data::RoundTable conflicted = base;
  (void)avoc::sim::InjectConflict(conflicted, /*first_minority_module=*/5,
                                  -20.0, /*from_round=*/100);
  for (const auto policy : {avoc::core::NoMajorityPolicy::kAccept,
                            avoc::core::NoMajorityPolicy::kEmitNothing,
                            avoc::core::NoMajorityPolicy::kRevertLast,
                            avoc::core::NoMajorityPolicy::kRaise}) {
    auto config = avoc::core::MakeConfig(AlgorithmId::kAvoc);
    config.agreement.scale = avoc::core::ThresholdScale::kAbsolute;
    config.agreement.error = 6.0;
    config.quorum.fraction = 0.5;
    config.on_no_majority = policy;
    auto engine =
        avoc::core::VotingEngine::Create(conflicted.module_count(), config);
    if (!engine.ok()) continue;
    auto batch = avoc::core::RunOverTable(*engine, conflicted);
    if (!batch.ok()) continue;
    OutcomeCounts counts;
    size_t no_majority = 0;
    for (size_t r = 0; r < batch->round_count(); ++r) {
      switch (batch->outcome(r)) {
        case RoundOutcome::kVoted: ++counts.voted; break;
        case RoundOutcome::kRevertedLast: ++counts.reverted; break;
        case RoundOutcome::kNoOutput: ++counts.suppressed; break;
        case RoundOutcome::kError: ++counts.raised; break;
      }
      if (!batch->had_majority(r)) ++no_majority;
    }
    const char* name = "?";
    switch (policy) {
      case avoc::core::NoMajorityPolicy::kAccept: name = "accept"; break;
      case avoc::core::NoMajorityPolicy::kEmitNothing:
        name = "emit_nothing";
        break;
      case avoc::core::NoMajorityPolicy::kRevertLast:
        name = "revert_last";
        break;
      case avoc::core::NoMajorityPolicy::kRaise: name = "raise"; break;
    }
    std::printf("%-13s, %6zu, %6zu, %6zu, %6zu, %12zu\n", name, counts.voted,
                counts.reverted, counts.suppressed, counts.raised,
                no_majority);
  }
  return 0;
}
