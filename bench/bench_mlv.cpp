// MLV vs weighted-majority on noisy finite-alphabet channels.
//
// §6 notes VDX cannot express MLV ("algorithms that use parameters for
// the candidate values"); this bench measures what that expressiveness
// costs: per-round accuracy of the VDX-definable weighted-majority
// categorical voter against the library-level MLV baseline, sweeping the
// per-module error rate of a minority of reliable and a majority of
// unreliable sensors.
// Flags: --rounds N --seed S
#include <cstdio>
#include <string>
#include <vector>

#include "core/categorical.h"
#include "core/mlv.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

constexpr size_t kAlphabet = 8;

std::string Symbol(size_t i) { return "s" + std::to_string(i); }

/// Generates one module reading: the truth with probability 1-error, else
/// a uniformly random other symbol.
std::string Channel(const std::string& truth, double error, avoc::Rng& rng) {
  if (!rng.Bernoulli(error)) return truth;
  for (;;) {
    const std::string wrong = Symbol(rng.UniformInt(kAlphabet));
    if (wrong != truth) return wrong;
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = avoc::CommandLine::Parse(argc - 1, argv + 1);
  if (!cli.ok()) return 1;
  const size_t rounds = static_cast<size_t>(cli->GetInt("rounds", 2000));
  const uint64_t seed = static_cast<uint64_t>(cli->GetInt("seed", 3));

  std::printf("=== MLV vs weighted majority (alphabet %zu, %zu rounds) ===\n",
              kAlphabet, rounds);
  std::printf("2 reliable modules (error e/4) + 3 unreliable (error e)\n\n");
  std::printf("%-8s, %10s, %10s, %12s\n", "error e", "majority", "mlv",
              "mlv-gain");

  for (const double error : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    avoc::Rng rng(seed);
    avoc::core::CategoricalConfig majority_config;
    majority_config.history.rule = avoc::core::HistoryRule::kCumulativeRatio;
    auto majority = avoc::core::CategoricalEngine::Create(5, majority_config);
    avoc::core::MlvConfig mlv_config;
    mlv_config.output_space_size = kAlphabet;
    auto mlv = avoc::core::MlvEngine::Create(5, mlv_config);
    if (!majority.ok() || !mlv.ok()) return 1;

    size_t majority_correct = 0;
    size_t mlv_correct = 0;
    for (size_t r = 0; r < rounds; ++r) {
      const std::string truth = Symbol(rng.UniformInt(kAlphabet));
      std::vector<avoc::core::CategoricalEngine::Label> round;
      round.emplace_back(Channel(truth, error / 4.0, rng));
      round.emplace_back(Channel(truth, error / 4.0, rng));
      round.emplace_back(Channel(truth, error, rng));
      round.emplace_back(Channel(truth, error, rng));
      round.emplace_back(Channel(truth, error, rng));

      auto majority_result = majority->CastVote(round);
      auto mlv_result = mlv->CastVote(round);
      if (majority_result.ok() && majority_result->value == truth) {
        ++majority_correct;
      }
      if (mlv_result.ok() && mlv_result->value == truth) {
        ++mlv_correct;
      }
    }
    const double majority_acc =
        100.0 * static_cast<double>(majority_correct) /
        static_cast<double>(rounds);
    const double mlv_acc = 100.0 * static_cast<double>(mlv_correct) /
                           static_cast<double>(rounds);
    std::printf("%7.2f, %9.1f%%, %9.1f%%, %+11.1f%%\n", error, majority_acc,
                mlv_acc, mlv_acc - majority_acc);
  }
  std::printf(
      "\n(MLV exploits the output-space size and per-module reliability;\n"
      " the gap is the price of staying within VDX's expressiveness, §6.)\n");
  return 0;
}
